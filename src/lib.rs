//! # amr-tools
//!
//! Facade crate for the `amr-tools` workspace: a from-scratch Rust
//! reproduction of *"Lessons from Profiling and Optimizing Placement in AMR
//! Codes"* (CLUSTER 2025).
//!
//! The workspace provides:
//!
//! * [`mesh`] — octree-based block-structured AMR meshes with Z-order SFCs,
//!   2:1-balanced refinement and 26-neighbor topology.
//! * [`placement`] — the paper's contribution: the baseline SFC policy, LPT,
//!   CDP, chunked CDP and the tunable CPLX hybrid, plus cost models,
//!   critical-path analysis and an exact reference solver.
//! * [`sim`] — a discrete-event cluster simulator with an MPI-like
//!   communication layer and fault injection (thermal throttling, ACK-loss
//!   recovery stalls, shared-memory queue contention).
//! * [`service`] — placement-as-a-service: many concurrent placement
//!   sessions batched over the worker pool, with a warm-engine LRU keyed by
//!   mesh fingerprint and the telemetry query engine behind the same API.
//! * [`telemetry`] — structured, columnar, queryable performance telemetry.
//! * [`workloads`] — Sedov-blast-wave-style refinement drivers and synthetic
//!   cost distributions.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use amr_core as placement;
pub use amr_mesh as mesh;
pub use amr_service as service;
pub use amr_sim as sim;
pub use amr_telemetry as telemetry;
pub use amr_workloads as workloads;
