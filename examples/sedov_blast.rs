//! Run a scaled-down Sedov blast wave end to end and sweep CPLX's X.
//!
//! ```text
//! cargo run --release --example sedov_blast
//! ```
//!
//! This is Fig. 6 in miniature: a shock front sweeps the domain, the mesh
//! refines along it, redistribution fires on every mesh change, and the
//! phase decomposition shows the load–locality tradeoff as X varies.

use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::{Baseline, Cplx, PlacementPolicy};
use amr_tools::placement::trigger::RebalanceTrigger;
use amr_tools::sim::{MacroSim, SimConfig};
use amr_tools::workloads::{SedovConfig, SedovWorkload};

fn main() {
    let ranks = 64;
    let steps = 400;

    println!("Sedov blast wave, {ranks} ranks, {steps} steps, CPLX sweep\n");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "policy", "compute", "comm", "sync", "redist", "total", "vs base"
    );

    let mut base_total = None;
    let policies: Vec<Box<dyn PlacementPolicy>> = {
        let mut v: Vec<Box<dyn PlacementPolicy>> = vec![Box::new(Baseline)];
        for x in [0, 25, 50, 75, 100] {
            v.push(Box::new(Cplx::new(x)));
        }
        v
    };
    for policy in &policies {
        // 64 initial blocks (one per rank), refinable once.
        let mesh = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
        let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
        let mut cfg = SimConfig::tuned(ranks);
        cfg.telemetry_sampling = 8;
        let mut sim = MacroSim::new(cfg);
        let rep = sim.run(
            &mut workload,
            policy.as_ref(),
            RebalanceTrigger::OnMeshChange,
        );
        let base = *base_total.get_or_insert(rep.total_ns);
        println!(
            "{:<10} {:>8.2}s {:>8.2}s {:>8.2}s {:>8.2}s {:>8.2}s {:>+6.1}%",
            rep.policy,
            rep.phases.compute_ns / 1e9,
            rep.phases.comm_ns / 1e9,
            rep.phases.sync_ns / 1e9,
            rep.phases.redist_ns / 1e9,
            rep.total_ns / 1e9,
            (rep.total_ns - base) / base * 100.0,
        );
    }
    println!(
        "\nCompute is placement-invariant; sync falls and comm rises with X — \
         the tunable tradeoff CPLX exposes (paper Fig. 6)."
    );
}
