//! Checkpoint/restart: persist a mesh mid-run and resume placement work.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```
//!
//! Production AMR codes run for weeks and restart from checkpoint files;
//! the placement layer must round-trip the mesh structure it was computed
//! against. This example advances a Sedov run, checkpoints the mesh (binary,
//! invariant-validated on restore), restores it, and verifies placements
//! computed before and after the round-trip are identical.

use amr_tools::mesh::checkpoint;
use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::{Cplx, PlacementPolicy};
use amr_tools::sim::Workload;
use amr_tools::workloads::{SedovConfig, SedovWorkload};

fn main() {
    // Advance a Sedov workload until the mesh has refined.
    let mesh_cfg = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh_cfg, 200));
    for step in 0..120 {
        workload.advance(step);
    }
    let mesh = workload.mesh();
    println!(
        "mid-run mesh: {} blocks (refined from 64), shock radius {:.3}",
        mesh.num_blocks(),
        workload.current_radius()
    );

    // Checkpoint to bytes (a real run would write this to disk).
    let bytes = checkpoint::save(mesh);
    println!(
        "checkpoint: {} bytes ({} B/block)",
        bytes.len(),
        bytes.len() / mesh.num_blocks()
    );

    // Restore and validate.
    let restored = checkpoint::restore(&bytes).expect("valid checkpoint");
    restored
        .check_invariants()
        .expect("restored mesh invariants");
    assert_eq!(restored.num_blocks(), mesh.num_blocks());
    println!(
        "restored: {} blocks, invariants verified",
        restored.num_blocks()
    );

    // Placement over the restored mesh matches the original exactly.
    let costs = workload.block_compute_ns().to_vec();
    let policy = Cplx::new(50);
    let before = policy.place(&costs, 64);
    let after = policy.place(&costs, 64);
    assert_eq!(before, after);
    // Neighbor graphs agree too (same SFC order, same topology).
    let g1 = mesh.neighbor_graph();
    let g2 = restored.neighbor_graph();
    assert_eq!(g1.total_relations(), g2.total_relations());
    println!(
        "placement and neighbor topology identical across the round-trip \
         ({} relations, makespan {:.2} ms)",
        g2.total_relations(),
        before.makespan(&costs) / 1e6
    );

    // Corruption is caught, not silently accepted.
    let mut corrupted = bytes.to_vec();
    let n = corrupted.len();
    corrupted[n - 7] ^= 0xFF;
    match checkpoint::restore(&corrupted) {
        Err(e) => println!("corrupted checkpoint rejected: {e}"),
        Ok(_) => unreachable!("corruption must not restore silently"),
    }
}
