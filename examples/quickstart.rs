//! Quickstart: build a mesh, measure costs, compare placement policies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's §V pipeline in miniature:
//! 1. build a block-structured AMR mesh (octree + Z-order SFC block IDs);
//! 2. refine it around a hot region (2:1 balance maintained automatically);
//! 3. attach measured per-block costs;
//! 4. place blocks with the baseline, LPT, CDP and CPLX policies;
//! 5. compare compute balance (makespan) against communication locality.

use amr_tools::mesh::{AmrMesh, Dim, MeshConfig, Point, RefineTag};
use amr_tools::placement::assess::{AssessmentInputs, PlacementAssessment};
use amr_tools::placement::policies::{Baseline, Cdp, Cplx, Lpt, PlacementPolicy};

fn main() {
    // 1. A 64^3-cell domain with 16^3 blocks -> 4x4x4 = 64 initial blocks.
    let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2));
    println!("initial mesh: {} blocks", mesh.num_blocks());

    // 2. Refine the blocks near a hot spot; ripple refinement keeps the
    //    tree 2:1 balanced and block IDs follow the Z-order SFC.
    let hot = Point::new(0.3, 0.3, 0.3);
    let refined = mesh
        .adapt(|b| {
            if b.bounds.distance_to_point(&hot) < 0.15 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        })
        .refined;
    println!(
        "after refinement: {} blocks ({} refined)",
        mesh.num_blocks(),
        refined
    );
    mesh.check_invariants().expect("mesh invariants");

    // 3. "Measured" costs: blocks near the hot spot are 4x more expensive —
    //    the kind of signal the paper extracts from runtime telemetry.
    let costs: Vec<f64> = mesh
        .blocks()
        .iter()
        .map(|b| {
            let d = b.bounds.center().distance(&hot);
            if d < 0.25 {
                4.0
            } else {
                1.0
            }
        })
        .collect();

    // 4./5. Place on 16 ranks (4 ranks/node) and compare the two axes of §V.
    let ranks = 16;
    let graph = mesh.neighbor_graph();
    let spec = mesh.config().spec;
    println!(
        "\n{:<10} {:>9} {:>10} {:>12} {:>12}",
        "policy", "makespan", "imbalance", "remote msgs", "contiguous"
    );
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(Baseline),
        Box::new(Lpt),
        Box::new(Cdp),
        Box::new(Cplx::new(25)),
        Box::new(Cplx::new(50)),
    ];
    for policy in &policies {
        let p = policy.place(&costs, ranks);
        let loc = p.locality_stats(&graph, 4, &spec, Dim::D3);
        println!(
            "{:<10} {:>9.1} {:>10.3} {:>12} {:>12}",
            policy.name(),
            p.makespan(&costs),
            p.imbalance(&costs),
            loc.remote_msgs,
            p.is_contiguous(),
        );
    }
    println!(
        "\nLPT minimizes makespan but scatters neighbors; CDP keeps contiguity; \
         CPLX trades between them via X.\n"
    );

    // Full report card for the hybrid (all three §V axes at once).
    let inputs = AssessmentInputs {
        costs: &costs,
        graph: &graph,
        spec: &spec,
        dim: Dim::D3,
        ranks_per_node: 4,
        previous: Some(&Baseline.place(&costs, ranks)),
        wall_ns: None,
    };
    let cpl50 = Cplx::new(50);
    let assessment =
        PlacementAssessment::assess(cpl50.name(), &cpl50.place(&costs, ranks), &inputs);
    print!("{}", assessment.render());
}
