//! commbench in example form: how placement locality shapes boundary
//! communication rounds.
//!
//! ```text
//! cargo run --release --example commbench
//! ```
//!
//! Builds a random refined AMR mesh, sweeps CPLX's X, and message-level
//! simulates boundary-exchange rounds — reporting round latency and the
//! local/remote message split for each placement (paper §VI-C, Fig. 7a).

use amr_tools::placement::policies::{Cplx, PlacementPolicy};
use amr_tools::placement::TrafficMatrix;
use amr_tools::sim::{MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
use amr_tools::workloads::exchange::build_round_messages;
use amr_tools::workloads::{random_refined_mesh, CostDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ranks = 256;
    let rounds = 50;
    let mesh = random_refined_mesh(ranks, 1.6, 42);
    println!(
        "commbench: {} ranks, {} blocks, {} neighbor relations\n",
        ranks,
        mesh.num_blocks(),
        mesh.neighbor_graph().total_relations()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let costs = CostDistribution::Exponential { mean: 1.0 }.sample_vec(mesh.num_blocks(), &mut rng);

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "policy", "latency (us)", "local msgs", "remote msgs", "max wait", "traffic imb"
    );
    for x in [0u32, 25, 50, 75, 100] {
        let policy = Cplx::new(x);
        let placement = policy.place(&costs, ranks);
        let spec = RoundSpec {
            num_ranks: ranks,
            compute_ns: vec![0; ranks],
            messages: build_round_messages(&mesh, &placement),
            order: TaskOrder::SendsFirst,
        };
        let mut sim = MicroSim::new(Topology::paper(ranks), NetworkConfig::tuned(), 3);
        let mut lat = 0.0;
        let mut max_wait = 0u64;
        let mut local = 0;
        let mut remote = 0;
        for round in 0..rounds {
            let res = sim.run_round(&spec);
            if round >= 3 {
                lat += res.round_latency_ns as f64;
                max_wait = max_wait.max(*res.wait_ns.iter().max().unwrap());
            }
            local = res.local_msgs;
            remote = res.remote_msgs;
        }
        let traffic = TrafficMatrix::build(
            &placement,
            &mesh.neighbor_graph(),
            &mesh.config().spec,
            mesh.config().dim,
        );
        println!(
            "{:<8} {:>12.1} {:>12} {:>12} {:>9.1}u {:>10.2}",
            policy.name(),
            lat / (rounds - 3) as f64 / 1e3,
            local,
            remote,
            max_wait as f64 / 1e3,
            traffic.inbound_imbalance(),
        );
    }
    println!(
        "\nRaising X converts local (shared-memory) messages into remote (fabric)\n\
         ones; the latency impact is modest but measurable — and at scale, strict\n\
         locality can even lose to hybrid placements (paper Fig. 7a)."
    );
}
