//! The telemetry pipeline: collect, store, query, diagnose, mitigate.
//!
//! ```text
//! cargo run --release --example telemetry_pipeline
//! ```
//!
//! Reenacts §IV's diagnostic loop on a cluster with an injected fail-slow
//! node:
//!
//! 1. run a simulation and collect structured, columnar telemetry;
//! 2. query it (group-by rank/phase, correlations) the way the paper ran
//!    SQL over ClickHouse;
//! 3. detect the throttled node cluster with the anomaly detector;
//! 4. prune it via the health-check workflow and quantify the recovery;
//! 5. round-trip the telemetry through the binary codec and CSV.

use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::Baseline;
use amr_tools::placement::trigger::RebalanceTrigger;
use amr_tools::sim::health::{prune_faulty_nodes, run_health_check};
use amr_tools::sim::{FaultConfig, MacroSim, SimConfig, Topology};
use amr_tools::telemetry::anomaly::detect_throttling;
use amr_tools::telemetry::{codec, Phase, Query};
use amr_tools::workloads::cooling::{CoolingConfig, CoolingWorkload};

fn main() {
    let ranks = 64;
    let faults = FaultConfig::with_throttled_nodes([2]);

    // 1. Faulty run with per-step telemetry.
    let mut cfg = SimConfig::tuned(ranks);
    cfg.faults = faults.clone().into();
    let run = |cfg: SimConfig| {
        let mesh = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
        let mut w = CoolingWorkload::new(CoolingConfig::new(mesh, 100));
        MacroSim::new(cfg).run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange)
    };
    let report = run(cfg.clone());
    println!(
        "faulty run: total {:.2}s, sync share {:.1}%, {} telemetry rows",
        report.total_ns / 1e9,
        report.phases.sync_fraction() * 100.0,
        report.telemetry.len()
    );

    // 2. Query: per-rank compute totals, per-phase totals, correlation.
    let t = &report.telemetry;
    let by_phase = Query::new(t).by_phase();
    println!("\nper-phase totals (s):");
    for (phase, agg) in &by_phase {
        println!("  {:<8} {:>8.2}", phase.to_string(), agg.total_secs());
    }
    let per_rank = Query::new(t).phase(Phase::Compute).per_rank_secs(ranks);

    // 3. Diagnose: compute times cluster by node -> hardware, not workload.
    let diag = detect_throttling(&per_rank, 16, 2.0, 0.75);
    println!(
        "\ndiagnosis: {} slow ranks, node clusters {:?}, inflation {:.1}x",
        diag.slow_ranks.len(),
        diag.throttled_nodes,
        diag.inflation
    );

    // 4. Health-check + prune, then re-run.
    let check = run_health_check(&Topology::paper(ranks), &faults, 1e6, 7);
    let (cleaned, blacklisted) = prune_faulty_nodes(&faults, &check);
    println!("pruned nodes {blacklisted:?}");
    let mut cfg2 = SimConfig::tuned(ranks);
    cfg2.faults = cleaned.into();
    let healthy = run(cfg2);
    println!(
        "healthy run: total {:.2}s ({:.2}x faster), sync share {:.1}%",
        healthy.total_ns / 1e9,
        report.total_ns / healthy.total_ns,
        healthy.phases.sync_fraction() * 100.0
    );

    // 5. Persistence: binary codec round-trip + CSV export.
    let bin = codec::encode(&report.telemetry);
    let back = codec::decode(&bin).expect("decode");
    assert_eq!(back.len(), report.telemetry.len());
    let csv = codec::to_csv(&report.telemetry);
    println!(
        "\ntelemetry: {} rows -> {} KiB binary / {} KiB CSV; binary round-trip exact",
        report.telemetry.len(),
        bin.len() / 1024,
        csv.len() / 1024,
    );
}
