//! The event-driven MPI engine, hands on.
//!
//! ```text
//! cargo run --release --example mpi_playground
//! ```
//!
//! Builds explicit per-rank programs for the nonblocking engine
//! (`Isend`/`Irecv`/`WaitAll`/`Barrier`), demonstrating: a boundary-exchange
//! compiled from a real mesh + placement, the cost of the untuned task
//! order, and the engine's deadlock detection.

use amr_tools::placement::policies::{Baseline, PlacementPolicy};
use amr_tools::sim::mpi::{MpiError, MpiWorld, Op};
use amr_tools::sim::{NetworkConfig, Topology};
use amr_tools::workloads::exchange::build_mpi_programs;
use amr_tools::workloads::random_refined_mesh;

fn main() {
    let ranks = 64;
    let net = NetworkConfig {
        ack_loss_prob: 0.0,
        ..NetworkConfig::tuned()
    };
    let mut world = MpiWorld::new(Topology::paper(ranks), net);

    // 1. A real boundary exchange: mesh -> placement -> per-rank programs.
    let mesh = random_refined_mesh(ranks, 1.6, 21);
    let placement = Baseline.place(&vec![1.0; mesh.num_blocks()], ranks);
    let compute: Vec<u64> = (0..ranks as u64).map(|r| 300_000 + r * 17_000).collect();

    let sends_first = build_mpi_programs(&mesh, &placement, &compute, true);
    let ops: usize = sends_first.iter().map(|p| p.len()).sum();
    println!(
        "boundary exchange: {} blocks -> {} MPI ops across {ranks} ranks",
        mesh.num_blocks(),
        ops
    );
    let sf = world.run(sends_first).expect("exchange completes");
    let cf = world
        .run(build_mpi_programs(&mesh, &placement, &compute, false))
        .expect("exchange completes");
    println!(
        "sends-first : makespan {:.2} ms, total wait {:.2} ms",
        sf.makespan_ns as f64 / 1e6,
        sf.ranks.iter().map(|s| s.wait_ns).sum::<u64>() as f64 / 1e6
    );
    println!(
        "compute-first: makespan {:.2} ms, total wait {:.2} ms  <- the §IV-B bug",
        cf.makespan_ns as f64 / 1e6,
        cf.ranks.iter().map(|s| s.wait_ns).sum::<u64>() as f64 / 1e6
    );

    // 2. Deadlock detection: a circular wait with no sends in flight.
    let deadlock = vec![
        vec![
            Op::Irecv { src: 1, tag: 0 },
            Op::WaitAll,
            Op::Isend {
                dst: 1,
                tag: 0,
                bytes: 8,
            },
        ],
        vec![
            Op::Irecv { src: 0, tag: 0 },
            Op::WaitAll,
            Op::Isend {
                dst: 0,
                tag: 0,
                bytes: 8,
            },
        ],
    ];
    let mut small = MpiWorld::new(
        Topology::new(2, 1),
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        },
    );
    match small.run(deadlock) {
        Err(MpiError::Deadlock { stuck_ranks }) => {
            println!(
                "\ncircular wait detected: ranks {stuck_ranks:?} blocked forever (as expected)"
            )
        }
        other => unreachable!("expected deadlock, got {other:?}"),
    }

    // 3. Barrier mismatch detection.
    let mismatch = vec![vec![Op::Barrier], vec![Op::Compute(10)]];
    match small.run(mismatch) {
        Err(MpiError::BarrierMismatch) => {
            println!("barrier entered by a strict subset of ranks: flagged (as expected)")
        }
        other => unreachable!("expected mismatch, got {other:?}"),
    }
}
