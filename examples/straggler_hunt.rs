//! Straggler hunting with telemetry views and zone-map pushdown.
//!
//! ```text
//! cargo run --release --example straggler_hunt
//! ```
//!
//! The paper's diagnosis loop (§IV), end to end: run a simulation with a
//! *persistent* hardware straggler and a *rotating* workload straggler,
//! collect per-step telemetry, then let the analytics tell them apart —
//! persistent stragglers cluster on ranks/nodes (hardware), rotating ones
//! follow the physics. Finishes with a zone-map pushdown query picking the
//! slow events out of the full table without scanning it.

use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::Baseline;
use amr_tools::placement::trigger::RebalanceTrigger;
use amr_tools::sim::{FaultConfig, MacroSim, SimConfig};
use amr_tools::telemetry::chunked::{ChunkedStore, Predicate};
use amr_tools::telemetry::views;
use amr_tools::telemetry::Phase;
use amr_tools::workloads::{SedovConfig, SedovWorkload};

fn main() {
    let ranks = 64;
    // Sedov provides the rotating (physics) straggler; node 2 is the
    // persistent (hardware) one.
    let mesh = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, 200));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.faults = FaultConfig::with_throttled_nodes([2]).into();
    cfg.telemetry_sampling = 1;
    let report = MacroSim::new(cfg).run(&mut workload, &Baseline, RebalanceTrigger::OnMeshChange);
    let table = &report.telemetry;
    println!(
        "run complete: {} steps, {} telemetry rows\n",
        report.steps,
        table.len()
    );

    // View 1: who gates each step? The throttled node's ranks take turns
    // being the worst, so aggregate gating counts per *node* — the paper's
    // cluster signature.
    let per_node = views::straggler_histogram_by_node(table, ranks, 16);
    let (worst_node, node_count) = per_node
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(n, &c)| (n, c))
        .unwrap();
    println!(
        "straggler attribution by node: {:?} (gating steps per node)",
        per_node
    );
    let persistence = node_count as f64 / report.steps as f64;
    println!(
        "  -> node {worst_node} gates {:.0}% of steps: {}",
        persistence * 100.0,
        if persistence > 0.5 {
            "hardware-suspect — pin that node (Fig. 2 workflow)"
        } else {
            "rotating workload straggler"
        }
    );

    // View 2: imbalance evolution.
    let (mean_imb, p95_imb) = views::imbalance_summary(table);
    println!("imbalance factor: mean {mean_imb:.2}, p95 {p95_imb:.2}");

    // View 3: phase fractions from raw telemetry.
    println!("phase fractions:");
    for (phase, frac) in views::phase_fractions(table) {
        println!("  {:<8} {:>5.1}%", phase.to_string(), frac * 100.0);
    }

    // Zone-map pushdown: the slowest sync events, without a full scan.
    let store = ChunkedStore::build(table, 2048);
    let threshold = 3 * report.phases.sync_ns as u64 / report.steps / 2; // 1.5x mean step sync
    let pred = Predicate {
        phase: Some(Phase::Synchronization),
        min_duration_ns: Some(threshold),
        ..Predicate::default()
    };
    let scan = store.scan(&pred);
    println!(
        "\npushdown query (sync events > {:.2} ms): {} hits; {} of {} chunks pruned by zone maps",
        threshold as f64 / 1e6,
        scan.rows.len(),
        scan.chunks_pruned,
        store.num_chunks()
    );
    let on_bad_node = scan
        .rows
        .iter()
        .filter(|r| r.rank / 16 != 2) // healthy ranks waiting on node 2
        .count();
    println!(
        "{on_bad_node}/{} of those waits are healthy ranks stalled behind the throttled node",
        scan.rows.len()
    );
}
