//! The §IV-D critical-path model, hands on.
//!
//! ```text
//! cargo run --release --example critical_path
//! ```
//!
//! Builds the two windows of the paper's Fig. 4: a purely local critical
//! path (compute imbalance) and a two-rank path through one P2P message,
//! then shows how send prioritization shortens the path.

use amr_tools::placement::critical_path::{
    critical_path, execute, prioritize_sends, ranks_on_path, Task, Window,
};

fn describe(window: &Window, label: &str) {
    let schedule = execute(window).expect("window executes");
    let path = critical_path(window, &schedule);
    println!("-- {label} --");
    println!("  makespan: {}", schedule.makespan());
    println!("  total MPI_Wait: {}", schedule.total_wait(window));
    println!(
        "  critical path: {} tasks across {} rank(s): {:?}",
        path.len(),
        ranks_on_path(&path),
        path.iter()
            .map(|t| format!("r{}#{}", t.rank, t.index))
            .collect::<Vec<_>>()
    );
}

fn main() {
    // Local path: rank 1's compute dominates; no wait involved.
    let local = Window {
        tasks: vec![
            vec![
                Task::Compute { dur: 10 },
                Task::Send {
                    msg: 0,
                    dur: 1,
                    latency: 5,
                },
            ],
            vec![Task::Compute { dur: 500 }, Task::Wait { msg: 0 }],
        ],
    };
    describe(&local, "single-rank critical path (compute imbalance)");

    // Two-rank path: rank 1 stalls waiting on rank 0's late send.
    let two_rank = Window {
        tasks: vec![
            vec![
                Task::Compute { dur: 400 },
                Task::Send {
                    msg: 0,
                    dur: 1,
                    latency: 5,
                },
            ],
            vec![Task::Compute { dur: 20 }, Task::Wait { msg: 0 }],
        ],
    };
    describe(&two_rank, "two-rank critical path (one P2P round)");

    // Ordering: the same two-rank window with the send *before* compute —
    // the §IV-B reordering mitigation (Fig. 4 bottom).
    let tuned = prioritize_sends(&two_rank);
    describe(&tuned, "after send prioritization");

    println!(
        "\nAt most two ranks ever appear on a single-round critical path \
         (Lamport's happened-before: only the message edge links ranks)."
    );
}
