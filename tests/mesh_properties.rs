//! Property-based tests for the mesh substrate (amr-mesh).
//!
//! Random refinement/coarsening programs must preserve the structural
//! invariants production AMR frameworks rely on: exact tiling, 2:1 balance,
//! SFC-ordered dense block IDs, and a symmetric neighbor graph.

use amr_tools::mesh::{
    morton_decode2, morton_decode3, morton_encode2, morton_encode3, sfc_key, AmrMesh, Dim,
    MeshConfig, RefineTag,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn morton3_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
        prop_assert_eq!(morton_decode3(morton_encode3(x, y, z)), (x, y, z));
    }

    #[test]
    fn morton2_roundtrip(x: u32, y: u32) {
        prop_assert_eq!(morton_decode2(morton_encode2(x, y)), (x, y));
    }

    #[test]
    fn morton3_is_injective(a in 0u32..256, b in 0u32..256, c in 0u32..256,
                            d in 0u32..256, e in 0u32..256, f in 0u32..256) {
        let m1 = morton_encode3(a, b, c);
        let m2 = morton_encode3(d, e, f);
        prop_assert_eq!(m1 == m2, (a, b, c) == (d, e, f));
    }

    /// Random adapt programs: each step refines blocks whose index hash
    /// matches and coarsens another slice; invariants must hold throughout.
    #[test]
    fn random_adaptation_preserves_invariants(
        dim_3d: bool,
        steps in 1usize..5,
        salt in 0u64..1000,
    ) {
        let dim = if dim_3d { Dim::D3 } else { Dim::D2 };
        let cells = if dim_3d { (32, 32, 32) } else { (64, 64, 64) };
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(dim, cells, 2));
        for step in 0..steps {
            let key = salt.wrapping_add(step as u64);
            mesh.adapt(|b| {
                let h = (b.id.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(key);
                match h % 5 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
            mesh.check_invariants().unwrap();
        }
        // Block IDs dense, SFC-sorted, unique.
        let keys: Vec<u64> = mesh
            .blocks()
            .iter()
            .map(|b| sfc_key(&b.octant, dim))
            .collect();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Neighbor graph symmetric, bounded degree.
        let graph = mesh.neighbor_graph();
        graph.check_symmetry().unwrap();
        let max_deg = if dim_3d { 26 * 4 } else { 8 * 2 + 4 };
        for (b, nbs) in graph.iter() {
            prop_assert!(nbs.len() <= max_deg, "block {} has {} neighbors", b, nbs.len());
            // Self-loops are forbidden.
            prop_assert!(nbs.iter().all(|n| n.block != b));
            // 2:1 balance shows up as |level_delta| <= 1.
            prop_assert!(nbs.iter().all(|n| n.level_delta.abs() <= 1));
        }
    }

    #[test]
    fn adapt_reports_consistent_delta(salt in 0u64..1000) {
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (32, 32, 32), 2));
        let before = mesh.num_blocks();
        let delta = mesh
            .adapt(|b| {
                if (b.id.index() as u64).wrapping_mul(salt + 1).is_multiple_of(7) {
                    RefineTag::Refine
                } else {
                    RefineTag::Keep
                }
            })
            .clone();
        prop_assert_eq!(delta.blocks_before, before);
        prop_assert_eq!(delta.blocks_after, mesh.num_blocks());
        // Refining k leaves in 3D nets exactly 7k extra blocks.
        prop_assert_eq!(delta.blocks_after - delta.blocks_before, delta.refined * 7);
    }
}

#[test]
fn full_refine_coarsen_cycle_restores_mesh() {
    let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (32, 32, 32), 1));
    let initial = mesh.num_blocks();
    mesh.adapt(|_| RefineTag::Refine);
    assert_eq!(mesh.num_blocks(), initial * 8);
    mesh.adapt(|_| RefineTag::Coarsen);
    assert_eq!(mesh.num_blocks(), initial);
    mesh.check_invariants().unwrap();
}
