//! Property-based tests for the placement policies (amr-core).
//!
//! These encode the paper's algorithmic claims as executable invariants:
//! Graham's 4/3 bound for LPT (§V-B), CDP's optimality within its chunk
//! space and its locality preservation (§V-C), and the CPLX endpoints
//! (X=0 ≡ CDP, X=100 ≡ LPT; §V-D).

use amr_tools::placement::exact::solve_exact;
use amr_tools::placement::policies::{
    cdp_general, Baseline, Cdp, ChunkedCdp, Cplx, Lpt, PlacementPolicy,
};
use proptest::prelude::*;

fn costs_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..=max_n)
}

fn lower_bound(costs: &[f64], ranks: usize) -> f64 {
    let total: f64 = costs.iter().sum();
    let max = costs.iter().cloned().fold(0.0, f64::max);
    (total / ranks as f64).max(max)
}

proptest! {
    #[test]
    fn every_policy_assigns_every_block(costs in costs_strategy(200), ranks in 1usize..32) {
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(Baseline),
            Box::new(Lpt),
            Box::new(Cdp),
            Box::new(ChunkedCdp::new(8)),
            Box::new(Cplx::with_chunking(50, 8)),
        ];
        for p in &policies {
            let placement = p.place(&costs, ranks);
            prop_assert_eq!(placement.num_blocks(), costs.len());
            prop_assert!(placement.as_slice().iter().all(|&r| (r as usize) < ranks));
            // Conservation: per-rank loads sum to total cost.
            let loads: f64 = placement.rank_loads(&costs).iter().sum();
            let total: f64 = costs.iter().sum();
            prop_assert!((loads - total).abs() < 1e-6 * total.max(1.0));
        }
    }

    #[test]
    fn lpt_within_four_thirds_of_optimal(costs in costs_strategy(12), ranks in 2usize..5) {
        let exact = solve_exact(&costs, ranks);
        let lpt = Lpt.place(&costs, ranks).makespan(&costs);
        prop_assert!(lpt <= exact.makespan * 4.0 / 3.0 + 1e-9,
            "LPT {} vs OPT {}", lpt, exact.makespan);
        prop_assert!(lpt + 1e-9 >= exact.makespan);
    }

    #[test]
    fn makespan_never_below_lower_bound(costs in costs_strategy(300), ranks in 1usize..64) {
        let lb = lower_bound(&costs, ranks);
        for p in [&Lpt as &dyn PlacementPolicy, &Cdp, &Baseline] {
            prop_assert!(p.place(&costs, ranks).makespan(&costs) >= lb - 1e-9);
        }
    }

    #[test]
    fn cdp_variants_are_contiguous(costs in costs_strategy(300), ranks in 1usize..64) {
        prop_assert!(Cdp.place(&costs, ranks).is_contiguous());
        prop_assert!(ChunkedCdp::new(16).place(&costs, ranks).is_contiguous());
        prop_assert!(cdp_general(&costs, ranks).is_contiguous());
        prop_assert!(Baseline.place(&costs, ranks).is_contiguous());
    }

    #[test]
    fn cdp_general_is_optimal_contiguous_vs_brute_force(
        costs in costs_strategy(9),
        ranks in 1usize..4,
    ) {
        // Brute force over all contiguous partitions.
        fn brute(costs: &[f64], ranks: usize) -> f64 {
            fn rec(costs: &[f64], start: usize, k: usize, ranks: usize, cur: f64) -> f64 {
                if k == ranks - 1 {
                    let seg: f64 = costs[start..].iter().sum();
                    return cur.max(seg);
                }
                let mut best = f64::INFINITY;
                for end in start..=costs.len() {
                    let seg: f64 = costs[start..end].iter().sum();
                    best = best.min(rec(costs, end, k + 1, ranks, cur.max(seg)));
                }
                best
            }
            rec(costs, 0, 0, ranks, 0.0)
        }
        let dp = cdp_general(&costs, ranks).makespan(&costs);
        let opt = brute(&costs, ranks);
        prop_assert!((dp - opt).abs() < 1e-9, "dp {} vs brute {}", dp, opt);
    }

    #[test]
    fn cdp_never_worse_than_baseline(costs in costs_strategy(300), ranks in 1usize..64) {
        let cdp = Cdp.place(&costs, ranks).makespan(&costs);
        let base = Baseline.place(&costs, ranks).makespan(&costs);
        prop_assert!(cdp <= base + 1e-9);
    }

    #[test]
    fn cplx_zero_is_cdp_and_hundred_matches_lpt(
        costs in costs_strategy(128),
        ranks in 1usize..32,
    ) {
        let cpl0 = Cplx::with_chunking(0, 512).place(&costs, ranks);
        let cdp = Cdp.place(&costs, ranks);
        prop_assert_eq!(cpl0, cdp);

        let cpl100 = Cplx::with_chunking(100, 512).place(&costs, ranks).makespan(&costs);
        let lpt = Lpt.place(&costs, ranks).makespan(&costs);
        prop_assert!((cpl100 - lpt).abs() <= 1e-9, "cpl100 {} vs lpt {}", cpl100, lpt);
    }

    #[test]
    fn cplx_is_deterministic(costs in costs_strategy(128), ranks in 1usize..32, x in 0u32..=100) {
        let a = Cplx::new(x).place(&costs, ranks);
        let b = Cplx::new(x).place(&costs, ranks);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chunked_cdp_close_to_plain(costs in costs_strategy(256), ranks in 2usize..64) {
        let plain = Cdp.place(&costs, ranks).makespan(&costs);
        let chunked = ChunkedCdp::new(8).place(&costs, ranks).makespan(&costs);
        // Chunking is an approximation but must stay within a small factor.
        prop_assert!(chunked <= plain * 2.0 + 1e-9, "chunked {} vs plain {}", chunked, plain);
        prop_assert!(chunked + 1e-9 >= lower_bound(&costs, ranks));
    }

    #[test]
    fn migration_count_bounded_by_selection(
        costs in costs_strategy(256),
        ranks in 4usize..32,
    ) {
        // CPLX only reassigns blocks owned by selected ranks: migration
        // relative to CPL0 is bounded by the number of blocks on selected
        // ranks (cannot exceed total blocks, and is 0 at X=0).
        let base = Cplx::new(0).place(&costs, ranks);
        prop_assert_eq!(base.migration_count(&Cplx::new(0).place(&costs, ranks)), 0);
        let p = Cplx::new(50).place(&costs, ranks);
        prop_assert!(p.migration_count(&base) <= costs.len());
    }
}
