//! Property-based tests for the placement policies (amr-core).
//!
//! These encode the paper's algorithmic claims as executable invariants:
//! Graham's 4/3 bound for LPT (§V-B), CDP's optimality within its chunk
//! space and its locality preservation (§V-C), and the CPLX endpoints
//! (X=0 ≡ CDP, X=100 ≡ LPT; §V-D).

use amr_tools::placement::engine::{PlacementCtx, PlacementEngine};
use amr_tools::placement::exact::solve_exact;
use amr_tools::placement::policies::{
    cdp_general, Baseline, Blend, Cdp, ChunkedCdp, Cplx, Lpt, PlacementPolicy, Zonal,
};
use amr_tools::placement::Placement;
use proptest::prelude::*;

fn costs_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..10.0, 1..=max_n)
}

/// Every cost-only policy of the unified `place_into` API, one roster.
fn cost_only_roster() -> Vec<Box<dyn PlacementPolicy>> {
    vec![
        Box::new(Baseline),
        Box::new(Lpt),
        Box::new(Cdp),
        Box::new(ChunkedCdp::new(8)),
        Box::new(Cplx::with_chunking(50, 8)),
        Box::new(Blend::new(0.25)),
        Box::new(Zonal::new(4, Cplx::with_chunking(50, 8))),
    ]
}

fn lower_bound(costs: &[f64], ranks: usize) -> f64 {
    let total: f64 = costs.iter().sum();
    let max = costs.iter().cloned().fold(0.0, f64::max);
    (total / ranks as f64).max(max)
}

proptest! {
    #[test]
    fn every_policy_assigns_every_block(costs in costs_strategy(200), ranks in 1usize..32) {
        let policies = cost_only_roster();
        for p in &policies {
            let placement = p.place(&costs, ranks);
            prop_assert_eq!(placement.num_blocks(), costs.len());
            prop_assert!(placement.as_slice().iter().all(|&r| (r as usize) < ranks));
            // Conservation: per-rank loads sum to total cost.
            let loads: f64 = placement.rank_loads(&costs).iter().sum();
            let total: f64 = costs.iter().sum();
            prop_assert!((loads - total).abs() < 1e-6 * total.max(1.0));
        }
    }

    #[test]
    fn lpt_within_four_thirds_of_optimal(costs in costs_strategy(12), ranks in 2usize..5) {
        let exact = solve_exact(&costs, ranks);
        let lpt = Lpt.place(&costs, ranks).makespan(&costs);
        prop_assert!(lpt <= exact.makespan * 4.0 / 3.0 + 1e-9,
            "LPT {} vs OPT {}", lpt, exact.makespan);
        prop_assert!(lpt + 1e-9 >= exact.makespan);
    }

    #[test]
    fn makespan_never_below_lower_bound(costs in costs_strategy(300), ranks in 1usize..64) {
        let lb = lower_bound(&costs, ranks);
        for p in [&Lpt as &dyn PlacementPolicy, &Cdp, &Baseline] {
            prop_assert!(p.place(&costs, ranks).makespan(&costs) >= lb - 1e-9);
        }
    }

    #[test]
    fn cdp_variants_are_contiguous(costs in costs_strategy(300), ranks in 1usize..64) {
        prop_assert!(Cdp.place(&costs, ranks).is_contiguous());
        prop_assert!(ChunkedCdp::new(16).place(&costs, ranks).is_contiguous());
        prop_assert!(cdp_general(&costs, ranks).is_contiguous());
        prop_assert!(Baseline.place(&costs, ranks).is_contiguous());
    }

    #[test]
    fn cdp_general_is_optimal_contiguous_vs_brute_force(
        costs in costs_strategy(9),
        ranks in 1usize..4,
    ) {
        // Brute force over all contiguous partitions.
        fn brute(costs: &[f64], ranks: usize) -> f64 {
            fn rec(costs: &[f64], start: usize, k: usize, ranks: usize, cur: f64) -> f64 {
                if k == ranks - 1 {
                    let seg: f64 = costs[start..].iter().sum();
                    return cur.max(seg);
                }
                let mut best = f64::INFINITY;
                for end in start..=costs.len() {
                    let seg: f64 = costs[start..end].iter().sum();
                    best = best.min(rec(costs, end, k + 1, ranks, cur.max(seg)));
                }
                best
            }
            rec(costs, 0, 0, ranks, 0.0)
        }
        let dp = cdp_general(&costs, ranks).makespan(&costs);
        let opt = brute(&costs, ranks);
        prop_assert!((dp - opt).abs() < 1e-9, "dp {} vs brute {}", dp, opt);
    }

    #[test]
    fn cdp_never_worse_than_baseline(costs in costs_strategy(300), ranks in 1usize..64) {
        let cdp = Cdp.place(&costs, ranks).makespan(&costs);
        let base = Baseline.place(&costs, ranks).makespan(&costs);
        prop_assert!(cdp <= base + 1e-9);
    }

    #[test]
    fn cplx_zero_is_cdp_and_hundred_matches_lpt(
        costs in costs_strategy(128),
        ranks in 1usize..32,
    ) {
        let cpl0 = Cplx::with_chunking(0, 512).place(&costs, ranks);
        let cdp = Cdp.place(&costs, ranks);
        prop_assert_eq!(cpl0, cdp);

        let cpl100 = Cplx::with_chunking(100, 512).place(&costs, ranks).makespan(&costs);
        let lpt = Lpt.place(&costs, ranks).makespan(&costs);
        prop_assert!((cpl100 - lpt).abs() <= 1e-9, "cpl100 {} vs lpt {}", cpl100, lpt);
    }

    #[test]
    fn cplx_is_deterministic(costs in costs_strategy(128), ranks in 1usize..32, x in 0u32..=100) {
        let a = Cplx::new(x).place(&costs, ranks);
        let b = Cplx::new(x).place(&costs, ranks);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chunked_cdp_close_to_plain(costs in costs_strategy(256), ranks in 2usize..64) {
        let plain = Cdp.place(&costs, ranks).makespan(&costs);
        let chunked = ChunkedCdp::new(8).place(&costs, ranks).makespan(&costs);
        // Chunking is an approximation but must stay within a small factor.
        prop_assert!(chunked <= plain * 2.0 + 1e-9, "chunked {} vs plain {}", chunked, plain);
        prop_assert!(chunked + 1e-9 >= lower_bound(&costs, ranks));
    }

    #[test]
    fn migration_count_bounded_by_selection(
        costs in costs_strategy(256),
        ranks in 4usize..32,
    ) {
        // CPLX only reassigns blocks owned by selected ranks: migration
        // relative to CPL0 is bounded by the number of blocks on selected
        // ranks (cannot exceed total blocks, and is 0 at X=0).
        let base = Cplx::new(0).place(&costs, ranks);
        prop_assert_eq!(base.migration_count(&Cplx::new(0).place(&costs, ranks)), 0);
        let p = Cplx::new(50).place(&costs, ranks);
        prop_assert!(p.migration_count(&base) <= costs.len());
    }

    #[test]
    fn place_into_agrees_with_place(costs in costs_strategy(160), ranks in 1usize..24) {
        // The convenience wrapper and the context-threaded API must be the
        // same computation, with or without scratch attached.
        let engine = PlacementEngine::new();
        for p in &cost_only_roster() {
            let via_place = p.place(&costs, ranks);

            let cold_ctx = PlacementCtx::new(&costs, ranks);
            let mut cold = Placement::default();
            let cold_report = p.place_into(&cold_ctx, &mut cold).unwrap();
            prop_assert_eq!(&cold, &via_place, "{} cold place_into differs", p.name());
            prop_assert!((cold_report.makespan - via_place.makespan(&costs)).abs() < 1e-9);

            let warm_ctx = PlacementCtx::new(&costs, ranks).with_scratch(engine.scratch());
            let mut warm = Placement::default();
            p.place_into(&warm_ctx, &mut warm).unwrap();
            prop_assert_eq!(&warm, &via_place, "{} warm place_into differs", p.name());
        }
    }

    #[test]
    fn rebalance_is_stable_when_costs_are_unchanged(
        costs in costs_strategy(160),
        ranks in 1usize..24,
    ) {
        // Deterministic policies on identical inputs reproduce the same
        // placement, so the engine's migration accounting must report zero
        // moved blocks on a same-costs rebalance.
        for p in &cost_only_roster() {
            let mut engine = PlacementEngine::new();
            engine.rebalance(p.as_ref(), &costs, ranks).unwrap();
            let prev = engine.placement().unwrap().clone();
            let report = engine.rebalance(p.as_ref(), &costs, ranks).unwrap();
            let migration = report.migration.expect("prev placement attached");
            prop_assert_eq!(migration.moved, 0, "{} moved blocks on unchanged costs", p.name());
            prop_assert_eq!(migration.max_rank_flow, 0);
            prop_assert_eq!(engine.placement().unwrap().migration_count(&prev), 0);
        }
    }
}

/// Mesh-aware policies go through the same `place_into` API: attach the mesh
/// to the context and every invariant of the cost-only roster holds.
#[test]
fn mesh_aware_policies_run_through_the_unified_api() {
    use amr_tools::mesh::{Dim, MeshConfig};
    use amr_tools::placement::engine::PlacementError;
    use amr_tools::placement::policies::{GreedyEdgeCut, Rcb};

    let mesh = amr_tools::mesh::AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
    let n = mesh.num_blocks();
    let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
    let ranks = 8;

    let policies: Vec<Box<dyn PlacementPolicy>> =
        vec![Box::new(Rcb), Box::new(GreedyEdgeCut::default())];
    for p in &policies {
        // Without a mesh the context is incomplete: a typed error, no panic.
        let bare = PlacementCtx::new(&costs, ranks);
        let mut out = Placement::default();
        assert!(matches!(
            p.place_into(&bare, &mut out),
            Err(PlacementError::NeedsMesh { .. })
        ));

        let ctx = PlacementCtx::new(&costs, ranks).with_mesh(&mesh);
        let report = p.place_into(&ctx, &mut out).unwrap();
        assert_eq!(out.num_blocks(), n);
        assert!(out.as_slice().iter().all(|&r| (r as usize) < ranks));
        assert_eq!(report.num_blocks, n);
        assert!(report.makespan > 0.0);

        // And through the engine, with migration accounting on repeat.
        let mut engine = PlacementEngine::new();
        engine
            .rebalance_on_mesh(p.as_ref(), &costs, ranks, &mesh)
            .unwrap();
        let again = engine
            .rebalance_on_mesh(p.as_ref(), &costs, ranks, &mesh)
            .unwrap();
        assert_eq!(again.migration.expect("prev attached").moved, 0);
    }
}
