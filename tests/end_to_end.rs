//! End-to-end integration tests: the full telemetry → placement → runtime
//! loop across crates, asserting the paper's qualitative findings at small
//! scale.

use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::{Baseline, Cplx, PlacementPolicy};
use amr_tools::placement::trigger::RebalanceTrigger;
use amr_tools::sim::{FaultConfig, MacroSim, RunReport, SimConfig};
use amr_tools::telemetry::{Phase, Query};
use amr_tools::workloads::{SedovConfig, SedovWorkload};

fn sedov_run(policy: &dyn PlacementPolicy, ranks: usize, steps: u64, seed: u64) -> RunReport {
    let mesh = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.seed = seed;
    cfg.telemetry_sampling = 4;
    MacroSim::new(cfg).run(&mut workload, policy, RebalanceTrigger::OnMeshChange)
}

#[test]
fn cplx_beats_baseline_on_sedov() {
    let base = sedov_run(&Baseline, 64, 300, 9);
    let cpl50 = sedov_run(&Cplx::new(50), 64, 300, 9);
    assert!(
        cpl50.total_ns < base.total_ns * 0.98,
        "cpl50 {} vs baseline {}",
        cpl50.total_ns,
        base.total_ns
    );
    // The gain comes from synchronization, not compute (Finding 2).
    assert!(cpl50.phases.sync_ns < base.phases.sync_ns);
    let compute_drift =
        (cpl50.phases.compute_ns - base.phases.compute_ns).abs() / base.phases.compute_ns;
    assert!(compute_drift < 0.02, "compute drifted {compute_drift}");
}

#[test]
fn locality_monotone_in_x() {
    // Finding 4: remote message share rises monotonically with X.
    let mut prev_remote = 0u64;
    for x in [0u32, 50, 100] {
        let rep = sedov_run(&Cplx::new(x), 64, 150, 11);
        assert!(
            rep.messages.remote >= prev_remote,
            "remote messages fell from {prev_remote} at x={x}"
        );
        prev_remote = rep.messages.remote;
    }
}

#[test]
fn mesh_grows_and_lb_invocations_track_changes() {
    let rep = sedov_run(&Baseline, 64, 300, 5);
    assert!(rep.final_blocks > rep.initial_blocks);
    assert!(rep.lb_invocations >= rep.mesh_change_steps);
    assert!(rep.mesh_change_steps > 0);
    assert!(rep.blocks_migrated > 0);
}

#[test]
fn placement_stays_within_budget_at_small_scale() {
    let rep = sedov_run(&Cplx::new(50), 64, 100, 3);
    // The paper's 50 ms budget is trivially met at 64 ranks.
    assert!(rep.placement_within_budget(50_000_000));
}

#[test]
fn telemetry_phases_cover_runtime() {
    let rep = sedov_run(&Baseline, 32, 100, 1);
    let t = &rep.telemetry;
    for phase in [Phase::Compute, Phase::BoundaryComm, Phase::Synchronization] {
        assert!(Query::new(t).phase(phase).count() > 0, "no {phase} records");
    }
    // Per-rank compute from telemetry matches the report's phase totals
    // (sampled steps only, so compare per-step means).
    let sampled_steps = (0..100).step_by(4).count() as f64;
    let per_step_telemetry =
        Query::new(t).phase(Phase::Compute).total_duration_ns() as f64 / sampled_steps / 32.0;
    let per_step_report = rep.phases.compute_ns / 100.0;
    let ratio = per_step_telemetry / per_step_report;
    assert!(
        (0.8..1.2).contains(&ratio),
        "telemetry/report compute ratio {ratio}"
    );
}

#[test]
fn throttled_run_slower_and_diagnosable_from_telemetry() {
    let mesh = MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1);
    let mut w = SedovWorkload::new(SedovConfig::new(mesh.clone(), 100));
    let mut cfg = SimConfig::tuned(64);
    cfg.faults = FaultConfig::with_throttled_nodes([1]).into();
    cfg.telemetry_sampling = 1;
    let faulty = MacroSim::new(cfg).run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);

    let mut w2 = SedovWorkload::new(SedovConfig::new(mesh, 100));
    let healthy =
        MacroSim::new(SimConfig::tuned(64)).run(&mut w2, &Baseline, RebalanceTrigger::OnMeshChange);
    assert!(faulty.total_ns > 1.5 * healthy.total_ns);

    let per_rank = Query::new(&faulty.telemetry)
        .phase(Phase::Compute)
        .per_rank_secs(64);
    let diag = amr_tools::telemetry::anomaly::detect_throttling(&per_rank, 16, 2.0, 0.75);
    assert_eq!(diag.throttled_nodes, vec![1]);
    assert!(diag.inflation > 3.0);
}

#[test]
fn runs_are_reproducible_given_seed_modulo_wall_clock() {
    // Virtual phases other than redistribution (which charges real
    // wall-clock placement time) are exactly reproducible.
    let a = sedov_run(&Cplx::new(25), 32, 120, 77);
    let b = sedov_run(&Cplx::new(25), 32, 120, 77);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.final_blocks, b.final_blocks);
    assert_eq!(a.lb_invocations, b.lb_invocations);
    assert!((a.phases.compute_ns - b.phases.compute_ns).abs() < 1.0);
    assert!((a.phases.sync_ns - b.phases.sync_ns).abs() / a.phases.sync_ns < 1e-9);
}

#[test]
fn two_dimensional_pipeline_works_end_to_end() {
    // The mesh, policies and simulator are dimension-generic; run a 2D
    // cylindrical Sedov through the whole stack.
    let mesh = MeshConfig::from_cells(Dim::D2, (128, 128, 0), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, 150));
    let mut cfg = SimConfig::tuned(32);
    cfg.telemetry_sampling = 8;
    let base =
        MacroSim::new(cfg.clone()).run(&mut workload, &Baseline, RebalanceTrigger::OnMeshChange);
    assert!(
        base.final_blocks > base.initial_blocks,
        "2D mesh never refined"
    );
    assert!(base.mesh_change_steps > 0);

    let mesh = MeshConfig::from_cells(Dim::D2, (128, 128, 0), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, 150));
    let cplx = MacroSim::new(cfg).run(
        &mut workload,
        &Cplx::new(50),
        RebalanceTrigger::OnMeshChange,
    );
    assert!(
        cplx.total_ns < base.total_ns,
        "2D: cplx {} vs baseline {}",
        cplx.total_ns,
        base.total_ns
    );
}

#[test]
fn micro_and_macro_agree_on_migration_volume() {
    use amr_tools::placement::policies::{Baseline as B2, Lpt, PlacementPolicy as _};
    use amr_tools::sim::{MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
    use amr_tools::workloads::exchange::build_migration_messages;
    let mesh = amr_tools::mesh::AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
    // Aperiodic costs: a periodic pattern can make LPT land exactly on the
    // contiguous baseline (zero migration, nothing to measure).
    let costs: Vec<f64> = (0..mesh.num_blocks())
        .map(|i| 1.0 + ((i * 7) % 13) as f64)
        .collect();
    let old = B2.place(&costs, 16);
    let new = Lpt.place(&costs, 16);
    let messages = build_migration_messages(&mesh, &old, &new);
    let moved = new.migration_count(&old);
    assert_eq!(messages.len(), moved);
    // The micro engine prices the same migration the macro model charges.
    let mut sim = MicroSim::new(
        Topology::paper(16),
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        },
        1,
    );
    let res = sim.run_round(&RoundSpec {
        num_ranks: 16,
        compute_ns: vec![0; 16],
        messages,
        order: TaskOrder::SendsFirst,
    });
    assert_eq!((res.local_msgs + res.remote_msgs) as usize, moved);
    // Micro round latency is within a small factor of the macro estimate
    // (max per-rank volume over fabric bandwidth).
    let block_bytes = 16u64 * 16 * 16 * 5 * 8;
    let mut out = [0u64; 16];
    let mut inb = [0u64; 16];
    for b in 0..old.num_blocks() {
        if old.rank_of(b) != new.rank_of(b) {
            out[old.rank_of(b) as usize] += 1;
            inb[new.rank_of(b) as usize] += 1;
        }
    }
    let max_vol = (0..16).map(|r| out[r].max(inb[r])).max().unwrap() * block_bytes;
    assert!(max_vol > 0, "degenerate instance: no migration happened");
    let macro_ns = max_vol as f64 / 5.0; // fabric bytes/ns
    let ratio = res.round_latency_ns as f64 / macro_ns;
    assert!(
        (0.3..=4.0).contains(&ratio),
        "micro {} vs macro {macro_ns} (ratio {ratio})",
        res.round_latency_ns
    );
}
