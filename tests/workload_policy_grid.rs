//! Cross-workload integration grid: the paper's qualitative findings must
//! hold for every workload the repo ships, not just the Sedov headline run.

use amr_tools::mesh::{Dim, MeshConfig};
use amr_tools::placement::policies::{Baseline, Cplx, PlacementPolicy};
use amr_tools::placement::trigger::RebalanceTrigger;
use amr_tools::sim::{MacroSim, RunReport, SimConfig, Workload};
use amr_tools::workloads::cooling::{CoolingConfig, CoolingWorkload};
use amr_tools::workloads::{InterfaceConfig, InterfaceWorkload, SedovConfig, SedovWorkload};

const RANKS: usize = 64;
const STEPS: u64 = 150;

fn run(workload: &mut dyn Workload, policy: &dyn PlacementPolicy, seed: u64) -> RunReport {
    let mut cfg = SimConfig::tuned(RANKS);
    cfg.seed = seed;
    cfg.telemetry_sampling = 8;
    // Slowly adapting workloads (the interface sheet) can go many steps
    // without a mesh change; an imbalance-aware trigger keeps the placement
    // tracking measured costs (see `ablation_trigger`).
    MacroSim::new(cfg).run(
        workload,
        policy,
        RebalanceTrigger::MeshChangeOrImbalance(1.3),
    )
}

fn mesh() -> MeshConfig {
    MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1)
}

/// Build a fresh workload of each kind.
fn workloads() -> Vec<(&'static str, Box<dyn Workload>)> {
    vec![
        (
            "sedov",
            Box::new(SedovWorkload::new(SedovConfig::new(mesh(), STEPS))),
        ),
        (
            "interface",
            Box::new(InterfaceWorkload::new(InterfaceConfig::new(mesh(), STEPS))),
        ),
        (
            "cooling",
            Box::new(CoolingWorkload::new(CoolingConfig::new(mesh(), STEPS))),
        ),
    ]
}

#[test]
fn cplx_never_loses_badly_on_any_workload() {
    for (name, _) in workloads() {
        let mut base_w = make(name);
        let mut cplx_w = make(name);
        let base = run(base_w.as_mut(), &Baseline, 5);
        let cplx = run(cplx_w.as_mut(), &Cplx::new(50), 5);
        // CPLX must not regress total runtime by more than noise on any
        // workload, and must win where variability exists.
        assert!(
            cplx.total_ns <= base.total_ns * 1.02,
            "{name}: cplx {} vs base {}",
            cplx.total_ns,
            base.total_ns
        );
        if name != "cooling" {
            assert!(
                cplx.total_ns < base.total_ns * 0.99,
                "{name}: no gain on a variable workload"
            );
        }
    }
}

fn make(name: &str) -> Box<dyn Workload> {
    workloads()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, w)| w)
        .unwrap()
}

#[test]
fn compute_work_is_policy_invariant_everywhere() {
    for (name, _) in workloads() {
        let mut a_w = make(name);
        let mut b_w = make(name);
        let a = run(a_w.as_mut(), &Baseline, 7);
        let b = run(b_w.as_mut(), &Cplx::new(100), 7);
        let drift = (a.phases.compute_ns - b.phases.compute_ns).abs() / a.phases.compute_ns;
        assert!(drift < 0.03, "{name}: compute drifted {drift}");
    }
}

#[test]
fn adaptive_workloads_trigger_redistribution_static_ones_do_not() {
    for (name, _) in workloads() {
        let mut w = make(name);
        let rep = run(w.as_mut(), &Cplx::new(25), 9);
        match name {
            "cooling" => assert_eq!(rep.mesh_change_steps, 0, "{name} adapted unexpectedly"),
            _ => assert!(rep.mesh_change_steps > 0, "{name} never adapted"),
        }
    }
}

#[test]
fn telemetry_volume_scales_with_sampling() {
    let mut dense_w = make("sedov");
    let mut sparse_w = make("sedov");
    let mut cfg_dense = SimConfig::tuned(RANKS);
    cfg_dense.telemetry_sampling = 1;
    let mut cfg_sparse = SimConfig::tuned(RANKS);
    cfg_sparse.telemetry_sampling = 16;
    let dense =
        MacroSim::new(cfg_dense).run(dense_w.as_mut(), &Baseline, RebalanceTrigger::OnMeshChange);
    let sparse =
        MacroSim::new(cfg_sparse).run(sparse_w.as_mut(), &Baseline, RebalanceTrigger::OnMeshChange);
    // Sampling-1 vs sampling-16 should differ by roughly 16x in rows while
    // leaving virtual results identical.
    let ratio = dense.telemetry.len() as f64 / sparse.telemetry.len() as f64;
    assert!((10.0..=22.0).contains(&ratio), "sampling ratio {ratio}");
    assert!((dense.phases.sync_ns - sparse.phases.sync_ns).abs() / dense.phases.sync_ns < 1e-9);
}
