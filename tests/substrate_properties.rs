//! Property tests for the newer substrate features: Hilbert keys,
//! checkpointing, zonal placement and traffic matrices.

use amr_tools::mesh::{checkpoint, hilbert_index, AmrMesh, Dim, MeshConfig, RefineTag};
use amr_tools::placement::policies::{Cplx, Lpt, PlacementPolicy, Zonal};
use amr_tools::placement::TrafficMatrix;
use proptest::prelude::*;

proptest! {
    #[test]
    fn hilbert_indices_are_a_bijection_2d(bits in 1u32..6) {
        let side = 1u32 << bits;
        let mut seen = vec![false; (side * side) as usize];
        for y in 0..side {
            for x in 0..side {
                let h = hilbert_index(&[x, y], bits) as usize;
                prop_assert!(h < seen.len());
                prop_assert!(!seen[h], "collision at ({x},{y})");
                seen[h] = true;
            }
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_face_neighbors_3d(bits in 1u32..4) {
        let side = 1u32 << bits;
        let mut cells: Vec<(u64, (u32, u32, u32))> = Vec::new();
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    cells.push((hilbert_index(&[x, y, z], bits), (x, y, z)));
                }
            }
        }
        cells.sort();
        for w in cells.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            let d = a.0.abs_diff(b.0) + a.1.abs_diff(b.1) + a.2.abs_diff(b.2);
            prop_assert_eq!(d, 1);
        }
    }

    #[test]
    fn checkpoint_roundtrips_arbitrary_meshes(salt in 0u64..500, steps in 1usize..4) {
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (48, 48, 48), 2));
        for step in 0..steps {
            let key = salt.wrapping_add(step as u64);
            mesh.adapt(|b| {
                match (b.id.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(key) % 6 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
        }
        let restored = checkpoint::restore(&checkpoint::save(&mesh)).unwrap();
        prop_assert_eq!(restored.num_blocks(), mesh.num_blocks());
        for (a, b) in mesh.blocks().iter().zip(restored.blocks()) {
            prop_assert_eq!(a.octant, b.octant);
        }
    }

    #[test]
    fn zonal_wrapping_preserves_validity(
        n_per_rank in 1usize..4,
        ranks_log2 in 3u32..8,
        zones in 1usize..9,
    ) {
        let ranks = 1usize << ranks_log2;
        let n = ranks * n_per_rank;
        let costs: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let p = Zonal::new(zones, Cplx::new(50)).place(&costs, ranks);
        prop_assert_eq!(p.num_blocks(), n);
        prop_assert!(p.as_slice().iter().all(|&r| (r as usize) < ranks));
        let total: f64 = p.rank_loads(&costs).iter().sum();
        prop_assert!((total - costs.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn traffic_matrix_conserves_volume(ranks in 2usize..32, seed in 0u64..100) {
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
        mesh.adapt(|b| {
            if (b.id.index() as u64).wrapping_mul(seed + 3).is_multiple_of(11) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let graph = mesh.neighbor_graph();
        let spec = mesh.config().spec;
        let costs = vec![1.0; mesh.num_blocks()];
        let total_all = {
            // Total relation volume is placement-invariant.
            let p = Lpt.place(&costs, ranks);
            let m = TrafficMatrix::build(&p, &graph, &spec, Dim::D3);
            m.total_bytes() + m.diagonal_bytes()
        };
        for policy_ranks in [1usize, ranks] {
            let p = Lpt.place(&costs, policy_ranks);
            let m = TrafficMatrix::build(&p, &graph, &spec, Dim::D3);
            prop_assert_eq!(m.total_bytes() + m.diagonal_bytes(), total_all);
        }
    }
}

#[test]
fn periodic_and_bounded_meshes_differ_only_at_the_boundary() {
    let bounded = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
    let periodic = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1).with_periodic());
    let gb = bounded.neighbor_graph();
    let gp = periodic.neighbor_graph();
    // Periodic adds exactly the wrap relations: every block reaches 26.
    assert!(gp.total_relations() > gb.total_relations());
    assert_eq!(gp.total_relations(), 64 * 26);
    gp.check_symmetry().unwrap();
}
