//! Property-based tests for the simulator (amr-sim): monotonicity and
//! conservation laws that must hold regardless of workload or placement.

use amr_tools::sim::collectives::{barrier, tree_depth};
use amr_tools::sim::{Message, MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
use proptest::prelude::*;

fn quiet_net() -> NetworkConfig {
    NetworkConfig {
        ack_loss_prob: 0.0,
        ..NetworkConfig::tuned()
    }
}

fn round_strategy(max_ranks: usize) -> impl Strategy<Value = RoundSpec> {
    (2usize..=max_ranks)
        .prop_flat_map(|ranks| {
            let msgs =
                prop::collection::vec((0..ranks as u32, 0..ranks as u32, 1u64..100_000), 0..64);
            let compute = prop::collection::vec(0u64..2_000_000, ranks..=ranks);
            (Just(ranks), compute, msgs)
        })
        .prop_map(|(ranks, compute_ns, raw)| RoundSpec {
            num_ranks: ranks,
            compute_ns,
            messages: raw
                .into_iter()
                .map(|(src, dst, bytes)| Message { src, dst, bytes })
                .collect(),
            order: TaskOrder::SendsFirst,
        })
}

proptest! {
    #[test]
    fn finish_is_wait_plus_local(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 1);
        let res = sim.run_round(&spec);
        for r in 0..spec.num_ranks {
            prop_assert_eq!(res.finish_ns[r], res.local_finish_ns[r] + res.wait_ns[r]);
        }
    }

    #[test]
    fn round_latency_bounds(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 2);
        let res = sim.run_round(&spec);
        let max_finish = *res.finish_ns.iter().max().unwrap();
        // Barrier completion is after the straggler, including tree hops.
        prop_assert!(res.round_latency_ns >= max_finish);
        let slack = tree_depth(spec.num_ranks) as u64 * 1_000_000;
        prop_assert!(res.round_latency_ns <= max_finish + slack);
        // And no earlier than the slowest compute.
        let max_compute = *spec.compute_ns.iter().max().unwrap();
        prop_assert!(res.round_latency_ns >= max_compute);
    }

    #[test]
    fn adding_a_message_never_speeds_up_the_round(
        spec in round_strategy(16),
        src in 0u32..16,
        dst in 0u32..16,
        bytes in 1u64..50_000,
    ) {
        let src = src % spec.num_ranks as u32;
        let dst = dst % spec.num_ranks as u32;
        let mut sim_a = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 3);
        let base = sim_a.run_round(&spec);
        let mut bigger = spec.clone();
        bigger.messages.push(Message { src, dst, bytes });
        let mut sim_b = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 3);
        let more = sim_b.run_round(&bigger);
        prop_assert!(more.round_latency_ns >= base.round_latency_ns);
    }

    #[test]
    fn sends_first_never_loses_to_compute_first(spec in round_strategy(24)) {
        let mut cf = spec.clone();
        cf.order = TaskOrder::ComputeFirst;
        let mut sim_a = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 4);
        let mut sim_b = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 4);
        let sf = sim_a.run_round(&spec);
        let cfr = sim_b.run_round(&cf);
        prop_assert!(sf.round_latency_ns <= cfr.round_latency_ns,
            "sends-first {} > compute-first {}", sf.round_latency_ns, cfr.round_latency_ns);
    }

    #[test]
    fn message_class_counts_partition(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::new(spec.num_ranks, 4), quiet_net(), 5);
        let res = sim.run_round(&spec);
        prop_assert_eq!(
            res.intra_msgs + res.local_msgs + res.remote_msgs,
            spec.messages.len() as u64
        );
    }

    #[test]
    fn barrier_waits_are_consistent(arrivals in prop::collection::vec(0u64..1_000_000, 1..128),
                                    hop in 0u64..10_000) {
        let res = barrier(&arrivals, hop);
        let last = *arrivals.iter().max().unwrap();
        prop_assert_eq!(res.completion_ns, last + tree_depth(arrivals.len()) as u64 * hop);
        for (a, w) in arrivals.iter().zip(&res.wait_ns) {
            prop_assert_eq!(a + w, res.completion_ns);
        }
    }
}
