//! Property-based tests for the simulator (amr-sim): monotonicity and
//! conservation laws that must hold regardless of workload or placement.

use amr_tools::sim::collectives::{barrier, tree_depth};
use amr_tools::sim::{
    FaultConfig, FaultEpisode, FaultResponse, FaultTimeline, MacroSim, Message, MicroSim,
    NetworkConfig, RoundSpec, RunReport, SimConfig, TaskOrder, Topology,
};
use amr_tools::telemetry::anomaly::{OnlineDetectorConfig, OnlineThrottleDetector};
use proptest::prelude::*;

fn quiet_net() -> NetworkConfig {
    NetworkConfig {
        ack_loss_prob: 0.0,
        ..NetworkConfig::tuned()
    }
}

fn round_strategy(max_ranks: usize) -> impl Strategy<Value = RoundSpec> {
    (2usize..=max_ranks)
        .prop_flat_map(|ranks| {
            let msgs =
                prop::collection::vec((0..ranks as u32, 0..ranks as u32, 1u64..100_000), 0..64);
            let compute = prop::collection::vec(0u64..2_000_000, ranks..=ranks);
            (Just(ranks), compute, msgs)
        })
        .prop_map(|(ranks, compute_ns, raw)| RoundSpec {
            num_ranks: ranks,
            compute_ns,
            messages: raw
                .into_iter()
                .map(|(src, dst, bytes)| Message { src, dst, bytes })
                .collect(),
            order: TaskOrder::SendsFirst,
        })
}

proptest! {
    #[test]
    fn finish_is_wait_plus_local(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 1);
        let res = sim.run_round(&spec);
        for r in 0..spec.num_ranks {
            prop_assert_eq!(res.finish_ns[r], res.local_finish_ns[r] + res.wait_ns[r]);
        }
    }

    #[test]
    fn round_latency_bounds(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 2);
        let res = sim.run_round(&spec);
        let max_finish = *res.finish_ns.iter().max().unwrap();
        // Barrier completion is after the straggler, including tree hops.
        prop_assert!(res.round_latency_ns >= max_finish);
        let slack = tree_depth(spec.num_ranks) as u64 * 1_000_000;
        prop_assert!(res.round_latency_ns <= max_finish + slack);
        // And no earlier than the slowest compute.
        let max_compute = *spec.compute_ns.iter().max().unwrap();
        prop_assert!(res.round_latency_ns >= max_compute);
    }

    #[test]
    fn adding_a_message_never_speeds_up_the_round(
        spec in round_strategy(16),
        src in 0u32..16,
        dst in 0u32..16,
        bytes in 1u64..50_000,
    ) {
        let src = src % spec.num_ranks as u32;
        let dst = dst % spec.num_ranks as u32;
        let mut sim_a = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 3);
        let base = sim_a.run_round(&spec);
        let mut bigger = spec.clone();
        bigger.messages.push(Message { src, dst, bytes });
        let mut sim_b = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 3);
        let more = sim_b.run_round(&bigger);
        prop_assert!(more.round_latency_ns >= base.round_latency_ns);
    }

    #[test]
    fn sends_first_never_loses_to_compute_first(spec in round_strategy(24)) {
        let mut cf = spec.clone();
        cf.order = TaskOrder::ComputeFirst;
        let mut sim_a = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 4);
        let mut sim_b = MicroSim::new(Topology::paper(spec.num_ranks), quiet_net(), 4);
        let sf = sim_a.run_round(&spec);
        let cfr = sim_b.run_round(&cf);
        prop_assert!(sf.round_latency_ns <= cfr.round_latency_ns,
            "sends-first {} > compute-first {}", sf.round_latency_ns, cfr.round_latency_ns);
    }

    #[test]
    fn message_class_counts_partition(spec in round_strategy(32)) {
        let mut sim = MicroSim::new(Topology::new(spec.num_ranks, 4), quiet_net(), 5);
        let res = sim.run_round(&spec);
        prop_assert_eq!(
            res.intra_msgs + res.local_msgs + res.remote_msgs,
            spec.messages.len() as u64
        );
    }

    #[test]
    fn barrier_waits_are_consistent(arrivals in prop::collection::vec(0u64..1_000_000, 1..128),
                                    hop in 0u64..10_000) {
        let res = barrier(&arrivals, hop);
        let last = *arrivals.iter().max().unwrap();
        // Completion still includes the tree term...
        prop_assert_eq!(res.completion_ns, last + tree_depth(arrivals.len()) as u64 * hop);
        // ...but wait is idle time before the straggler arrives: the tree
        // hops are every rank's own work, charged to no one's wait.
        for (a, w) in arrivals.iter().zip(&res.wait_ns) {
            prop_assert_eq!(a + w, last);
        }
        // The straggler itself never waits.
        let argmax = arrivals.iter().position(|&a| a == last).unwrap();
        prop_assert_eq!(res.wait_ns[argmax], 0);
        prop_assert_eq!(res.total_wait_ns(),
            arrivals.iter().map(|&a| last - a).sum::<u64>());
    }
}

// --- Credit/congestion fabric and ACK-loss determinism ----------------------

proptest! {
    /// The credit-window stall function is saturating and monotone: more
    /// outstanding bytes on a link never *reduces* the stall, and a wider
    /// window never *increases* it.
    #[test]
    fn congestion_stall_is_monotone(
        window in 1u64..(1 << 30),
        backoff in 0.0f64..8.0,
        a in 0u64..(1 << 40),
        b in 0u64..(1 << 40),
    ) {
        let net = NetworkConfig {
            fabric_credit_bytes: window,
            congestion_backoff: backoff,
            ..NetworkConfig::tuned()
        };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(net.congestion_ns(lo) <= net.congestion_ns(hi));
        prop_assert_eq!(net.congestion_ns(window.min(lo)), 0);
        // Widening the window can only shed stalls.
        let wider = NetworkConfig {
            fabric_credit_bytes: window.saturating_mul(2),
            ..net
        };
        prop_assert!(wider.congestion_ns(hi) <= net.congestion_ns(hi));
    }

    /// Under a congested fabric, adding a message (more outstanding bytes on
    /// some link) never speeds the round up — the microsim analogue of the
    /// macro credit-window ordering.
    #[test]
    fn congested_round_never_speeds_up_with_more_traffic(
        spec in round_strategy(16),
        src in 0u32..16,
        dst in 0u32..16,
        bytes in 1u64..500_000,
    ) {
        let net = NetworkConfig {
            fabric_credit_bytes: 64 << 10,
            congestion_backoff: 2.0,
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        };
        let src = src % spec.num_ranks as u32;
        let dst = dst % spec.num_ranks as u32;
        let base = MicroSim::new(Topology::paper(spec.num_ranks), net, 7).run_round(&spec);
        let mut bigger = spec.clone();
        bigger.messages.push(Message { src, dst, bytes });
        let more = MicroSim::new(Topology::paper(spec.num_ranks), net, 7).run_round(&bigger);
        prop_assert!(more.round_latency_ns >= base.round_latency_ns);
    }

    /// The tuned stack never loses to the untuned one on identical traffic
    /// and identical randomness: a bigger shm queue and the drain-queue
    /// mitigation can only remove penalties.
    #[test]
    fn tuned_network_never_loses_to_untuned(
        spec in round_strategy(24),
        seed in 0u64..1_000,
    ) {
        let topo = Topology::new(spec.num_ranks, 2);
        let tuned = MicroSim::new(topo, NetworkConfig::tuned(), seed).run_round(&spec);
        let untuned = MicroSim::new(topo, NetworkConfig::untuned(), seed).run_round(&spec);
        prop_assert!(
            tuned.round_latency_ns <= untuned.round_latency_ns,
            "tuned {} > untuned {}", tuned.round_latency_ns, untuned.round_latency_ns
        );
        // Same seed, same message stream: the recovery draw fires for the
        // same sends whether or not the mitigation hides them.
        prop_assert_eq!(tuned.ack_stalls, untuned.ack_stalls);
    }

    /// The ACK-loss recovery path consumes exactly one RNG draw per remote
    /// message, *before* the drain-queue branch: mitigated and unmitigated
    /// runs see identical fault streams for any traffic pattern, probability
    /// and seed. (The mitigation changes how much a stall hurts — never
    /// which sends stall.)
    #[test]
    fn ack_recovery_draws_are_drain_queue_invariant(
        spec in round_strategy(24),
        prob in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let raw = NetworkConfig {
            ack_loss_prob: prob,
            drain_queue: false,
            ..NetworkConfig::tuned()
        };
        let mitigated = NetworkConfig { drain_queue: true, ..raw };
        let topo = Topology::new(spec.num_ranks, 2);
        let a = MicroSim::new(topo, raw, seed).run_round(&spec);
        let b = MicroSim::new(topo, mitigated, seed).run_round(&spec);
        prop_assert_eq!(a.ack_stalls, b.ack_stalls);
        prop_assert!(b.round_latency_ns <= a.round_latency_ns);
    }
}

// --- Closed fault loop -----------------------------------------------------

/// One short Sedov run with the given timeline and response. When `trace` is
/// supplied the simulator (and its placement engine) publish into it.
fn fault_run_traced(
    ranks: usize,
    steps: u64,
    seed: u64,
    faults: FaultTimeline,
    response: FaultResponse,
    trace: Option<amr_tools::telemetry::TraceHandle>,
) -> RunReport {
    use amr_tools::mesh::{Dim, MeshConfig};
    use amr_tools::placement::policies::Lpt;
    use amr_tools::placement::trigger::RebalanceTrigger;
    use amr_tools::workloads::{SedovConfig, SedovWorkload};
    let mesh = MeshConfig::from_cells(Dim::D3, (48, 48, 48), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.seed = seed;
    cfg.telemetry_sampling = 4;
    cfg.faults = faults;
    cfg.fault_response = response;
    let mut sim = MacroSim::new(cfg);
    sim.set_trace(trace);
    sim.run(&mut workload, &Lpt, RebalanceTrigger::OnMeshChange)
}

/// Healthy Sedov run with the mesh topology partitioned into `num_shards`
/// SFC shards (0 = the flat resident-graph path).
fn sharded_run(ranks: usize, steps: u64, seed: u64, num_shards: usize) -> RunReport {
    use amr_tools::mesh::{Dim, MeshConfig};
    use amr_tools::placement::policies::Lpt;
    use amr_tools::placement::trigger::RebalanceTrigger;
    use amr_tools::workloads::{SedovConfig, SedovWorkload};
    let mesh = MeshConfig::from_cells(Dim::D3, (48, 48, 48), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.seed = seed;
    cfg.telemetry_sampling = 4;
    cfg.num_shards = num_shards;
    let mut sim = MacroSim::new(cfg);
    sim.run(&mut workload, &Lpt, RebalanceTrigger::OnMeshChange)
}

/// Sedov run with the full multi-core surface dialed in: `threads` worker
/// threads (1 = the untouched serial path), `num_shards` SFC shards, a
/// random 2D/3D mesh, and a fault timeline. Everything the parallel kernels
/// touch — epoch fill, compute scatter, ready/finish, shard rebuilds — is
/// exercised in one run.
#[allow(clippy::too_many_arguments)]
fn parallel_run(
    ranks: usize,
    steps: u64,
    seed: u64,
    dim2: bool,
    num_shards: usize,
    threads: usize,
    faults: FaultTimeline,
    response: FaultResponse,
) -> RunReport {
    use amr_tools::mesh::{Dim, MeshConfig};
    use amr_tools::placement::policies::Lpt;
    use amr_tools::placement::trigger::RebalanceTrigger;
    use amr_tools::workloads::{SedovConfig, SedovWorkload};
    let mesh = if dim2 {
        MeshConfig::from_cells(Dim::D2, (128, 128, 1), 1)
    } else {
        MeshConfig::from_cells(Dim::D3, (48, 48, 48), 1)
    };
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.seed = seed;
    cfg.telemetry_sampling = 4;
    cfg.num_shards = num_shards;
    cfg.threads = threads;
    cfg.faults = faults;
    cfg.fault_response = response;
    let mut sim = MacroSim::new(cfg);
    sim.run(&mut workload, &Lpt, RebalanceTrigger::OnMeshChange)
}

/// Untraced convenience wrapper over [`fault_run_traced`].
fn fault_run(
    ranks: usize,
    steps: u64,
    seed: u64,
    faults: FaultTimeline,
    response: FaultResponse,
) -> RunReport {
    fault_run_traced(ranks, steps, seed, faults, response, None)
}

/// Deterministic splitmix64 step, for synthetic OS jitter.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-rank compute signal: ~1 ms with bounded jitter, times `factor` on the
/// throttled node's ranks when `throttled` is active.
fn synth_signal(
    out: &mut [f64],
    ranks_per_node: usize,
    throttled: Option<(usize, f64)>,
    jitter: f64,
    rng: &mut u64,
) {
    for (rank, slot) in out.iter_mut().enumerate() {
        let u = (mix(rng) >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let mut v = 1.0e6 * (1.0 + jitter * (2.0 * u - 1.0));
        if let Some((node, factor)) = throttled {
            if rank / ranks_per_node == node {
                v *= factor;
            }
        }
        *slot = v;
    }
}

proptest! {
    /// The sharded data path is an exact re-expression of the flat one:
    /// shard-local CSR rows keep global block ids and tile the SFC index
    /// space contiguously, so every per-rank float accumulates in the same
    /// order and the virtual phase breakdown is bit-identical at ANY shard
    /// count — sharding only adds the halo-metadata charge to
    /// redistribution, and that charge is exactly zero at one shard.
    #[test]
    fn sharded_virtual_phases_are_bitwise_flat(
        seed in 0u64..200,
        steps in 8u64..14,
    ) {
        let ranks = 16usize;
        let flat = sharded_run(ranks, steps, seed, 0);
        for shards in [1usize, 8] {
            let rep = sharded_run(ranks, steps, seed, shards);
            prop_assert_eq!(rep.num_shards, shards);
            prop_assert_eq!(rep.phases.compute_ns.to_bits(), flat.phases.compute_ns.to_bits());
            prop_assert_eq!(rep.phases.comm_ns.to_bits(), flat.phases.comm_ns.to_bits());
            prop_assert_eq!(rep.phases.sync_ns.to_bits(), flat.phases.sync_ns.to_bits());
            prop_assert_eq!(&rep.messages, &flat.messages);
            prop_assert_eq!(rep.final_blocks, flat.final_blocks);
            prop_assert_eq!(rep.lb_invocations, flat.lb_invocations);
            prop_assert_eq!(rep.mesh_change_steps, flat.mesh_change_steps);
            if shards == 1 {
                // One shard has no boundaries: empty halo, zero charge.
                prop_assert_eq!(rep.final_halo_blocks, 0);
                prop_assert_eq!(rep.halo_exchange_ns.to_bits(), 0.0f64.to_bits());
            } else if rep.mesh_change_steps > 0 && rep.final_halo_blocks > 0 {
                // Real shard boundaries on an adapting mesh pay for their
                // ghost-metadata republication.
                prop_assert!(rep.halo_exchange_ns > 0.0);
            }
        }
    }

    /// The multi-core tentpole's determinism proof: a run on real worker
    /// threads must reproduce the serial oracle's virtual time **bit for
    /// bit** at any thread count. Every parallel kernel follows the
    /// slot-ownership rule (each per-rank slot has exactly one writing task,
    /// accumulating in the serial loop's order), so f64 non-associativity
    /// never gets a chance to bite — across random 2D/3D adapt sequences,
    /// random fault timelines (throttle + NIC degradation, reweight response
    /// armed), and both graph paths. Redistribution/total are excluded as
    /// everywhere else: they charge real placement wall-clock.
    #[test]
    fn parallel_runs_are_bitwise_identical_to_serial(
        seed in 0u64..500,
        steps in 8u64..14,
        dim2 in any::<bool>(),
        shards in prop_oneof![Just(0usize), 2usize..5],
        onset in 2u64..6,
        len in 2u64..8,
        factor in 2.0f64..5.0,
        nic in prop_oneof![Just(1.0f64), 0.4f64..0.9],
    ) {
        let ranks = 16usize;
        let mut episode = FaultEpisode::throttle(onset, onset + len, [1], factor);
        if nic < 1.0 {
            episode = episode.with_nic_degradation(nic);
        }
        let timeline = FaultTimeline::with_episode(episode);
        let base = parallel_run(
            ranks, steps, seed, dim2, shards, 1, timeline.clone(), FaultResponse::Reweight);
        for threads in [2usize, 4] {
            let rep = parallel_run(
                ranks, steps, seed, dim2, shards, threads, timeline.clone(),
                FaultResponse::Reweight);
            prop_assert_eq!(rep.phases.compute_ns.to_bits(), base.phases.compute_ns.to_bits(),
                "compute diverged at {} threads", threads);
            prop_assert_eq!(rep.phases.comm_ns.to_bits(), base.phases.comm_ns.to_bits(),
                "comm diverged at {} threads", threads);
            prop_assert_eq!(rep.phases.sync_ns.to_bits(), base.phases.sync_ns.to_bits(),
                "sync diverged at {} threads", threads);
            prop_assert_eq!(rep.halo_exchange_ns.to_bits(), base.halo_exchange_ns.to_bits());
            prop_assert_eq!(&rep.messages, &base.messages);
            prop_assert_eq!(rep.lb_invocations, base.lb_invocations);
            prop_assert_eq!(rep.mesh_change_steps, base.mesh_change_steps);
            prop_assert_eq!(rep.blocks_migrated, base.blocks_migrated);
            prop_assert_eq!(rep.final_blocks, base.final_blocks);
            prop_assert_eq!(rep.final_halo_blocks, base.final_halo_blocks);
            prop_assert_eq!(rep.capacity_updates, base.capacity_updates);
        }
    }

    /// An empty `FaultTimeline` — and the detector armed over it — must
    /// reproduce the fault-oblivious run's virtual phases bit-for-bit.
    /// Redistribution is excluded: it charges real placement wall-clock
    /// (see `runs_are_reproducible_given_seed_modulo_wall_clock`).
    #[test]
    fn zero_fault_runs_are_bitwise_unchanged(
        seed in 0u64..1_000,
        steps in 12u64..24,
    ) {
        let ranks = if seed % 2 == 0 { 16usize } else { 32 };
        let base = fault_run(ranks, steps, seed, FaultTimeline::healthy(), FaultResponse::Oblivious);
        // Static-config conversion path: same healthy fault model.
        let via_config = fault_run(ranks, steps, seed, FaultConfig::default().into(), FaultResponse::Oblivious);
        // Detector armed, capacity reweighting enabled — nothing ever flags,
        // so the response machinery must be a perfect no-op.
        let armed = fault_run(ranks, steps, seed, FaultTimeline::healthy(), FaultResponse::Reweight);
        for rep in [&via_config, &armed] {
            prop_assert_eq!(rep.phases.compute_ns.to_bits(), base.phases.compute_ns.to_bits());
            prop_assert_eq!(rep.phases.comm_ns.to_bits(), base.phases.comm_ns.to_bits());
            prop_assert_eq!(rep.phases.sync_ns.to_bits(), base.phases.sync_ns.to_bits());
            prop_assert_eq!(&rep.messages, &base.messages);
            prop_assert_eq!(rep.final_blocks, base.final_blocks);
            prop_assert_eq!(rep.lb_invocations, base.lb_invocations);
        }
        prop_assert_eq!(armed.capacity_updates, 0);
        prop_assert_eq!(armed.nodes_pruned, 0);
    }

    /// Tracing must observe, never perturb: a traced run — spans, counters
    /// and gauges flowing into a live `TraceHandle`, through a mid-run fault
    /// episode with the reweight response active — reproduces the untraced
    /// run's simulated virtual time bit for bit. (Redistribution is excluded
    /// for the same reason as in `zero_fault_runs_are_bitwise_unchanged`:
    /// it charges real placement wall-clock.)
    #[test]
    fn traced_runs_are_bitwise_identical_in_virtual_time(
        seed in 0u64..1_000,
        steps in 12u64..24,
    ) {
        use amr_tools::telemetry::trace::Counter as TraceCounter;
        use amr_tools::telemetry::TraceHandle;
        let ranks = if seed % 2 == 0 { 16usize } else { 32 };
        let episode = FaultEpisode::throttle(4, 12, [1], 4.0);
        let timeline = FaultTimeline::with_episode(episode);
        let base = fault_run(ranks, steps, seed, timeline.clone(), FaultResponse::Reweight);
        let handle = TraceHandle::new(4096);
        let traced = fault_run_traced(
            ranks, steps, seed, timeline, FaultResponse::Reweight, Some(handle.clone()));
        prop_assert_eq!(traced.phases.compute_ns.to_bits(), base.phases.compute_ns.to_bits());
        prop_assert_eq!(traced.phases.comm_ns.to_bits(), base.phases.comm_ns.to_bits());
        prop_assert_eq!(traced.phases.sync_ns.to_bits(), base.phases.sync_ns.to_bits());
        prop_assert_eq!(&traced.messages, &base.messages);
        prop_assert_eq!(traced.final_blocks, base.final_blocks);
        prop_assert_eq!(traced.lb_invocations, base.lb_invocations);
        prop_assert_eq!(traced.capacity_updates, base.capacity_updates);
        // And the trace really observed the run: per-step spans landed and
        // the counters line up with the report.
        prop_assert!(!handle.sink.is_empty());
        prop_assert_eq!(handle.metrics.counter(TraceCounter::Steps), steps);
        prop_assert_eq!(handle.metrics.counter(TraceCounter::Collectives), steps);
        prop_assert_eq!(
            handle.metrics.counter(TraceCounter::Rebalances), traced.lb_invocations + 1);
    }

    /// A single throttle episode is flagged — exactly the throttled node,
    /// within the detector's window + debounce — and jitter alone never
    /// trips the detector, no matter the seed.
    #[test]
    fn online_detector_flags_episode_nodes_and_ignores_jitter(
        seed in 0u64..1_000_000,
        num_nodes in 3usize..6,
        node in 0usize..6,
        factor in 3.0f64..6.0,
        jitter in 0.0f64..0.10,
        onset in 5usize..15,
    ) {
        let node = node % num_nodes;
        let ranks_per_node = 16;
        let r = num_nodes * ranks_per_node;
        let cfg = OnlineDetectorConfig::default();
        let episode = FaultEpisode::throttle(onset as u64, u64::MAX, [node], factor);
        let timeline = FaultTimeline::with_episode(episode);
        let budget = onset + cfg.window + cfg.debounce + 2; // must flag by here
        let mut det = OnlineThrottleDetector::new(r, ranks_per_node, cfg);
        let mut signal = vec![0.0f64; r];
        let mut active_nodes = Vec::new();
        let mut rng = seed ^ 0xA5A5_A5A5;
        for step in 0..budget {
            timeline.throttled_nodes_at(step as u64, &mut active_nodes);
            let active = active_nodes.first().map(|&n| (n, factor));
            prop_assert_eq!(active.is_some(), step >= onset);
            synth_signal(&mut signal, ranks_per_node, active, jitter, &mut rng);
            det.observe(&signal);
            if step < onset {
                prop_assert!(!det.any_flagged(), "flagged before the episode began");
            }
        }
        prop_assert_eq!(det.flagged_nodes(), vec![node]);

        // Jitter-only control: same seeds, no episode, no flags ever.
        let mut det = OnlineThrottleDetector::new(r, ranks_per_node, OnlineDetectorConfig::default());
        let mut rng = seed ^ 0xA5A5_A5A5;
        for _ in 0..4 * budget {
            synth_signal(&mut signal, ranks_per_node, None, jitter, &mut rng);
            det.observe(&signal);
            prop_assert!(!det.any_flagged(), "OS jitter alone tripped the detector");
        }
    }
}

// --- Observed exchange-byte ledger ------------------------------------------

/// Sedov run with the exchange-byte ledger dialed in: `observe` arms the
/// ledger, `policy_ml` picks the multilevel partitioner (which consumes the
/// observed weights) vs LPT (which ignores them), `threads` sizes the
/// simulator pool. A periodic trigger guarantees repartitions that consume
/// mid-run observations even on steps where the mesh holds still.
fn ledger_run(
    ranks: usize,
    steps: u64,
    seed: u64,
    threads: usize,
    observe: bool,
    policy_ml: bool,
) -> RunReport {
    use amr_tools::mesh::{Dim, MeshConfig};
    use amr_tools::placement::policies::{Lpt, Multilevel};
    use amr_tools::placement::trigger::RebalanceTrigger;
    use amr_tools::workloads::{SedovConfig, SedovWorkload};
    let mesh = MeshConfig::from_cells(Dim::D3, (48, 48, 48), 1);
    let mut workload = SedovWorkload::new(SedovConfig::new(mesh, steps));
    let mut cfg = SimConfig::tuned(ranks);
    cfg.seed = seed;
    cfg.telemetry_sampling = 4;
    cfg.observe_exchange_bytes = observe;
    cfg.threads = threads;
    let mut sim = MacroSim::new(cfg);
    if policy_ml {
        let ml = Multilevel::default();
        sim.run(&mut workload, &ml, RebalanceTrigger::Periodic(3))
    } else {
        sim.run(&mut workload, &Lpt, RebalanceTrigger::Periodic(3))
    }
}

proptest! {
    /// The ledger only *reads* simulation state: arming it under a policy
    /// that ignores edge weights leaves the entire virtual timeline — phase
    /// breakdown, total, message counts — bitwise identical.
    #[test]
    fn ledger_is_invisible_to_weight_blind_policies(
        seed in 0u64..300,
        steps in 8u64..14,
    ) {
        let off = ledger_run(16, steps, seed, 1, false, false);
        let on = ledger_run(16, steps, seed, 1, true, false);
        // Compare the deterministic virtual phases (total_ns folds in the
        // *host* wall-clock of placement computation, which no two runs
        // share — same exclusion as the sharded bit-identity test above).
        prop_assert_eq!(off.phases.compute_ns.to_bits(), on.phases.compute_ns.to_bits());
        prop_assert_eq!(off.phases.comm_ns.to_bits(), on.phases.comm_ns.to_bits());
        prop_assert_eq!(off.phases.sync_ns.to_bits(), on.phases.sync_ns.to_bits());
        prop_assert_eq!(&off.messages, &on.messages);
        prop_assert_eq!(off.blocks_migrated, on.blocks_migrated);
        prop_assert_eq!(off.lb_invocations, on.lb_invocations);
    }

    /// Ledger-fed runs are deterministic at any worker-thread count: the
    /// pooled flush writes disjoint entry ranges and merges integer partials
    /// in task order, and the multilevel policy consuming the weights is
    /// itself thread-invariant — so the whole feedback loop is too.
    #[test]
    fn ledger_feedback_loop_is_thread_invariant(
        seed in 0u64..300,
        steps in 8u64..14,
    ) {
        let serial = ledger_run(16, steps, seed, 1, true, true);
        for threads in [2usize, 4] {
            let rep = ledger_run(16, steps, seed, threads, true, true);
            prop_assert_eq!(serial.phases.compute_ns.to_bits(), rep.phases.compute_ns.to_bits(),
                "threads = {}", threads);
            prop_assert_eq!(serial.phases.comm_ns.to_bits(), rep.phases.comm_ns.to_bits());
            prop_assert_eq!(serial.phases.sync_ns.to_bits(), rep.phases.sync_ns.to_bits());
            prop_assert_eq!(&serial.messages, &rep.messages);
            prop_assert_eq!(serial.blocks_migrated, rep.blocks_migrated);
            prop_assert_eq!(serial.lb_invocations, rep.lb_invocations);
        }
    }
}
