//! Equivalence proofs for the flattened hot-path data structures.
//!
//! PR "flatten the hot paths" replaced two nested/hashed structures with
//! flat ones, keeping the old implementations around as oracles:
//!
//! 1. The CSR neighbor graph (`build_serial` / `build_parallel`, which
//!    classify probe octants by binary search over the Morton-sorted leaf
//!    array) must equal `build_legacy` (per-block `Vec<Vec<Neighbor>>` with
//!    `HashMap` dedup) on random 2:1-balanced 2D and 3D trees.
//! 2. The calendar-queue + event-arena MPI engine (`MpiWorld::run`) must
//!    replay random message traces to the exact same per-rank stats and
//!    makespan as `run_heap_reference` (the old `BinaryHeap` + `HashMap`
//!    scheduler).
//!
//! PR "O(changed blocks) remeshing" added incremental maintenance of both
//! derived structures, with the from-scratch builders kept as oracles:
//!
//! 3. `AmrMesh::patch_neighbor_graph` (CSR row repair driven by the
//!    `RefinementDelta`) must equal a fresh `AmrMesh::neighbor_graph` build
//!    after every adapt of a random 2D/3D refinement sequence.
//! 4. The incrementally spliced block index (sorted blocks + SFC keys) must
//!    equal a forced full DFS rebuild after every adapt.
//!
//! PR "shard the mesh" split the global CSR into per-shard graphs with halo
//! tables, refreshed per shard from the same delta:
//!
//! 5. A `ShardedMesh` maintained purely by `refresh` across a random adapt
//!    sequence must flatten to the from-scratch global graph after every
//!    step, for any shard count — and its halo tables must index exactly
//!    the out-of-shard neighbor ids.

use amr_tools::mesh::{
    AmrMesh, Dim, MeshConfig, NeighborGraph, PatchScratch, RefineTag, ShardedMesh,
};
use amr_tools::sim::mpi::Op;
use amr_tools::sim::{MpiWorld, NetworkConfig, Topology};
use proptest::prelude::*;

/// Grow a mesh with hash-salted refine/coarsen rounds (same idiom as
/// `mesh_properties.rs`): deterministic in `(dim, steps, salt)` yet varied
/// enough to produce irregular level interfaces, the hard case for the
/// binary-search cover classification.
fn random_mesh(dim_3d: bool, steps: usize, salt: u64) -> AmrMesh {
    let dim = if dim_3d { Dim::D3 } else { Dim::D2 };
    let cells = if dim_3d { (32, 32, 32) } else { (64, 64, 64) };
    let mut mesh = AmrMesh::new(MeshConfig::from_cells(dim, cells, 2));
    for step in 0..steps {
        let key = salt.wrapping_add(step as u64);
        mesh.adapt(|b| {
            let h = (b.id.index() as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key);
            match h % 5 {
                0 => RefineTag::Refine,
                1 => RefineTag::Coarsen,
                _ => RefineTag::Keep,
            }
        });
    }
    mesh
}

/// Splitmix-style step for deriving trace parameters from a proptest salt.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    /// CSR builders (serial and every thread count, including counts that
    /// leave ragged final chunks) reproduce the legacy adjacency exactly.
    #[test]
    fn csr_builders_match_legacy_on_random_trees(
        dim_3d: bool,
        steps in 1usize..4,
        salt in 0u64..1000,
        threads in 1usize..6,
    ) {
        let mesh = random_mesh(dim_3d, steps, salt);
        let leaves = mesh.tree().leaves_sorted();
        let legacy = NeighborGraph::build_legacy(mesh.tree(), &leaves);
        let serial = NeighborGraph::build_serial(mesh.tree(), &leaves);
        prop_assert_eq!(&serial, &legacy);
        let parallel = NeighborGraph::build_parallel(mesh.tree(), &leaves, threads);
        prop_assert_eq!(&parallel, &serial);
        prop_assert!(serial.check_symmetry().is_ok());
    }

    /// The calendar-queue engine replays random deadlock-free traces —
    /// arbitrary point-to-point messages (duplicate tags allowed, so FIFO
    /// matching order matters), per-rank compute skew, and an optional
    /// closing barrier — to bit-identical results of the heap oracle.
    #[test]
    fn calendar_engine_matches_heap_reference_on_random_traces(
        nranks in 2usize..9,
        nmsgs in 0usize..48,
        salt: u64,
        barrier: bool,
    ) {
        let mut rng = salt;
        // Each message gets exactly one Isend and one matching Irecv, all
        // nonblocking and posted before the WaitAll, so no trace deadlocks.
        let mut msgs = Vec::new();
        for _ in 0..nmsgs {
            let src = (next(&mut rng) as usize) % nranks;
            let dst_raw = (next(&mut rng) as usize) % nranks;
            let dst = if dst_raw == src { (dst_raw + 1) % nranks } else { dst_raw };
            let tag = (next(&mut rng) % 4) as u32;
            let bytes = 1 + next(&mut rng) % 65_536;
            msgs.push((src as u32, dst as u32, tag, bytes));
        }
        let mut programs: Vec<Vec<Op>> = vec![Vec::new(); nranks];
        for &(src, dst, tag, _) in &msgs {
            programs[dst as usize].push(Op::Irecv { src, tag });
        }
        for prog in &mut programs {
            prog.push(Op::Compute(next(&mut rng) % 500_000));
        }
        for &(src, dst, tag, bytes) in &msgs {
            programs[src as usize].push(Op::Isend { dst, tag, bytes });
        }
        for prog in &mut programs {
            prog.push(Op::WaitAll);
            if barrier {
                prog.push(Op::Barrier);
            }
        }

        let mut world = MpiWorld::new(Topology::paper(nranks), NetworkConfig::tuned());
        let fast = world.run(programs.clone()).expect("calendar engine completes");
        let oracle = world
            .run_heap_reference(programs)
            .expect("heap oracle completes");
        prop_assert_eq!(fast.makespan_ns, oracle.makespan_ns);
        prop_assert_eq!(fast.ranks, oracle.ranks);
    }

    /// A neighbor graph maintained purely by CSR patching across a random
    /// adapt sequence equals a from-scratch build after every step — the
    /// patch repairs exactly the affected rows and nothing else drifts.
    #[test]
    fn patched_graph_matches_full_build_on_random_sequences(
        dim_3d: bool,
        steps in 1usize..5,
        salt in 0u64..1000,
    ) {
        let dim = if dim_3d { Dim::D3 } else { Dim::D2 };
        let cells = if dim_3d { (32, 32, 32) } else { (64, 64, 64) };
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(dim, cells, 2));
        let mut graph = mesh.neighbor_graph();
        let mut scratch = PatchScratch::default();
        for step in 0..steps {
            let key = salt.wrapping_add(step as u64);
            mesh.adapt(|b| {
                let h = (b.id.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(key);
                match h % 5 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
            mesh.patch_neighbor_graph(&mut graph, &mut scratch);
            let full = mesh.neighbor_graph();
            prop_assert_eq!(&graph, &full);
            prop_assert!(graph.check_symmetry().is_ok());
        }
    }

    /// A sharded mesh maintained purely by per-shard splice+patch
    /// (`ShardedMesh::refresh`) across a random 2D/3D adapt sequence equals
    /// the from-scratch global build after every step: concatenating the
    /// shard-local CSR rows reproduces the global graph exactly, and every
    /// halo table holds precisely the sorted out-of-shard ids its shard's
    /// rows reference.
    #[test]
    fn sharded_refresh_matches_global_rebuild_on_random_sequences(
        dim_3d: bool,
        steps in 1usize..5,
        salt in 0u64..1000,
        num_shards in 1usize..7,
    ) {
        let dim = if dim_3d { Dim::D3 } else { Dim::D2 };
        let cells = if dim_3d { (32, 32, 32) } else { (64, 64, 64) };
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(dim, cells, 2));
        let mut sharded = ShardedMesh::new(&mesh, num_shards);
        let mut flat = NeighborGraph::default();
        for step in 0..steps {
            let key = salt.wrapping_add(step as u64);
            mesh.adapt(|b| {
                let h = (b.id.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(key);
                match h % 5 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
            sharded.refresh(&mesh);
            let oracle = mesh.neighbor_graph();
            sharded.flatten_into(&mut flat);
            prop_assert_eq!(&flat, &oracle);
            // Halo tables: sorted, deduplicated, and exactly the
            // out-of-window ids referenced by the shard's rows.
            for s in 0..sharded.num_shards() {
                let shard = sharded.shard(s);
                let range = shard.range();
                prop_assert!(shard.halo().windows(2).all(|w| w[0] < w[1]));
                let mut referenced: Vec<u32> = (0..shard.num_blocks())
                    .flat_map(|local| shard.neighbors_local(local))
                    .map(|n| n.block.index() as u32)
                    .filter(|&g| (g as usize) < range.start || (g as usize) >= range.end)
                    .collect();
                referenced.sort_unstable();
                referenced.dedup();
                prop_assert_eq!(shard.halo(), &referenced[..]);
            }
        }
    }

    /// The incrementally spliced block index (Morton-sorted blocks and their
    /// SFC keys) equals a forced full DFS rebuild after every adapt of a
    /// random refinement sequence: splicing never reorders, drops, or
    /// miscomputes a block.
    #[test]
    fn spliced_index_matches_full_rebuild_on_random_sequences(
        dim_3d: bool,
        steps in 1usize..5,
        salt in 0u64..1000,
    ) {
        let mut mesh = AmrMesh::new(MeshConfig::from_cells(
            if dim_3d { Dim::D3 } else { Dim::D2 },
            if dim_3d { (32, 32, 32) } else { (64, 64, 64) },
            2,
        ));
        for step in 0..steps {
            let key = salt.wrapping_add(step as u64);
            mesh.adapt(|b| {
                let h = (b.id.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(key);
                match h % 5 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
            let mut oracle = mesh.clone();
            oracle.force_full_rebuild();
            prop_assert_eq!(mesh.blocks(), oracle.blocks());
            prop_assert_eq!(mesh.sfc_keys(), oracle.sfc_keys());
        }
    }
}
