//! Cross-validation between the three communication engines: the analytic
//! micro-simulator, the event-driven MPI world, and the step-level macro
//! model must agree on the *structure* of every result (message counts,
//! ordering effects, locality classes), even though their time models
//! differ.

use amr_tools::placement::engine::PlacementEngine;
use amr_tools::placement::policies::{Baseline, Cplx, Hierarchical, Lpt, PlacementPolicy};
use amr_tools::sim::{MicroSim, MpiWorld, NetworkConfig, RoundSpec, TaskOrder, Topology};
use amr_tools::workloads::exchange::{build_mpi_programs, build_round_messages};
use amr_tools::workloads::random_refined_mesh;

fn quiet() -> NetworkConfig {
    NetworkConfig {
        ack_loss_prob: 0.0,
        ..NetworkConfig::tuned()
    }
}

#[test]
fn mpi_world_and_microsim_agree_on_message_counts() {
    let ranks = 64;
    let mesh = random_refined_mesh(ranks, 1.6, 3);
    let costs = vec![1.0; mesh.num_blocks()];
    let placement = Baseline.place(&costs, ranks);

    let messages = build_round_messages(&mesh, &placement);
    let mpi_msgs = messages.iter().filter(|m| m.src != m.dst).count();

    let programs = build_mpi_programs(&mesh, &placement, &vec![0; ranks], true);
    let mut world = MpiWorld::new(Topology::paper(ranks), quiet());
    let res = world.run(programs).expect("exchange completes");
    let sent: u32 = res.ranks.iter().map(|s| s.sent).sum();
    let received: u32 = res.ranks.iter().map(|s| s.received).sum();
    assert_eq!(sent as usize, mpi_msgs);
    assert_eq!(received as usize, mpi_msgs);
}

#[test]
fn both_engines_rank_task_orderings_identically() {
    let ranks = 32;
    let mesh = random_refined_mesh(ranks, 1.6, 7);
    let costs = vec![1.0; mesh.num_blocks()];
    let placement = Cplx::new(50).place(&costs, ranks);
    let compute: Vec<u64> = (0..ranks as u64).map(|r| 200_000 + r * 31_000).collect();

    // Event-driven engine.
    let mut world = MpiWorld::new(Topology::paper(ranks), quiet());
    let sf = world
        .run(build_mpi_programs(&mesh, &placement, &compute, true))
        .unwrap();
    let cf = world
        .run(build_mpi_programs(&mesh, &placement, &compute, false))
        .unwrap();
    assert!(sf.makespan_ns <= cf.makespan_ns);
    let sf_wait: u64 = sf.ranks.iter().map(|s| s.wait_ns).sum();
    let cf_wait: u64 = cf.ranks.iter().map(|s| s.wait_ns).sum();
    assert!(sf_wait <= cf_wait);

    // Analytic engine must agree on the ordering.
    let messages = build_round_messages(&mesh, &placement);
    let mut micro = MicroSim::new(Topology::paper(ranks), quiet(), 1);
    let spec_sf = RoundSpec {
        num_ranks: ranks,
        compute_ns: compute.clone(),
        messages: messages.clone(),
        order: TaskOrder::SendsFirst,
    };
    let spec_cf = RoundSpec {
        order: TaskOrder::ComputeFirst,
        ..spec_sf.clone()
    };
    let micro_sf = micro.run_round(&spec_sf);
    let micro_cf = micro.run_round(&spec_cf);
    assert!(micro_sf.round_latency_ns <= micro_cf.round_latency_ns);
}

#[test]
fn engines_agree_on_locality_monotonicity() {
    // Raising X strictly increases MPI-visible traffic in both engines.
    let ranks = 32;
    let mesh = random_refined_mesh(ranks, 1.6, 11);
    let costs = vec![1.0; mesh.num_blocks()];
    let mut world = MpiWorld::new(Topology::paper(ranks), quiet());
    let mut prev_mpi = 0u32;
    let mut prev_micro = 0u64;
    for x in [0u32, 50, 100] {
        let placement = Cplx::new(x).place(&costs, ranks);
        let res = world
            .run(build_mpi_programs(&mesh, &placement, &vec![0; ranks], true))
            .unwrap();
        let sent: u32 = res.ranks.iter().map(|s| s.sent).sum();
        assert!(sent >= prev_mpi, "x={x}: MPI sends fell");
        prev_mpi = sent;

        let mut micro = MicroSim::new(Topology::paper(ranks), quiet(), 2);
        let r = micro.run_round(&RoundSpec {
            num_ranks: ranks,
            compute_ns: vec![0; ranks],
            messages: build_round_messages(&mesh, &placement),
            order: TaskOrder::SendsFirst,
        });
        let micro_mpi = r.local_msgs + r.remote_msgs;
        assert_eq!(micro_mpi as u32, sent, "engines disagree on MPI volume");
        assert!(micro_mpi >= prev_micro);
        prev_micro = micro_mpi;
    }
}

#[test]
fn hierarchical_at_one_shard_matches_flat_engine_bitwise() {
    // The two-stage hierarchical policy with a single shard is the flat LPT
    // engine: stage 1 degenerates to "everything on one shard" and the
    // policy delegates outright, so every assignment — run through the full
    // `PlacementEngine` with mesh attached, across repeated warm-scratch
    // rebalances — must be identical, not merely equivalent in makespan.
    for seed in [3u64, 7, 13] {
        let ranks = 64;
        let mesh = random_refined_mesh(ranks, 1.6, seed);
        let costs: Vec<f64> = (0..mesh.num_blocks())
            .map(|i| 1.0 + (i % 17) as f64 * 0.35 + (i % 5) as f64)
            .collect();
        let mut flat_engine = PlacementEngine::new();
        let mut hier_engine = PlacementEngine::new();
        for round in 0..3 {
            // Perturb costs across rounds to exercise warm-order reuse.
            let round_costs: Vec<f64> = costs
                .iter()
                .map(|c| c * (1.0 + round as f64 * 0.1))
                .collect();
            flat_engine
                .rebalance_with(&Lpt, &round_costs, ranks, Some(&mesh), None)
                .expect("flat placement");
            hier_engine
                .rebalance_with(
                    &Hierarchical::new(1, 16),
                    &round_costs,
                    ranks,
                    Some(&mesh),
                    None,
                )
                .expect("hierarchical placement");
            let flat = flat_engine.placement().unwrap();
            let hier = hier_engine.placement().unwrap();
            assert_eq!(
                flat.as_slice(),
                hier.as_slice(),
                "seed {seed} round {round}: single-shard hierarchical diverged from flat LPT"
            );
        }
    }
}

#[test]
fn hierarchical_multi_shard_stays_close_to_flat_makespan() {
    // With real shards the hierarchical policy trades a bounded amount of
    // balance for SFC-contiguous node windows; its makespan must stay within
    // a modest factor of the flat engine's on refined-mesh cost profiles.
    let ranks = 64;
    let mesh = random_refined_mesh(ranks, 1.6, 21);
    let costs: Vec<f64> = (0..mesh.num_blocks())
        .map(|i| 1.0 + (i % 13) as f64 * 0.7)
        .collect();
    let flat = Lpt.place(&costs, ranks);
    let hier = Hierarchical::new(8, 16).place(&costs, ranks);
    assert_eq!(hier.num_blocks(), costs.len());
    let makespan = |p: &amr_tools::placement::Placement| -> f64 {
        let mut loads = vec![0.0f64; ranks];
        for (b, &c) in costs.iter().enumerate() {
            loads[p.rank_of(b) as usize] += c;
        }
        loads.iter().cloned().fold(0.0, f64::max)
    };
    let m_flat = makespan(&flat);
    let m_hier = makespan(&hier);
    assert!(
        m_hier <= m_flat * 1.5,
        "hierarchical makespan {m_hier} vs flat {m_flat}"
    );
}

#[test]
fn round_latencies_within_model_tolerance() {
    // The engines use different receiver models (busy server vs per-message
    // completion), but their round latencies should land within a small
    // factor of each other on a quiet network.
    let ranks = 32;
    let mesh = random_refined_mesh(ranks, 1.6, 13);
    let costs = vec![1.0; mesh.num_blocks()];
    let placement = Baseline.place(&costs, ranks);
    let compute = vec![500_000u64; ranks];

    let mut world = MpiWorld::new(Topology::paper(ranks), quiet());
    let mpi = world
        .run(build_mpi_programs(&mesh, &placement, &compute, true))
        .unwrap();

    let mut micro = MicroSim::new(Topology::paper(ranks), quiet(), 5);
    let res = micro.run_round(&RoundSpec {
        num_ranks: ranks,
        compute_ns: compute,
        messages: build_round_messages(&mesh, &placement),
        order: TaskOrder::SendsFirst,
    });
    let ratio = res.round_latency_ns as f64 / mpi.makespan_ns as f64;
    assert!(
        (0.5..=3.0).contains(&ratio),
        "engines diverge: micro {} vs mpi {} (ratio {ratio})",
        res.round_latency_ns,
        mpi.makespan_ns
    );
}
