//! Property-based tests for the telemetry substrate (amr-telemetry).

use amr_tools::telemetry::{codec, EventRecord, EventTable, Phase, Query};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = EventRecord> {
    (
        0u32..1000,
        0u32..4096,
        prop_oneof![Just(u32::MAX), 0u32..10_000],
        0usize..Phase::ALL.len(),
        0u64..10_000_000_000,
        0u32..100,
        0u64..(1 << 30),
    )
        .prop_map(
            |(step, rank, block, phase, duration_ns, msg_count, msg_bytes)| EventRecord {
                step,
                rank,
                block,
                phase: Phase::ALL[phase],
                duration_ns,
                msg_count,
                msg_bytes,
            },
        )
}

proptest! {
    #[test]
    fn binary_codec_roundtrips(records in prop::collection::vec(record_strategy(), 0..200)) {
        let table: EventTable = records.iter().copied().collect();
        let decoded = codec::decode(&codec::encode(&table)).unwrap();
        prop_assert_eq!(decoded.len(), table.len());
        for i in 0..table.len() {
            prop_assert_eq!(decoded.row(i), table.row(i));
        }
    }

    #[test]
    fn csv_codec_roundtrips(records in prop::collection::vec(record_strategy(), 0..100)) {
        let table: EventTable = records.iter().copied().collect();
        let parsed = codec::from_csv(&codec::to_csv(&table)).unwrap();
        prop_assert_eq!(parsed.len(), table.len());
        for i in 0..table.len() {
            prop_assert_eq!(parsed.row(i), table.row(i));
        }
    }

    #[test]
    fn truncated_binary_never_panics(
        records in prop::collection::vec(record_strategy(), 0..50),
        cut in 0usize..200,
    ) {
        let table: EventTable = records.iter().copied().collect();
        let buf = codec::encode(&table);
        let cut = cut.min(buf.len());
        // Must return an error or a valid table, never panic.
        let _ = codec::decode(&buf[..cut]);
    }

    #[test]
    fn group_bys_partition_the_table(records in prop::collection::vec(record_strategy(), 0..200)) {
        let table: EventTable = records.iter().copied().collect();
        let q = Query::new(&table);
        for groups in [
            q.by_rank().values().map(|g| g.count).sum::<usize>(),
            q.by_step().values().map(|g| g.count).sum::<usize>(),
            q.by_phase().values().map(|g| g.count).sum::<usize>(),
        ] {
            prop_assert_eq!(groups, table.len());
        }
        // Total duration is preserved by grouping.
        let direct: u64 = table.durations().iter().sum();
        let grouped: u64 = q.by_rank().values().map(|g| g.total_duration_ns).sum();
        prop_assert_eq!(direct, grouped);
    }

    #[test]
    fn filters_are_complementary(
        records in prop::collection::vec(record_strategy(), 0..200),
        pivot in 0u32..1000,
    ) {
        let table: EventTable = records.iter().copied().collect();
        let below = Query::new(&table).step_range(0, pivot).count();
        let above = Query::new(&table).step_range(pivot, u32::MAX).count();
        prop_assert_eq!(below + above, table.len());
    }

    #[test]
    fn sort_canonical_is_stable_permutation(
        records in prop::collection::vec(record_strategy(), 0..200),
    ) {
        let mut table: EventTable = records.iter().copied().collect();
        let total_before: u64 = table.durations().iter().sum();
        table.sort_canonical();
        prop_assert_eq!(table.len(), records.len());
        let total_after: u64 = table.durations().iter().sum();
        prop_assert_eq!(total_before, total_after);
        // Ordered by (step, rank, phase, block).
        for i in 1..table.len() {
            let a = table.row(i - 1);
            let b = table.row(i);
            let ka = (a.step, a.rank, a.phase.code(), a.block);
            let kb = (b.step, b.rank, b.phase.code(), b.block);
            prop_assert!(ka <= kb);
        }
    }
}
