//! Property tests for the chunked columnar store: zone-map pushdown must be
//! an exact optimization — identical results to a full filter scan for any
//! predicate, any data, any chunk size.

use amr_tools::telemetry::chunked::{ChunkedStore, Predicate};
use amr_tools::telemetry::{EventRecord, EventTable, Phase};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = EventRecord> {
    (
        0u32..64,
        0u32..32,
        0u32..100,
        0usize..Phase::ALL.len(),
        0u64..1_000_000,
    )
        .prop_map(|(step, rank, block, phase, duration_ns)| EventRecord {
            step,
            rank,
            block,
            phase: Phase::ALL[phase],
            duration_ns,
            msg_count: 0,
            msg_bytes: 0,
        })
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    (
        prop::option::of((0u32..64, 0u32..64)),
        prop::option::of((0u32..32, 0u32..32)),
        prop::option::of(0u64..1_000_000),
        prop::option::of(0usize..Phase::ALL.len()),
    )
        .prop_map(|(step, rank, min_dur, phase)| Predicate {
            step: step.map(|(a, b)| (a.min(b), a.max(b))),
            rank: rank.map(|(a, b)| (a.min(b), a.max(b))),
            min_duration_ns: min_dur,
            phase: phase.map(|p| Phase::ALL[p]),
        })
}

proptest! {
    #[test]
    fn pushdown_scan_equals_full_filter(
        records in prop::collection::vec(record_strategy(), 0..500),
        chunk_rows in 1usize..64,
        pred in predicate_strategy(),
        sort_first: bool,
    ) {
        let mut table: EventTable = records.iter().copied().collect();
        if sort_first {
            table.sort_canonical();
        }
        let store = ChunkedStore::build(&table, chunk_rows);
        prop_assert_eq!(store.num_rows(), table.len());

        let scan = store.scan(&pred);
        let expected: Vec<EventRecord> =
            table.iter().filter(|r| pred.matches(r)).collect();
        prop_assert_eq!(&scan.rows, &expected, "pushdown changed the result set");
        prop_assert_eq!(
            scan.chunks_pruned + scan.chunks_scanned,
            store.num_chunks()
        );
    }

    #[test]
    fn pruned_chunks_really_had_no_matches(
        records in prop::collection::vec(record_strategy(), 1..300),
        pred in predicate_strategy(),
    ) {
        // Zone maps must never prune a chunk containing a match: verified
        // indirectly by equality above, and directly here via counts.
        let mut table: EventTable = records.iter().copied().collect();
        table.sort_canonical();
        let store = ChunkedStore::build(&table, 32);
        let scan = store.scan(&pred);
        let expected = table.iter().filter(|r| pred.matches(r)).count();
        prop_assert_eq!(scan.rows.len(), expected);
    }

    #[test]
    fn encode_decode_preserves_scans(
        records in prop::collection::vec(record_strategy(), 0..200),
        pred in predicate_strategy(),
    ) {
        let table: EventTable = records.iter().copied().collect();
        let store = ChunkedStore::build(&table, 17);
        let back = ChunkedStore::decode(&store.encode()).unwrap();
        prop_assert_eq!(back.scan(&pred).rows, store.scan(&pred).rows);
    }
}
