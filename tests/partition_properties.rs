//! Property-based tests for the multilevel k-way partitioner (amr-core).
//!
//! These pin the invariants the multilevel pipeline is built on:
//!
//! * **Validity** — every block is placed exactly once on a real rank, and
//!   the balance-slack cap (plus one-vertex granularity) holds at *every*
//!   coarsening level, not just the final placement.
//! * **Cut-invariant uncoarsening** — projecting a coarse assignment one
//!   level finer never changes the cut: a contracted pair shares a coarse
//!   vertex, so both members land on the same rank and intra-pair edges stay
//!   internal. Refinement then only ever decreases it.
//! * **Greedy equivalence below the threshold** — small graphs bypass the
//!   multilevel machinery entirely and must be *bitwise identical* to
//!   [`GreedyEdgeCut`] with the same slack/sweeps, so the two policy
//!   families genuinely share one small-graph code path.
//! * **Determinism under observed weights** — arbitrary per-relation byte
//!   weights produce identical partitions at any worker-thread count (the
//!   pooled HEM proposal sweep only writes task-owned slots).

use amr_tools::mesh::{AmrMesh, Dim, MeshConfig, RefineTag};
use amr_tools::placement::engine::PlacementCtx;
use amr_tools::placement::policies::multilevel::Multilevel;
use amr_tools::placement::policies::{weighted_edge_cut, CutWeights, GreedyEdgeCut};
use amr_tools::placement::Placement;
use proptest::prelude::*;

/// Deterministic splitmix64 (weights and refine patterns from one seed).
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A multi-level mesh with a seed-dependent refinement sprinkle — large
/// enough (512 base blocks) that the multilevel pipeline always engages.
fn big_mesh(seed: u64) -> AmrMesh {
    let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 128, 128), 1));
    let salt = seed | 1;
    mesh.adapt(|b| {
        if (b.id.index() as u64).wrapping_mul(salt).is_multiple_of(7) {
            RefineTag::Refine
        } else {
            RefineTag::Keep
        }
    });
    mesh
}

/// Seed-dependent block costs in [1, 5.6).
fn costs_for(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed ^ 0xC057;
    (0..n)
        .map(|_| 1.0 + (mix(&mut s) % 1000) as f64 * 4.6e-3)
        .collect()
}

proptest! {
    /// Validity + per-level balance: every block placed once, and at every
    /// uncoarsening level the refined max rank load respects
    /// `cap + max_vertex_weight` (the cap alone is unreachable whenever a
    /// single coarse vertex outweighs the slack).
    #[test]
    fn partition_is_valid_and_balanced_at_every_level(
        seed in 0u64..500,
        ranks in 2usize..24,
    ) {
        let mesh = big_mesh(seed);
        let n = mesh.num_blocks();
        let graph = mesh.neighbor_graph();
        let costs = costs_for(n, seed);
        let ctx = PlacementCtx::new(&costs, ranks).with_mesh(&mesh).with_graph(&graph);
        let mut out = Placement::new(Vec::new(), 1);
        let (report, stats) = Multilevel::default()
            .place_with_stats(&ctx, &mut out)
            .expect("placement succeeds");
        prop_assert_eq!(report.num_blocks, n);
        prop_assert_eq!(out.num_blocks(), n);
        prop_assert!(out.as_slice().iter().all(|&r| (r as usize) < ranks));
        // Conservation: rank loads sum to the total cost.
        let total: f64 = costs.iter().sum();
        let loads = out.rank_loads(&costs);
        let load_sum: f64 = loads.iter().sum();
        prop_assert!((load_sum - total).abs() < 1e-6 * total);
        // Per-level cap (the multilevel pipeline engaged: >1 level).
        prop_assert!(!stats.delegated_greedy);
        prop_assert!(stats.levels.len() > 1, "coarsening must engage at {n} blocks");
        for (i, lvl) in stats.levels.iter().enumerate() {
            prop_assert!(
                lvl.max_load <= lvl.cap + lvl.max_vwgt + 1e-9,
                "level {}: load {} > cap {} + granularity {}",
                i, lvl.max_load, lvl.cap, lvl.max_vwgt
            );
        }
    }

    /// Uncoarsening preserves the assignment's cut exactly (projection is
    /// cut-invariant), and FM refinement is monotone: the cut arriving at a
    /// level equals the coarser level's refined cut, and never increases
    /// during the level's own passes.
    #[test]
    fn uncoarsening_preserves_cut_and_refinement_is_monotone(
        seed in 0u64..500,
        ranks in 2usize..24,
    ) {
        let mesh = big_mesh(seed);
        let graph = mesh.neighbor_graph();
        let costs = costs_for(mesh.num_blocks(), seed);
        let ctx = PlacementCtx::new(&costs, ranks).with_mesh(&mesh).with_graph(&graph);
        let mut out = Placement::new(Vec::new(), 1);
        let (_, stats) = Multilevel::default()
            .place_with_stats(&ctx, &mut out)
            .expect("placement succeeds");
        for (i, lvl) in stats.levels.iter().enumerate() {
            prop_assert!(
                lvl.cut_refined <= lvl.cut_arrived,
                "level {}: refinement raised the cut ({} -> {})",
                i, lvl.cut_arrived, lvl.cut_refined
            );
        }
        // levels[i] is finer than levels[i+1]; projection hands the coarser
        // refined cut down unchanged.
        for w in stats.levels.windows(2) {
            prop_assert_eq!(w[0].cut_arrived, w[1].cut_refined);
        }
    }

    /// Below the coarsening threshold the multilevel policy must delegate to
    /// the shared greedy and match `GreedyEdgeCut` bit for bit — same seed
    /// order, same gains, same refinement, one implementation.
    #[test]
    fn multilevel_equals_greedy_below_coarsening_threshold(
        seed in 0u64..500,
        ranks in 2usize..16,
        cells in 2usize..5,
    ) {
        // 8..64 base blocks — always at or below the 128 threshold.
        let c = cells as u32 * 16;
        let mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (c, c, c), 1));
        let n = mesh.num_blocks();
        prop_assert!(n <= 128);
        let costs = costs_for(n, seed);
        let ml = Multilevel::default().place_on_mesh(&mesh, &costs, ranks);
        let greedy = GreedyEdgeCut::default().place_on_mesh(&mesh, &costs, ranks);
        prop_assert_eq!(ml, greedy);
    }

    /// Arbitrary observed weights: the partition stays valid, the observed
    /// cut never exceeds the topological partition's observed cut, and the
    /// result is identical at 1, 2 and 4 worker threads.
    #[test]
    fn observed_weights_are_deterministic_across_threads(
        seed in 0u64..500,
        ranks in 2usize..16,
    ) {
        let mesh = big_mesh(seed);
        let n = mesh.num_blocks();
        let graph = mesh.neighbor_graph();
        let costs = costs_for(n, seed);
        let mut s = seed ^ 0x0B5E;
        let weights: Vec<u64> = (0..graph.total_relations())
            .map(|_| mix(&mut s) % (1 << 30))
            .collect();
        let place = |threads: usize| {
            let policy = if threads > 1 {
                Multilevel::default().with_threads(threads)
            } else {
                Multilevel::default()
            };
            let ctx = PlacementCtx::new(&costs, ranks)
                .with_mesh(&mesh)
                .with_graph(&graph)
                .with_edge_weights(&weights);
            let mut out = Placement::new(Vec::new(), 1);
            policy.place_into(&ctx, &mut out).expect("placement succeeds");
            out
        };
        let serial = place(1);
        prop_assert!(serial.as_slice().iter().all(|&r| (r as usize) < ranks));
        for threads in [2usize, 4] {
            prop_assert_eq!(&place(threads), &serial, "threads = {}", threads);
        }
        // The weighted objective itself is well-defined on the result (no
        // panic, entry space lines up) and bounded by the total weight.
        let w = CutWeights::Observed(&weights);
        let cut = weighted_edge_cut(&serial, &graph, &w);
        let total: u128 = weights.iter().map(|&x| x as u128).sum();
        prop_assert!(cut <= total);
    }
}

/// `place_into` needs `PlacementPolicy` in scope for the thread-variant
/// closure above.
use amr_tools::placement::policies::PlacementPolicy;
