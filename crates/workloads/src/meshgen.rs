//! Random realistic AMR meshes for `commbench` (§VI-C).
//!
//! `commbench` "constructs octree-based AMR meshes with realistic
//! refinement... meshes are refined to yield 1–2 blocks per rank". We build
//! a root grid of about half a block per rank, then refine the blocks
//! intersecting a few randomly placed spheres (hot regions) until the block
//! count reaches the target — producing the clustered fine-level
//! neighborhoods whose traffic structure drives the Fig. 7a locality
//! effects.

use amr_mesh::{AmrMesh, Dim, MeshConfig, Point, RefineTag};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Split `total = 2^k` into three axis factors as evenly as possible.
fn cube_factors(total: usize) -> (u32, u32, u32) {
    assert!(total.is_power_of_two(), "rank counts must be powers of two");
    let k = total.trailing_zeros();
    let a = k / 3;
    let b = (k - a) / 2;
    let c = k - a - b;
    (1 << c, 1 << b, 1 << a) // c >= b >= a keeps x the largest
}

/// Build a random 2:1-balanced mesh with roughly `target_blocks_per_rank`
/// blocks per rank (1.0–2.0 is the paper's commbench regime).
///
/// Deterministic in `seed`.
pub fn random_refined_mesh(ranks: usize, target_blocks_per_rank: f64, seed: u64) -> AmrMesh {
    assert!(ranks >= 8, "need at least 8 ranks");
    assert!(target_blocks_per_rank >= 0.5);
    // Roots ≈ ranks/2 so that refining ~10% of blocks reaches 1–2x ranks.
    let roots = cube_factors(ranks / 2);
    let mut config = MeshConfig::from_cells(Dim::D3, (roots.0 * 16, roots.1 * 16, roots.2 * 16), 2);
    config.max_level = 2;
    let mut mesh = AmrMesh::new(config);
    let target = (ranks as f64 * target_blocks_per_rank) as usize;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut guard = 0;
    while mesh.num_blocks() < target && guard < 64 {
        guard += 1;
        // A random hot sphere; refine the blocks it intersects.
        let c = Point::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let radius = rng.gen_range(0.05..0.20);
        let before = mesh.num_blocks();
        mesh.adapt(|b| {
            if b.bounds.distance_to_point(&c) <= radius
                && b.level() < 2
                && before + 7 * 8 < target + target / 4
            {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        if mesh.num_blocks() >= target {
            break;
        }
    }
    mesh
}

/// Build a deterministic 2:1-balanced mesh of roughly `target_blocks`
/// blocks for scales beyond the root-grid budget.
///
/// [`random_refined_mesh`] sizes the *root grid* to the rank count, which
/// runs into the 32-roots-per-axis Morton budget at 2^16 ranks. Here the
/// root lattice is pinned to its 32³ maximum and block count is grown by
/// *depth* instead: one uniform pass to level 1 (262,144 blocks), then
/// randomly placed level-2 hot spheres until `target_blocks` is reached —
/// the same clustered fine-level structure, up to the ~2.1M-block ceiling
/// of a fully level-2 forest. Deterministic in `seed`.
pub fn large_refined_mesh(target_blocks: usize, seed: u64) -> AmrMesh {
    const ROOTS: usize = 32 * 32 * 32;
    assert!(
        target_blocks <= ROOTS * 55,
        "target {target_blocks} beyond the level-2 forest's reach"
    );
    let mut config = MeshConfig::from_cells(Dim::D3, (32 * 16, 32 * 16, 32 * 16), 2);
    config.max_level = 2;
    let mut mesh = AmrMesh::new(config);
    mesh.adapt(|b| {
        if b.level() == 0 {
            RefineTag::Refine
        } else {
            RefineTag::Keep
        }
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let mut guard = 0;
    while mesh.num_blocks() < target_blocks && guard < 256 {
        guard += 1;
        let c = Point::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
        let radius = rng.gen_range(0.10..0.30);
        mesh.adapt(|b| {
            if b.level() == 1 && b.bounds.distance_to_point(&c) <= radius {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
    }
    assert!(
        mesh.num_blocks() >= target_blocks,
        "hot spheres saturated at {} of {target_blocks} blocks",
        mesh.num_blocks()
    );
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_multiply_back() {
        for total in [4usize, 8, 64, 256, 2048] {
            let (a, b, c) = cube_factors(total);
            assert_eq!((a * b * c) as usize, total);
            // Within a factor of 4 of each other (balanced split).
            let mx = a.max(b).max(c);
            let mn = a.min(b).min(c);
            assert!(mx / mn <= 4, "{total}: {a}x{b}x{c}");
        }
    }

    #[test]
    fn mesh_hits_block_target_range() {
        for ranks in [64usize, 512] {
            let m = random_refined_mesh(ranks, 1.5, 3);
            let bpr = m.num_blocks() as f64 / ranks as f64;
            assert!(
                (0.5..=2.5).contains(&bpr),
                "{ranks} ranks -> {} blocks",
                m.num_blocks()
            );
            m.check_invariants().unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_refined_mesh(64, 1.5, 9);
        let b = random_refined_mesh(64, 1.5, 9);
        assert_eq!(a.num_blocks(), b.num_blocks());
        let c = random_refined_mesh(64, 1.5, 10);
        // Different seeds give different meshes (refined counts differ with
        // high probability; tolerate rare collision by comparing leaves).
        let same = a
            .blocks()
            .iter()
            .zip(c.blocks())
            .all(|(x, y)| x.octant == y.octant)
            && a.num_blocks() == c.num_blocks();
        assert!(!same, "different seeds produced identical meshes");
    }

    #[test]
    fn refinement_present() {
        let m = random_refined_mesh(512, 1.8, 4);
        assert!(m.blocks().iter().any(|b| b.level() > 0));
    }

    #[test]
    fn large_mesh_reaches_target_beyond_root_budget() {
        // A target just past the uniform level-1 forest forces at least one
        // level-2 hot sphere; the full 2^20-rank scale is exercised by the
        // perf-trajectory hierarchical arm, not in unit tests.
        let target = 300_000;
        let m = large_refined_mesh(target, 7);
        assert!(m.num_blocks() >= target);
        assert!(m.blocks().iter().any(|b| b.level() == 2));
        let n1 = large_refined_mesh(target, 7).num_blocks();
        assert_eq!(m.num_blocks(), n1, "must be deterministic in seed");
    }
}
