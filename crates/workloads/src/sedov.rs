//! The Sedov–Taylor blast-wave workload (§VI, Table I).
//!
//! The paper evaluates placement on the Sedov Blast Wave 3D problem in
//! Phoebus: a point explosion drives a spherical shock outward; the mesh
//! refines along the shock front as it propagates, and compute cost peaks in
//! the steep-gradient shell (more solver iterations, §II-B).
//!
//! We reproduce that driver analytically. The Sedov–Taylor similarity
//! solution gives the shock radius `r(t) ∝ t^{2/5}`; blocks whose distance
//! range from the blast center intersects the shell `[r − w, r + w]` are
//! tagged for refinement, blocks left far behind or far ahead are coarsened.
//! Per-block compute cost is
//!
//! ```text
//! cost(b) = base · noise(b) · (1 + amp · exp(−(d(b)/w)²) + post · [inside])
//! ```
//!
//! where `noise(b)` is a *deterministic per-octant* lognormal factor (hashed
//! from the octant coordinates, so every policy sees the identical workload
//! — the paper's "compute time remains flat across all policies" invariant
//! holds by construction), `d(b)` is the block center's distance to the
//! shock surface, and `post` is a milder post-shock (interior) boost.

use amr_core::cost::{origins_from_delta, CostOrigin};
use amr_mesh::{Aabb, AmrMesh, BlockId, MeshConfig, Point, RefineTag};
use amr_sim::{Workload, WorkloadStep};
use serde::{Deserialize, Serialize};

/// SplitMix64-based deterministic lognormal sample with σ = `sigma`.
fn lognormal_hash(key: u64, sigma: f64) -> f64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let u1 = ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    let u2 = ((z.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    // Box–Muller → standard normal → lognormal.
    let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * g).exp()
}

/// Configuration of a Sedov run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SedovConfig {
    /// Mesh geometry (use [`MeshConfig::from_cells`] with Table I sizes).
    pub mesh: MeshConfig,
    /// Timesteps to simulate.
    pub total_steps: u64,
    /// Refinement-check cadence in steps (the paper's codes refine at most
    /// every 5 timesteps).
    pub adapt_interval: u64,
    /// Shock radius at the end of the run, in units of the domain's shortest
    /// half-extent (≤ ~1.7 keeps the shock inside a unit cube's corners).
    pub final_radius: f64,
    /// Gradient-cost shell half-width (physical units) — sets how far the
    /// compute-cost bump extends around the shock surface.
    pub shell_width: f64,
    /// Refinement margin (physical units): a block is tagged for refinement
    /// when the shock surface passes within this distance of it. Small
    /// margins keep the refined band one block-layer thick, matching
    /// Table I's final block counts.
    pub refine_margin: f64,
    /// Fraction of a block's radial extent that counts toward shell
    /// intersection. At `1.0` a block refines whenever the shock surface
    /// touches it anywhere (the corner-intersection test); smaller values
    /// require the surface to pass nearer the block's radial midpoint,
    /// thinning the refined band. Production AMR tags on gradient
    /// estimators whose support does not grow with block size, so
    /// configurations with smaller blocks (Table I's 2048/4096 rows) need
    /// a sub-unit fraction to match the paper's final block counts; see
    /// `SedovScenario::for_ranks`.
    pub band_fraction: f64,
    /// Nominal per-block compute time (ns). 250 ms timesteps across ~2
    /// blocks/rank put this at O(10⁸) ns in the paper; scale freely.
    pub base_cost_ns: f64,
    /// Peak cost amplification at the shock front.
    pub gradient_amp: f64,
    /// Post-shock (interior) cost boost.
    pub post_shock_boost: f64,
    /// Lognormal σ of the static per-block noise factor.
    pub noise_sigma: f64,
    /// Lognormal σ of the *per-step* kernel noise: solver-iteration
    /// variability the cost model cannot predict (§II-B). Deterministic in
    /// `(octant, step)` so every policy sees the identical workload; it sets
    /// the residual-imbalance floor that even perfect load balancing cannot
    /// remove.
    pub step_noise_sigma: f64,
}

impl SedovConfig {
    /// Reasonable defaults for a given Table I mesh.
    pub fn new(mesh: MeshConfig, total_steps: u64) -> SedovConfig {
        SedovConfig {
            mesh,
            total_steps,
            adapt_interval: 5,
            final_radius: 1.25,
            shell_width: 0.06,
            refine_margin: 0.005,
            band_fraction: 1.0,
            base_cost_ns: 1.0e6,
            gradient_amp: 2.2,
            post_shock_boost: 0.5,
            noise_sigma: 0.2,
            step_noise_sigma: 0.24,
        }
    }
}

/// The Sedov workload state.
pub struct SedovWorkload {
    config: SedovConfig,
    mesh: AmrMesh,
    costs: Vec<f64>,
    center: Point,
    current_radius: f64,
    current_step: u64,
    /// Pooled id list of blocks near the shock (spatial prefilter for
    /// tagging: everything else coarsens without per-block distance work).
    active_ids: Vec<BlockId>,
}

impl SedovWorkload {
    /// Initialize the workload (mesh at one block per root, shock at 0).
    pub fn new(config: SedovConfig) -> SedovWorkload {
        let mesh = AmrMesh::new(config.mesh.clone());
        let center = mesh.config().domain.center();
        let mut w = SedovWorkload {
            config,
            mesh,
            costs: Vec::new(),
            center,
            current_radius: 0.0,
            current_step: 0,
            active_ids: Vec::new(),
        };
        w.recompute_costs();
        w
    }

    /// Shock radius at (0-based) step `s` out of `total_steps`:
    /// Sedov–Taylor `r ∝ t^{2/5}`.
    pub fn radius_at(&self, step: u64) -> f64 {
        let t = (step + 1) as f64 / self.config.total_steps as f64;
        let half_extent = {
            let e = self.mesh.config().domain.extent();
            0.5 * e.x.min(e.y).min(if e.z > 0.0 { e.z } else { e.x })
        };
        self.config.final_radius * half_extent * t.powf(0.4)
    }

    /// Deterministic lognormal noise for an octant: identical across
    /// policies, runs and refinement histories.
    fn octant_noise(&self, o: &amr_mesh::Octant) -> f64 {
        let key =
            ((o.level as u64) << 60) ^ ((o.x as u64) << 40) ^ ((o.y as u64) << 20) ^ (o.z as u64);
        lognormal_hash(key, self.config.noise_sigma)
    }

    /// Deterministic per-(octant, step) kernel noise: the unpredictable
    /// solver-iteration component.
    fn step_noise(&self, o: &amr_mesh::Octant, step: u64) -> f64 {
        let key = ((o.level as u64) << 58)
            ^ ((o.x as u64) << 39)
            ^ ((o.y as u64) << 20)
            ^ ((o.z as u64) << 1)
            ^ step.rotate_left(17);
        lognormal_hash(key, self.config.step_noise_sigma)
    }

    fn recompute_costs(&mut self) {
        let r = self.current_radius;
        let w = self.config.shell_width;
        let cfg = &self.config;
        let step = self.current_step;
        self.costs = self
            .mesh
            .blocks()
            .iter()
            .map(|b| {
                let d_center = b.bounds.center().distance(&self.center);
                let d_shell = (d_center - r).abs();
                let shell_term = cfg.gradient_amp * (-(d_shell / w) * (d_shell / w)).exp();
                let post_term = if d_center < r {
                    cfg.post_shock_boost
                } else {
                    0.0
                };
                cfg.base_cost_ns
                    * self.octant_noise(&b.octant)
                    * self.step_noise(&b.octant, step)
                    * (1.0 + shell_term + post_term)
            })
            .collect();
    }

    /// Adapt the mesh to the current shock position. Returns the cost-origin
    /// mapping if the mesh changed.
    fn adapt_mesh(&mut self) -> Option<Vec<CostOrigin>> {
        let r = self.current_radius;
        let w = self.config.refine_margin;
        let band = self.config.band_fraction;
        let center = self.center;
        let max_level = self.config.mesh.max_level;
        // Spatial prefilter: only blocks inside the cube circumscribing the
        // outer hysteresis shell (radius r + 2w) need distance tests. A block
        // disjoint from that cube is disjoint from the inscribed ball, so its
        // dmin exceeds r + 2w — not on the shell AND clearly ahead of it —
        // which tags Coarsen (or Keep at level 0) without any geometry.
        let reach = r + 2.0 * w;
        let region = Aabb::new(
            Point::new(center.x - reach, center.y - reach, center.z - reach),
            Point::new(center.x + reach, center.y + reach, center.z + reach),
        );
        self.mesh
            .blocks_in_region_into(&region, &mut self.active_ids);
        let active = &self.active_ids;
        let changed = self
            .mesh
            .adapt(|b| {
                if active.binary_search(&b.id).is_err() {
                    return if b.level() > 0 {
                        RefineTag::Coarsen
                    } else {
                        RefineTag::Keep
                    };
                }
                let dmin = b.bounds.distance_to_point(&center);
                let dmax = b.bounds.max_distance_to_point(&center);
                // `dmin <= r + w && dmax >= r - w` rewritten around the
                // block's radial midpoint, with the block-extent term scaled
                // by `band_fraction` (1.0 reproduces the corner test; less
                // demands the surface pass nearer the midpoint).
                let mid = 0.5 * (dmin + dmax);
                let half_band = 0.5 * band * (dmax - dmin);
                let intersects_shell = (mid - r).abs() <= half_band + w;
                if intersects_shell && b.level() < max_level {
                    RefineTag::Refine
                } else if !intersects_shell && b.level() > 0 {
                    // Hysteresis: only coarsen when clearly away from the
                    // shell — the same midpoint form at double margin (at
                    // `band_fraction` 1.0 this is exactly the legacy
                    // corner test `dmin > r + 2w || dmax < r - 2w`).
                    let clear = (mid - r).abs() > half_band + 2.0 * w;
                    if clear {
                        RefineTag::Coarsen
                    } else {
                        RefineTag::Keep
                    }
                } else {
                    RefineTag::Keep
                }
            })
            .changed();
        if changed {
            // Origins fall straight out of the adapt changeset — no
            // octant→id HashMap snapshot, no per-block hashing.
            let mut origins = Vec::new();
            origins_from_delta(self.mesh.last_delta(), &mut origins);
            Some(origins)
        } else {
            None
        }
    }

    /// Current shock radius (after the last `advance`).
    pub fn current_radius(&self) -> f64 {
        self.current_radius
    }
}

impl Workload for SedovWorkload {
    fn mesh(&self) -> &AmrMesh {
        &self.mesh
    }

    fn advance(&mut self, step: u64) -> WorkloadStep {
        self.current_step = step;
        self.current_radius = self.radius_at(step);
        let mut ws = WorkloadStep::default();
        if step.is_multiple_of(self.config.adapt_interval) {
            if let Some(origins) = self.adapt_mesh() {
                ws.mesh_changed = true;
                ws.origins = Some(origins);
            }
        }
        self.recompute_costs();
        ws
    }

    fn block_compute_ns(&self) -> &[f64] {
        &self.costs
    }

    fn total_steps(&self) -> u64 {
        self.config.total_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::Dim;

    fn small() -> SedovConfig {
        let mut c = SedovConfig::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1), 100);
        c.shell_width = 0.08;
        c
    }

    /// `small()` with the stochastic factors disabled, for geometry checks.
    fn small_noiseless() -> SedovConfig {
        let mut c = small();
        c.noise_sigma = 1e-9;
        c.step_noise_sigma = 1e-9;
        c
    }

    #[test]
    fn starts_with_one_block_per_root() {
        let w = SedovWorkload::new(small());
        assert_eq!(w.mesh().num_blocks(), 64);
        assert_eq!(w.block_compute_ns().len(), 64);
    }

    #[test]
    fn shock_radius_grows_as_t_to_two_fifths() {
        let w = SedovWorkload::new(small());
        let r10 = w.radius_at(9);
        let r99 = w.radius_at(99);
        assert!(r10 < r99);
        // r(t)/r(T) = (t/T)^0.4
        let expect = (10.0f64 / 100.0).powf(0.4);
        assert!((r10 / r99 - expect).abs() < 1e-9);
    }

    #[test]
    fn blocks_grow_and_shrink_as_shock_sweeps() {
        let mut w = SedovWorkload::new(small());
        let initial = w.mesh().num_blocks();
        let mut peak = initial;
        let mut changes = 0;
        for step in 0..100 {
            let ws = w.advance(step);
            if ws.mesh_changed {
                changes += 1;
                assert!(ws.origins.is_some());
                w.mesh().check_invariants().unwrap();
            }
            peak = peak.max(w.mesh().num_blocks());
        }
        assert!(changes > 2, "only {changes} mesh changes");
        assert!(peak > initial, "mesh never refined");
        // After the shock passes, trailing blocks coarsen: final < peak.
        assert!(w.mesh().num_blocks() <= peak);
    }

    #[test]
    fn costs_peak_at_shock_front() {
        let mut w = SedovWorkload::new(small_noiseless());
        // Advance mid-run so the shock is inside the domain.
        for step in 0..50 {
            w.advance(step);
        }
        let r = w.current_radius();
        assert!(r > 0.05 && r < 0.9);
        // Blocks near the shell should be the most expensive ones
        // (modulo the lognormal noise: compare averages).
        let center = w.mesh().config().domain.center();
        let (mut near_sum, mut near_n, mut far_sum, mut far_n) = (0.0, 0, 0.0, 0);
        for (b, &c) in w.mesh().blocks().iter().zip(w.block_compute_ns()) {
            let d = (b.bounds.center().distance(&center) - r).abs();
            if d < w.config.shell_width {
                near_sum += c;
                near_n += 1;
            } else if d > 2.0 * w.config.shell_width {
                far_sum += c;
                far_n += 1;
            }
        }
        assert!(near_n > 0 && far_n > 0);
        assert!(
            near_sum / near_n as f64 > 1.5 * far_sum / far_n as f64,
            "no cost peak at the shock"
        );
    }

    #[test]
    fn costs_identical_across_instances() {
        // The deterministic-noise invariant: two instances advanced the same
        // way have identical cost vectors (the Fig. 6a flat-compute check).
        let mut a = SedovWorkload::new(small());
        let mut b = SedovWorkload::new(small());
        for step in 0..30 {
            a.advance(step);
            b.advance(step);
        }
        assert_eq!(a.block_compute_ns(), b.block_compute_ns());
    }

    #[test]
    fn noise_is_per_octant_deterministic() {
        let w = SedovWorkload::new(small());
        let o = amr_mesh::Octant::new(2, 1, 2, 3);
        assert_eq!(w.octant_noise(&o), w.octant_noise(&o));
        let o2 = amr_mesh::Octant::new(2, 1, 2, 2);
        assert_ne!(w.octant_noise(&o), w.octant_noise(&o2));
        // Lognormal: strictly positive.
        assert!(w.octant_noise(&o) > 0.0);
    }
}
