//! A low-variability "galaxy cooling"-style workload.
//!
//! The paper also studied "a galaxy cooling setup in AthenaPK" and found
//! results "directionally similar: codes with high compute variability
//! benefit more from better placement, and vice-versa" (§VI). This workload
//! is the low-variability end of that spectrum: a static (or rarely
//! adapting) mesh whose per-block costs drift slowly around a uniform mean —
//! placement has little to gain here, which the ablation benches use as the
//! negative control.

use amr_mesh::{AmrMesh, MeshConfig};
use amr_sim::{Workload, WorkloadStep};
use serde::{Deserialize, Serialize};

/// Configuration of the cooling workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoolingConfig {
    pub mesh: MeshConfig,
    pub total_steps: u64,
    /// Nominal per-block compute (ns).
    pub base_cost_ns: f64,
    /// Relative amplitude of the slow per-block cost modulation (small:
    /// this is the *low-variability* workload).
    pub amplitude: f64,
    /// Modulation period in steps.
    pub period: u64,
}

impl CoolingConfig {
    /// Defaults: 5% cost modulation over 200-step periods.
    pub fn new(mesh: MeshConfig, total_steps: u64) -> CoolingConfig {
        CoolingConfig {
            mesh,
            total_steps,
            base_cost_ns: 1.0e6,
            amplitude: 0.05,
            period: 200,
        }
    }
}

/// The cooling workload state.
pub struct CoolingWorkload {
    config: CoolingConfig,
    mesh: AmrMesh,
    costs: Vec<f64>,
}

impl CoolingWorkload {
    /// Initialize (static mesh at one block per root).
    pub fn new(config: CoolingConfig) -> CoolingWorkload {
        let mesh = AmrMesh::new(config.mesh.clone());
        let n = mesh.num_blocks();
        let mut w = CoolingWorkload {
            config,
            mesh,
            costs: vec![0.0; n],
        };
        w.update_costs(0);
        w
    }

    fn update_costs(&mut self, step: u64) {
        let cfg = &self.config;
        let phase = 2.0 * std::f64::consts::PI * step as f64 / cfg.period as f64;
        let n = self.costs.len() as f64;
        for (i, c) in self.costs.iter_mut().enumerate() {
            // Each block modulates with a position-dependent phase shift:
            // a slowly rotating cost pattern.
            let local = phase + 2.0 * std::f64::consts::PI * i as f64 / n;
            *c = cfg.base_cost_ns * (1.0 + cfg.amplitude * local.sin());
        }
    }
}

impl Workload for CoolingWorkload {
    fn mesh(&self) -> &AmrMesh {
        &self.mesh
    }

    fn advance(&mut self, step: u64) -> WorkloadStep {
        self.update_costs(step);
        WorkloadStep::default()
    }

    fn block_compute_ns(&self) -> &[f64] {
        &self.costs
    }

    fn total_steps(&self) -> u64 {
        self.config.total_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::Dim;

    fn workload() -> CoolingWorkload {
        CoolingWorkload::new(CoolingConfig::new(
            MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1),
            100,
        ))
    }

    #[test]
    fn mesh_is_static() {
        let mut w = workload();
        let n = w.mesh().num_blocks();
        for step in 0..50 {
            let ws = w.advance(step);
            assert!(!ws.mesh_changed);
        }
        assert_eq!(w.mesh().num_blocks(), n);
    }

    #[test]
    fn variability_is_low() {
        let mut w = workload();
        w.advance(10);
        let costs = w.block_compute_ns();
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - min) / mean < 0.15, "spread too large for cooling");
    }

    #[test]
    fn costs_drift_over_time() {
        let mut w = workload();
        w.advance(0);
        let early = w.block_compute_ns().to_vec();
        w.advance(50);
        let later = w.block_compute_ns().to_vec();
        assert_ne!(early, later);
    }
}
