//! The paper's problem configurations (Table I) with scaled-down step counts.
//!
//! Table I (Sedov Blast Wave 3D, 16³ blocks, one initial block per rank):
//!
//! | ranks | mesh         | t_total | t_lb  | n_init | n_final |
//! |-------|--------------|---------|-------|--------|---------|
//! | 512   | 128³         | 30,590  | 1,213 | 512    | 2,080   |
//! | 1024  | 128²×256     | 43,088  | 4,576 | 1,024  | 3,824   |
//! | 2048  | 128×256²     | 43,042  | 4,699 | 2,048  | 4,848   |
//! | 4096  | 256³         | 53,459  | 9,392 | 4,096  | 8,968   |
//!
//! The paper's runs take hours on 600 nodes; we default to a `step_scale`
//! that divides step counts by 20 (documented in EXPERIMENTS.md). Virtual
//! phase *fractions* and policy *orderings* are step-count invariant once
//! the shock has swept the domain.

use crate::sedov::{SedovConfig, SedovWorkload};
use amr_mesh::{Dim, MeshConfig};
use serde::{Deserialize, Serialize};

/// Paper-reported Table I row, kept for paper-vs-measured comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperRow {
    pub ranks: usize,
    pub mesh_cells: (u32, u32, u32),
    pub t_total: u64,
    pub t_lb: u64,
    pub n_initial: usize,
    pub n_final: usize,
}

/// The four Table I configurations.
pub const TABLE1: [PaperRow; 4] = [
    PaperRow {
        ranks: 512,
        mesh_cells: (128, 128, 128),
        t_total: 30_590,
        t_lb: 1_213,
        n_initial: 512,
        n_final: 2_080,
    },
    PaperRow {
        ranks: 1024,
        mesh_cells: (128, 128, 256),
        t_total: 43_088,
        t_lb: 4_576,
        n_initial: 1_024,
        n_final: 3_824,
    },
    PaperRow {
        ranks: 2048,
        mesh_cells: (128, 256, 256),
        t_total: 43_042,
        t_lb: 4_699,
        n_initial: 2_048,
        n_final: 4_848,
    },
    PaperRow {
        ranks: 4096,
        mesh_cells: (256, 256, 256),
        t_total: 53_459,
        t_lb: 9_392,
        n_initial: 4_096,
        n_final: 8_968,
    },
];

/// A runnable Sedov scenario bound to a Table I row.
#[derive(Debug, Clone)]
pub struct SedovScenario {
    pub row: PaperRow,
    pub config: SedovConfig,
}

impl SedovScenario {
    /// Build the scenario for a rank count (must be one of Table I's),
    /// dividing the paper's step count by `step_scale`.
    pub fn for_ranks(ranks: usize, step_scale: u64) -> SedovScenario {
        assert!(step_scale >= 1);
        let row = *TABLE1
            .iter()
            .find(|r| r.ranks == ranks)
            .unwrap_or_else(|| panic!("no Table I config for {ranks} ranks"));
        let mesh = MeshConfig::from_cells(Dim::D3, row.mesh_cells, 1);
        let steps = (row.t_total / step_scale).max(20);
        let mut config = SedovConfig::new(mesh, steps);
        // Keep the refinement cadence proportional: the paper's codes check
        // every 5 of t_total steps.
        config.adapt_interval = 5.max(steps / 400);
        // Per-scale refinement-band tuning. The corner-intersection tag
        // refines every block the shock surface touches, and its band width
        // therefore grows with the block diagonal; the paper's codes tag on
        // gradient estimators whose support does not. At 2048/4096 ranks the
        // blocks are small enough that the untuned band overshoots Table I's
        // n_final by 31%/23% — narrowing the diagonal term recovers the
        // paper's counts (asserted in `final_block_counts_track_table1`).
        config.band_fraction = match ranks {
            2048 => 0.45,
            4096 => 0.68,
            _ => 1.0,
        };
        SedovScenario { row, config }
    }

    /// Instantiate the workload.
    pub fn workload(&self) -> SedovWorkload {
        SedovWorkload::new(self.config.clone())
    }

    /// All four Table I scenarios.
    pub fn all(step_scale: u64) -> Vec<SedovScenario> {
        TABLE1
            .iter()
            .map(|r| SedovScenario::for_ranks(r.ranks, step_scale))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_sim::Workload;

    #[test]
    fn rows_match_paper() {
        assert_eq!(TABLE1[0].n_initial, 512);
        assert_eq!(TABLE1[3].t_total, 53_459);
        // Mesh cells / 16³ blocks = one initial block per rank.
        for r in TABLE1 {
            let blocks = (r.mesh_cells.0 / 16) * (r.mesh_cells.1 / 16) * (r.mesh_cells.2 / 16);
            assert_eq!(blocks as usize, r.ranks);
            assert_eq!(r.n_initial, r.ranks);
        }
    }

    #[test]
    fn scenario_initial_blocks_equal_ranks() {
        let s = SedovScenario::for_ranks(512, 100);
        let w = s.workload();
        assert_eq!(w.mesh().num_blocks(), 512);
        assert!(w.total_steps() >= 20);
    }

    #[test]
    #[should_panic(expected = "no Table I config")]
    fn unknown_rank_count_rejected() {
        SedovScenario::for_ranks(777, 10);
    }

    #[test]
    fn all_returns_four() {
        assert_eq!(SedovScenario::all(100).len(), 4);
    }

    /// Table I's n_final column, at the step scale `results/table1.txt` is
    /// generated with. Mesh evolution is policy- and simulator-independent,
    /// so advancing the bare workload reproduces exactly the block counts a
    /// full macro-simulated run ends with. The per-scale refinement-band
    /// tuning in `for_ranks` exists to keep every row within tolerance —
    /// without it the 2048/4096 configurations overshoot the paper's counts
    /// by ~20–30% (their smaller blocks turn the same geometric margin into
    /// a wider band of refined blocks).
    #[test]
    fn final_block_counts_track_table1() {
        let mut failures = String::new();
        for s in SedovScenario::all(50) {
            let mut w = s.workload();
            for step in 0..w.total_steps() {
                w.advance(step);
            }
            let n = w.mesh().num_blocks();
            let paper = s.row.n_final;
            let rel = (n as f64 - paper as f64) / paper as f64;
            if rel.abs() > 0.10 {
                failures.push_str(&format!(
                    "{} ranks: n_final {} vs paper {} ({:+.1}%)\n",
                    s.row.ranks,
                    n,
                    paper,
                    rel * 100.0
                ));
            }
        }
        assert!(failures.is_empty(), "n_final off Table I:\n{failures}");
    }
}
