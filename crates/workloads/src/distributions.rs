//! Synthetic block-cost distributions for `scalebench` (§VI-C).
//!
//! The paper draws block costs "from three representative distributions —
//! exponential, Gaussian, and power-law — with variability bounds chosen to
//! create meaningful balancing opportunities while remaining within
//! realistic AMR ranges". Samplers are hand-rolled on `rand` (inverse-CDF
//! for exponential/Pareto, Box–Muller for the Gaussian) to keep the
//! dependency set minimal; all outputs are clamped to a positive range so
//! costs stay physical.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A block-cost distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostDistribution {
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Gaussian truncated at `min` (re-clamped, not re-sampled).
    Gaussian { mean: f64, stddev: f64, min: f64 },
    /// Pareto (power-law) with scale `xmin` and shape `alpha` (> 1 for a
    /// finite mean). Heavy tail: a few very expensive blocks.
    PowerLaw { xmin: f64, alpha: f64 },
}

impl CostDistribution {
    /// The paper's three `scalebench` distributions, normalized to a unit
    /// mean so makespans are comparable across them.
    pub fn scalebench_suite() -> [CostDistribution; 3] {
        [
            CostDistribution::Exponential { mean: 1.0 },
            CostDistribution::Gaussian {
                mean: 1.0,
                stddev: 0.3,
                min: 0.05,
            },
            // alpha = 2.5, xmin chosen so the mean alpha*xmin/(alpha-1) = 1.
            CostDistribution::PowerLaw {
                xmin: 0.6,
                alpha: 2.5,
            },
        ]
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            CostDistribution::Exponential { .. } => "exponential",
            CostDistribution::Gaussian { .. } => "gaussian",
            CostDistribution::PowerLaw { .. } => "power-law",
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            CostDistribution::Exponential { mean } => {
                // Inverse CDF: -mean * ln(1 - u), u in [0, 1).
                let u: f64 = rng.gen();
                -mean * (1.0 - u).ln()
            }
            CostDistribution::Gaussian { mean, stddev, min } => {
                // Box–Muller transform.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + stddev * z).max(min)
            }
            CostDistribution::PowerLaw { xmin, alpha } => {
                // Inverse CDF of Pareto: xmin * (1 - u)^(-1/alpha).
                let u: f64 = rng.gen();
                xmin * (1.0 - u).powf(-1.0 / alpha)
            }
        }
    }

    /// Draw `n` samples.
    pub fn sample_vec<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Theoretical mean (for sanity checks).
    pub fn mean(&self) -> f64 {
        match *self {
            CostDistribution::Exponential { mean } => mean,
            // Truncation bias ignored: min is far in the tail for our params.
            CostDistribution::Gaussian { mean, .. } => mean,
            CostDistribution::PowerLaw { xmin, alpha } => {
                assert!(alpha > 1.0);
                alpha * xmin / (alpha - 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_mean(d: CostDistribution, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        d.sample_vec(n, &mut rng).iter().sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = CostDistribution::Exponential { mean: 2.0 };
        let m = empirical_mean(d, 100_000, 1);
        assert!((m - 2.0).abs() < 0.05, "mean = {m}");
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let d = CostDistribution::Gaussian {
            mean: 5.0,
            stddev: 1.0,
            min: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let xs = d.sample_vec(100_000, &mut rng);
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.05, "mean = {m}");
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 1.0).abs() < 0.05);
    }

    #[test]
    fn gaussian_respects_floor() {
        let d = CostDistribution::Gaussian {
            mean: 0.1,
            stddev: 2.0,
            min: 0.05,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert!(d.sample_vec(10_000, &mut rng).iter().all(|&x| x >= 0.05));
    }

    #[test]
    fn powerlaw_mean_and_tail() {
        let d = CostDistribution::PowerLaw {
            xmin: 0.6,
            alpha: 2.5,
        };
        let m = empirical_mean(d, 200_000, 4);
        assert!((m - d.mean()).abs() < 0.05, "mean = {m} vs {}", d.mean());
        // Heavy tail: max sample far above the mean.
        let mut rng = StdRng::seed_from_u64(5);
        let xs = d.sample_vec(100_000, &mut rng);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 5.0 * d.mean());
        assert!(xs.iter().all(|&x| x >= 0.6));
    }

    #[test]
    fn suite_is_unit_mean() {
        for d in CostDistribution::scalebench_suite() {
            assert!((d.mean() - 1.0).abs() < 1e-9, "{}", d.label());
            let m = empirical_mean(d, 100_000, 6);
            assert!((m - 1.0).abs() < 0.1, "{}: {m}", d.label());
        }
    }

    #[test]
    fn all_samples_positive() {
        let mut rng = StdRng::seed_from_u64(7);
        for d in CostDistribution::scalebench_suite() {
            assert!(d.sample_vec(10_000, &mut rng).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn labels_distinct() {
        let labels: std::collections::HashSet<_> = CostDistribution::scalebench_suite()
            .iter()
            .map(|d| d.label())
            .collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = CostDistribution::Exponential { mean: 1.0 };
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        assert_eq!(d.sample_vec(100, &mut a), d.sample_vec(100, &mut b));
    }
}
