//! A shear-interface (Kelvin–Helmholtz-style) workload.
//!
//! A third refinement topology alongside the spherical Sedov shell and the
//! static cooling box: a planar interface with a growing sinusoidal
//! perturbation. Instabilities of this kind refine a *sheet* that rolls up
//! over time — the refined region is 2D-extended rather than shell-shaped,
//! which stresses contiguous placements differently (an SFC cuts a sheet
//! into many short runs, whereas a shell tends to produce longer ones).
//!
//! The interface sits at `y = y0 + A(t)·sin(2πkx + ωt)` (extruded in z);
//! blocks crossed by it refine, blocks whose cells straddle the shear layer
//! cost more to integrate.

use amr_core::cost::{origins_from_delta, CostOrigin};
use amr_mesh::{Aabb, AmrMesh, BlockId, MeshConfig, Point, RefineTag};
use amr_sim::{Workload, WorkloadStep};
use serde::{Deserialize, Serialize};

/// Configuration of the interface workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterfaceConfig {
    pub mesh: MeshConfig,
    pub total_steps: u64,
    /// Refinement-check cadence (steps).
    pub adapt_interval: u64,
    /// Interface rest position (fraction of domain height).
    pub y0: f64,
    /// Final perturbation amplitude (fraction of domain height); grows
    /// linearly with time (the instability's linear phase).
    pub final_amplitude: f64,
    /// Number of perturbation wavelengths across the domain.
    pub wavenumber: u32,
    /// Phase velocity in radians per step (the billow drift).
    pub omega: f64,
    /// Nominal per-block compute (ns).
    pub base_cost_ns: f64,
    /// Cost boost for blocks on the interface.
    pub interface_boost: f64,
    /// Half-thickness of the costly shear layer (physical units).
    pub layer_width: f64,
}

impl InterfaceConfig {
    /// Defaults tuned for 1–2 refinement levels and visible imbalance.
    pub fn new(mesh: MeshConfig, total_steps: u64) -> InterfaceConfig {
        InterfaceConfig {
            mesh,
            total_steps,
            adapt_interval: 5,
            y0: 0.5,
            final_amplitude: 0.25,
            wavenumber: 2,
            omega: 0.2,
            base_cost_ns: 1.0e6,
            interface_boost: 2.5,
            layer_width: 0.05,
        }
    }
}

/// The interface workload state.
pub struct InterfaceWorkload {
    config: InterfaceConfig,
    mesh: AmrMesh,
    costs: Vec<f64>,
    step: u64,
    /// Pooled id list of blocks intersecting the perturbation slab (spatial
    /// prefilter for tagging: blocks outside it cannot be crossed).
    slab_ids: Vec<BlockId>,
}

impl InterfaceWorkload {
    /// Initialize at one block per root.
    pub fn new(config: InterfaceConfig) -> InterfaceWorkload {
        let mesh = AmrMesh::new(config.mesh.clone());
        let mut w = InterfaceWorkload {
            config,
            mesh,
            costs: Vec::new(),
            step: 0,
            slab_ids: Vec::new(),
        };
        w.recompute_costs();
        w
    }

    /// Interface height at horizontal position `x` for the current step.
    pub fn interface_y(&self, x: f64, step: u64) -> f64 {
        let cfg = &self.config;
        let t = (step + 1) as f64 / cfg.total_steps as f64;
        let amp = cfg.final_amplitude * t;
        cfg.y0
            + amp
                * (2.0 * std::f64::consts::PI * cfg.wavenumber as f64 * x + cfg.omega * step as f64)
                    .sin()
    }

    /// Signed distance from a y-coordinate to the interface at `x`.
    fn dist_to_interface(&self, x: f64, y: f64, step: u64) -> f64 {
        (y - self.interface_y(x, step)).abs()
    }

    fn recompute_costs(&mut self) {
        let step = self.step;
        let cfg = &self.config;
        self.costs = self
            .mesh
            .blocks()
            .iter()
            .map(|b| {
                let c = b.bounds.center();
                let d = self.dist_to_interface(c.x, c.y, step);
                let boost = cfg.interface_boost * (-(d / cfg.layer_width).powi(2)).exp();
                cfg.base_cost_ns * (1.0 + boost)
            })
            .collect();
    }

    fn adapt_mesh(&mut self) -> Option<Vec<CostOrigin>> {
        let step = self.step;
        let max_level = self.config.mesh.max_level;
        // Capture the interface function without borrowing `self`, so the
        // closure can coexist with the mutable mesh borrow below.
        let cfg = self.config.clone();
        let interface_y = move |x: f64| {
            let t = (step + 1) as f64 / cfg.total_steps as f64;
            let amp = cfg.final_amplitude * t;
            cfg.y0
                + amp
                    * (2.0 * std::f64::consts::PI * cfg.wavenumber as f64 * x
                        + cfg.omega * step as f64)
                        .sin()
        };
        // A block is crossed by the interface iff the interface height at
        // its x-range intersects its y-range; sample a few x positions.
        let crosses = move |b: &amr_mesh::MeshBlock| {
            let lo = b.bounds.lo;
            let hi = b.bounds.hi;
            let mut above = false;
            let mut below = false;
            for i in 0..=4 {
                let x = lo.x + (hi.x - lo.x) * i as f64 / 4.0;
                let iy = interface_y(x);
                if iy >= lo.y {
                    above = true;
                }
                if iy <= hi.y {
                    below = true;
                }
            }
            above && below
        };
        // Spatial prefilter: the interface height lives in the slab
        // y ∈ [y0 − A(t), y0 + A(t)] (extruded in x and z). A block disjoint
        // from the slab can never satisfy `crosses`, so it coarsens (or
        // keeps at level 0) without sampling the interface at all.
        let t = (step + 1) as f64 / cfg.total_steps as f64;
        let amp = cfg.final_amplitude * t;
        let domain = self.mesh.config().domain;
        let region = Aabb::new(
            Point::new(domain.lo.x, cfg.y0 - amp, domain.lo.z),
            Point::new(domain.hi.x, cfg.y0 + amp, domain.hi.z),
        );
        self.mesh.blocks_in_region_into(&region, &mut self.slab_ids);
        let slab = &self.slab_ids;
        let changed = self
            .mesh
            .adapt(|b| {
                if slab.binary_search(&b.id).is_err() {
                    return if b.level() > 0 {
                        RefineTag::Coarsen
                    } else {
                        RefineTag::Keep
                    };
                }
                if crosses(b) && b.level() < max_level {
                    RefineTag::Refine
                } else if !crosses(b) && b.level() > 0 {
                    RefineTag::Coarsen
                } else {
                    RefineTag::Keep
                }
            })
            .changed();
        if changed {
            // Origins fall straight out of the adapt changeset — no
            // octant→id HashMap snapshot, no per-block hashing.
            let mut origins = Vec::new();
            origins_from_delta(self.mesh.last_delta(), &mut origins);
            Some(origins)
        } else {
            None
        }
    }
}

impl Workload for InterfaceWorkload {
    fn mesh(&self) -> &AmrMesh {
        &self.mesh
    }

    fn advance(&mut self, step: u64) -> WorkloadStep {
        self.step = step;
        let mut ws = WorkloadStep::default();
        if step.is_multiple_of(self.config.adapt_interval) {
            if let Some(origins) = self.adapt_mesh() {
                ws.mesh_changed = true;
                ws.origins = Some(origins);
            }
        }
        self.recompute_costs();
        ws
    }

    fn block_compute_ns(&self) -> &[f64] {
        &self.costs
    }

    fn total_steps(&self) -> u64 {
        self.config.total_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_mesh::Dim;

    fn workload() -> InterfaceWorkload {
        InterfaceWorkload::new(InterfaceConfig::new(
            MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1),
            200,
        ))
    }

    #[test]
    fn interface_stays_in_domain() {
        let w = workload();
        for step in [0u64, 50, 199] {
            for i in 0..=10 {
                let y = w.interface_y(i as f64 / 10.0, step);
                assert!((0.0..=1.0).contains(&y), "y = {y} at step {step}");
            }
        }
    }

    #[test]
    fn refines_a_sheet_not_a_shell() {
        let mut w = workload();
        let mut changed = 0;
        for step in 0..100 {
            if w.advance(step).mesh_changed {
                changed += 1;
                w.mesh().check_invariants().unwrap();
            }
        }
        assert!(changed > 0);
        assert!(w.mesh().num_blocks() > 64, "interface never refined");
        // Refined blocks concentrate around y0 within the max amplitude.
        for b in w.mesh().blocks().iter().filter(|b| b.level() > 0) {
            let y = b.bounds.center().y;
            assert!(
                (0.5 - 0.35..=0.5 + 0.35).contains(&y),
                "refined block far from interface: y = {y}"
            );
        }
    }

    #[test]
    fn costs_peak_on_the_interface() {
        let mut w = workload();
        for step in 0..60 {
            w.advance(step);
        }
        let (mut on, mut on_n, mut off, mut off_n) = (0.0, 0, 0.0, 0);
        for (b, &c) in w.mesh().blocks().iter().zip(w.block_compute_ns()) {
            let center = b.bounds.center();
            let d = (center.y - w.interface_y(center.x, 59)).abs();
            if d < 0.05 {
                on += c;
                on_n += 1;
            } else if d > 0.2 {
                off += c;
                off_n += 1;
            }
        }
        assert!(on_n > 0 && off_n > 0);
        assert!(on / on_n as f64 > 1.5 * off / off_n as f64);
    }

    #[test]
    fn deterministic() {
        let mut a = workload();
        let mut b = workload();
        for step in 0..40 {
            a.advance(step);
            b.advance(step);
        }
        assert_eq!(a.block_compute_ns(), b.block_compute_ns());
        assert_eq!(a.mesh().num_blocks(), b.mesh().num_blocks());
    }
}
