//! Glue between meshes, placements and the simulators: explicit per-round
//! message lists for the analytic micro-simulator, per-rank MPI programs
//! for the event-driven engine, and cost-origin tracking across adaptation.

use amr_core::cost::CostOrigin;
use amr_core::engine::{PlacementCtx, PlacementError, PlacementReport};
use amr_core::policies::PlacementPolicy;
use amr_core::Placement;
use amr_mesh::{AmrMesh, Octant};
use amr_sim::Message;
use std::collections::HashMap;

/// Build a [`PlacementCtx`] for a mesh-backed placement problem: per-block
/// costs in SFC order plus the mesh snapshot, so locality-aware policies
/// (RCB, edge-cut) and cost-only policies run through one context. Chain
/// further `with_*` builders for a prebuilt neighbor graph, topology hints,
/// or a previous placement.
pub fn placement_ctx<'a>(
    mesh: &'a AmrMesh,
    costs: &'a [f64],
    num_ranks: usize,
) -> PlacementCtx<'a> {
    assert_eq!(
        mesh.num_blocks(),
        costs.len(),
        "cost vector must cover every mesh block"
    );
    PlacementCtx::new(costs, num_ranks).with_mesh(mesh)
}

/// Place the blocks of `mesh` with any unified policy, returning the
/// placement and its [`PlacementReport`] (makespan, imbalance, migration
/// accounting when the context carries a previous placement).
pub fn place_on_mesh(
    policy: &dyn PlacementPolicy,
    mesh: &AmrMesh,
    costs: &[f64],
    num_ranks: usize,
) -> Result<(Placement, PlacementReport), PlacementError> {
    let ctx = placement_ctx(mesh, costs, num_ranks);
    let mut out = Placement::default();
    let report = policy.place_into(&ctx, &mut out)?;
    Ok((out, report))
}

/// Build the boundary-exchange message list for one round: every directed
/// neighbor relation becomes a message sized by its surface class
/// (face > edge > vertex, §VI-C's `commbench` realism requirement).
/// Intra-rank relations are included with `src == dst` (the micro-simulator
/// treats them as memcpys).
pub fn build_round_messages(mesh: &AmrMesh, placement: &Placement) -> Vec<Message> {
    assert_eq!(mesh.num_blocks(), placement.num_blocks());
    let graph = mesh.neighbor_graph();
    let spec = mesh.config().spec;
    let dim = mesh.config().dim;
    let mut out = Vec::with_capacity(graph.total_relations());
    for (block, nbs) in graph.iter() {
        let src = placement.rank_of(block.index());
        for n in nbs {
            out.push(Message {
                src,
                dst: placement.rank_of(n.block.index()),
                bytes: spec.message_bytes(dim, n.kind.codim()),
            });
        }
    }
    out
}

/// Derive the [`CostOrigin`] of every block of the *new* mesh given the
/// `octant → old index` map captured before adaptation.
///
/// * octant unchanged → `Same`;
/// * octant's parent was an old leaf → `SplitFrom` (refinement);
/// * octant's children were old leaves → `MergedFrom` (coarsening);
/// * anything else → `Fresh` (does not occur for single adapt steps).
pub fn cost_origins(old: &HashMap<Octant, usize>, mesh: &AmrMesh) -> Vec<CostOrigin> {
    let dim = mesh.config().dim;
    mesh.blocks()
        .iter()
        .map(|b| {
            if let Some(&i) = old.get(&b.octant) {
                return CostOrigin::Same(i);
            }
            if let Some(p) = b.octant.parent() {
                if let Some(&i) = old.get(&p) {
                    return CostOrigin::SplitFrom(i);
                }
            }
            let children = b.octant.children(dim);
            let merged: Vec<usize> = children
                .iter()
                .filter_map(|c| old.get(c).copied())
                .collect();
            if merged.len() == children.len() {
                CostOrigin::MergedFrom(merged)
            } else {
                CostOrigin::Fresh
            }
        })
        .collect()
}

/// Compile a boundary exchange into per-rank [`amr_sim::Op`] programs for
/// the event-driven MPI engine: each rank posts receives for every inbound
/// relation, dispatches its sends (optionally after `compute_ns` of work),
/// waits for completion, and enters a barrier.
///
/// Message tags encode the *sending block*, so fan-in from multiple blocks
/// on one source rank matches deterministically.
pub fn build_mpi_programs(
    mesh: &AmrMesh,
    placement: &Placement,
    compute_ns: &[u64],
    sends_first: bool,
) -> Vec<Vec<amr_sim::Op>> {
    use amr_sim::Op;
    let ranks = placement.num_ranks();
    assert_eq!(compute_ns.len(), ranks);
    let graph = mesh.neighbor_graph();
    let spec = mesh.config().spec;
    let dim = mesh.config().dim;

    let mut recvs: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut sends: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    for (block, nbs) in graph.iter() {
        let src = placement.rank_of(block.index());
        for n in nbs {
            let dst = placement.rank_of(n.block.index());
            if dst == src {
                continue; // intra-rank memcpy: no MPI ops
            }
            let bytes = spec.message_bytes(dim, n.kind.codim());
            // Tag = sending block id; unique per (src block, direction set)
            // is not required — FIFO matching handles duplicates.
            sends[src as usize].push(Op::Isend {
                dst,
                tag: block.0,
                bytes,
            });
            recvs[dst as usize].push(Op::Irecv { src, tag: block.0 });
        }
    }

    (0..ranks)
        .map(|r| {
            let mut prog = Vec::with_capacity(recvs[r].len() + sends[r].len() + 3);
            prog.extend(recvs[r].iter().copied());
            if sends_first {
                prog.extend(sends[r].iter().copied());
                prog.push(amr_sim::Op::Compute(compute_ns[r]));
            } else {
                prog.push(amr_sim::Op::Compute(compute_ns[r]));
                prog.extend(sends[r].iter().copied());
            }
            prog.push(amr_sim::Op::WaitAll);
            prog.push(amr_sim::Op::Barrier);
            prog
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_core::policies::{Baseline, PlacementPolicy};
    use amr_mesh::{Dim, MeshConfig, RefineTag};

    fn mesh() -> AmrMesh {
        AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2))
    }

    #[test]
    fn message_list_matches_graph_relations() {
        let m = mesh();
        let p = Baseline.place(&vec![1.0; m.num_blocks()], 8);
        let msgs = build_round_messages(&m, &p);
        assert_eq!(msgs.len(), m.neighbor_graph().total_relations());
        // All ranks in range; message sizes are one of the three classes.
        let spec = m.config().spec;
        let classes = [
            spec.message_bytes(Dim::D3, 1),
            spec.message_bytes(Dim::D3, 2),
            spec.message_bytes(Dim::D3, 3),
        ];
        for msg in &msgs {
            assert!((msg.src as usize) < 8 && (msg.dst as usize) < 8);
            assert!(classes.contains(&msg.bytes));
        }
    }

    #[test]
    fn message_locality_depends_on_placement() {
        let m = mesh();
        let n = m.num_blocks();
        let all_one = Placement::new(vec![0; n], 8);
        let spread = Baseline.place(&vec![1.0; n], 8);
        let msgs_one = build_round_messages(&m, &all_one);
        let msgs_spread = build_round_messages(&m, &spread);
        let self_one = msgs_one.iter().filter(|m| m.src == m.dst).count();
        let self_spread = msgs_spread.iter().filter(|m| m.src == m.dst).count();
        assert_eq!(self_one, msgs_one.len());
        assert!(self_spread < msgs_spread.len());
    }

    #[test]
    fn place_on_mesh_unifies_cost_only_and_mesh_aware_policies() {
        use amr_core::engine::PlacementError;
        use amr_core::policies::{Lpt, Rcb};
        let m = mesh();
        let costs = vec![1.0; m.num_blocks()];

        // Cost-only and mesh-aware policies run through the same call.
        let (p_lpt, rep_lpt) = place_on_mesh(&Lpt, &m, &costs, 8).unwrap();
        let (p_rcb, rep_rcb) = place_on_mesh(&Rcb, &m, &costs, 8).unwrap();
        assert_eq!(p_lpt.num_blocks(), m.num_blocks());
        assert_eq!(p_rcb.num_blocks(), m.num_blocks());
        assert!(rep_lpt.makespan > 0.0);
        assert!(rep_rcb.imbalance >= 1.0);

        // Errors surface typed instead of panicking.
        let err = place_on_mesh(&Lpt, &m, &costs, 0).unwrap_err();
        assert!(matches!(err, PlacementError::NoRanks));
    }

    #[test]
    fn origins_same_for_unchanged_mesh() {
        let m = mesh();
        let old: HashMap<Octant, usize> = m
            .blocks()
            .iter()
            .map(|b| (b.octant, b.id.index()))
            .collect();
        let origins = cost_origins(&old, &m);
        for (i, o) in origins.iter().enumerate() {
            assert_eq!(*o, CostOrigin::Same(i));
        }
    }

    #[test]
    fn origins_track_refinement_and_coarsening() {
        let mut m = mesh();
        let old: HashMap<Octant, usize> = m
            .blocks()
            .iter()
            .map(|b| (b.octant, b.id.index()))
            .collect();
        m.adapt(|b| {
            if b.id.index() == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let origins = cost_origins(&old, &m);
        let splits = origins
            .iter()
            .filter(|o| matches!(o, CostOrigin::SplitFrom(0)))
            .count();
        assert_eq!(splits, 8);
        let sames = origins
            .iter()
            .filter(|o| matches!(o, CostOrigin::Same(_)))
            .count();
        assert_eq!(sames, origins.len() - 8);

        // Now coarsen back and check MergedFrom.
        let old2: HashMap<Octant, usize> = m
            .blocks()
            .iter()
            .map(|b| (b.octant, b.id.index()))
            .collect();
        m.adapt(|b| {
            if b.level() > 0 {
                RefineTag::Coarsen
            } else {
                RefineTag::Keep
            }
        });
        let origins2 = cost_origins(&old2, &m);
        let merged = origins2
            .iter()
            .filter(|o| matches!(o, CostOrigin::MergedFrom(v) if v.len() == 8))
            .count();
        assert_eq!(merged, 1);
    }

    /// The O(n) delta-derived origins must agree with this octant-matching
    /// oracle everywhere the oracle has an answer. The single allowed
    /// divergence: blocks created multiple levels below an old leaf in one
    /// adapt pass (ripple cascades), where the oracle cannot see past the
    /// immediate parent and reports `Fresh` while the fate table still
    /// knows the old ancestor (`SplitFrom`) — strictly more ancestry.
    #[test]
    fn delta_origins_match_octant_oracle() {
        use amr_core::cost::origins_from_delta;
        let mut m = mesh();
        let mut from_delta = Vec::new();
        for salt in 0..8u64 {
            let old: HashMap<Octant, usize> = m
                .blocks()
                .iter()
                .map(|b| (b.octant, b.id.index()))
                .collect();
            m.adapt(|b| {
                let h = (b.id.index() as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(salt);
                match h % 4 {
                    0 => RefineTag::Refine,
                    1 => RefineTag::Coarsen,
                    _ => RefineTag::Keep,
                }
            });
            let oracle = cost_origins(&old, &m);
            origins_from_delta(m.last_delta(), &mut from_delta);
            assert_eq!(oracle.len(), from_delta.len());
            for (i, (d, o)) in from_delta.iter().zip(&oracle).enumerate() {
                match (d, o) {
                    (CostOrigin::SplitFrom(_), CostOrigin::Fresh) => {}
                    _ => assert_eq!(d, o, "origin mismatch at new block {i}"),
                }
            }
        }
    }
}

/// Compile a *per-block* task schedule into MPI programs: for every rank,
/// each of its blocks contributes `compute kernel → boundary sends`, then
/// the rank waits on all inbound boundary data, runs a flux-correction
/// round (fine→coarse face fix-ups), and enters the step barrier.
///
/// Unlike [`build_mpi_programs`] (rank-aggregated), this preserves the task
/// granularity of §II-B's DAG model: a block's sends cannot dispatch before
/// that block's kernel finishes, so compute imbalance *within* a rank delays
/// only the affected block's messages — the structure the §IV-B reordering
/// mitigation exploits.
pub fn build_block_programs(
    mesh: &AmrMesh,
    placement: &Placement,
    block_compute_ns: &[f64],
    sends_first: bool,
) -> Vec<Vec<amr_sim::Op>> {
    use amr_mesh::NeighborKind;
    use amr_sim::Op;
    let ranks = placement.num_ranks();
    assert_eq!(block_compute_ns.len(), mesh.num_blocks());
    let graph = mesh.neighbor_graph();
    let spec = mesh.config().spec;
    let dim = mesh.config().dim;

    // Per-rank: receives (boundary + flux), per-block send groups.
    let mut boundary_recvs: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut flux_recvs: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    let mut flux_sends: Vec<Vec<Op>> = vec![Vec::new(); ranks];
    // (rank -> list of (block compute ns, its boundary sends))
    let mut block_work: Vec<Vec<(u64, Vec<Op>)>> = vec![Vec::new(); ranks];

    for (block, nbs) in graph.iter() {
        let src = placement.rank_of(block.index());
        let mut sends = Vec::new();
        for n in nbs {
            let dst = placement.rank_of(n.block.index());
            if dst != src {
                let bytes = spec.message_bytes(dim, n.kind.codim());
                sends.push(Op::Isend {
                    dst,
                    tag: block.0,
                    bytes,
                });
                boundary_recvs[dst as usize].push(Op::Irecv { src, tag: block.0 });
            }
            // Flux correction: fine -> coarse across faces only. Use a
            // disjoint tag space (high bit) so rounds cannot cross-match.
            if n.level_delta == -1 && n.kind == NeighborKind::Face && dst != src {
                let bytes = spec.message_bytes(dim, 1) / 4;
                let tag = block.0 | 0x8000_0000;
                flux_sends[src as usize].push(Op::Isend { dst, tag, bytes });
                flux_recvs[dst as usize].push(Op::Irecv { src, tag });
            }
        }
        block_work[src as usize].push((block_compute_ns[block.index()] as u64, sends));
    }

    (0..ranks)
        .map(|r| {
            let mut prog = Vec::new();
            prog.extend(boundary_recvs[r].iter().copied());
            for (compute, sends) in &block_work[r] {
                if sends_first {
                    // Sends of *previous* blocks already dispatched; this
                    // block's sends go out right after its kernel.
                    prog.extend(sends.iter().copied());
                    prog.push(amr_sim::Op::Compute(*compute));
                } else {
                    prog.push(amr_sim::Op::Compute(*compute));
                    prog.extend(sends.iter().copied());
                }
            }
            prog.push(amr_sim::Op::WaitAll);
            // Flux round: post its receives only now — posting them before
            // the boundary WaitAll would make ranks wait on messages that
            // can only be sent after that same WaitAll (mutual deadlock).
            prog.extend(flux_recvs[r].iter().copied());
            prog.extend(flux_sends[r].iter().copied());
            prog.push(amr_sim::Op::WaitAll);
            prog.push(amr_sim::Op::Barrier);
            prog
        })
        .collect()
}

#[cfg(test)]
mod block_program_tests {
    use super::*;
    use amr_core::policies::{Baseline, PlacementPolicy};
    use amr_mesh::{Dim, MeshConfig, RefineTag};
    use amr_sim::{MpiWorld, NetworkConfig, Topology};

    fn refined_mesh() -> AmrMesh {
        let mut m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
        m.adapt(|b| {
            if b.id.index() % 7 == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m
    }

    fn quiet() -> NetworkConfig {
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        }
    }

    #[test]
    fn block_programs_execute_and_balance_messages() {
        let mesh = refined_mesh();
        let ranks = 16;
        let costs = vec![50_000.0; mesh.num_blocks()];
        let placement = Baseline.place(&vec![1.0; mesh.num_blocks()], ranks);
        let programs = build_block_programs(&mesh, &placement, &costs, true);
        let mut world = MpiWorld::new(Topology::paper(ranks), quiet());
        let res = world.run(programs).expect("block-level exchange completes");
        let sent: u32 = res.ranks.iter().map(|s| s.sent).sum();
        let recv: u32 = res.ranks.iter().map(|s| s.received).sum();
        assert_eq!(sent, recv);
        assert!(sent > 0);
    }

    #[test]
    fn flux_round_adds_fine_coarse_messages_only() {
        let uniform = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
        let refined = refined_mesh();
        let ranks = 16;
        let count_ops = |mesh: &AmrMesh| {
            let n = mesh.num_blocks();
            let p = Baseline.place(&vec![1.0; n], ranks);
            let progs = build_block_programs(mesh, &p, &vec![1000.0; n], true);
            progs
                .iter()
                .flatten()
                .filter(|op| matches!(op, amr_sim::Op::Isend { tag, .. } if tag & 0x8000_0000 != 0))
                .count()
        };
        assert_eq!(count_ops(&uniform), 0, "uniform mesh has no flux fix-ups");
        assert!(count_ops(&refined) > 0, "refined mesh must flux-correct");
    }

    #[test]
    fn per_block_granularity_beats_rank_aggregated_on_wait() {
        // With one slow block per rank, block-granular sends-first lets the
        // fast blocks' messages out early; the rank-aggregated program with
        // compute-first holds everything behind the total compute.
        let mesh = refined_mesh();
        let ranks = 16;
        let n = mesh.num_blocks();
        let mut costs = vec![20_000.0; n];
        for c in costs.iter_mut().step_by(5) {
            *c = 2_000_000.0;
        }
        let placement = Baseline.place(&vec![1.0; n], ranks);
        let mut world = MpiWorld::new(Topology::paper(ranks), quiet());

        let block_level = world
            .run(build_block_programs(&mesh, &placement, &costs, true))
            .unwrap();
        // Rank-aggregated compute totals for the coarse builder.
        let mut rank_compute = vec![0u64; ranks];
        for (b, &c) in costs.iter().enumerate() {
            rank_compute[placement.rank_of(b) as usize] += c as u64;
        }
        let aggregated_cf = world
            .run(build_mpi_programs(&mesh, &placement, &rank_compute, false))
            .unwrap();
        let wait_block: u64 = block_level.ranks.iter().map(|s| s.wait_ns).sum();
        let wait_agg: u64 = aggregated_cf.ranks.iter().map(|s| s.wait_ns).sum();
        assert!(
            wait_block < wait_agg,
            "block-granular {wait_block} should beat aggregated compute-first {wait_agg}"
        );
    }
}

/// Build the block-migration message list for a redistribution from `old`
/// to `new`: every moved block ships its full payload (all cells, all
/// variables) from its old rank to its new one. Feed to the
/// micro-simulator to price a migration at message granularity (the macro
/// simulator prices the same set analytically).
pub fn build_migration_messages(mesh: &AmrMesh, old: &Placement, new: &Placement) -> Vec<Message> {
    assert_eq!(old.num_blocks(), new.num_blocks());
    assert_eq!(mesh.num_blocks(), new.num_blocks());
    let spec = mesh.config().spec;
    let dim = mesh.config().dim;
    let block_bytes = spec.cells(dim) * spec.num_vars as u64 * spec.bytes_per_value as u64;
    (0..old.num_blocks())
        .filter(|&b| old.rank_of(b) != new.rank_of(b))
        .map(|b| Message {
            src: old.rank_of(b),
            dst: new.rank_of(b),
            bytes: block_bytes,
        })
        .collect()
}

#[cfg(test)]
mod migration_tests {
    use super::*;
    use amr_core::policies::{Baseline, Lpt, PlacementPolicy};
    use amr_mesh::{Dim, MeshConfig};

    #[test]
    fn migration_list_matches_diff() {
        let mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1));
        let costs: Vec<f64> = (0..mesh.num_blocks())
            .map(|i| 1.0 + (i % 3) as f64)
            .collect();
        let old = Baseline.place(&costs, 8);
        let new = Lpt.place(&costs, 8);
        let msgs = build_migration_messages(&mesh, &old, &new);
        assert_eq!(msgs.len(), new.migration_count(&old));
        // All payloads are whole blocks.
        let expect = 16u64 * 16 * 16 * 5 * 8;
        assert!(msgs.iter().all(|m| m.bytes == expect && m.src != m.dst));
    }

    #[test]
    fn identity_migration_is_empty() {
        let mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (32, 32, 32), 1));
        let p = Baseline.place(&vec![1.0; mesh.num_blocks()], 4);
        assert!(build_migration_messages(&mesh, &p, &p).is_empty());
    }
}
