//! # amr-workloads — workload generators for AMR placement studies
//!
//! Everything the paper's evaluation runs on, rebuilt synthetically:
//!
//! * [`sedov`] — a Sedov–Taylor blast-wave driver: an analytic spherical
//!   shock front (`r(t) ∝ t^{2/5}`) sweeps the domain, tagging blocks near
//!   the front for refinement and inflating their compute costs (steep
//!   gradients ⇒ more solver iterations, §II-B). Reproduces the Table I
//!   block-growth dynamics and drives Fig. 6.
//! * [`cooling`] — a low-variability "galaxy cooling"-style workload: the
//!   paper notes such codes benefit less from placement (§VI).
//! * [`distributions`] — seeded samplers for the `scalebench` cost
//!   distributions (exponential, Gaussian, power-law; §VI-C), hand-rolled on
//!   `rand` to avoid an extra dependency.
//! * [`scenarios`] — the Table I problem configurations (512–4096 ranks)
//!   with scaled-down step counts for laptop-speed reproduction.
//! * [`exchange`] — helpers turning a mesh + placement into the explicit
//!   per-round message list `commbench` feeds the micro-simulator.

pub mod cooling;
pub mod distributions;
pub mod exchange;
pub mod interface;
pub mod meshgen;
pub mod scenarios;
pub mod sedov;

pub use cooling::CoolingWorkload;
pub use distributions::CostDistribution;
pub use interface::{InterfaceConfig, InterfaceWorkload};
pub use meshgen::{large_refined_mesh, random_refined_mesh};
pub use scenarios::SedovScenario;
pub use sedov::{SedovConfig, SedovWorkload};
