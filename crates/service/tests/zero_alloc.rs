//! Proof of the warm-hit zero-allocation claim: serving a `Rebalance` on a
//! session whose engine came warm out of the fingerprint LRU performs **no
//! heap allocation** — submit, batch dispatch, warm placement, response and
//! latency logging all ride pre-sized buffers.
//!
//! This file must stay a single-test binary: the counting allocator is
//! process-global, so a concurrently running sibling test would pollute the
//! measurement.

use amr_service::{Request, Response, Service, ServiceConfig, SessionSpec};
use amr_workloads::random_refined_mesh;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_hit_rebalance_serve_is_allocation_free() {
    let mesh = random_refined_mesh(16, 6.0, 42);
    let mut svc = Service::new(ServiceConfig::default());

    // First tenancy: cold placement, then close to park the warm engine in
    // the LRU under the mesh's fingerprint.
    let id = svc.open_session(
        mesh.clone(),
        SessionSpec::tuned(16, Box::new(amr_core::Lpt)),
    );
    svc.submit(id, Request::Rebalance);
    svc.drain();
    assert!(matches!(
        svc.responses(id)[0],
        Response::Rebalanced { warm: false, .. }
    ));
    svc.close_session(id);
    assert_eq!(svc.cache_len(), 1);

    // Returning tenant: the fingerprint hits the LRU and the engine comes
    // back primed.
    let id = svc.open_session(mesh, SessionSpec::tuned(16, Box::new(amr_core::Lpt)));
    assert_eq!(svc.stats().warm_hits, 1);

    // Warm-up rounds size the submit queue, response and latency logs.
    for _ in 0..3 {
        svc.submit(id, Request::Rebalance);
        svc.drain();
        assert!(matches!(
            svc.responses(id)[0],
            Response::Rebalanced { warm: true, .. }
        ));
        svc.clear_responses(id);
    }

    // Measured steady state: the whole warm serve cycle — submit, batch
    // drain, warm rebalance, response + latency logging — must hit zero.
    // Min-of-5 so unrelated harness bookkeeping can't fake a failure; the
    // service itself must have at least one allocation-free cycle.
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = alloc_count();
        svc.submit(id, Request::Rebalance);
        let served = svc.drain();
        let delta = alloc_count() - before;
        min_delta = min_delta.min(delta);
        assert_eq!(served, 1);
        assert!(matches!(
            svc.responses(id)[0],
            Response::Rebalanced { warm: true, .. }
        ));
        svc.clear_responses(id);
    }
    assert_eq!(
        min_delta, 0,
        "warm-hit serve cycle allocated {min_delta} times"
    );
}
