//! Property: a session served through `amr-service` is **bitwise
//! identical** to driving the engine and `MacroSim` directly — placements
//! (rank assignments and makespan bits) and virtual times (`total_ns`
//! bits) — for arbitrary mixed request scripts, and batch service does not
//! depend on the worker count.

use amr_core::trigger::RebalanceTrigger;
use amr_core::{Lpt, PlacementEngine};
use amr_service::{
    front_tag, session_costs, QuerySpec, Request, Response, Service, ServiceConfig, SessionSpec,
};
use amr_sim::{MacroSim, SimConfig, Workload, WorkloadStep};
use amr_telemetry::{EventTable, Phase, Query};
use amr_workloads::random_refined_mesh;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Rebalance,
    Adapt(f64),
    Simulate(u64),
    Query(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Rebalance),
        (0.35f64..0.65).prop_map(Op::Adapt),
        (1u64..=3).prop_map(Op::Simulate),
        (0u8..3).prop_map(Op::Query),
    ]
}

fn query_spec(k: u8) -> QuerySpec {
    match k {
        0 => QuerySpec::default(),
        1 => QuerySpec {
            phase: Some(Phase::Compute),
            ..QuerySpec::default()
        },
        _ => QuerySpec {
            step_range: Some((0, 2)),
            ..QuerySpec::default()
        },
    }
}

/// The direct (service-free) arm's workload: same shape as the service's
/// internal epoch workload.
struct DirectEpoch<'a> {
    mesh: &'a amr_mesh::AmrMesh,
    costs: &'a [f64],
    steps: u64,
}

impl Workload for DirectEpoch<'_> {
    fn mesh(&self) -> &amr_mesh::AmrMesh {
        self.mesh
    }
    fn advance(&mut self, _step: u64) -> WorkloadStep {
        WorkloadStep {
            mesh_changed: false,
            origins: None,
        }
    }
    fn block_compute_ns(&self) -> &[f64] {
        self.costs
    }
    fn total_steps(&self) -> u64 {
        self.steps
    }
}

proptest! {
    #[test]
    fn service_is_bitwise_identical_to_direct_calls(
        seed in 0u64..4,
        ranks_pick in 0usize..3,
        script in prop::collection::vec(op_strategy(), 1..7),
    ) {
        let ranks = [8, 12, 16][ranks_pick];
        let base_mesh = random_refined_mesh(16, 6.0, 100 + seed);

        // ---- service arm -------------------------------------------------
        let mut svc = Service::new(ServiceConfig::default());
        let id = svc.open_session(
            base_mesh.clone(),
            SessionSpec::tuned(ranks, Box::new(Lpt)),
        );
        for op in &script {
            let req = match op {
                Op::Rebalance => Request::Rebalance,
                Op::Adapt(front) => Request::Adapt { front: *front },
                Op::Simulate(steps) => Request::Simulate { steps: *steps },
                Op::Query(k) => Request::Query(query_spec(*k)),
            };
            svc.submit(id, req);
        }
        svc.drain();
        let responses = svc.responses(id).to_vec();
        prop_assert_eq!(responses.len(), script.len());

        // ---- direct arm: raw engine / MacroSim / Query calls -------------
        let mut mesh = base_mesh;
        let mut costs = Vec::new();
        session_costs(mesh.num_blocks(), &mut costs);
        let mut engine = PlacementEngine::new();
        let mut sim: Option<MacroSim> = None;
        let mut telemetry: Option<EventTable> = None;

        // `session_placement` reads post-drain state, so the slice compare
        // is only valid at the script's *final* Rebalance.
        let last_rebalance = script.iter().rposition(|op| matches!(op, Op::Rebalance));
        for (i, (op, resp)) in script.iter().zip(&responses).enumerate() {
            match op {
                Op::Rebalance => {
                    let report = engine
                        .rebalance_with(&Lpt, &costs, ranks, Some(&mesh), None)
                        .expect("direct rebalance");
                    let Response::Rebalanced { makespan, imbalance, moved, .. } = resp else {
                        panic!("expected Rebalanced, got {resp:?}");
                    };
                    prop_assert_eq!(makespan.to_bits(), report.makespan.to_bits());
                    prop_assert_eq!(imbalance.to_bits(), report.imbalance.to_bits());
                    prop_assert_eq!(
                        *moved,
                        report.migration.map_or(0, |m| m.moved as u64)
                    );
                    if Some(i) == last_rebalance {
                        let placement = svc.session_placement(id).expect("service placement");
                        prop_assert_eq!(
                            placement.as_slice(),
                            engine.placement().unwrap().as_slice(),
                            "service placement must be bitwise identical to the direct engine's"
                        );
                    }
                }
                Op::Adapt(front) => {
                    let max_level = mesh.config().max_level;
                    let changed = mesh.adapt(|b| front_tag(b, *front, max_level)).changed();
                    if changed {
                        session_costs(mesh.num_blocks(), &mut costs);
                    }
                    prop_assert_eq!(
                        resp,
                        &Response::Adapted { blocks: mesh.num_blocks(), changed }
                    );
                }
                Op::Simulate(steps) => {
                    let sim = sim.get_or_insert_with(|| {
                        MacroSim::try_new(SimConfig::tuned(ranks)).expect("tuned config valid")
                    });
                    let mut w = DirectEpoch { mesh: &mesh, costs: &costs, steps: *steps };
                    let report = sim
                        .try_run(&mut w, &Lpt, RebalanceTrigger::OnMeshChange)
                        .expect("direct run");
                    let Response::Simulated { total_ns, steps: s, lb_invocations } = resp else {
                        panic!("expected Simulated, got {resp:?}");
                    };
                    prop_assert_eq!(
                        total_ns.to_bits(),
                        report.total_ns.to_bits(),
                        "virtual time must be bitwise identical to the direct MacroSim run"
                    );
                    prop_assert_eq!(*s, *steps);
                    prop_assert_eq!(*lb_invocations, report.lb_invocations);
                    telemetry = Some(report.telemetry);
                }
                Op::Query(k) => match &telemetry {
                    None => prop_assert!(
                        matches!(resp, Response::Failed { .. }),
                        "query before any simulate must fail: {:?}", resp
                    ),
                    Some(table) => {
                        let spec = query_spec(*k);
                        let mut q = Query::new(table);
                        if let Some(p) = spec.phase {
                            q = q.phase(p);
                        }
                        if let Some((lo, hi)) = spec.step_range {
                            q = q.step_range(lo, hi);
                        }
                        let s = q.summary();
                        prop_assert_eq!(
                            resp,
                            &Response::Queried {
                                count: s.count,
                                total_duration_ns: s.total_duration_ns,
                                max_duration_ns: s.max_duration_ns,
                            }
                        );
                    }
                },
            }
        }

        // ---- thread-count independence -----------------------------------
        // The same script over a 4-thread service (alongside decoy sessions
        // so the batch actually parallelizes) yields identical responses.
        let mut svc4 = Service::new(ServiceConfig { threads: 4, ..ServiceConfig::default() });
        let main = svc4.open_session(
            random_refined_mesh(16, 6.0, 100 + seed),
            SessionSpec::tuned(ranks, Box::new(Lpt)),
        );
        let decoys: Vec<_> = (0..3)
            .map(|i| svc4.open_session(random_refined_mesh(16, 6.0, 200 + i), SessionSpec::tuned(8, Box::new(Lpt))))
            .collect();
        for op in &script {
            let req = match op {
                Op::Rebalance => Request::Rebalance,
                Op::Adapt(front) => Request::Adapt { front: *front },
                Op::Simulate(steps) => Request::Simulate { steps: *steps },
                Op::Query(k) => Request::Query(query_spec(*k)),
            };
            svc4.submit(main, req);
        }
        for &d in &decoys {
            svc4.submit(d, Request::Rebalance);
        }
        svc4.drain();
        prop_assert_eq!(svc4.responses(main), &responses[..]);
    }
}
