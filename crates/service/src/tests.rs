use super::*;
use amr_core::policies::{Cplx, Lpt};
use amr_workloads::random_refined_mesh;

fn mesh(seed: u64) -> AmrMesh {
    // Large enough that the generator's overshoot guard lets spheres
    // refine: below ~70 target blocks every seed yields the bare root grid
    // (and thus one shared fingerprint).
    random_refined_mesh(16, 6.0, seed)
}

fn spec(num_ranks: usize) -> SessionSpec {
    SessionSpec::tuned(num_ranks, Box::new(Lpt))
}

#[test]
fn fifo_order_and_mixed_traffic_in_one_batch() {
    let mut svc = Service::new(ServiceConfig::default());
    let id = svc.open_session(mesh(7), spec(8));
    svc.submit(id, Request::Rebalance);
    svc.submit(id, Request::Adapt { front: 0.45 });
    svc.submit(id, Request::Rebalance);
    svc.submit(id, Request::Simulate { steps: 4 });
    svc.submit(
        id,
        Request::Query(QuerySpec {
            phase: Some(Phase::Compute),
            ..QuerySpec::default()
        }),
    );
    assert_eq!(svc.drain(), 5);
    let r = svc.responses(id);
    assert_eq!(r.len(), 5, "one response per request, in order");
    assert!(
        matches!(r[0], Response::Rebalanced { warm: false, .. }),
        "first placement is cold: {:?}",
        r[0]
    );
    assert!(matches!(r[1], Response::Adapted { .. }));
    assert!(
        matches!(r[2], Response::Rebalanced { warm: true, .. }),
        "second placement rides the primed engine: {:?}",
        r[2]
    );
    assert!(matches!(r[3], Response::Simulated { steps: 4, .. }));
    assert!(
        matches!(r[4], Response::Queried { count, .. } if count > 0),
        "tuned sim records compute telemetry: {:?}",
        r[4]
    );
    // Drained queue: nothing left to serve.
    assert_eq!(svc.drain(), 0);
}

#[test]
fn query_before_simulate_fails_without_killing_the_session() {
    let mut svc = Service::new(ServiceConfig::default());
    let id = svc.open_session(mesh(11), spec(8));
    svc.submit(id, Request::Query(QuerySpec::default()));
    svc.submit(id, Request::Rebalance);
    svc.drain();
    let r = svc.responses(id);
    assert!(matches!(&r[0], Response::Failed { error } if error.contains("Simulate")));
    assert!(matches!(r[1], Response::Rebalanced { .. }));
}

#[test]
fn invalid_sim_config_fails_the_request_not_the_process() {
    let mut svc = Service::new(ServiceConfig::default());
    let mut bad = spec(8);
    bad.sim.network.fabric.bytes_per_ns = 0.0;
    let id = svc.open_session(mesh(3), bad);
    svc.submit(id, Request::Simulate { steps: 2 });
    svc.submit(id, Request::Rebalance);
    svc.drain();
    let r = svc.responses(id);
    assert!(
        matches!(&r[0], Response::Failed { error } if error.contains("bytes_per_ns")),
        "hardened constructor surfaces the rejection: {:?}",
        r[0]
    );
    assert!(
        matches!(r[1], Response::Rebalanced { .. }),
        "session lives on"
    );
}

#[test]
fn zero_rank_session_fails_rebalance_gracefully() {
    let mut svc = Service::new(ServiceConfig::default());
    let id = svc.open_session(
        mesh(5),
        SessionSpec {
            num_ranks: 0,
            policy: Box::new(Lpt),
            sim: SimConfig::tuned(8),
        },
    );
    svc.submit(id, Request::Rebalance);
    svc.drain();
    assert!(matches!(svc.responses(id)[0], Response::Failed { .. }));
}

#[test]
fn lru_evicts_oldest_and_refills_warm() {
    let mut svc = Service::new(ServiceConfig {
        engine_cache_capacity: 2,
        ..ServiceConfig::default()
    });
    let meshes = [mesh(101), mesh(202), mesh(303)];
    let mut fps = [0u64; 3];
    // Open → rebalance → close each shape once: cache fills to [0, 1],
    // then shape 2 evicts shape 0.
    for (i, m) in meshes.iter().enumerate() {
        let id = svc.open_session(m.clone(), spec(8));
        fps[i] = svc.session_fingerprint(id).unwrap();
        svc.submit(id, Request::Rebalance);
        svc.drain();
        svc.close_session(id);
    }
    assert_ne!(fps[0], fps[1]);
    assert_ne!(fps[1], fps[2]);
    assert_eq!(svc.cache_len(), 2);
    assert!(!svc.cache_contains(fps[0]), "oldest fingerprint evicted");
    assert!(svc.cache_contains(fps[1]) && svc.cache_contains(fps[2]));
    assert_eq!(svc.stats().warm_hits, 0);
    assert_eq!(svc.stats().cold_misses, 3);

    // Evicted fingerprint → cold path again.
    let id = svc.open_session(meshes[0].clone(), spec(8));
    assert_eq!(svc.stats().cold_misses, 4);
    svc.submit(id, Request::Rebalance);
    svc.drain();
    assert!(
        matches!(
            svc.responses(id)[0],
            Response::Rebalanced { warm: false, .. }
        ),
        "evicted shape pays the cold path"
    );
    svc.close_session(id); // re-parks shape 0, evicting shape 1

    // Re-inserted fingerprint → warm path, and the warm placement is
    // bitwise identical to the cold one it replaced.
    let id = svc.open_session(meshes[0].clone(), spec(8));
    assert_eq!(svc.stats().warm_hits, 1);
    svc.submit(id, Request::Rebalance);
    svc.drain();
    let warm_resp = svc.responses(id)[0].clone();
    assert!(
        matches!(warm_resp, Response::Rebalanced { warm: true, .. }),
        "refilled shape rides the warm engine: {warm_resp:?}"
    );
    let warm_placement = svc.session_placement(id).unwrap().clone();

    // Direct cold reference for the same epoch.
    let mut costs = Vec::new();
    session_costs(meshes[0].num_blocks(), &mut costs);
    let mut engine = PlacementEngine::new();
    engine
        .rebalance_with(&Lpt, &costs, 8, Some(&meshes[0]), None)
        .unwrap();
    assert_eq!(
        warm_placement.as_slice(),
        engine.placement().unwrap().as_slice(),
        "warm-cache placement is bitwise identical to a cold engine's"
    );
}

#[test]
fn unplaced_sessions_do_not_pollute_the_cache() {
    let mut svc = Service::new(ServiceConfig::default());
    let id = svc.open_session(mesh(17), spec(8));
    svc.close_session(id);
    assert_eq!(svc.cache_len(), 0, "no primed placement, nothing to park");
}

#[test]
fn adapt_after_rebalance_parks_under_the_placed_fingerprint() {
    let mut svc = Service::new(ServiceConfig::default());
    let m = mesh(23);
    let id = svc.open_session(m.clone(), spec(8));
    let placed_fp = svc.session_fingerprint(id).unwrap();
    svc.submit(id, Request::Rebalance);
    svc.submit(id, Request::Adapt { front: 0.5 });
    svc.drain();
    let adapted_fp = svc.session_fingerprint(id).unwrap();
    assert!(
        matches!(
            svc.responses(id)[1],
            Response::Adapted { changed: true, .. }
        ),
        "front sweep must change the mesh for this test to bite"
    );
    assert_ne!(placed_fp, adapted_fp);
    svc.close_session(id);
    // The engine's placement solves the *pre-adapt* epoch; it parks under
    // that fingerprint, not the adapted one.
    assert!(svc.cache_contains(placed_fp));
    assert!(!svc.cache_contains(adapted_fp));
    // And the original shape checks it back out warm.
    svc.open_session(m, spec(8));
    assert_eq!(svc.stats().warm_hits, 1);
}

#[test]
fn batched_drain_is_bitwise_identical_to_serial_at_any_thread_count() {
    // Six sessions with distinct shapes, policies and traffic mixes; the
    // whole batch drains in one dispatch. Responses must not depend on the
    // worker count.
    fn run(threads: usize) -> Vec<Vec<Response>> {
        let mut svc = Service::new(ServiceConfig {
            threads,
            ..ServiceConfig::default()
        });
        let ids: Vec<SessionId> = (0..6)
            .map(|i| {
                let policy: BoxedPolicy = if i % 2 == 0 {
                    Box::new(Lpt)
                } else {
                    Box::new(Cplx::new(50))
                };
                svc.open_session(
                    mesh(1000 + i as u64),
                    SessionSpec {
                        num_ranks: 8 + 4 * (i % 3),
                        policy,
                        sim: SimConfig::tuned(8 + 4 * (i % 3)),
                    },
                )
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            svc.submit(id, Request::Rebalance);
            if i % 2 == 0 {
                svc.submit(
                    id,
                    Request::Adapt {
                        front: 0.4 + 0.05 * i as f64,
                    },
                );
                svc.submit(id, Request::Rebalance);
            }
            svc.submit(
                id,
                Request::Simulate {
                    steps: 2 + (i as u64 % 3),
                },
            );
            svc.submit(id, Request::Query(QuerySpec::default()));
        }
        svc.drain();
        ids.iter().map(|&id| svc.responses(id).to_vec()).collect()
    }
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(run(threads), serial, "threads={threads}");
    }
}
