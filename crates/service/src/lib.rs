//! # amr-service — placement-as-a-service
//!
//! The north star asks the paper's placement machinery to serve "millions
//! of users": the zero-alloc [`PlacementEngine`] and the delta pipeline were
//! built for *reuse*, and this crate is the front end that sells that reuse
//! under traffic. A [`Service`] hosts many independent **sessions** — each a
//! mesh epoch plus a warm engine — and multiplexes batched requests over the
//! existing [`WorkerPool`]:
//!
//! * **Request batching.** Clients [`submit`](Service::submit) adapt /
//!   rebalance / simulate / telemetry-query requests; [`drain`](Service::drain)
//!   dispatches every queued session over the pool in one fork-join.
//!   Requests within a session are served FIFO; sessions are independent,
//!   so the batch parallelizes across them.
//! * **Cross-session work stealing.** `drain` orders sessions
//!   heaviest-queue-first and hands the order to
//!   [`WorkerPool::run_order`]: the pool's shared task counter lets workers
//!   that finish light sessions steal the remaining heavy ones — no
//!   dedicated scheduler thread.
//! * **Warm-engine LRU.** Closing a session parks its engine in a cache
//!   keyed by [`MeshFingerprint`] (SFC keys + rank count). A returning
//!   session with the same fingerprint checks the engine back out with its
//!   placement still primed — the first rebalance is *warm* (order-reuse,
//!   zero allocation) instead of cold.
//! * **Telemetry queries.** A session's last simulated epoch keeps its
//!   [`EventTable`]; [`Request::Query`] runs the `amr-telemetry` query
//!   engine over it and returns a flat [`QuerySummary`]-shaped response.
//!
//! Determinism contract: a session's responses are a pure function of its
//! own request sequence — the per-session FIFO plus slot ownership in the
//! pool make batch service bitwise identical to serial service at any
//! thread count (pinned by unit tests here and a property test against
//! direct `MacroSim`/engine calls in `tests/`).

use amr_core::engine::{MeshFingerprint, PlacementEngine};
use amr_core::policies::PlacementPolicy;
use amr_core::trigger::RebalanceTrigger;
use amr_core::Placement;
use amr_mesh::pool::WorkerPool;
use amr_mesh::{AmrMesh, MeshBlock, RefineTag};
use amr_sim::{MacroSim, SimConfig, Workload, WorkloadStep};
use amr_telemetry::{EventTable, Phase, Query};
use std::collections::VecDeque;
use std::time::Instant;

/// A placement policy a session can own: policies are stateless unit-like
/// values, and boxing them `Send + Sync` lets sessions travel to pool
/// workers.
pub type BoxedPolicy = Box<dyn PlacementPolicy + Send + Sync>;

/// Service-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads serving a batch (including the caller). 1 = serial.
    pub threads: usize,
    /// Warm engines kept after session close (LRU evicts past this).
    pub engine_cache_capacity: usize,
    /// Per-session request/response buffers are pre-sized to this, so a
    /// session whose queue stays within it serves without allocating.
    pub session_queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            threads: 1,
            engine_cache_capacity: 32,
            session_queue_capacity: 16,
        }
    }
}

/// Everything a new session needs besides its mesh.
pub struct SessionSpec {
    /// Ranks the session places onto.
    pub num_ranks: usize,
    /// Placement policy serving `Rebalance` and `Simulate`.
    pub policy: BoxedPolicy,
    /// Simulator config for `Simulate` requests (validated lazily on first
    /// use via [`MacroSim::try_new`]; an invalid config yields a `Failed`
    /// response, never a panic).
    pub sim: SimConfig,
}

impl SessionSpec {
    /// The tuned-stack spec: `SimConfig::tuned(num_ranks)` with full
    /// telemetry (sampling 1) so `Query` requests have data to scan.
    pub fn tuned(num_ranks: usize, policy: BoxedPolicy) -> SessionSpec {
        SessionSpec {
            num_ranks,
            policy,
            sim: SimConfig::tuned(num_ranks),
        }
    }
}

/// Telemetry query filters, mirroring the composable `Query` refinements.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QuerySpec {
    /// Keep rows with this phase.
    pub phase: Option<Phase>,
    /// Keep rows from this rank.
    pub rank: Option<u32>,
    /// Keep rows whose step lies in `[lo, hi)`.
    pub step_range: Option<(u32, u32)>,
}

/// One unit of session traffic.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Sweep the session's refinement front to `x = front`: blocks the
    /// tilted front plane crosses refine, blocks it has left coarsen (the
    /// same propagating-feature regime as the evolving-mesh bench).
    Adapt {
        /// Front position in the unit domain.
        front: f64,
    },
    /// Recompute the placement of the session's mesh epoch with its warm
    /// engine.
    Rebalance,
    /// Run `steps` macro-simulated timesteps over the current epoch,
    /// refreshing the session's telemetry table.
    Simulate {
        /// Virtual timesteps to run.
        steps: u64,
    },
    /// Aggregate the last simulated epoch's telemetry.
    Query(QuerySpec),
}

/// Outcome of one request, pushed to the session's response log in request
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Adapt` outcome.
    Adapted {
        /// Blocks after the sweep.
        blocks: usize,
        /// Did any block refine or coarsen?
        changed: bool,
    },
    /// `Rebalance` outcome.
    Rebalanced {
        /// Bottleneck-rank completion time of the new placement.
        makespan: f64,
        /// `max/mean - 1` rank load imbalance.
        imbalance: f64,
        /// Blocks that changed rank (0 on the first placement: nothing to
        /// migrate from).
        moved: u64,
        /// Served by a primed engine (cache hit or steady-state repeat) —
        /// the warm, allocation-free path.
        warm: bool,
    },
    /// `Simulate` outcome.
    Simulated {
        /// Virtual run time (ns) — bitwise comparable across service and
        /// direct execution.
        total_ns: f64,
        /// Steps simulated.
        steps: u64,
        /// Rebalances the trigger fired.
        lb_invocations: u64,
    },
    /// `Query` outcome (the saturating one-pass summary).
    Queried {
        /// Rows selected.
        count: usize,
        /// Saturating duration sum (ns).
        total_duration_ns: u64,
        /// Max single duration (ns).
        max_duration_ns: u64,
    },
    /// The request could not be served; the session survives and continues
    /// with the next request.
    Failed {
        /// Human-readable cause.
        error: String,
    },
}

/// Handle to an open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions opened over the service lifetime.
    pub sessions_opened: u64,
    /// Sessions closed (engines offered to the cache).
    pub sessions_closed: u64,
    /// Requests served across all drains.
    pub requests_served: u64,
    /// Session opens that checked a warm engine out of the LRU.
    pub warm_hits: u64,
    /// Session opens that built a cold engine.
    pub cold_misses: u64,
    /// `drain` calls that dispatched at least one session.
    pub batches: u64,
}

/// Deterministic skewed per-block cost pattern shared by the service, its
/// tests and the load bench (mirrors the macrosim bench's `skewed_costs`,
/// refreshed in place so steady-state epochs don't allocate).
pub fn session_costs(n: usize, out: &mut Vec<f64>) {
    out.clear();
    out.extend((0..n).map(|i| 1.0e6 * (1.0 + 0.37 * (i % 13) as f64)));
}

/// Tag function of the service's `Adapt` sweep: a tilted planar front at
/// `x = s + 0.3·y`, margin 0.01 — identical shape to the evolving-mesh
/// bench so adapt traffic exercises the delta pipeline, not a toy. Public
/// so tests and the load bench can replicate `Adapt` semantics directly
/// against a raw mesh.
pub fn front_tag(b: &MeshBlock, s: f64, max_level: u8) -> RefineTag {
    let slope = 0.3;
    let w = 0.01;
    let f_lo = s + slope * b.bounds.lo.y;
    let f_hi = s + slope * b.bounds.hi.y;
    let crosses = f_hi >= b.bounds.lo.x - w && f_lo <= b.bounds.hi.x + w;
    if crosses && b.level() < max_level {
        RefineTag::Refine
    } else if !crosses && b.level() > 0 {
        RefineTag::Coarsen
    } else {
        RefineTag::Keep
    }
}

/// Borrowed static workload over a session's epoch: `Simulate` runs the
/// macro-simulator against the session's mesh and costs without cloning
/// either.
struct EpochWorkload<'a> {
    mesh: &'a AmrMesh,
    costs: &'a [f64],
    steps: u64,
}

impl Workload for EpochWorkload<'_> {
    fn mesh(&self) -> &AmrMesh {
        self.mesh
    }
    fn advance(&mut self, _step: u64) -> WorkloadStep {
        WorkloadStep {
            mesh_changed: false,
            origins: None,
        }
    }
    fn block_compute_ns(&self) -> &[f64] {
        self.costs
    }
    fn total_steps(&self) -> u64 {
        self.steps
    }
}

/// One hosted session: a mesh epoch, its costs, a (possibly warm) engine,
/// a lazily built simulator, the last epoch's telemetry, and the FIFO
/// request queue with its response/latency logs.
struct Session {
    mesh: AmrMesh,
    costs: Vec<f64>,
    num_ranks: usize,
    policy: BoxedPolicy,
    sim_config: SimConfig,
    engine: PlacementEngine,
    sim: Option<MacroSim>,
    telemetry: Option<EventTable>,
    queue: VecDeque<Request>,
    responses: Vec<Response>,
    latencies_ns: Vec<u64>,
    /// Fingerprint of the *current* mesh epoch at this rank count.
    fingerprint: MeshFingerprint,
    /// Fingerprint the engine's primed placement solves (diverges from
    /// `fingerprint` after an `Adapt` until the next `Rebalance`); this is
    /// the key the engine parks under at close.
    placed_fp: Option<MeshFingerprint>,
}

impl Session {
    /// Serve the queued requests FIFO, logging one response and one wall
    /// latency per request. Runs on exactly one pool worker per drain.
    fn process_queue(&mut self) {
        while let Some(req) = self.queue.pop_front() {
            let t = Instant::now();
            let resp = self.handle(req);
            self.latencies_ns.push(t.elapsed().as_nanos() as u64);
            self.responses.push(resp);
        }
    }

    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Adapt { front } => {
                let max_level = self.mesh.config().max_level;
                let changed = self
                    .mesh
                    .adapt(|b| front_tag(b, front, max_level))
                    .changed();
                if changed {
                    session_costs(self.mesh.num_blocks(), &mut self.costs);
                    self.fingerprint = MeshFingerprint::of_mesh(&self.mesh, self.num_ranks);
                }
                Response::Adapted {
                    blocks: self.mesh.num_blocks(),
                    changed,
                }
            }
            Request::Rebalance => {
                let warm = self.engine.placement().is_some();
                match self.engine.rebalance_with(
                    self.policy.as_ref(),
                    &self.costs,
                    self.num_ranks,
                    Some(&self.mesh),
                    None,
                ) {
                    Ok(report) => {
                        self.placed_fp = Some(self.fingerprint);
                        Response::Rebalanced {
                            makespan: report.makespan,
                            imbalance: report.imbalance,
                            moved: report.migration.map_or(0, |m| m.moved as u64),
                            warm,
                        }
                    }
                    Err(e) => Response::Failed {
                        error: e.to_string(),
                    },
                }
            }
            Request::Simulate { steps } => {
                if self.sim.is_none() {
                    // The hardened constructor: a bad per-session config
                    // fails *this* request, not the process.
                    match MacroSim::try_new(self.sim_config.clone()) {
                        Ok(sim) => self.sim = Some(sim),
                        Err(error) => return Response::Failed { error },
                    }
                }
                let sim = self.sim.as_mut().expect("just constructed");
                let mut workload = EpochWorkload {
                    mesh: &self.mesh,
                    costs: &self.costs,
                    steps,
                };
                match sim.try_run(
                    &mut workload,
                    self.policy.as_ref(),
                    RebalanceTrigger::OnMeshChange,
                ) {
                    Ok(report) => {
                        let resp = Response::Simulated {
                            total_ns: report.total_ns,
                            steps,
                            lb_invocations: report.lb_invocations,
                        };
                        self.telemetry = Some(report.telemetry);
                        resp
                    }
                    Err(error) => Response::Failed { error },
                }
            }
            Request::Query(spec) => match &self.telemetry {
                None => Response::Failed {
                    error: "no telemetry: run Simulate first".to_string(),
                },
                Some(table) => {
                    let mut q = Query::new(table);
                    if let Some(p) = spec.phase {
                        q = q.phase(p);
                    }
                    if let Some(rank) = spec.rank {
                        q = q.rank(rank);
                    }
                    if let Some((lo, hi)) = spec.step_range {
                        q = q.step_range(lo, hi);
                    }
                    let s = q.summary();
                    Response::Queried {
                        count: s.count,
                        total_duration_ns: s.total_duration_ns,
                        max_duration_ns: s.max_duration_ns,
                    }
                }
            },
        }
    }
}

/// One session slot, nullable so closed slots are reused.
///
/// `Session` is not auto-`Send`: `PlacementEngine` and `MacroSim` carry an
/// `Option<TraceHandle>` (`Rc`-based) field even though the service never
/// attaches one.
struct Slot(Option<Session>);

// SAFETY: the service constructs every engine and simulator itself and
// never calls `set_trace`, so no slot holds a live `Rc`/`RefCell` shared
// outside it; `WorkerPool::run_order` hands each slot to exactly one worker
// per dispatch (distinctness asserted there), and between dispatches slots
// are touched only by the owning `Service` thread.
unsafe impl Send for Slot {}

/// LRU of warm engines keyed by mesh fingerprint. Small by design (tens of
/// entries): a linear scan of a `Vec` beats a hash map at this size and
/// keeps eviction order trivial — oldest entry at the front, most recently
/// parked at the back.
struct EngineCache {
    capacity: usize,
    entries: Vec<(MeshFingerprint, PlacementEngine)>,
}

impl EngineCache {
    fn new(capacity: usize) -> EngineCache {
        EngineCache {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Remove and return the warm engine for `fp`, if cached.
    fn checkout(&mut self, fp: MeshFingerprint) -> Option<PlacementEngine> {
        let i = self.entries.iter().position(|(f, _)| *f == fp)?;
        Some(self.entries.remove(i).1)
    }

    /// Park an engine under `fp`, evicting the least-recently-parked entry
    /// past capacity. A same-fingerprint entry is replaced (the newer
    /// engine's scratch is at least as warm).
    fn park(&mut self, fp: MeshFingerprint, engine: PlacementEngine) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(f, _)| *f == fp) {
            self.entries.remove(i);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((fp, engine));
    }
}

/// The session server. See the crate docs for the architecture.
pub struct Service {
    pool: WorkerPool,
    slots: Vec<Slot>,
    cache: EngineCache,
    /// Drain-order scratch, reused across batches.
    order: Vec<usize>,
    stats: ServiceStats,
    queue_capacity: usize,
}

impl Service {
    /// Build a service with `config.threads` workers and an empty cache.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            pool: WorkerPool::new(config.threads.max(1)),
            slots: Vec::new(),
            cache: EngineCache::new(config.engine_cache_capacity),
            order: Vec::new(),
            stats: ServiceStats::default(),
            queue_capacity: config.session_queue_capacity,
        }
    }

    /// Open a session over `mesh`. The warm-engine LRU is consulted with
    /// the (mesh, ranks) fingerprint: a hit hands the parked engine — its
    /// placement still primed — to the new session, so its first
    /// `Rebalance` runs the warm, allocation-free path.
    pub fn open_session(&mut self, mesh: AmrMesh, spec: SessionSpec) -> SessionId {
        let fp = MeshFingerprint::of_mesh(&mesh, spec.num_ranks);
        let (engine, placed_fp) = match self.cache.checkout(fp) {
            Some(engine) => {
                debug_assert_eq!(engine.fingerprint(), Some(fp));
                self.stats.warm_hits += 1;
                (engine, Some(fp))
            }
            None => {
                self.stats.cold_misses += 1;
                (PlacementEngine::new(), None)
            }
        };
        let mut costs = Vec::new();
        session_costs(mesh.num_blocks(), &mut costs);
        let session = Session {
            mesh,
            costs,
            num_ranks: spec.num_ranks,
            policy: spec.policy,
            sim_config: spec.sim,
            engine,
            sim: None,
            telemetry: None,
            queue: VecDeque::with_capacity(self.queue_capacity),
            responses: Vec::with_capacity(self.queue_capacity),
            latencies_ns: Vec::with_capacity(self.queue_capacity),
            fingerprint: fp,
            placed_fp,
        };
        self.stats.sessions_opened += 1;
        match self.slots.iter().position(|s| s.0.is_none()) {
            Some(i) => {
                self.slots[i].0 = Some(session);
                SessionId(i)
            }
            None => {
                self.slots.push(Slot(Some(session)));
                SessionId(self.slots.len() - 1)
            }
        }
    }

    /// Close a session. If its engine holds a primed placement, the engine
    /// is stamped with the fingerprint that placement solves and parked in
    /// the LRU for the next same-shaped tenant.
    pub fn close_session(&mut self, id: SessionId) {
        let slot = self.slots.get_mut(id.0).expect("invalid session id");
        let session = slot.0.take().expect("session already closed");
        self.stats.sessions_closed += 1;
        if let (Some(fp), true) = (session.placed_fp, session.engine.placement().is_some()) {
            let mut engine = session.engine;
            engine.set_fingerprint(Some(fp));
            self.cache.park(fp, engine);
        }
    }

    /// Queue a request on an open session (FIFO within the session).
    pub fn submit(&mut self, id: SessionId, req: Request) {
        let slot = self.slots.get_mut(id.0).expect("invalid session id");
        let session = slot.0.as_mut().expect("session closed");
        session.queue.push_back(req);
    }

    /// Serve every queued request as one batch over the pool; returns the
    /// number of requests served. Sessions with the deepest queues are
    /// dispatched first so workers finishing light sessions steal the heavy
    /// tail. Serial at `threads == 1` (and allocation-free once warm).
    pub fn drain(&mut self) -> usize {
        self.order.clear();
        let mut served = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(session) = slot.0.as_ref() {
                if !session.queue.is_empty() {
                    self.order.push(i);
                    served += session.queue.len();
                }
            }
        }
        if self.order.is_empty() {
            return 0;
        }
        let slots = &self.slots;
        self.order.sort_unstable_by(|&a, &b| {
            let qa = slots[a].0.as_ref().map_or(0, |s| s.queue.len());
            let qb = slots[b].0.as_ref().map_or(0, |s| s.queue.len());
            qb.cmp(&qa).then(a.cmp(&b))
        });
        self.pool
            .run_order(&self.order, &mut self.slots, |_, slot| {
                if let Some(session) = slot.0.as_mut() {
                    session.process_queue();
                }
            });
        self.stats.requests_served += served as u64;
        self.stats.batches += 1;
        served
    }

    /// Responses logged so far for `id`, in request order.
    pub fn responses(&self, id: SessionId) -> &[Response] {
        self.slots[id.0]
            .0
            .as_ref()
            .map_or(&[], |s| &s.responses[..])
    }

    /// Forget `id`'s logged responses and latencies (keeps capacity).
    pub fn clear_responses(&mut self, id: SessionId) {
        if let Some(s) = self.slots[id.0].0.as_mut() {
            s.responses.clear();
            s.latencies_ns.clear();
        }
    }

    /// The session's current placement, if it has rebalanced.
    pub fn session_placement(&self, id: SessionId) -> Option<&Placement> {
        self.slots[id.0].0.as_ref()?.engine.placement()
    }

    /// Current block count of the session's mesh epoch.
    pub fn session_blocks(&self, id: SessionId) -> usize {
        self.slots[id.0]
            .0
            .as_ref()
            .map_or(0, |s| s.mesh.num_blocks())
    }

    /// Raw fingerprint of the session's current epoch (test plumbing).
    pub fn session_fingerprint(&self, id: SessionId) -> Option<u64> {
        Some(self.slots[id.0].0.as_ref()?.fingerprint.raw())
    }

    /// Whether the warm-engine LRU currently holds `raw` (test plumbing).
    pub fn cache_contains(&self, raw: u64) -> bool {
        self.cache.entries.iter().any(|(f, _)| f.raw() == raw)
    }

    /// Warm engines currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.entries.len()
    }

    /// Drain every session's recorded per-request wall latencies into
    /// `out` (appended; session buffers keep their capacity).
    pub fn take_latencies(&mut self, out: &mut Vec<u64>) {
        for slot in &mut self.slots {
            if let Some(s) = slot.0.as_mut() {
                out.extend_from_slice(&s.latencies_ns);
                s.latencies_ns.clear();
            }
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Threads serving a batch (including the caller).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

#[cfg(test)]
mod tests;
