//! Basic geometric primitives: dimensionality, points, and axis-aligned boxes.
//!
//! The mesh is defined over the unit cube `[0,1]^d`. All geometry here is in
//! *physical* (floating-point) coordinates; integer octant coordinates live in
//! [`crate::octant`].

use serde::{Deserialize, Serialize};

/// Spatial dimensionality of the mesh.
///
/// Block-structured AMR codes run 2D and 3D problems; the paper's evaluation
/// is 3D (Sedov Blast Wave 3D) but the octree/SFC machinery is
/// dimension-generic (Fig. 5 illustrates the 2D case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// Two dimensions: quadtree, up to 8 neighbors (4 faces + 4 vertices).
    D2,
    /// Three dimensions: octree, up to 26 neighbors (6 faces, 12 edges, 8 vertices).
    D3,
}

impl Dim {
    /// Number of spatial dimensions as a `usize`.
    #[inline]
    pub fn rank(self) -> usize {
        match self {
            Dim::D2 => 2,
            Dim::D3 => 3,
        }
    }

    /// Number of children an octant splits into on refinement (`2^d`).
    #[inline]
    pub fn children_per_octant(self) -> usize {
        1 << self.rank()
    }

    /// Maximum number of same-or-coarser neighbors: `3^d - 1`.
    #[inline]
    pub fn max_directions(self) -> usize {
        match self {
            Dim::D2 => 8,
            Dim::D3 => 26,
        }
    }
}

/// A point in physical coordinates. The `z` component is 0 in 2D.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point {
    /// Construct a 3D point.
    #[inline]
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point { x, y, z }
    }

    /// Construct a 2D point (z = 0).
    #[inline]
    pub fn new2(x: f64, y: f64) -> Self {
        Point { x, y, z: 0.0 }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Euclidean norm of the point treated as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }
}

/// Axis-aligned bounding box in physical coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    pub lo: Point,
    pub hi: Point,
}

impl Aabb {
    /// Create a box from its lower and upper corners.
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z);
        Aabb { lo, hi }
    }

    /// The unit cube `[0,1]^3` (also used as `[0,1]^2 x {0}` in 2D).
    pub fn unit() -> Self {
        Aabb {
            lo: Point::new(0.0, 0.0, 0.0),
            hi: Point::new(1.0, 1.0, 1.0),
        }
    }

    /// Geometric center of the box.
    #[inline]
    pub fn center(&self) -> Point {
        Point {
            x: 0.5 * (self.lo.x + self.hi.x),
            y: 0.5 * (self.lo.y + self.hi.y),
            z: 0.5 * (self.lo.z + self.hi.z),
        }
    }

    /// Edge lengths along each axis.
    #[inline]
    pub fn extent(&self) -> Point {
        Point {
            x: self.hi.x - self.lo.x,
            y: self.hi.y - self.lo.y,
            z: self.hi.z - self.lo.z,
        }
    }

    /// Does this box contain the point (closed on the low side, open on the
    /// high side, matching octant tiling semantics)?
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.lo.x
            && p.x < self.hi.x
            && p.y >= self.lo.y
            && p.y < self.hi.y
            && p.z >= self.lo.z
            && p.z < self.hi.z
    }

    /// Do two boxes overlap (with positive measure)?
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.lo.x < other.hi.x
            && other.lo.x < self.hi.x
            && self.lo.y < other.hi.y
            && other.lo.y < self.hi.y
            && self.lo.z < other.hi.z
            && other.lo.z < self.hi.z
    }

    /// Shortest distance from a point to this box (0 if inside).
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        let dz = (self.lo.z - p.z).max(0.0).max(p.z - self.hi.z);
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Largest distance from a point to any corner of this box.
    pub fn max_distance_to_point(&self, p: &Point) -> f64 {
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        let dz = (p.z - self.lo.z).abs().max((p.z - self.hi.z).abs());
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_counts() {
        assert_eq!(Dim::D2.rank(), 2);
        assert_eq!(Dim::D3.rank(), 3);
        assert_eq!(Dim::D2.children_per_octant(), 4);
        assert_eq!(Dim::D3.children_per_octant(), 8);
        assert_eq!(Dim::D2.max_directions(), 8);
        assert_eq!(Dim::D3.max_directions(), 26);
    }

    #[test]
    fn point_distance() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn aabb_contains_half_open() {
        let b = Aabb::unit();
        assert!(b.contains(&Point::new(0.0, 0.0, 0.0)));
        assert!(b.contains(&Point::new(0.999, 0.5, 0.5)));
        assert!(!b.contains(&Point::new(1.0, 0.5, 0.5)));
    }

    #[test]
    fn aabb_intersects() {
        let a = Aabb::new(Point::new(0.0, 0.0, 0.0), Point::new(0.5, 0.5, 0.5));
        let b = Aabb::new(Point::new(0.4, 0.4, 0.4), Point::new(1.0, 1.0, 1.0));
        let c = Aabb::new(Point::new(0.5, 0.0, 0.0), Point::new(1.0, 0.5, 0.5));
        assert!(a.intersects(&b));
        // Touching at a face is not positive-measure overlap.
        assert!(!a.intersects(&c));
    }

    #[test]
    fn aabb_point_distances() {
        let b = Aabb::unit();
        let inside = Point::new(0.5, 0.5, 0.5);
        assert_eq!(b.distance_to_point(&inside), 0.0);
        let outside = Point::new(2.0, 0.5, 0.5);
        assert!((b.distance_to_point(&outside) - 1.0).abs() < 1e-12);
        let corner_far = b.max_distance_to_point(&Point::new(0.0, 0.0, 0.0));
        assert!((corner_far - 3f64.sqrt()).abs() < 1e-12);
    }
}
