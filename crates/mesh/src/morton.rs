//! Morton (Z-order) encoding and decoding in two and three dimensions.
//!
//! A depth-first traversal of an octree whose children are visited in
//! canonical (z-major) order enumerates leaves in ascending Morton order of
//! their lower corners expressed at the finest level. This equivalence is
//! what lets AMR frameworks derive a Z-order space-filling curve "for free"
//! from the octree (§V-A of the paper); [`crate::sfc`] builds on it.
//!
//! Bit-interleaving uses the classic parallel-prefix magic-number spreads, so
//! encode/decode are O(1) with no loops — these sit on the hot path of
//! neighbor lookups and SFC sorts for meshes with hundreds of thousands of
//! blocks.

/// Spread the low 21 bits of `v` so that each bit occupies every 3rd position.
///
/// 21 bits * 3 = 63 bits, fitting a `u64`.
#[inline]
fn spread3(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x1f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread3`]: compact every 3rd bit into the low 21 bits.
#[inline]
fn compact3(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x1f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Spread the low 32 bits of `v` so that each bit occupies every 2nd position.
#[inline]
fn spread2(v: u64) -> u64 {
    let mut x = v & 0xffff_ffff;
    x = (x | (x << 16)) & 0x0000_ffff_0000_ffff;
    x = (x | (x << 8)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread2`].
#[inline]
fn compact2(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0f0f_0f0f_0f0f_0f0f;
    x = (x | (x >> 4)) & 0x00ff_00ff_00ff_00ff;
    x = (x | (x >> 8)) & 0x0000_ffff_0000_ffff;
    x = (x | (x >> 16)) & 0xffff_ffff;
    x
}

/// Interleave `(x, y, z)` into a 3D Morton code. Each coordinate may use up
/// to 21 bits.
#[inline]
pub fn morton_encode3(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << 21) && y < (1 << 21) && z < (1 << 21));
    spread3(x as u64) | (spread3(y as u64) << 1) | (spread3(z as u64) << 2)
}

/// Decode a 3D Morton code back to `(x, y, z)`.
#[inline]
pub fn morton_decode3(m: u64) -> (u32, u32, u32) {
    (
        compact3(m) as u32,
        compact3(m >> 1) as u32,
        compact3(m >> 2) as u32,
    )
}

/// Interleave `(x, y)` into a 2D Morton code. Each coordinate may use up to
/// 31 bits.
#[inline]
pub fn morton_encode2(x: u32, y: u32) -> u64 {
    spread2(x as u64) | (spread2(y as u64) << 1)
}

/// Decode a 2D Morton code back to `(x, y)`.
#[inline]
pub fn morton_decode2(m: u64) -> (u32, u32) {
    (compact2(m) as u32, compact2(m >> 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode3_first_octants() {
        // The 8 children of the root in canonical order.
        assert_eq!(morton_encode3(0, 0, 0), 0);
        assert_eq!(morton_encode3(1, 0, 0), 1);
        assert_eq!(morton_encode3(0, 1, 0), 2);
        assert_eq!(morton_encode3(1, 1, 0), 3);
        assert_eq!(morton_encode3(0, 0, 1), 4);
        assert_eq!(morton_encode3(1, 0, 1), 5);
        assert_eq!(morton_encode3(0, 1, 1), 6);
        assert_eq!(morton_encode3(1, 1, 1), 7);
    }

    #[test]
    fn encode2_first_quadrants() {
        assert_eq!(morton_encode2(0, 0), 0);
        assert_eq!(morton_encode2(1, 0), 1);
        assert_eq!(morton_encode2(0, 1), 2);
        assert_eq!(morton_encode2(1, 1), 3);
    }

    #[test]
    fn roundtrip3_exhaustive_small() {
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    let m = morton_encode3(x, y, z);
                    assert_eq!(morton_decode3(m), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn roundtrip3_large_coords() {
        let cases = [
            (0x1f_ffff, 0, 0),
            (0, 0x1f_ffff, 0),
            (0, 0, 0x1f_ffff),
            (0x1f_ffff, 0x1f_ffff, 0x1f_ffff),
            (123_456, 654_321, 999_999),
        ];
        for &(x, y, z) in &cases {
            assert_eq!(morton_decode3(morton_encode3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn roundtrip2_large_coords() {
        let cases = [(u32::MAX, 0), (0, u32::MAX), (0xdead_beef, 0x1234_5678)];
        for &(x, y) in &cases {
            assert_eq!(morton_decode2(morton_encode2(x, y)), (x, y));
        }
    }

    #[test]
    fn morton_is_monotone_in_each_axis_at_fixed_others() {
        // Morton codes are not globally monotone, but along a single axis with
        // the other coordinates fixed at zero they are.
        let mut prev = 0u64;
        for x in 1..1000u32 {
            let m = morton_encode3(x, 0, 0);
            assert!(m > prev);
            prev = m;
        }
    }
}
