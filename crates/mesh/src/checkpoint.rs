//! Mesh checkpointing: serialize a mesh snapshot to a compact binary form
//! and restore it with full invariant validation.
//!
//! Production AMR frameworks restart week-long runs from checkpoint files
//! (§I: codes "often run for weeks"); a placement layer must be able to
//! round-trip the mesh structure it was computed against. The format is a
//! flat leaf list — the same representation [`crate::tree::Octree`] uses in
//! memory — so encoding is O(n) and restoring revalidates tiling and 2:1
//! balance before handing the mesh back.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "AMRM" | version u32 | dim u8 | roots (u32,u32,u32) | max_level u8 |
//! periodic u8 |
//! spec (cells u32, ghost u32, vars u32, bytes u32) |
//! domain (lo.x..hi.z: 6 × f64) | leaf_count u64 |
//! leaves: (level u8, x u32, y u32, z u32) × leaf_count
//! ```

use crate::block::BlockSpec;
use crate::geom::{Aabb, Dim, Point};
use crate::mesh::{AmrMesh, MeshConfig};
use crate::octant::Octant;
use crate::tree::Octree;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes of the checkpoint format.
pub const MAGIC: &[u8; 4] = b"AMRM";
/// Current version.
pub const VERSION: u32 = 1;

/// Errors restoring a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    BadMagic,
    BadVersion(u32),
    Truncated,
    /// The leaf set does not form a valid 2:1-balanced tiling.
    InvalidMesh(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "bad magic"),
            RestoreError::BadVersion(v) => write!(f, "unsupported version {v}"),
            RestoreError::Truncated => write!(f, "checkpoint truncated"),
            RestoreError::InvalidMesh(e) => write!(f, "invalid mesh: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Serialize a mesh snapshot.
pub fn save(mesh: &AmrMesh) -> Bytes {
    let cfg = mesh.config();
    let n = mesh.num_blocks();
    let mut buf = BytesMut::with_capacity(64 + n * 13);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u8(match cfg.dim {
        Dim::D2 => 2,
        Dim::D3 => 3,
    });
    buf.put_u32_le(cfg.roots.0);
    buf.put_u32_le(cfg.roots.1);
    buf.put_u32_le(cfg.roots.2);
    buf.put_u8(cfg.max_level);
    buf.put_u8(cfg.periodic as u8);
    buf.put_u32_le(cfg.spec.cells_per_axis);
    buf.put_u32_le(cfg.spec.ghost_width);
    buf.put_u32_le(cfg.spec.num_vars);
    buf.put_u32_le(cfg.spec.bytes_per_value);
    for v in [
        cfg.domain.lo.x,
        cfg.domain.lo.y,
        cfg.domain.lo.z,
        cfg.domain.hi.x,
        cfg.domain.hi.y,
        cfg.domain.hi.z,
    ] {
        buf.put_f64_le(v);
    }
    buf.put_u64_le(n as u64);
    for b in mesh.blocks() {
        buf.put_u8(b.octant.level);
        buf.put_u32_le(b.octant.x);
        buf.put_u32_le(b.octant.y);
        buf.put_u32_le(b.octant.z);
    }
    buf.freeze()
}

/// Restore a mesh snapshot, revalidating all structural invariants.
pub fn restore(mut buf: &[u8]) -> Result<AmrMesh, RestoreError> {
    if buf.remaining() < 4 + 4 {
        return Err(RestoreError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(RestoreError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(RestoreError::BadVersion(version));
    }
    // Fixed-size header after magic+version: 1 + 12 + 1 + 1 + 16 + 48 + 8.
    if buf.remaining() < 87 {
        return Err(RestoreError::Truncated);
    }
    let dim = match buf.get_u8() {
        2 => Dim::D2,
        3 => Dim::D3,
        d => return Err(RestoreError::InvalidMesh(format!("bad dim {d}"))),
    };
    let roots = (buf.get_u32_le(), buf.get_u32_le(), buf.get_u32_le());
    let max_level = buf.get_u8();
    let periodic = buf.get_u8() != 0;
    let spec = BlockSpec {
        cells_per_axis: buf.get_u32_le(),
        ghost_width: buf.get_u32_le(),
        num_vars: buf.get_u32_le(),
        bytes_per_value: buf.get_u32_le(),
    };
    let vals: Vec<f64> = (0..6).map(|_| buf.get_f64_le()).collect();
    let domain = Aabb::new(
        Point::new(vals[0], vals[1], vals[2]),
        Point::new(vals[3], vals[4], vals[5]),
    );
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 13 {
        return Err(RestoreError::Truncated);
    }
    let mut leaves = Vec::with_capacity(n);
    for _ in 0..n {
        let level = buf.get_u8();
        let x = buf.get_u32_le();
        let y = buf.get_u32_le();
        let z = buf.get_u32_le();
        leaves.push(Octant::new(level, x, y, z));
    }
    let config = MeshConfig {
        dim,
        roots,
        domain,
        spec,
        max_level,
        periodic,
    };
    let tree = Octree::from_leaves(dim, roots, leaves).map_err(RestoreError::InvalidMesh)?;
    AmrMesh::from_parts(config, tree).map_err(RestoreError::InvalidMesh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::RefineTag;

    fn refined_mesh() -> AmrMesh {
        let mut m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2));
        m.adapt(|b| {
            if b.id.index() % 9 == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let m = refined_mesh();
        let bytes = save(&m);
        let back = restore(&bytes).unwrap();
        assert_eq!(back.num_blocks(), m.num_blocks());
        for (a, b) in m.blocks().iter().zip(back.blocks()) {
            assert_eq!(a.octant, b.octant);
            assert_eq!(a.id, b.id);
        }
        assert_eq!(back.config().spec, m.config().spec);
        back.check_invariants().unwrap();
    }

    #[test]
    fn roundtrip_2d() {
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D2, (64, 32, 0), 1));
        let back = restore(&save(&m)).unwrap();
        assert_eq!(back.num_blocks(), m.num_blocks());
        assert_eq!(back.config().dim, Dim::D2);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(restore(b"nope").unwrap_err(), RestoreError::Truncated);
        let mut bytes = save(&refined_mesh()).to_vec();
        bytes[0] = b'X';
        assert_eq!(restore(&bytes).unwrap_err(), RestoreError::BadMagic);
        let bytes = save(&refined_mesh());
        assert_eq!(
            restore(&bytes[..bytes.len() - 5]).unwrap_err(),
            RestoreError::Truncated
        );
    }

    #[test]
    fn rejects_corrupted_leaf_set() {
        let m = refined_mesh();
        let mut bytes = save(&m).to_vec();
        // Duplicate the first leaf record over the second.
        let header = 4 + 4 + 1 + 12 + 1 + 1 + 16 + 48 + 8;
        let (first, second) = (header, header + 13);
        let leaf: Vec<u8> = bytes[first..first + 13].to_vec();
        bytes[second..second + 13].copy_from_slice(&leaf);
        match restore(&bytes) {
            Err(RestoreError::InvalidMesh(_)) => {}
            other => panic!("expected InvalidMesh, got {other:?}"),
        }
    }

    #[test]
    fn version_check() {
        let mut bytes = save(&refined_mesh()).to_vec();
        bytes[4] = 42;
        assert_eq!(restore(&bytes).unwrap_err(), RestoreError::BadVersion(42));
    }
}
