//! # amr-mesh — octree-based block-structured AMR mesh
//!
//! This crate implements the mesh-management substrate that block-structured
//! AMR frameworks such as Parthenon provide, and that placement policies
//! consume:
//!
//! * **Octrees** (and quadtrees in 2D) over a logically Cartesian domain.
//!   Leaf octants correspond to *mesh blocks*; every block holds the same
//!   number of cells regardless of refinement level (§II-B of the paper).
//! * **Z-order space-filling curves** (Morton codes). A depth-first traversal
//!   of the octree visits leaves in Morton order; sequential *block IDs* are
//!   assigned along this curve (§V-A, Fig. 5).
//! * **Neighbor topology**: each block communicates with up to 26 neighbors
//!   in 3D (6 faces, 12 edges, 8 vertices), including fine–coarse neighbors
//!   across one refinement level under the enforced 2:1 balance constraint.
//! * **Refinement/coarsening engine** with 2:1 balance enforcement, the
//!   driver for redistribution in AMR codes.
//!
//! The crate is deliberately framework-agnostic: placement policies in
//! `amr-core` consume `(blocks in SFC order, neighbor graph)`, exactly the
//! interface the paper's policies use inside Parthenon.

pub mod block;
pub mod checkpoint;
pub mod geom;
pub mod hilbert;
pub mod mesh;
pub mod morton;
pub mod neighbors;
pub mod octant;
pub mod pool;
pub mod sfc;
pub mod sharded;
pub mod tree;

pub use block::{BlockId, BlockSpec, MeshBlock};
pub use geom::{Aabb, Dim, Point};
pub use hilbert::{hilbert_index, hilbert_key};
pub use mesh::{AmrMesh, BlockFate, MeshConfig, RefineTag, RefinementDelta};
pub use morton::{morton_decode2, morton_decode3, morton_encode2, morton_encode3};
pub use neighbors::{Neighbor, NeighborGraph, NeighborKind, PatchScratch};
pub use octant::{Direction, Octant, MAX_LEVEL};
pub use pool::{Disjoint, WorkerPool};
pub use sfc::sfc_key;
pub use sharded::{build_shard, plan_shard_bounds, ShardGraph, ShardedMesh};
pub use tree::Octree;
