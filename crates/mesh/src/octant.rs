//! Octants: the nodes of the refinement tree.
//!
//! An octant is identified by its refinement `level` and its integer
//! coordinates on the level-`level` lattice: at level `l` the domain is tiled
//! by `2^l` octants per axis (for a single-root tree; multi-root forests
//! scale these by the root grid, see [`crate::tree`]).

use crate::geom::{Aabb, Dim, Point};
use serde::{Deserialize, Serialize};

/// Maximum refinement level supported. 20 levels × up to 2 root bits keeps
/// normalized coordinates within Morton's 21-bit-per-axis budget.
pub const MAX_LEVEL: u8 = 20;

/// A direction towards a neighboring octant: each component is -1, 0 or +1,
/// not all zero. In 3D there are 26 such directions (6 faces, 12 edges,
/// 8 vertices); in 2D, 8 (4 faces a.k.a. edges-of-squares, 4 vertices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Direction {
    pub dx: i8,
    pub dy: i8,
    pub dz: i8,
}

impl Direction {
    /// Construct a direction; panics in debug builds if all components are 0
    /// or any is outside {-1, 0, 1}.
    #[inline]
    pub fn new(dx: i8, dy: i8, dz: i8) -> Self {
        debug_assert!(dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1);
        debug_assert!(dx != 0 || dy != 0 || dz != 0);
        Direction { dx, dy, dz }
    }

    /// Number of nonzero components: 1 = face, 2 = edge, 3 = vertex.
    #[inline]
    pub fn codim(&self) -> u8 {
        (self.dx != 0) as u8 + (self.dy != 0) as u8 + (self.dz != 0) as u8
    }

    /// The opposite direction.
    #[inline]
    pub fn opposite(&self) -> Direction {
        Direction {
            dx: -self.dx,
            dy: -self.dy,
            dz: -self.dz,
        }
    }

    /// All directions for the given dimensionality, faces first, then edges,
    /// then vertices (deterministic order).
    pub fn all(dim: Dim) -> Vec<Direction> {
        let zrange: &[i8] = match dim {
            Dim::D2 => &[0],
            Dim::D3 => &[-1, 0, 1],
        };
        let mut dirs = Vec::with_capacity(dim.max_directions());
        for &dz in zrange {
            for dy in [-1i8, 0, 1] {
                for dx in [-1i8, 0, 1] {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    dirs.push(Direction { dx, dy, dz });
                }
            }
        }
        dirs.sort_by_key(|d| d.codim());
        dirs
    }
}

/// A node of the refinement tree, identified by `(level, x, y, z)` where the
/// coordinates index the lattice of level-`level` octants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Octant {
    pub level: u8,
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Octant {
    /// The root octant covering the whole (single-root) domain.
    pub const ROOT: Octant = Octant {
        level: 0,
        x: 0,
        y: 0,
        z: 0,
    };

    /// Construct an octant, checking lattice bounds in debug builds.
    #[inline]
    pub fn new(level: u8, x: u32, y: u32, z: u32) -> Self {
        debug_assert!(level <= MAX_LEVEL);
        Octant { level, x, y, z }
    }

    /// The parent octant (None for the root).
    #[inline]
    pub fn parent(&self) -> Option<Octant> {
        if self.level == 0 {
            None
        } else {
            Some(Octant {
                level: self.level - 1,
                x: self.x >> 1,
                y: self.y >> 1,
                z: self.z >> 1,
            })
        }
    }

    /// Which child of its parent this octant is (0..2^d), in canonical
    /// z-major order. Root returns 0.
    #[inline]
    pub fn child_index(&self, dim: Dim) -> usize {
        let cx = (self.x & 1) as usize;
        let cy = (self.y & 1) as usize;
        let cz = (self.z & 1) as usize;
        match dim {
            Dim::D2 => cx | (cy << 1),
            Dim::D3 => cx | (cy << 1) | (cz << 2),
        }
    }

    /// The `2^d` children in canonical (Morton) order.
    pub fn children(&self, dim: Dim) -> Vec<Octant> {
        debug_assert!(self.level < MAX_LEVEL);
        let l = self.level + 1;
        let (bx, by, bz) = (self.x << 1, self.y << 1, self.z << 1);
        match dim {
            Dim::D2 => vec![
                Octant::new(l, bx, by, 0),
                Octant::new(l, bx + 1, by, 0),
                Octant::new(l, bx, by + 1, 0),
                Octant::new(l, bx + 1, by + 1, 0),
            ],
            Dim::D3 => {
                let mut out = Vec::with_capacity(8);
                for cz in 0..2u32 {
                    for cy in 0..2u32 {
                        for cx in 0..2u32 {
                            out.push(Octant::new(l, bx + cx, by + cy, bz + cz));
                        }
                    }
                }
                out
            }
        }
    }

    /// The ancestor of this octant at `level` (must be ≤ self.level).
    #[inline]
    pub fn ancestor_at(&self, level: u8) -> Octant {
        debug_assert!(level <= self.level);
        let shift = self.level - level;
        Octant {
            level,
            x: self.x >> shift,
            y: self.y >> shift,
            z: self.z >> shift,
        }
    }

    /// Is `other` an ancestor of (or equal to) this octant?
    #[inline]
    pub fn is_ancestor_or_self(&self, other: &Octant) -> bool {
        other.level <= self.level && self.ancestor_at(other.level) == *other
    }

    /// The same-level lattice neighbor in direction `dir`, if it lies within
    /// a lattice of `roots_per_axis * 2^level` octants per axis.
    pub fn neighbor(&self, dir: Direction, roots: (u32, u32, u32), dim: Dim) -> Option<Octant> {
        let n = 1u64 << self.level;
        let (nx, ny, nz) = (
            roots.0 as u64 * n,
            roots.1 as u64 * n,
            match dim {
                Dim::D2 => 1,
                Dim::D3 => roots.2 as u64 * n,
            },
        );
        let x = self.x as i64 + dir.dx as i64;
        let y = self.y as i64 + dir.dy as i64;
        let z = self.z as i64 + dir.dz as i64;
        if x < 0 || y < 0 || z < 0 || x as u64 >= nx || y as u64 >= ny || z as u64 >= nz {
            return None;
        }
        Some(Octant {
            level: self.level,
            x: x as u32,
            y: y as u32,
            z: z as u32,
        })
    }

    /// The same-level lattice neighbor in direction `dir` with periodic
    /// wrap-around at the domain faces (always exists).
    pub fn neighbor_periodic(&self, dir: Direction, roots: (u32, u32, u32), dim: Dim) -> Octant {
        let n = 1i64 << self.level;
        let nx = roots.0 as i64 * n;
        let ny = roots.1 as i64 * n;
        let nz = match dim {
            Dim::D2 => 1,
            Dim::D3 => roots.2 as i64 * n,
        };
        Octant {
            level: self.level,
            x: (self.x as i64 + dir.dx as i64).rem_euclid(nx) as u32,
            y: (self.y as i64 + dir.dy as i64).rem_euclid(ny) as u32,
            z: (self.z as i64 + dir.dz as i64).rem_euclid(nz) as u32,
        }
    }

    /// Physical bounding box of this octant inside `domain`, assuming
    /// `roots` root octants per axis.
    pub fn bounds(&self, domain: &Aabb, roots: (u32, u32, u32), dim: Dim) -> Aabb {
        let n = (1u64 << self.level) as f64;
        let ext = domain.extent();
        let hx = ext.x / (roots.0 as f64 * n);
        let hy = ext.y / (roots.1 as f64 * n);
        let hz = match dim {
            Dim::D2 => ext.z.max(1.0),
            Dim::D3 => ext.z / (roots.2 as f64 * n),
        };
        let lo = Point {
            x: domain.lo.x + self.x as f64 * hx,
            y: domain.lo.y + self.y as f64 * hy,
            z: match dim {
                Dim::D2 => 0.0,
                Dim::D3 => domain.lo.z + self.z as f64 * hz,
            },
        };
        let hi = Point {
            x: lo.x + hx,
            y: lo.y + hy,
            z: match dim {
                Dim::D2 => hz,
                Dim::D3 => lo.z + hz,
            },
        };
        Aabb::new(lo, hi)
    }

    /// Center of this octant in physical coordinates.
    pub fn center(&self, domain: &Aabb, roots: (u32, u32, u32), dim: Dim) -> Point {
        self.bounds(domain, roots, dim).center()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_counts() {
        assert_eq!(Direction::all(Dim::D3).len(), 26);
        assert_eq!(Direction::all(Dim::D2).len(), 8);
        let d3 = Direction::all(Dim::D3);
        let faces = d3.iter().filter(|d| d.codim() == 1).count();
        let edges = d3.iter().filter(|d| d.codim() == 2).count();
        let verts = d3.iter().filter(|d| d.codim() == 3).count();
        assert_eq!((faces, edges, verts), (6, 12, 8));
        // Faces are listed first for deterministic prioritization.
        assert!(d3[..6].iter().all(|d| d.codim() == 1));
    }

    #[test]
    fn direction_opposite() {
        for d in Direction::all(Dim::D3) {
            let o = d.opposite();
            assert_eq!(o.opposite(), d);
            assert_eq!(d.codim(), o.codim());
        }
    }

    #[test]
    fn parent_child_roundtrip() {
        for dim in [Dim::D2, Dim::D3] {
            let parent = Octant::new(3, 5, 2, if dim == Dim::D3 { 7 } else { 0 });
            let children = parent.children(dim);
            assert_eq!(children.len(), dim.children_per_octant());
            for (i, c) in children.iter().enumerate() {
                assert_eq!(c.parent(), Some(parent));
                assert_eq!(c.child_index(dim), i);
            }
        }
    }

    #[test]
    fn ancestor_checks() {
        let deep = Octant::new(5, 21, 13, 8);
        let anc = deep.ancestor_at(2);
        assert_eq!(anc, Octant::new(2, 2, 1, 1));
        assert!(deep.is_ancestor_or_self(&anc));
        assert!(deep.is_ancestor_or_self(&deep));
        assert!(!anc.is_ancestor_or_self(&deep));
    }

    #[test]
    fn neighbor_bounds_checking() {
        let o = Octant::new(1, 0, 0, 0);
        let left = o.neighbor(Direction::new(-1, 0, 0), (1, 1, 1), Dim::D3);
        assert!(left.is_none());
        let right = o.neighbor(Direction::new(1, 0, 0), (1, 1, 1), Dim::D3);
        assert_eq!(right, Some(Octant::new(1, 1, 0, 0)));
        // At level 1 a single root gives a 2^1 lattice; x=1 is the last cell.
        let o2 = Octant::new(1, 1, 0, 0);
        assert!(o2
            .neighbor(Direction::new(1, 0, 0), (1, 1, 1), Dim::D3)
            .is_none());
        // With 2 roots per axis the lattice is 4 wide, so x=2 exists.
        assert_eq!(
            o2.neighbor(Direction::new(1, 0, 0), (2, 2, 2), Dim::D3),
            Some(Octant::new(1, 2, 0, 0))
        );
    }

    #[test]
    fn bounds_tile_domain() {
        let domain = Aabb::unit();
        let o = Octant::new(2, 3, 0, 1);
        let b = o.bounds(&domain, (1, 1, 1), Dim::D3);
        assert!((b.lo.x - 0.75).abs() < 1e-12);
        assert!((b.hi.x - 1.0).abs() < 1e-12);
        assert!((b.lo.z - 0.25).abs() < 1e-12);
        let ext = b.extent();
        assert!((ext.x - 0.25).abs() < 1e-12);
        assert!((ext.y - 0.25).abs() < 1e-12);
        assert!((ext.z - 0.25).abs() < 1e-12);
    }

    #[test]
    fn children_cover_parent_bounds() {
        let domain = Aabb::unit();
        let parent = Octant::new(1, 1, 0, 1);
        let pb = parent.bounds(&domain, (1, 1, 1), Dim::D3);
        for c in parent.children(Dim::D3) {
            let cb = c.bounds(&domain, (1, 1, 1), Dim::D3);
            assert!(cb.lo.x >= pb.lo.x - 1e-12 && cb.hi.x <= pb.hi.x + 1e-12);
            assert!(cb.lo.y >= pb.lo.y - 1e-12 && cb.hi.y <= pb.hi.y + 1e-12);
            assert!(cb.lo.z >= pb.lo.z - 1e-12 && cb.hi.z <= pb.hi.z + 1e-12);
        }
    }
}
