//! Neighbor topology: which blocks exchange boundary data with which.
//!
//! Each block communicates with up to 26 neighbors in 3D — faces, edges and
//! vertices (§II-B). Under 2:1 balance a neighbor is at most one refinement
//! level away; a coarse block can face up to four fine blocks across one
//! face. The neighbor graph drives both boundary-exchange simulation and the
//! locality accounting of placement policies.

use crate::block::BlockId;
use crate::octant::{Direction, Octant};
use crate::tree::{Coverage, Octree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of a shared boundary surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NeighborKind {
    /// Codimension-1 contact (largest messages).
    Face,
    /// Codimension-2 contact.
    Edge,
    /// Codimension-3 contact (smallest messages).
    Vertex,
}

impl NeighborKind {
    /// Map a direction's codimension to a kind, given the mesh dimension.
    ///
    /// In 2D, codim-1 contact is an edge of the square but plays the "face"
    /// role (largest message), and codim-2 is the corner/vertex.
    #[inline]
    pub fn from_codim(codim: u8) -> NeighborKind {
        match codim {
            1 => NeighborKind::Face,
            2 => NeighborKind::Edge,
            3 => NeighborKind::Vertex,
            _ => unreachable!("codim must be 1..=3"),
        }
    }

    /// Codimension of the contact (1, 2 or 3).
    #[inline]
    pub fn codim(self) -> u8 {
        match self {
            NeighborKind::Face => 1,
            NeighborKind::Edge => 2,
            NeighborKind::Vertex => 3,
        }
    }
}

/// One directed neighbor relation: the owning block sends a ghost-zone
/// message to `block` across a `kind` surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighboring block.
    pub block: BlockId,
    /// Surface classification (sets the message size).
    pub kind: NeighborKind,
    /// `neighbor.level - self.level` ∈ {-1, 0, +1} under 2:1 balance.
    pub level_delta: i8,
}

/// The full neighbor graph of a mesh snapshot: `adj[i]` lists the neighbors
/// of the block with `BlockId(i)`. Relations are symmetric as sets of block
/// pairs (kinds match; level deltas are negated).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NeighborGraph {
    adj: Vec<Vec<Neighbor>>,
}

impl NeighborGraph {
    /// Build the neighbor graph for all leaves of `tree`, with `leaves`
    /// given in SFC order (defining the `BlockId` of each leaf).
    pub fn build(tree: &Octree, leaves: &[Octant]) -> NeighborGraph {
        let dim = tree.dim();
        let id_of: HashMap<Octant, BlockId> = leaves
            .iter()
            .enumerate()
            .map(|(i, o)| (*o, BlockId(i as u32)))
            .collect();
        let dirs = Direction::all(dim);
        let mut adj = Vec::with_capacity(leaves.len());
        for leaf in leaves {
            let mut seen: HashMap<BlockId, Neighbor> = HashMap::new();
            for dir in &dirs {
                let Some(nb_cell) = tree.lattice_neighbor(leaf, *dir) else {
                    continue;
                };
                let kind = NeighborKind::from_codim(dir.codim());
                match tree.coverage(&nb_cell) {
                    Coverage::Leaf => {
                        let id = id_of[&nb_cell];
                        seen.entry(id).or_insert(Neighbor {
                            block: id,
                            kind,
                            level_delta: 0,
                        });
                    }
                    Coverage::CoveredBy(coarse) => {
                        let id = id_of[&coarse];
                        let delta = coarse.level as i8 - leaf.level as i8;
                        seen.entry(id).or_insert(Neighbor {
                            block: id,
                            kind,
                            level_delta: delta,
                        });
                    }
                    Coverage::Subdivided => {
                        for fine in touching_descendant_leaves(tree, &nb_cell, *dir) {
                            let id = id_of[&fine];
                            let delta = fine.level as i8 - leaf.level as i8;
                            seen.entry(id).or_insert(Neighbor {
                                block: id,
                                kind,
                                level_delta: delta,
                            });
                        }
                    }
                    Coverage::Outside => {}
                }
            }
            let mut list: Vec<Neighbor> = seen.into_values().collect();
            list.sort_by_key(|n| n.block);
            adj.push(list);
        }
        NeighborGraph { adj }
    }

    /// Number of blocks in the graph.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of a block.
    #[inline]
    pub fn neighbors(&self, b: BlockId) -> &[Neighbor] {
        &self.adj[b.index()]
    }

    /// Iterate over `(block, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[Neighbor])> {
        self.adj
            .iter()
            .enumerate()
            .map(|(i, v)| (BlockId(i as u32), v.as_slice()))
    }

    /// Total number of directed neighbor relations (messages per exchange
    /// round, before placement-dependent local/remote classification).
    pub fn total_relations(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum()
    }

    /// Verify symmetry: if `a` lists `b`, then `b` lists `a` with the same
    /// kind and negated level delta. Returns a description of the first
    /// violation found.
    pub fn check_symmetry(&self) -> Result<(), String> {
        for (a, nbs) in self.iter() {
            for n in nbs {
                let back = self.neighbors(n.block).iter().find(|m| m.block == a);
                match back {
                    None => return Err(format!("{} lists {} but not vice versa", a, n.block)),
                    Some(m) => {
                        if m.kind != n.kind || m.level_delta != -n.level_delta {
                            return Err(format!(
                                "asymmetric relation {}<->{}: {:?} vs {:?}",
                                a, n.block, n, m
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Leaves that are descendants of `cell` and touch the boundary shared with
/// the cell the direction came from (i.e. on the near side w.r.t. `dir`).
fn touching_descendant_leaves(tree: &Octree, cell: &Octant, dir: Direction) -> Vec<Octant> {
    let mut out = Vec::new();
    collect(tree, cell, dir, &mut out);
    fn collect(tree: &Octree, cell: &Octant, dir: Direction, out: &mut Vec<Octant>) {
        match tree.coverage(cell) {
            Coverage::Leaf => out.push(*cell),
            Coverage::Subdivided => {
                for child in cell.children(tree.dim()) {
                    let near_x = dir.dx == 0 || (dir.dx > 0) == (child.x & 1 == 0);
                    let near_y = dir.dy == 0 || (dir.dy > 0) == (child.y & 1 == 0);
                    let near_z = dir.dz == 0 || (dir.dz > 0) == (child.z & 1 == 0);
                    if near_x && near_y && near_z {
                        collect(tree, &child, dir, out);
                    }
                }
            }
            Coverage::CoveredBy(_) | Coverage::Outside => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dim;
    use crate::tree::Octree;

    fn graph_of(tree: &Octree) -> NeighborGraph {
        let leaves = tree.leaves_sorted();
        NeighborGraph::build(tree, &leaves)
    }

    #[test]
    fn uniform_3d_interior_block_has_26_neighbors() {
        let tree = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        g.check_symmetry().unwrap();
        // Find an interior leaf (coordinates 1..3 on each axis).
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| (1..3).contains(&o.x) && (1..3).contains(&o.y) && (1..3).contains(&o.z))
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 26);
    }

    #[test]
    fn uniform_3d_corner_block_has_7_neighbors() {
        let tree = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 0 && o.y == 0 && o.z == 0)
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 7);
    }

    #[test]
    fn uniform_2d_interior_block_has_8_neighbors() {
        let tree = Octree::uniform_roots(Dim::D2, (4, 4, 1));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 1 && o.y == 1)
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 8);
    }

    #[test]
    fn neighbor_kinds_counted_for_interior_block() {
        let tree = Octree::uniform_roots(Dim::D3, (3, 3, 3));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 1 && o.y == 1 && o.z == 1)
            .unwrap();
        let nbs = g.neighbors(BlockId(idx as u32));
        let faces = nbs.iter().filter(|n| n.kind == NeighborKind::Face).count();
        let edges = nbs.iter().filter(|n| n.kind == NeighborKind::Edge).count();
        let verts = nbs
            .iter()
            .filter(|n| n.kind == NeighborKind::Vertex)
            .count();
        assert_eq!((faces, edges, verts), (6, 12, 8));
    }

    #[test]
    fn refined_mesh_graph_is_symmetric_with_level_deltas() {
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 0, 0, 0));
        tree.check_invariants().unwrap();
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        g.check_symmetry().unwrap();
        // Some fine leaf must list a coarse neighbor (delta = -1): the
        // refined root's children on the +x/+y/+z sides touch level-0 roots.
        let has_coarse = leaves
            .iter()
            .enumerate()
            .filter(|(_, o)| o.level == 1)
            .any(|(i, _)| {
                g.neighbors(BlockId(i as u32))
                    .iter()
                    .any(|n| n.level_delta == -1)
            });
        assert!(has_coarse);
    }

    #[test]
    fn coarse_block_sees_four_fine_face_neighbors() {
        // Refine root (0,0,0); root (1,0,0)'s -x face now touches 4 fine leaves.
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 0, 0, 0));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let coarse_idx = leaves
            .iter()
            .position(|o| o.level == 0 && o.x == 1 && o.y == 0 && o.z == 0)
            .unwrap();
        let fine_face_nbs = g
            .neighbors(BlockId(coarse_idx as u32))
            .iter()
            .filter(|n| n.kind == NeighborKind::Face && n.level_delta == 1)
            .count();
        assert_eq!(fine_face_nbs, 4);
    }

    #[test]
    fn total_relations_even() {
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 1, 1, 0));
        let g = graph_of(&tree);
        // Directed relations pair up.
        assert_eq!(g.total_relations() % 2, 0);
    }
}
