//! Neighbor topology: which blocks exchange boundary data with which.
//!
//! Each block communicates with up to 26 neighbors in 3D — faces, edges and
//! vertices (§II-B). Under 2:1 balance a neighbor is at most one refinement
//! level away; a coarse block can face up to four fine blocks across one
//! face. The neighbor graph drives both boundary-exchange simulation and the
//! locality accounting of placement policies.
//!
//! ## Storage and construction
//!
//! The graph is stored in CSR (compressed sparse row) form: one packed
//! [`Neighbor`] array plus per-block offsets. This keeps every adjacency
//! query a slice borrow, every full-graph sweep a linear scan over one
//! contiguous allocation, and (because rows are sorted by block id) reverse
//! edges a binary search — the flat, pointer-free adjacency that lets
//! extreme-scale BAMR frameworks traverse neighborhoods at memory bandwidth.
//!
//! Construction does not hash: leaves arrive in SFC (ascending Morton key)
//! order, so coverage classification of a candidate cell is one binary
//! search over the leaf key array. Large meshes build rows in parallel with
//! scoped threads over contiguous leaf chunks and merge the per-chunk rows
//! into the CSR arrays with a prefix sum.

use crate::block::{BlockId, MeshBlock};
use crate::geom::Dim;
use crate::mesh::{BlockFate, RefinementDelta};
use crate::octant::{Direction, Octant};
use crate::sfc::sfc_key;
use crate::tree::{Coverage, Octree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classification of a shared boundary surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NeighborKind {
    /// Codimension-1 contact (largest messages).
    Face,
    /// Codimension-2 contact.
    Edge,
    /// Codimension-3 contact (smallest messages).
    Vertex,
}

impl NeighborKind {
    /// Map a direction's codimension to a kind, given the mesh dimension.
    ///
    /// In 2D, codim-1 contact is an edge of the square but plays the "face"
    /// role (largest message), and codim-2 is the corner/vertex.
    #[inline]
    pub fn from_codim(codim: u8) -> NeighborKind {
        match codim {
            1 => NeighborKind::Face,
            2 => NeighborKind::Edge,
            3 => NeighborKind::Vertex,
            _ => unreachable!("codim must be 1..=3"),
        }
    }

    /// Codimension of the contact (1, 2 or 3).
    #[inline]
    pub fn codim(self) -> u8 {
        match self {
            NeighborKind::Face => 1,
            NeighborKind::Edge => 2,
            NeighborKind::Vertex => 3,
        }
    }
}

/// One directed neighbor relation: the owning block sends a ghost-zone
/// message to `block` across a `kind` surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The neighboring block.
    pub block: BlockId,
    /// Surface classification (sets the message size).
    pub kind: NeighborKind,
    /// `neighbor.level - self.level` ∈ {-1, 0, +1} under 2:1 balance.
    pub level_delta: i8,
}

/// Meshes at or above this leaf count build their rows on multiple threads.
const PARALLEL_BUILD_MIN_LEAVES: usize = 8192;

/// The full neighbor graph of a mesh snapshot in CSR form: the neighbors of
/// the block with `BlockId(i)` are `entries[offsets[i]..offsets[i+1]]`,
/// sorted by neighbor block id. Relations are symmetric as sets of block
/// pairs (kinds match; level deltas are negated).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NeighborGraph {
    /// Row boundaries; `offsets.len() == num_blocks + 1` (empty graph: `[0]`
    /// or empty).
    pub(crate) offsets: Vec<u32>,
    /// Packed neighbor entries, rows sorted by `block`.
    pub(crate) entries: Vec<Neighbor>,
}

/// Where a same-level candidate cell sits relative to the (SFC-sorted) leaf
/// array — the binary-search replacement for `Octree::coverage` plus the
/// `HashMap<Octant, BlockId>` id lookup.
pub(crate) enum Cover {
    /// The cell is leaf number `i` (same level).
    Leaf(u32),
    /// The cell is interior to coarser leaf number `i`.
    CoveredBy(u32),
    /// The cell is subdivided into finer leaves.
    Subdivided,
}

/// Binary-search cover classification over a strictly ascending SFC key
/// array — the shared core of the leaf-slice builder ([`LeafIndex`]) and the
/// block-array patcher ([`BlockIndex`]).
pub(crate) trait CoverIndex {
    fn keys(&self) -> &[u64];
    fn octant(&self, i: u32) -> Octant;
    fn dim(&self) -> Dim;

    /// Classify an in-lattice cell. Correctness of the `Err` arm: leaves
    /// tile the domain, so if `cell`'s key is absent the leaf with the
    /// greatest smaller key is the (unique) coarser leaf whose key range
    /// contains it; if the key is present at a coarser level, that leaf's
    /// lower corner coincides with `cell`'s, making it an ancestor.
    #[inline]
    fn classify(&self, cell: &Octant) -> Cover {
        match self.keys().binary_search(&sfc_key(cell, self.dim())) {
            Ok(i) => {
                let found = self.octant(i as u32).level;
                if found == cell.level {
                    Cover::Leaf(i as u32)
                } else if found < cell.level {
                    Cover::CoveredBy(i as u32)
                } else {
                    Cover::Subdivided
                }
            }
            Err(pos) => {
                debug_assert!(pos > 0, "in-lattice cell below every leaf key");
                let i = (pos - 1) as u32;
                debug_assert!(
                    cell.level > self.octant(i).level
                        && cell.ancestor_at(self.octant(i).level) == self.octant(i),
                    "Err(pos) must land inside a coarser covering leaf"
                );
                Cover::CoveredBy(i)
            }
        }
    }
}

/// Sorted Morton-key index over the leaf array (keys computed on build).
struct LeafIndex<'a> {
    leaves: &'a [Octant],
    keys: Vec<u64>,
    dim: Dim,
}

impl<'a> LeafIndex<'a> {
    fn new(leaves: &'a [Octant], dim: Dim) -> LeafIndex<'a> {
        let keys: Vec<u64> = leaves.iter().map(|o| sfc_key(o, dim)).collect();
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "leaves must arrive in strict SFC order"
        );
        LeafIndex { leaves, keys, dim }
    }
}

impl CoverIndex for LeafIndex<'_> {
    #[inline]
    fn keys(&self) -> &[u64] {
        &self.keys
    }
    #[inline]
    fn octant(&self, i: u32) -> Octant {
        self.leaves[i as usize]
    }
    #[inline]
    fn dim(&self) -> Dim {
        self.dim
    }
}

/// Cover index borrowing a mesh's maintained block array and key array
/// (no per-call key computation) — the patch path's (and the sharded
/// builder's) view of the mesh.
pub(crate) struct BlockIndex<'a> {
    pub(crate) blocks: &'a [MeshBlock],
    pub(crate) keys: &'a [u64],
    pub(crate) dim: Dim,
}

impl CoverIndex for BlockIndex<'_> {
    #[inline]
    fn keys(&self) -> &[u64] {
        self.keys
    }
    #[inline]
    fn octant(&self, i: u32) -> Octant {
        self.blocks[i as usize].octant
    }
    #[inline]
    fn dim(&self) -> Dim {
        self.dim
    }
}

/// Pooled scratch for [`NeighborGraph::patch`]: the staging CSR arrays swap
/// with the graph's own on every patch, so after the first call both sides
/// run allocation-free at steady state.
#[derive(Debug, Clone, Default)]
pub struct PatchScratch {
    /// Per-new-block flag: row must be rebuilt (vs copied + renumbered).
    affected: Vec<bool>,
    offsets: Vec<u32>,
    entries: Vec<Neighbor>,
    row: Vec<Neighbor>,
}

impl NeighborGraph {
    /// Build the neighbor graph for all leaves of `tree`, with `leaves`
    /// given in SFC order (defining the `BlockId` of each leaf). Dispatches
    /// to the parallel row builder for large meshes.
    pub fn build(tree: &Octree, leaves: &[Octant]) -> NeighborGraph {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if leaves.len() >= PARALLEL_BUILD_MIN_LEAVES && threads > 1 {
            NeighborGraph::build_parallel(tree, leaves, threads.min(8))
        } else {
            NeighborGraph::build_serial(tree, leaves)
        }
    }

    /// Single-threaded CSR build.
    pub fn build_serial(tree: &Octree, leaves: &[Octant]) -> NeighborGraph {
        let index = LeafIndex::new(leaves, tree.dim());
        let dirs = Direction::all(tree.dim());
        let mut offsets = Vec::with_capacity(leaves.len() + 1);
        offsets.push(0u32);
        let mut entries = Vec::with_capacity(leaves.len() * dirs.len());
        let mut row: Vec<Neighbor> = Vec::with_capacity(32);
        for leaf in leaves {
            build_row(tree, &index, &dirs, leaf, &mut row);
            entries.extend_from_slice(&row);
            offsets.push(entries.len() as u32);
        }
        NeighborGraph { offsets, entries }
    }

    /// Parallel CSR build on the shared [`WorkerPool`](crate::pool::WorkerPool):
    /// each task builds the rows of one contiguous leaf chunk; chunks
    /// concatenate into the final CSR arrays (rows are pure functions of the
    /// tree, so the output is independent of chunking and thread count).
    ///
    /// Chunks are balanced by *estimated relation count*, not leaf count:
    /// a leaf adjacent to a refinement-level transition fans out to more
    /// neighbors (up to 4 fine blocks per face in 3D), so equal-leaf chunks
    /// skew badly on deeply refined meshes. A cheap O(n) pre-pass weights
    /// each leaf by its SFC-adjacent level deltas as a proxy for transitions.
    pub fn build_parallel(tree: &Octree, leaves: &[Octant], threads: usize) -> NeighborGraph {
        let n = leaves.len();
        let threads = threads.clamp(1, n.max(1));
        let index = LeafIndex::new(leaves, tree.dim());
        let dirs = Direction::all(tree.dim());

        // Base weight ~= face count; transition bonus ~= extra fine
        // neighbors per level jump seen along the curve.
        let (base_w, jump_w) = if tree.dim() == Dim::D3 {
            (8u64, 4u64)
        } else {
            (4u64, 2u64)
        };
        let weight = |i: usize| -> u64 {
            let l = leaves[i].level as i64;
            let before = if i > 0 {
                (leaves[i - 1].level as i64 - l).unsigned_abs()
            } else {
                0
            };
            let after = if i + 1 < n {
                (leaves[i + 1].level as i64 - l).unsigned_abs()
            } else {
                0
            };
            base_w + jump_w * (before + after)
        };
        let total_weight: u64 = (0..n).map(weight).sum();

        // More chunks than threads so the task-pulling pool can smooth any
        // residual imbalance the weight model misses.
        let chunks = (threads * 4).min(n.max(1));
        let per_chunk = total_weight.div_ceil(chunks as u64).max(1);
        let mut bounds = Vec::with_capacity(chunks + 1);
        bounds.push(0usize);
        let mut acc = 0u64;
        for i in 0..n {
            acc += weight(i);
            if acc >= per_chunk * bounds.len() as u64 && i + 1 < n {
                bounds.push(i + 1);
            }
        }
        bounds.push(n);

        let mut parts: Vec<(Vec<u32>, Vec<Neighbor>)> = bounds
            .windows(2)
            .map(|w| {
                (
                    Vec::with_capacity(w[1] - w[0]),
                    Vec::with_capacity((w[1] - w[0]) * dirs.len()),
                )
            })
            .collect();
        crate::pool::WorkerPool::global().run_with_capped(threads, &mut parts, |t, part| {
            let (counts, entries) = part;
            let mut row: Vec<Neighbor> = Vec::with_capacity(32);
            for leaf in &leaves[bounds[t]..bounds[t + 1]] {
                build_row(tree, &index, &dirs, leaf, &mut row);
                entries.extend_from_slice(&row);
                counts.push(row.len() as u32);
            }
        });

        let total: usize = parts.iter().map(|(_, e)| e.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut entries = Vec::with_capacity(total);
        for (counts, part_entries) in parts {
            for c in counts {
                offsets.push(offsets.last().unwrap() + c);
            }
            entries.extend_from_slice(&part_entries);
        }
        NeighborGraph { offsets, entries }
    }

    /// Reference builder: the original hash-based algorithm
    /// (`HashMap<Octant, BlockId>` id lookup, per-leaf `HashMap` dedup,
    /// `Octree::coverage` classification). Kept as the oracle for the
    /// CSR/legacy equivalence property tests and for before/after
    /// benchmarking; production code paths use [`NeighborGraph::build`].
    pub fn build_legacy(tree: &Octree, leaves: &[Octant]) -> NeighborGraph {
        let dim = tree.dim();
        let id_of: HashMap<Octant, BlockId> = leaves
            .iter()
            .enumerate()
            .map(|(i, o)| (*o, BlockId(i as u32)))
            .collect();
        let dirs = Direction::all(dim);
        let mut offsets = Vec::with_capacity(leaves.len() + 1);
        offsets.push(0u32);
        let mut entries = Vec::new();
        for leaf in leaves {
            let mut seen: HashMap<BlockId, Neighbor> = HashMap::new();
            for dir in &dirs {
                let Some(nb_cell) = tree.lattice_neighbor(leaf, *dir) else {
                    continue;
                };
                let kind = NeighborKind::from_codim(dir.codim());
                match tree.coverage(&nb_cell) {
                    Coverage::Leaf => {
                        let id = id_of[&nb_cell];
                        seen.entry(id).or_insert(Neighbor {
                            block: id,
                            kind,
                            level_delta: 0,
                        });
                    }
                    Coverage::CoveredBy(coarse) => {
                        let id = id_of[&coarse];
                        let delta = coarse.level as i8 - leaf.level as i8;
                        seen.entry(id).or_insert(Neighbor {
                            block: id,
                            kind,
                            level_delta: delta,
                        });
                    }
                    Coverage::Subdivided => {
                        for fine in touching_descendant_leaves(tree, &nb_cell, *dir) {
                            let id = id_of[&fine];
                            let delta = fine.level as i8 - leaf.level as i8;
                            seen.entry(id).or_insert(Neighbor {
                                block: id,
                                kind,
                                level_delta: delta,
                            });
                        }
                    }
                    Coverage::Outside => {}
                }
            }
            let mut list: Vec<Neighbor> = seen.into_values().collect();
            list.sort_by_key(|n| n.block);
            entries.extend_from_slice(&list);
            offsets.push(entries.len() as u32);
        }
        NeighborGraph { offsets, entries }
    }

    /// Number of blocks in the graph.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Neighbors of a block, sorted by neighbor block id.
    #[inline]
    pub fn neighbors(&self, b: BlockId) -> &[Neighbor] {
        let i = b.index();
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate over `(block, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &[Neighbor])> {
        self.offsets.windows(2).enumerate().map(|(i, w)| {
            (
                BlockId(i as u32),
                &self.entries[w[0] as usize..w[1] as usize],
            )
        })
    }

    /// Total number of directed neighbor relations (messages per exchange
    /// round, before placement-dependent local/remote classification).
    #[inline]
    pub fn total_relations(&self) -> usize {
        self.entries.len()
    }

    /// Index into the flat relation space (`0..total_relations()`) where
    /// block `i`'s row begins. Rows are contiguous and sorted by block id,
    /// so `row_start(i)..row_start(i + 1)` addresses exactly the entries
    /// returned by [`neighbors`](NeighborGraph::neighbors) — this is how
    /// entry-parallel side tables (observed-traffic ledgers, partitioner
    /// edge weights) line up with the CSR without touching its internals.
    /// `i == num_blocks()` is allowed and returns `total_relations()`.
    #[inline]
    pub fn row_start(&self, i: usize) -> usize {
        self.offsets[i] as usize
    }

    /// Verify symmetry: if `a` lists `b`, then `b` lists `a` with the same
    /// kind and negated level delta. Returns a description of the first
    /// violation found. Rows are sorted by block id, so each back-edge
    /// lookup is a binary search — O(E log deg) overall, not O(E · deg).
    pub fn check_symmetry(&self) -> Result<(), String> {
        for (a, nbs) in self.iter() {
            for n in nbs {
                let row = self.neighbors(n.block);
                match row.binary_search_by_key(&a, |m| m.block) {
                    Err(_) => return Err(format!("{} lists {} but not vice versa", a, n.block)),
                    Ok(j) => {
                        let m = &row[j];
                        if m.kind != n.kind || m.level_delta != -n.level_delta {
                            return Err(format!(
                                "asymmetric relation {}<->{}: {:?} vs {:?}",
                                a, n.block, n, m
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Repair `self` — the graph of the *pre-adapt* mesh — into the graph of
    /// the post-adapt mesh described by (`tree`, `blocks`, `keys`, `delta`),
    /// rebuilding only the rows whose neighborhoods touch changed octants.
    ///
    /// Affected rows are (a) every new block inside a changed region and
    /// (b) the surviving old neighbors of every changed old block. That set
    /// is complete: a block touches a new child only if it touches the
    /// parent's region (so it was a neighbor of the refined parent), and a
    /// coarsened parent occupies exactly its children's union (so its
    /// neighbors were neighbors of some child) — both already recorded in
    /// the old symmetric graph. Every other row is byte-copied with its
    /// neighbor ids renumbered through the fate table, which preserves the
    /// per-row sort because the surviving-block renumbering is monotonic.
    ///
    /// Cost: O(blocks + copied entries) memcpy plus full row builds only for
    /// the O(changed × degree) affected set. The staging arrays in `scratch`
    /// swap with the graph's own, so steady-state patching allocates
    /// nothing. [`NeighborGraph::build`] is the oracle; callers unsure the
    /// graph matches `delta.blocks_before` should use
    /// `AmrMesh::patch_neighbor_graph`, which falls back to it.
    pub fn patch(
        &mut self,
        tree: &Octree,
        blocks: &[MeshBlock],
        keys: &[u64],
        delta: &RefinementDelta,
        scratch: &mut PatchScratch,
    ) {
        assert_eq!(
            self.num_blocks(),
            delta.blocks_before,
            "patch: graph does not match the pre-adapt mesh"
        );
        assert_eq!(delta.remap.len(), delta.blocks_before, "patch: stale delta");
        assert_eq!(blocks.len(), delta.blocks_after, "patch: stale block array");
        let n_new = blocks.len();
        let index = BlockIndex {
            blocks,
            keys,
            dim: tree.dim(),
        };
        let dirs = Direction::all(tree.dim());

        // Phase 1: mark affected new rows.
        scratch.affected.clear();
        scratch.affected.resize(n_new, false);
        for (old, fate) in delta.remap.iter().enumerate() {
            let changed = match *fate {
                BlockFate::Same(_) => false,
                BlockFate::Refined { first, count } => {
                    scratch.affected[first.index()..first.index() + count as usize].fill(true);
                    true
                }
                BlockFate::Coarsened(new) => {
                    scratch.affected[new.index()] = true;
                    true
                }
            };
            if changed {
                let r = self.offsets[old] as usize..self.offsets[old + 1] as usize;
                for e in &self.entries[r] {
                    if let BlockFate::Same(new) = delta.remap[e.block.index()] {
                        scratch.affected[new.index()] = true;
                    }
                }
            }
        }

        // Phase 2: emit the new CSR arrays into the staging buffers, walking
        // old ids; the fate table yields new ids in ascending order.
        scratch.offsets.clear();
        scratch.offsets.push(0);
        scratch.entries.clear();
        let mut emitted = 0usize;
        for (old, fate) in delta.remap.iter().enumerate() {
            match *fate {
                BlockFate::Same(new) => {
                    debug_assert_eq!(new.index(), emitted);
                    if scratch.affected[new.index()] {
                        build_row(
                            tree,
                            &index,
                            &dirs,
                            &blocks[new.index()].octant,
                            &mut scratch.row,
                        );
                        scratch.entries.extend_from_slice(&scratch.row);
                    } else {
                        let r = self.offsets[old] as usize..self.offsets[old + 1] as usize;
                        for e in &self.entries[r] {
                            let BlockFate::Same(nb) = delta.remap[e.block.index()] else {
                                unreachable!("unaffected row references a changed block");
                            };
                            scratch.entries.push(Neighbor { block: nb, ..*e });
                        }
                    }
                    scratch.offsets.push(scratch.entries.len() as u32);
                    emitted += 1;
                }
                BlockFate::Refined { first, count } => {
                    debug_assert_eq!(first.index(), emitted);
                    for child in &blocks[first.index()..first.index() + count as usize] {
                        build_row(tree, &index, &dirs, &child.octant, &mut scratch.row);
                        scratch.entries.extend_from_slice(&scratch.row);
                        scratch.offsets.push(scratch.entries.len() as u32);
                    }
                    emitted += count as usize;
                }
                BlockFate::Coarsened(new) => {
                    // Only the first sibling emits the parent's row.
                    if new.index() == emitted {
                        build_row(
                            tree,
                            &index,
                            &dirs,
                            &blocks[new.index()].octant,
                            &mut scratch.row,
                        );
                        scratch.entries.extend_from_slice(&scratch.row);
                        scratch.offsets.push(scratch.entries.len() as u32);
                        emitted += 1;
                    }
                }
            }
        }
        debug_assert_eq!(emitted, n_new);

        // Phase 3: swap the staging arrays in; the displaced arrays become
        // the next patch's staging storage.
        std::mem::swap(&mut self.offsets, &mut scratch.offsets);
        std::mem::swap(&mut self.entries, &mut scratch.entries);
    }
}

/// Assemble one block's neighbor row into `row` (cleared first): probe all
/// directions, then sort by block id and keep the first entry per block —
/// directions are enumerated faces-first, so ties resolve to the lowest
/// codimension (largest message), matching the legacy builder's
/// first-insertion-wins dedup.
pub(crate) fn build_row<I: CoverIndex>(
    tree: &Octree,
    index: &I,
    dirs: &[Direction],
    leaf: &Octant,
    row: &mut Vec<Neighbor>,
) {
    row.clear();
    for dir in dirs {
        let Some(nb_cell) = tree.lattice_neighbor(leaf, *dir) else {
            continue;
        };
        let kind = NeighborKind::from_codim(dir.codim());
        match index.classify(&nb_cell) {
            Cover::Leaf(i) => row.push(Neighbor {
                block: BlockId(i),
                kind,
                level_delta: 0,
            }),
            Cover::CoveredBy(i) => row.push(Neighbor {
                block: BlockId(i),
                kind,
                level_delta: index.octant(i).level as i8 - leaf.level as i8,
            }),
            Cover::Subdivided => {
                collect_touching_fine(index, &nb_cell, *dir, kind, leaf.level, row)
            }
        }
    }
    row.sort_by_key(|n| n.block); // stable: keeps the lowest-codim duplicate first
    row.dedup_by_key(|n| n.block); // dedup_by_key keeps the first of each run
}

/// Push the fine leaves inside subdivided `cell` that touch the boundary
/// shared with the cell the direction came from (the near side w.r.t.
/// `dir`). Under corner-inclusive 2:1 balance these are direct children,
/// but the recursion mirrors the legacy builder for defense in depth.
fn collect_touching_fine<I: CoverIndex>(
    index: &I,
    cell: &Octant,
    dir: Direction,
    kind: NeighborKind,
    base_level: u8,
    row: &mut Vec<Neighbor>,
) {
    let l = cell.level + 1;
    let (bx, by, bz) = (cell.x << 1, cell.y << 1, cell.z << 1);
    let zrange: u32 = match index.dim() {
        Dim::D2 => 1,
        Dim::D3 => 2,
    };
    for cz in 0..zrange {
        if dir.dz != 0 && (dir.dz > 0) != (cz == 0) {
            continue;
        }
        for cy in 0..2u32 {
            if dir.dy != 0 && (dir.dy > 0) != (cy == 0) {
                continue;
            }
            for cx in 0..2u32 {
                if dir.dx != 0 && (dir.dx > 0) != (cx == 0) {
                    continue;
                }
                let child = Octant::new(l, bx + cx, by + cy, bz + cz);
                match index.classify(&child) {
                    Cover::Leaf(i) => row.push(Neighbor {
                        block: BlockId(i),
                        kind,
                        level_delta: index.octant(i).level as i8 - base_level as i8,
                    }),
                    Cover::Subdivided => {
                        collect_touching_fine(index, &child, dir, kind, base_level, row)
                    }
                    Cover::CoveredBy(_) => {}
                }
            }
        }
    }
}

/// Leaves that are descendants of `cell` and touch the boundary shared with
/// the cell the direction came from (i.e. on the near side w.r.t. `dir`).
/// Used by the legacy reference builder only.
fn touching_descendant_leaves(tree: &Octree, cell: &Octant, dir: Direction) -> Vec<Octant> {
    let mut out = Vec::new();
    collect(tree, cell, dir, &mut out);
    fn collect(tree: &Octree, cell: &Octant, dir: Direction, out: &mut Vec<Octant>) {
        match tree.coverage(cell) {
            Coverage::Leaf => out.push(*cell),
            Coverage::Subdivided => {
                for child in cell.children(tree.dim()) {
                    let near_x = dir.dx == 0 || (dir.dx > 0) == (child.x & 1 == 0);
                    let near_y = dir.dy == 0 || (dir.dy > 0) == (child.y & 1 == 0);
                    let near_z = dir.dz == 0 || (dir.dz > 0) == (child.z & 1 == 0);
                    if near_x && near_y && near_z {
                        collect(tree, &child, dir, out);
                    }
                }
            }
            Coverage::CoveredBy(_) | Coverage::Outside => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dim;
    use crate::tree::Octree;

    fn graph_of(tree: &Octree) -> NeighborGraph {
        let leaves = tree.leaves_sorted();
        NeighborGraph::build(tree, &leaves)
    }

    #[test]
    fn uniform_3d_interior_block_has_26_neighbors() {
        let tree = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        g.check_symmetry().unwrap();
        // Find an interior leaf (coordinates 1..3 on each axis).
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| (1..3).contains(&o.x) && (1..3).contains(&o.y) && (1..3).contains(&o.z))
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 26);
    }

    #[test]
    fn uniform_3d_corner_block_has_7_neighbors() {
        let tree = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 0 && o.y == 0 && o.z == 0)
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 7);
    }

    #[test]
    fn uniform_2d_interior_block_has_8_neighbors() {
        let tree = Octree::uniform_roots(Dim::D2, (4, 4, 1));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 1 && o.y == 1)
            .unwrap();
        assert_eq!(g.neighbors(BlockId(idx as u32)).len(), 8);
    }

    #[test]
    fn neighbor_kinds_counted_for_interior_block() {
        let tree = Octree::uniform_roots(Dim::D3, (3, 3, 3));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let (idx, _) = leaves
            .iter()
            .enumerate()
            .find(|(_, o)| o.x == 1 && o.y == 1 && o.z == 1)
            .unwrap();
        let nbs = g.neighbors(BlockId(idx as u32));
        let faces = nbs.iter().filter(|n| n.kind == NeighborKind::Face).count();
        let edges = nbs.iter().filter(|n| n.kind == NeighborKind::Edge).count();
        let verts = nbs
            .iter()
            .filter(|n| n.kind == NeighborKind::Vertex)
            .count();
        assert_eq!((faces, edges, verts), (6, 12, 8));
    }

    #[test]
    fn refined_mesh_graph_is_symmetric_with_level_deltas() {
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 0, 0, 0));
        tree.check_invariants().unwrap();
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        g.check_symmetry().unwrap();
        // Some fine leaf must list a coarse neighbor (delta = -1): the
        // refined root's children on the +x/+y/+z sides touch level-0 roots.
        let has_coarse = leaves
            .iter()
            .enumerate()
            .filter(|(_, o)| o.level == 1)
            .any(|(i, _)| {
                g.neighbors(BlockId(i as u32))
                    .iter()
                    .any(|n| n.level_delta == -1)
            });
        assert!(has_coarse);
    }

    #[test]
    fn coarse_block_sees_four_fine_face_neighbors() {
        // Refine root (0,0,0); root (1,0,0)'s -x face now touches 4 fine leaves.
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 0, 0, 0));
        let leaves = tree.leaves_sorted();
        let g = NeighborGraph::build(&tree, &leaves);
        let coarse_idx = leaves
            .iter()
            .position(|o| o.level == 0 && o.x == 1 && o.y == 0 && o.z == 0)
            .unwrap();
        let fine_face_nbs = g
            .neighbors(BlockId(coarse_idx as u32))
            .iter()
            .filter(|n| n.kind == NeighborKind::Face && n.level_delta == 1)
            .count();
        assert_eq!(fine_face_nbs, 4);
    }

    #[test]
    fn total_relations_even() {
        let mut tree = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 1, 1, 0));
        let g = graph_of(&tree);
        // Directed relations pair up.
        assert_eq!(g.total_relations() % 2, 0);
    }

    #[test]
    fn csr_matches_legacy_on_refined_trees() {
        for dim in [Dim::D2, Dim::D3] {
            let mut tree = Octree::uniform_roots(dim, (2, 2, 2));
            tree.refine(&Octant::new(0, 0, 0, 0));
            tree.refine(&Octant::new(0, 1, 1, 0));
            let leaves = tree.leaves_sorted();
            let csr = NeighborGraph::build_serial(&tree, &leaves);
            let legacy = NeighborGraph::build_legacy(&tree, &leaves);
            assert_eq!(csr, legacy, "dim {dim:?}");
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let mut tree = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        tree.refine(&Octant::new(0, 1, 1, 1));
        tree.refine(&Octant::new(0, 2, 2, 2));
        let leaves = tree.leaves_sorted();
        let serial = NeighborGraph::build_serial(&tree, &leaves);
        for threads in [1, 2, 3, 7] {
            let par = NeighborGraph::build_parallel(&tree, &leaves, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn periodic_wrap_handled_by_csr_builder() {
        let mut tree = Octree::uniform_roots_periodic(Dim::D3, (2, 2, 2));
        tree.refine(&Octant::new(0, 0, 0, 0));
        let leaves = tree.leaves_sorted();
        let csr = NeighborGraph::build_serial(&tree, &leaves);
        let legacy = NeighborGraph::build_legacy(&tree, &leaves);
        assert_eq!(csr, legacy);
        csr.check_symmetry().unwrap();
    }

    #[test]
    fn empty_and_single_leaf_graphs() {
        let g = NeighborGraph::default();
        assert_eq!(g.num_blocks(), 0);
        assert_eq!(g.total_relations(), 0);
        let tree = Octree::uniform_roots(Dim::D3, (1, 1, 1));
        let g = graph_of(&tree);
        assert_eq!(g.num_blocks(), 1);
        assert_eq!(g.neighbors(BlockId(0)), &[]);
    }
}
