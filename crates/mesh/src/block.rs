//! Mesh blocks: the unit of work and of placement.
//!
//! Every leaf octant carries one *mesh block* of `nx × ny × nz` cells —
//! the same cell count at every refinement level (§II-B), which is why
//! compute cost is not proportional to spatial area. Blocks are identified
//! by a dense [`BlockId`] assigned in SFC order.

use crate::geom::{Aabb, Dim};
use crate::octant::Octant;
use serde::{Deserialize, Serialize};

/// Dense, SFC-ordered block identifier. `BlockId(i)` is the `i`-th leaf in
/// depth-first (Z-order) traversal order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct BlockId(pub u32);

impl BlockId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Static per-block parameters shared by all blocks of a mesh: cell counts,
/// ghost width, and number of physical field variables. These determine
/// boundary-exchange message sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpec {
    /// Cells per axis inside a block (e.g. 16 for the paper's `16³` blocks).
    pub cells_per_axis: u32,
    /// Ghost-zone width in cells (typically 2 for second-order schemes).
    pub ghost_width: u32,
    /// Number of physical variables exchanged at boundaries (e.g. 5 for
    /// compressible hydro: density, 3×momentum, energy).
    pub num_vars: u32,
    /// Bytes per scalar value (8 for f64).
    pub bytes_per_value: u32,
}

impl Default for BlockSpec {
    fn default() -> Self {
        BlockSpec {
            cells_per_axis: 16,
            ghost_width: 2,
            num_vars: 5,
            bytes_per_value: 8,
        }
    }
}

impl BlockSpec {
    /// Total interior cells in a block.
    pub fn cells(&self, dim: Dim) -> u64 {
        (self.cells_per_axis as u64).pow(dim.rank() as u32)
    }

    /// Message payload in bytes for a boundary exchange across a shared
    /// surface of codimension `codim` (1 = face, 2 = edge, 3 = vertex).
    ///
    /// A face exchange ships `n^(d-1) * g` cells, an edge `n^(d-2) * g²`,
    /// a vertex `g³` — faces are proportionally larger (§VI-C: "face-neighbor
    /// exchanges are proportionally larger than edge or vertex ones").
    pub fn message_bytes(&self, dim: Dim, codim: u8) -> u64 {
        let n = self.cells_per_axis as u64;
        let g = self.ghost_width as u64;
        let d = dim.rank() as u32;
        debug_assert!(codim >= 1 && (codim as u32) <= d);
        let cells = n.pow(d - codim as u32) * g.pow(codim as u32);
        cells * self.num_vars as u64 * self.bytes_per_value as u64
    }
}

/// A mesh block: a leaf octant plus its dense ID and physical bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshBlock {
    pub id: BlockId,
    pub octant: Octant,
    pub bounds: Aabb,
}

impl MeshBlock {
    /// Refinement level of this block.
    #[inline]
    pub fn level(&self) -> u8 {
        self.octant.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_matches_paper() {
        let s = BlockSpec::default();
        assert_eq!(s.cells_per_axis, 16);
        assert_eq!(s.cells(Dim::D3), 4096);
        assert_eq!(s.cells(Dim::D2), 256);
    }

    #[test]
    fn message_sizes_ordered_face_edge_vertex() {
        let s = BlockSpec::default();
        let face = s.message_bytes(Dim::D3, 1);
        let edge = s.message_bytes(Dim::D3, 2);
        let vert = s.message_bytes(Dim::D3, 3);
        assert!(face > edge && edge > vert);
        // face = 16^2 * 2 cells * 5 vars * 8 B = 20480 B
        assert_eq!(face, 16 * 16 * 2 * 5 * 8);
        assert_eq!(edge, 16 * 2 * 2 * 5 * 8);
        assert_eq!(vert, 2 * 2 * 2 * 5 * 8);
    }

    #[test]
    fn message_sizes_2d() {
        let s = BlockSpec::default();
        let face = s.message_bytes(Dim::D2, 1);
        let vert = s.message_bytes(Dim::D2, 2);
        assert_eq!(face, 16 * 2 * 5 * 8);
        assert_eq!(vert, 2 * 2 * 5 * 8);
    }

    #[test]
    fn block_id_display_and_order() {
        assert_eq!(BlockId(7).to_string(), "b7");
        assert!(BlockId(1) < BlockId(2));
        assert_eq!(BlockId(3).index(), 3);
    }
}
