//! Persistent worker pool for deterministic in-process parallelism.
//!
//! Every parallel phase in the workspace (CSR builds, shard refreshes,
//! macrosim rank loops, hierarchical stage-2 placement) dispatches through
//! [`WorkerPool`]. The pool keeps `threads - 1` parked OS threads alive for
//! its whole lifetime so steady-state dispatch allocates nothing and pays no
//! thread-spawn cost; the calling thread always participates as worker 0.
//!
//! Determinism contract: the pool intentionally exposes *only* fork-join
//! task-index parallelism. Tasks are pulled from an atomic counter, so the
//! assignment of task -> OS thread is racy, but callers are required to make
//! each task's *output* a pure function of its task index (slot ownership:
//! a task owns a contiguous index range and is the only writer of it). Under
//! that rule the merged result is bitwise identical to a serial loop over
//! task indices regardless of thread count or scheduling.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// An erased fork-join job. `data` points at a stack-allocated context in
/// `dispatch`; workers only dereference it between the generation bump and
/// the matching `active == 0` hand-back, which the caller blocks on, so the
/// borrow is always live while a worker can observe the pointer.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    /// Workers with index >= `cap` sit this job out (thread-count cap).
    cap: usize,
}

// SAFETY: `data` is only dereferenced by the monomorphized `call` trampoline,
// which requires the referenced context to be `Sync`; `dispatch` enforces
// that via its `F: Sync` / `S: Send` bounds.
unsafe impl Send for Job {}

struct PoolState {
    generation: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current generation's job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// A persistent fork-join pool; see the module docs for the determinism
/// contract callers must follow.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Context shared between the caller and the workers for one dispatch.
struct Ctx<'a, S, F> {
    next: AtomicUsize,
    tasks: usize,
    states: *mut S,
    f: &'a F,
    panicked: &'a AtomicBool,
}

// SAFETY: workers only access disjoint `states` elements (guarded by the
// atomic task counter: each index is claimed exactly once) and the shared
// `f`/`panicked` references, which the bounds below require to be Sync.
unsafe impl<S: Send, F: Sync> Sync for Ctx<'_, S, F> {}

fn pull_tasks<S: Send, F: Fn(usize, &mut S) + Sync>(ctx: &Ctx<'_, S, F>) {
    loop {
        if ctx.panicked.load(Ordering::Relaxed) {
            break;
        }
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        if i >= ctx.tasks {
            break;
        }
        // SAFETY: `i < tasks == states.len()` and the atomic counter hands
        // each index to exactly one worker, so this &mut is unaliased.
        let state = unsafe { &mut *ctx.states.add(i) };
        if catch_unwind(AssertUnwindSafe(|| (ctx.f)(i, state))).is_err() {
            ctx.panicked.store(true, Ordering::SeqCst);
        }
    }
}

unsafe fn trampoline<S: Send, F: Fn(usize, &mut S) + Sync>(data: *const (), worker: usize) {
    // SAFETY: `data` was erased from a `&Ctx<S, F>` with these exact type
    // parameters in `dispatch`, and the caller keeps the context alive until
    // every worker has checked back in.
    let ctx = unsafe { &*(data as *const Ctx<'_, S, F>) };
    let _ = worker;
    pull_tasks(ctx);
}

impl WorkerPool {
    /// Create a pool that runs jobs on `threads` OS threads total
    /// (`threads - 1` spawned workers plus the calling thread).
    /// `threads == 1` spawns nothing and every job runs inline.
    pub fn new(threads: usize) -> WorkerPool {
        let workers = threads.saturating_sub(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..=workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("amr-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total threads that can work on a job, including the caller.
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Process-wide pool sized to the host's available parallelism (capped
    /// at 8, matching the historical CSR-build thread cap). Lives for the
    /// whole process so repeated builds never pay thread-spawn overhead.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
                .min(8);
            WorkerPool::new(threads)
        })
    }

    /// Run `f(i, &mut states[i])` for every `i`, distributing tasks across
    /// the pool. Blocks until all tasks finish. Panics in tasks are caught,
    /// remaining tasks are abandoned, and the panic is re-raised here.
    ///
    /// Must not be called from inside a task running on the same pool (the
    /// pool runs one job at a time and the nested dispatch would deadlock).
    pub fn run_with<S: Send, F: Fn(usize, &mut S) + Sync>(&self, states: &mut [S], f: F) {
        self.run_with_capped(usize::MAX, states, f);
    }

    /// Like [`run_with`](Self::run_with) but uses at most `cap` threads
    /// (including the caller), so a wide shared pool can serve a phase that
    /// was configured for fewer threads.
    pub fn run_with_capped<S: Send, F: Fn(usize, &mut S) + Sync>(
        &self,
        cap: usize,
        states: &mut [S],
        f: F,
    ) {
        let tasks = states.len();
        if tasks <= 1 || cap <= 1 || self.handles.is_empty() {
            for (i, state) in states.iter_mut().enumerate() {
                f(i, state);
            }
            return;
        }
        let panicked = AtomicBool::new(false);
        let ctx = Ctx {
            next: AtomicUsize::new(0),
            tasks,
            states: states.as_mut_ptr(),
            f: &f,
            panicked: &panicked,
        };
        self.dispatch(Job {
            data: (&ctx as *const Ctx<'_, S, F>).cast(),
            call: trampoline::<S, F>,
            cap,
        });
        if panicked.load(Ordering::SeqCst) {
            panic!("worker pool task panicked");
        }
    }

    /// Multi-tenant dispatch: run `f(slot, &mut states[slot])` for every
    /// slot named in `order`, distributing the tasks across the pool.
    /// Unlike [`run_with`](Self::run_with), only the named slots are
    /// touched, and *priority* is the caller's: the pool's shared task
    /// counter hands out `order` front to back, so listing heavy tenants
    /// first lets light ones backfill idle workers — cross-tenant work
    /// stealing without a scheduler.
    ///
    /// `order` entries must be distinct, in-bounds indices into `states`
    /// (distinctness is enforced whenever the call actually dispatches in
    /// parallel — a duplicate would alias one state across workers; the
    /// serial fallback processes entries in order, where a duplicate cannot
    /// alias). Single-thread pools and `order.len() <= 1` run inline with
    /// zero allocation, preserving the warm dispatch path.
    pub fn run_order<S: Send, F: Fn(usize, &mut S) + Sync>(
        &self,
        order: &[usize],
        states: &mut [S],
        f: F,
    ) {
        let n = states.len();
        for &slot in order {
            assert!(
                slot < n,
                "run_order: slot {slot} out of bounds ({n} states)"
            );
        }
        if order.len() <= 1 || self.handles.is_empty() {
            for &slot in order {
                f(slot, &mut states[slot]);
            }
            return;
        }
        let mut seen = vec![false; n];
        for &slot in order {
            assert!(!seen[slot], "run_order: duplicate slot {slot}");
            seen[slot] = true;
        }
        let out = Disjoint::new(states);
        self.run(order.len(), |i| {
            let slot = order[i];
            // SAFETY: `order` entries are distinct and in-bounds (asserted
            // above) and the task counter hands each `i` to exactly one
            // worker, so each named state is mutated by exactly one task.
            let state = unsafe { &mut out.slice(slot, slot + 1)[0] };
            f(slot, state);
        });
    }

    /// Run `f(i)` for every `i in 0..tasks` with no per-task state.
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.run_capped(usize::MAX, tasks, f);
    }

    /// Like [`run`](Self::run) with a thread cap (see `run_with_capped`).
    pub fn run_capped<F: Fn(usize) + Sync>(&self, cap: usize, tasks: usize, f: F) {
        // Zero-sized states: `states.add(i)` never materializes storage.
        let mut states = [(); 0];
        let tasks_arr: &mut [()] = if tasks == 0 {
            &mut states
        } else {
            unsafe { make_unit_slice(tasks) }
        };
        self.run_with_capped(cap, tasks_arr, |i, _unit| f(i));
    }

    /// Post `job`, help run it, and wait for all workers to check back in.
    fn dispatch(&self, job: Job) {
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert!(st.active == 0, "nested dispatch on the same pool");
            st.generation = st.generation.wrapping_add(1);
            st.job = Some(job);
            st.active = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The caller is worker 0 and always participates.
        unsafe { (job.call)(job.data, 0) };
        let mut st = self.shared.state.lock().unwrap();
        while st.active > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
    }
}

/// Build a `&mut [()]` of arbitrary length without backing storage.
///
/// SAFETY: `()` is a ZST, so any well-aligned dangling pointer is valid for
/// any number of elements; no reads or writes ever touch memory.
unsafe fn make_unit_slice<'a>(len: usize) -> &'a mut [()] {
    unsafe { std::slice::from_raw_parts_mut(std::ptr::NonNull::<()>::dangling().as_ptr(), len) }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    break st.job.expect("generation bumped without a job");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        if index < job.cap {
            // SAFETY: the dispatching caller keeps the job context alive
            // until `active` drains back to zero below.
            unsafe { (job.call)(job.data, index) };
        }
        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Caller-guaranteed disjoint mutable access to one slice from many tasks.
///
/// The pool's slot-ownership pattern hands each task a contiguous range of a
/// shared output buffer. Rust cannot express "these `&mut` subslices are
/// disjoint" across a `Fn` closure captured by many threads, so `Disjoint`
/// erases the borrow to a raw pointer and re-materializes bounds-checked
/// subslices on the worker side.
///
/// Safety contract (asserted where checkable, otherwise on the caller):
/// ranges taken via [`slice`](Disjoint::slice) and indices written via
/// [`write`](Disjoint::write) must not overlap between concurrent tasks.
pub struct Disjoint<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: Disjoint is a borrow of `&mut [T]` split across tasks; sending or
// sharing it is safe for T: Send because every element has exactly one
// writer (the caller's disjointness contract).
unsafe impl<T: Send> Send for Disjoint<'_, T> {}
unsafe impl<T: Send> Sync for Disjoint<'_, T> {}

impl<'a, T> Disjoint<'a, T> {
    pub fn new(slice: &'a mut [T]) -> Disjoint<'a, T> {
        Disjoint {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow `lo..hi` as a mutable slice.
    ///
    /// # Safety
    /// No other live reborrow (from any task) may overlap `lo..hi`.
    pub unsafe fn slice(&self, lo: usize, hi: usize) -> &'a mut [T] {
        assert!(lo <= hi && hi <= self.len, "disjoint range out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }

    /// Write a single element.
    ///
    /// # Safety
    /// No other task may concurrently read or write index `i`.
    pub unsafe fn write(&self, i: usize, value: T) {
        assert!(i < self.len, "disjoint write out of bounds");
        unsafe { self.ptr.add(i).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_with_matches_serial_loop() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut states: Vec<u64> = vec![0; 33];
            pool.run_with(&mut states, |i, s| *s = (i as u64) * 3 + 1);
            let expect: Vec<u64> = (0..33).map(|i| i * 3 + 1).collect();
            assert_eq!(states, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_order_touches_named_slots_only_at_any_thread_count() {
        for threads in [1, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut states: Vec<u64> = vec![0; 16];
            // Priority order: heavy tenants first, several slots skipped.
            let order = [9, 3, 14, 0, 7, 11, 2];
            pool.run_order(&order, &mut states, |slot, s| *s = slot as u64 + 100);
            for (i, &v) in states.iter().enumerate() {
                let expect = if order.contains(&i) {
                    i as u64 + 100
                } else {
                    0
                };
                assert_eq!(v, expect, "threads={threads} slot={i}");
            }
        }
    }

    #[test]
    fn run_order_empty_and_single_are_inline() {
        let pool = WorkerPool::new(4);
        let mut states: Vec<u64> = vec![0; 4];
        pool.run_order(&[], &mut states, |_, s| *s = 1);
        assert_eq!(states, vec![0; 4]);
        pool.run_order(&[2], &mut states, |slot, s| *s = slot as u64 + 1);
        assert_eq!(states, vec![0, 0, 3, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate slot")]
    fn run_order_rejects_duplicates_when_parallel() {
        let pool = WorkerPool::new(4);
        let mut states: Vec<u64> = vec![0; 4];
        pool.run_order(&[1, 2, 1], &mut states, |_, s| *s += 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn run_order_rejects_out_of_bounds_slots() {
        let pool = WorkerPool::new(2);
        let mut states: Vec<u64> = vec![0; 4];
        pool.run_order(&[0, 4], &mut states, |_, s| *s += 1);
    }

    #[test]
    fn run_covers_every_task_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = WorkerPool::new(3);
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut states: Vec<u64> = vec![0; 8];
            pool.run_with(&mut states, |i, s| *s = round + i as u64);
            total += states.iter().sum::<u64>();
        }
        let expect: u64 = (0..50u64).map(|r| (0..8).map(|i| r + i).sum::<u64>()).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn capped_dispatch_limits_participants() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = WorkerPool::new(8);
        let seen = Mutex::new(HashSet::new());
        // 256 slow-ish tasks with cap 2: only worker 0 (caller) and worker 1
        // may claim tasks. We can't observe worker indices directly, so we
        // record thread ids and assert at most 2 distinct ones.
        pool.run_capped(2, 256, |_i| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        assert!(seen.lock().unwrap().len() <= 2);
    }

    #[test]
    fn panicking_task_propagates_to_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must stay usable after a panicked job.
        let mut states = vec![0u32; 4];
        pool.run_with(&mut states, |i, s| *s = i as u32);
        assert_eq!(states, [0, 1, 2, 3]);
    }

    #[test]
    fn disjoint_ranges_partition_one_buffer() {
        let pool = WorkerPool::new(4);
        let mut buf = vec![0u32; 100];
        let bounds = [0usize, 13, 50, 77, 100];
        {
            let out = Disjoint::new(&mut buf);
            pool.run(bounds.len() - 1, |t| {
                let chunk = unsafe { out.slice(bounds[t], bounds[t + 1]) };
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (bounds[t] + k) as u32;
                }
            });
        }
        let expect: Vec<u32> = (0..100).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn zero_tasks_and_single_thread_paths_are_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        pool.run(0, |_| panic!("must not run"));
        let mut states: Vec<u8> = vec![];
        pool.run_with(&mut states, |_, _| panic!("must not run"));
        let mut one = [7u8];
        pool.run_with(&mut one, |i, s| *s = i as u8);
        assert_eq!(one, [0]);
    }
}
