//! Hilbert-curve keys: an alternative SFC with strictly better locality.
//!
//! The paper's baseline (and Parthenon's) is the Z-order curve because it
//! falls out of the octree traversal for free (§V-A1), at the cost of long
//! jumps — "some locality is inevitably lost as dimensionality reduction is
//! inherently lossy". The Hilbert curve has no jumps: consecutive keys are
//! always face neighbors. This module provides Hilbert keys over the same
//! normalized octant lattice as [`crate::sfc`], enabling the
//! `ablation_sfc` experiment: how much of the baseline's locality gap is
//! the curve's fault vs fundamental?
//!
//! Implementation: Skilling's compact transpose algorithm (J. Skilling,
//! "Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), reimplemented
//! from the published description.

use crate::geom::Dim;
use crate::octant::Octant;
use crate::tree::NORM_LEVEL;

/// Convert axis coordinates to the Hilbert "transpose" form, in place.
///
/// `bits` is the per-axis resolution. After the call, the Hilbert index is
/// the bit-interleave of the transformed coordinates, most significant bit
/// of `x[0]` first.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    debug_assert!((1..=32).contains(&bits));
    let m = 1u32 << (bits - 1);

    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Interleave transpose-form coordinates into a single index, MSB-first.
fn transpose_to_index(x: &[u32], bits: u32) -> u64 {
    let n = x.len();
    let mut h = 0u64;
    for b in (0..bits).rev() {
        for xi in x.iter().take(n) {
            h = (h << 1) | ((xi >> b) & 1) as u64;
        }
    }
    h
}

/// Hilbert index of a point on a `2^bits` lattice.
pub fn hilbert_index(coords: &[u32], bits: u32) -> u64 {
    let mut x: Vec<u32> = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    transpose_to_index(&x, bits)
}

/// Hilbert key of an octant, normalized to [`NORM_LEVEL`] like
/// [`crate::sfc::sfc_key`]. Children of a refined leaf occupy the parent's
/// key range, so sorting leaves by this key yields a valid (non-Z) SFC
/// traversal.
pub fn hilbert_key(o: &Octant, dim: Dim) -> u64 {
    debug_assert!(o.level <= NORM_LEVEL);
    let shift = (NORM_LEVEL - o.level) as u32;
    // Resolution: NORM_LEVEL bits for the octant lattice plus up to 5 root
    // bits; 21 bits/axis keeps the 3D index within u64 (63 bits).
    let bits = 21u32;
    match dim {
        Dim::D2 => hilbert_index(&[o.x << shift, o.y << shift], bits),
        Dim::D3 => hilbert_index(&[o.x << shift, o.y << shift, o.z << shift], bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decode helper for testing: walk all cells of a small lattice, sort by
    /// index, verify the path is a Hamiltonian face-neighbor walk.
    fn check_hamiltonian_path(dims: usize, bits: u32) {
        let side = 1usize << bits;
        let total = side.pow(dims as u32);
        let mut cells: Vec<(u64, Vec<u32>)> = Vec::with_capacity(total);
        let mut idx = vec![0u32; dims];
        for flat in 0..total {
            let mut f = flat;
            for v in idx.iter_mut() {
                *v = (f % side) as u32;
                f /= side;
            }
            cells.push((hilbert_index(&idx, bits), idx.clone()));
        }
        cells.sort();
        // All indices distinct and dense in [0, total).
        for (i, (h, _)) in cells.iter().enumerate() {
            assert_eq!(*h, i as u64, "Hilbert indices must be a dense permutation");
        }
        // Consecutive cells are face neighbors (L1 distance exactly 1).
        for w in cells.windows(2) {
            let d: u32 = w[0]
                .1
                .iter()
                .zip(&w[1].1)
                .map(|(a, b)| a.abs_diff(*b))
                .sum();
            assert_eq!(d, 1, "jump between {:?} and {:?}", w[0].1, w[1].1);
        }
    }

    #[test]
    fn hilbert_2d_is_hamiltonian_walk() {
        check_hamiltonian_path(2, 1);
        check_hamiltonian_path(2, 2);
        check_hamiltonian_path(2, 3);
        check_hamiltonian_path(2, 4);
    }

    #[test]
    fn hilbert_3d_is_hamiltonian_walk() {
        check_hamiltonian_path(3, 1);
        check_hamiltonian_path(3, 2);
        check_hamiltonian_path(3, 3);
    }

    #[test]
    fn octant_keys_unique_across_levels() {
        use crate::tree::Octree;
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        t.refine(&Octant::new(0, 0, 0, 0));
        t.refine(&Octant::new(1, 0, 0, 0));
        let mut keys: Vec<u64> = t.leaves().map(|o| hilbert_key(o, Dim::D3)).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn hilbert_has_better_adjacency_than_zorder() {
        // Count how many consecutive key pairs are face neighbors on a flat
        // 8x8x8 lattice: Hilbert should win decisively (it is 100%).
        use crate::morton::morton_encode3;
        let bits = 3;
        let side = 1u32 << bits;
        let mut hil: Vec<(u64, (u32, u32, u32))> = Vec::new();
        let mut mor: Vec<(u64, (u32, u32, u32))> = Vec::new();
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    hil.push((hilbert_index(&[x, y, z], bits), (x, y, z)));
                    mor.push((morton_encode3(x, y, z), (x, y, z)));
                }
            }
        }
        hil.sort();
        mor.sort();
        let adj = |v: &[(u64, (u32, u32, u32))]| {
            v.windows(2)
                .filter(|w| {
                    let a = w[0].1;
                    let b = w[1].1;
                    a.0.abs_diff(b.0) + a.1.abs_diff(b.1) + a.2.abs_diff(b.2) == 1
                })
                .count()
        };
        let h = adj(&hil);
        let m = adj(&mor);
        assert_eq!(h, hil.len() - 1, "Hilbert must be a perfect walk");
        assert!(
            m < h,
            "Z-order {m} should have fewer adjacent steps than Hilbert {h}"
        );
    }
}
