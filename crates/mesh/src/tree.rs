//! The refinement tree: a forest of octrees over a root grid, stored as its
//! leaf set.
//!
//! Block-based AMR partitions the domain into uniformly sized blocks at each
//! refinement level, managed with octrees (§II-A). We store only the *leaf*
//! octants (the mesh blocks) in a hash set; parent/child relations are pure
//! lattice arithmetic on [`Octant`]s, so no explicit node structure is
//! needed. A *root grid* of `rx × ry × rz` level-0 octants supports
//! non-cubic domains such as the paper's `128² × 256` Sedov configurations
//! (Table I) where each root is one initial block.
//!
//! The tree enforces **2:1 balance**: any two leaves that touch (even only
//! at a corner) differ by at most one refinement level. Production AMR codes
//! enforce this to bound interpolation stencils; here it also guarantees
//! that neighbor lookups only need to examine one level up or down.

use crate::geom::Dim;
use crate::octant::{Direction, Octant, MAX_LEVEL};
use std::collections::{BTreeSet, HashSet};

/// Leaves are normalized to this level when computing SFC keys; it bounds the
/// deepest refinement level the tree supports.
pub const NORM_LEVEL: u8 = 16;

/// Maximum root-grid extent per axis (keeps normalized coordinates within
/// the 21-bit-per-axis Morton budget: `32 * 2^16 = 2^21`).
pub const MAX_ROOTS_PER_AXIS: u32 = 32;

/// Where a lattice cell sits relative to the leaf set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// The cell itself is a leaf.
    Leaf,
    /// The cell is interior to a coarser leaf (returned).
    CoveredBy(Octant),
    /// The cell is subdivided: its descendants are leaves.
    Subdivided,
    /// The cell is outside the domain lattice.
    Outside,
}

/// A 2:1-balanced forest of octrees, stored as its leaf set.
#[derive(Debug, Clone)]
pub struct Octree {
    dim: Dim,
    roots: (u32, u32, u32),
    leaves: HashSet<Octant>,
    periodic: bool,
}

impl Octree {
    /// Create a forest whose leaves are exactly the root grid (every root a
    /// level-0 leaf). This matches the paper's initial condition of one
    /// (unrefined) block per root.
    pub fn uniform_roots(dim: Dim, roots: (u32, u32, u32)) -> Self {
        let rz = match dim {
            Dim::D2 => 1,
            Dim::D3 => roots.2,
        };
        assert!(
            roots.0 >= 1
                && roots.1 >= 1
                && rz >= 1
                && roots.0 <= MAX_ROOTS_PER_AXIS
                && roots.1 <= MAX_ROOTS_PER_AXIS
                && rz <= MAX_ROOTS_PER_AXIS,
            "root grid {roots:?} out of supported range"
        );
        let mut leaves = HashSet::with_capacity((roots.0 * roots.1 * rz) as usize);
        for z in 0..rz {
            for y in 0..roots.1 {
                for x in 0..roots.0 {
                    leaves.insert(Octant::new(0, x, y, z));
                }
            }
        }
        Octree {
            dim,
            roots: (roots.0, roots.1, rz),
            leaves,
            periodic: false,
        }
    }

    /// Like [`Octree::uniform_roots`], but with periodic domain boundaries:
    /// blocks on opposite faces are neighbors (turbulence-box topology).
    pub fn uniform_roots_periodic(dim: Dim, roots: (u32, u32, u32)) -> Self {
        let mut t = Octree::uniform_roots(dim, roots);
        t.periodic = true;
        t
    }

    /// Rebuild a tree from an explicit leaf set (e.g. a checkpoint),
    /// validating tiling and 2:1 balance.
    pub fn from_leaves(
        dim: Dim,
        roots: (u32, u32, u32),
        leaves: Vec<Octant>,
    ) -> Result<Octree, String> {
        let rz = match dim {
            Dim::D2 => 1,
            Dim::D3 => roots.2,
        };
        if roots.0 < 1
            || roots.1 < 1
            || rz < 1
            || roots.0 > MAX_ROOTS_PER_AXIS
            || roots.1 > MAX_ROOTS_PER_AXIS
            || rz > MAX_ROOTS_PER_AXIS
        {
            return Err(format!("root grid {roots:?} out of supported range"));
        }
        let n = leaves.len();
        let tree = Octree {
            dim,
            roots: (roots.0, roots.1, rz),
            leaves: leaves.into_iter().collect(),
            periodic: false,
        };
        if tree.leaves.len() != n {
            return Err("duplicate leaves in checkpoint".into());
        }
        for leaf in &tree.leaves {
            if leaf.level > NORM_LEVEL || !tree.in_lattice(leaf) {
                return Err(format!("leaf {leaf:?} outside lattice"));
            }
        }
        tree.check_invariants()?;
        Ok(tree)
    }

    /// Single-root tree uniformly refined to `level`.
    pub fn uniform(dim: Dim, level: u8) -> Self {
        let mut t = Octree::uniform_roots(dim, (1, 1, 1));
        for _ in 0..level {
            for leaf in t.leaves_sorted() {
                t.refine(&leaf);
            }
        }
        t
    }

    /// Dimensionality of the mesh.
    #[inline]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The root grid extents.
    #[inline]
    pub fn roots(&self) -> (u32, u32, u32) {
        self.roots
    }

    /// Are the domain boundaries periodic?
    #[inline]
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Mark the domain boundaries periodic (or not). Affects neighbor
    /// lookups, 2:1 balance and the neighbor graph.
    pub fn set_periodic(&mut self, periodic: bool) {
        self.periodic = periodic;
    }

    /// Same-level lattice neighbor under this tree's boundary semantics:
    /// `None` only at non-periodic domain faces.
    pub fn lattice_neighbor(&self, o: &Octant, dir: Direction) -> Option<Octant> {
        if self.periodic {
            Some(o.neighbor_periodic(dir, self.roots, self.dim))
        } else {
            o.neighbor(dir, self.roots, self.dim)
        }
    }

    /// Number of leaves (mesh blocks).
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Is this octant currently a leaf?
    #[inline]
    pub fn is_leaf(&self, o: &Octant) -> bool {
        self.leaves.contains(o)
    }

    /// Iterate over leaves in arbitrary order.
    pub fn leaves(&self) -> impl Iterator<Item = &Octant> {
        self.leaves.iter()
    }

    /// Leaves sorted by SFC key (depth-first / Z-order traversal order).
    pub fn leaves_sorted(&self) -> Vec<Octant> {
        let mut v: Vec<Octant> = self.leaves.iter().copied().collect();
        v.sort_by_key(|o| crate::sfc::sfc_key(o, self.dim));
        v
    }

    /// Classify a lattice cell relative to the leaf set.
    pub fn coverage(&self, cell: &Octant) -> Coverage {
        if !self.in_lattice(cell) {
            return Coverage::Outside;
        }
        if self.leaves.contains(cell) {
            return Coverage::Leaf;
        }
        let mut cur = *cell;
        while let Some(p) = cur.parent() {
            if self.leaves.contains(&p) {
                return Coverage::CoveredBy(p);
            }
            cur = p;
        }
        Coverage::Subdivided
    }

    /// Is the cell's coordinate within the lattice at its level?
    pub fn in_lattice(&self, cell: &Octant) -> bool {
        let n = 1u64 << cell.level;
        let within =
            (cell.x as u64) < self.roots.0 as u64 * n && (cell.y as u64) < self.roots.1 as u64 * n;
        match self.dim {
            Dim::D2 => within && cell.z == 0,
            Dim::D3 => within && (cell.z as u64) < self.roots.2 as u64 * n,
        }
    }

    /// All leaves that are descendants of `cell` (or `cell` itself if it is a
    /// leaf). Empty if the cell is outside or covered by a coarser leaf.
    pub fn leaves_within(&self, cell: &Octant) -> Vec<Octant> {
        let mut out = Vec::new();
        self.collect_leaves_within(cell, &mut out);
        out
    }

    /// Append the leaves within `cell` to `out` in SFC (children-recursive
    /// Morton) order — the allocation-reusing core of
    /// [`Octree::leaves_within`], also used by the incremental block-index
    /// splice.
    pub(crate) fn collect_leaves_within(&self, cell: &Octant, out: &mut Vec<Octant>) {
        match self.coverage(cell) {
            Coverage::Leaf => out.push(*cell),
            Coverage::Subdivided => {
                for c in cell.children(self.dim) {
                    self.collect_leaves_within(&c, out);
                }
            }
            Coverage::CoveredBy(_) | Coverage::Outside => {}
        }
    }

    /// Refine a leaf into its `2^d` children, recursively refining coarser
    /// neighbors first to maintain 2:1 balance ("ripple" refinement).
    ///
    /// Returns the number of leaves refined (≥ 1), or 0 if `o` was not a leaf.
    pub fn refine(&mut self, o: &Octant) -> usize {
        if !self.leaves.contains(o) {
            return 0;
        }
        assert!(
            o.level < NORM_LEVEL,
            "refinement beyond NORM_LEVEL={NORM_LEVEL} unsupported"
        );
        let mut refined = 0;
        // Balance first: any neighbor covered by a coarser leaf must be
        // refined before `o`'s children (level o.level+1) appear.
        for dir in Direction::all(self.dim) {
            if let Some(nb) = self.lattice_neighbor(o, dir) {
                if let Coverage::CoveredBy(coarse) = self.coverage(&nb) {
                    // 2:1 balance guarantees coarse.level == o.level - 1.
                    refined += self.refine(&coarse);
                }
            }
        }
        self.leaves.remove(o);
        for c in o.children(self.dim) {
            self.leaves.insert(c);
        }
        refined + 1
    }

    /// Can the `2^d` children of `parent` be merged back into `parent`
    /// without violating 2:1 balance?
    ///
    /// Requires all children to currently be leaves, and every leaf adjacent
    /// to `parent` to be at level ≤ `parent.level + 1`.
    pub fn can_coarsen(&self, parent: &Octant) -> bool {
        if parent.level >= MAX_LEVEL || !self.in_lattice(parent) {
            return false;
        }
        let children = parent.children(self.dim);
        if !children.iter().all(|c| self.leaves.contains(c)) {
            return false;
        }
        // After merging, `parent` is a level-l leaf; any adjacent leaf at
        // level > l+1 would break balance. Adjacent leaves are descendants of
        // the same-level neighbors of `parent`, restricted to the touching
        // boundary; checking all descendants of all 26 neighbors is a safe
        // superset only for those actually touching parent, so restrict to
        // leaves within neighbor cells that touch parent (all of them do, by
        // construction of the lattice neighbor).
        for dir in Direction::all(self.dim) {
            if let Some(nb) = self.lattice_neighbor(parent, dir) {
                for leaf in self.touching_leaves_in(&nb, dir) {
                    if leaf.level > parent.level + 1 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Leaves inside cell `nb` that touch the face/edge/corner shared with
    /// the cell `nb.opposite(dir)` (i.e. the cell we came from).
    fn touching_leaves_in(&self, nb: &Octant, dir: Direction) -> Vec<Octant> {
        let mut out = Vec::new();
        self.collect_touching(nb, dir, &mut out);
        out
    }

    fn collect_touching(&self, cell: &Octant, dir: Direction, out: &mut Vec<Octant>) {
        match self.coverage(cell) {
            Coverage::Leaf => out.push(*cell),
            Coverage::CoveredBy(c) => out.push(c),
            Coverage::Subdivided => {
                for child in cell.children(self.dim) {
                    // The child touches the shared boundary iff, along each
                    // axis where dir is nonzero, it is on the near side.
                    let near_x = dir.dx == 0 || (dir.dx > 0) == (child.x & 1 == 0);
                    let near_y = dir.dy == 0 || (dir.dy > 0) == (child.y & 1 == 0);
                    let near_z = dir.dz == 0 || (dir.dz > 0) == (child.z & 1 == 0);
                    if near_x && near_y && near_z {
                        self.collect_touching(&child, dir, out);
                    }
                }
            }
            Coverage::Outside => {}
        }
    }

    /// Merge the children of `parent` back into `parent`. Returns `true` on
    /// success, `false` if [`Self::can_coarsen`] fails.
    pub fn coarsen(&mut self, parent: &Octant) -> bool {
        if !self.can_coarsen(parent) {
            return false;
        }
        for c in parent.children(self.dim) {
            self.leaves.remove(&c);
        }
        self.leaves.insert(*parent);
        true
    }

    /// Verify the structural invariants:
    /// 1. leaves tile the domain exactly (no gaps, no overlaps), and
    /// 2. 2:1 balance holds between all touching leaves.
    ///
    /// Intended for tests and debug assertions; O(n · 26 · depth).
    pub fn check_invariants(&self) -> Result<(), String> {
        // Tiling: total normalized volume must equal the domain volume.
        let norm = |o: &Octant| 1u128 << ((NORM_LEVEL - o.level) as u128 * self.dim.rank() as u128);
        let total: u128 = self.leaves.iter().map(norm).sum();
        let rz = match self.dim {
            Dim::D2 => 1u128,
            Dim::D3 => self.roots.2 as u128,
        };
        let domain_vol = self.roots.0 as u128
            * self.roots.1 as u128
            * rz
            * (1u128 << (NORM_LEVEL as u128 * self.dim.rank() as u128));
        if total != domain_vol {
            return Err(format!(
                "leaves do not tile domain: covered {total} of {domain_vol}"
            ));
        }
        // No leaf is an ancestor of another (overlap check).
        let sorted: BTreeSet<Octant> = self.leaves.iter().copied().collect();
        for leaf in &sorted {
            let mut cur = *leaf;
            while let Some(p) = cur.parent() {
                if self.leaves.contains(&p) {
                    return Err(format!("leaf {leaf:?} nested inside leaf {p:?}"));
                }
                cur = p;
            }
        }
        // 2:1 balance.
        for leaf in &self.leaves {
            for dir in Direction::all(self.dim) {
                if let Some(nb) = self.lattice_neighbor(leaf, dir) {
                    match self.coverage(&nb) {
                        Coverage::CoveredBy(c) => {
                            if leaf.level > c.level + 1 {
                                return Err(format!("balance violation: {leaf:?} touches {c:?}"));
                            }
                        }
                        Coverage::Subdivided => {
                            for fine in self.touching_leaves_in(&nb, dir) {
                                if fine.level > leaf.level + 1 {
                                    return Err(format!(
                                        "balance violation: {leaf:?} touches {fine:?}"
                                    ));
                                }
                            }
                        }
                        Coverage::Leaf | Coverage::Outside => {}
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_roots_counts() {
        let t = Octree::uniform_roots(Dim::D3, (8, 8, 8));
        assert_eq!(t.num_leaves(), 512);
        t.check_invariants().unwrap();
        let t2 = Octree::uniform_roots(Dim::D2, (4, 4, 0));
        assert_eq!(t2.num_leaves(), 16);
        t2.check_invariants().unwrap();
    }

    #[test]
    fn uniform_level_counts() {
        let t = Octree::uniform(Dim::D3, 2);
        assert_eq!(t.num_leaves(), 64);
        let t = Octree::uniform(Dim::D2, 3);
        assert_eq!(t.num_leaves(), 64);
        t.check_invariants().unwrap();
    }

    #[test]
    fn refine_replaces_leaf_with_children() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        let leaf = Octant::new(0, 0, 0, 0);
        assert_eq!(t.refine(&leaf), 1);
        assert_eq!(t.num_leaves(), 8 - 1 + 8);
        assert!(!t.is_leaf(&leaf));
        t.check_invariants().unwrap();
    }

    #[test]
    fn refine_non_leaf_is_noop() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        assert_eq!(t.refine(&Octant::new(3, 0, 0, 0)), 0);
        assert_eq!(t.num_leaves(), 8);
    }

    #[test]
    fn ripple_refinement_maintains_balance() {
        let mut t = Octree::uniform_roots(Dim::D3, (4, 4, 4));
        // Descend into the corner of root (1,1,1) that touches the 7 other
        // roots around the interior vertex (0.25, 0.25, 0.25): every step
        // must ripple-refine the coarser neighbors.
        let mut target = Octant::new(0, 1, 1, 1);
        for _ in 0..4 {
            t.refine(&target);
            target = target.children(Dim::D3)[0];
            t.check_invariants().unwrap();
        }
        // Deep refinement forces neighbors to refine as well: strictly more
        // leaves than the 4 isolated (no-ripple) refinements would give.
        assert!(t.num_leaves() > 64 + 4 * 7, "leaves = {}", t.num_leaves());
    }

    #[test]
    fn coarsen_roundtrip() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        let leaf = Octant::new(0, 1, 1, 1);
        t.refine(&leaf);
        assert!(t.can_coarsen(&leaf));
        assert!(t.coarsen(&leaf));
        assert_eq!(t.num_leaves(), 8);
        t.check_invariants().unwrap();
    }

    #[test]
    fn coarsen_rejected_when_balance_would_break() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        let a = Octant::new(0, 0, 0, 0);
        t.refine(&a);
        // Refine the child adjacent to (1,0,0) root to level 2.
        let fine = Octant::new(1, 1, 0, 0);
        assert!(t.is_leaf(&fine));
        t.refine(&fine);
        t.check_invariants().unwrap();
        // Root (1,0,0) cannot exist as a level-0 leaf next to level-2 leaves,
        // so its children (if refined) could not be merged back; here check
        // that merging `a`'s children is rejected while level-2 leaves touch a.
        assert!(!t.can_coarsen(&a));
    }

    #[test]
    fn coverage_classification() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        let root = Octant::new(0, 0, 0, 0);
        assert_eq!(t.coverage(&root), Coverage::Leaf);
        let child = root.children(Dim::D3)[3];
        assert_eq!(t.coverage(&child), Coverage::CoveredBy(root));
        t.refine(&root);
        assert_eq!(t.coverage(&root), Coverage::Subdivided);
        assert_eq!(t.coverage(&child), Coverage::Leaf);
        assert_eq!(t.coverage(&Octant::new(0, 5, 0, 0)), Coverage::Outside);
    }

    #[test]
    fn leaves_within_collects_descendants() {
        let mut t = Octree::uniform_roots(Dim::D3, (1, 1, 1));
        let root = Octant::new(0, 0, 0, 0);
        t.refine(&root);
        let c0 = root.children(Dim::D3)[0];
        t.refine(&c0);
        let within = t.leaves_within(&root);
        assert_eq!(within.len(), 7 + 8);
        assert_eq!(t.leaves_within(&c0).len(), 8);
    }

    #[test]
    fn leaves_sorted_is_deterministic_and_complete() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        t.refine(&Octant::new(0, 1, 0, 1));
        let a = t.leaves_sorted();
        let b = t.leaves_sorted();
        assert_eq!(a, b);
        assert_eq!(a.len(), t.num_leaves());
    }
}
