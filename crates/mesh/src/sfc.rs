//! Space-filling-curve ordering of octants.
//!
//! Block IDs in block-based AMR codes are assigned by a depth-first traversal
//! of the octree (Fig. 5 of the paper). For leaves of a 2:1-balanced forest,
//! that traversal order equals ascending Morton order of each leaf's lower
//! corner normalized to the finest representable level: a leaf at level `l`
//! occupies the key range of all its potential descendants, and a DFS visits
//! it exactly where that range begins.

use crate::geom::Dim;
use crate::morton::{morton_encode2, morton_encode3};
use crate::octant::Octant;
use crate::tree::NORM_LEVEL;

/// Z-order key of an octant: the Morton code of its lower corner expressed on
/// the level-[`NORM_LEVEL`] lattice. Sorting leaves by this key yields the
/// depth-first (SFC) traversal order used for block-ID assignment.
#[inline]
pub fn sfc_key(o: &Octant, dim: Dim) -> u64 {
    debug_assert!(o.level <= NORM_LEVEL);
    let shift = (NORM_LEVEL - o.level) as u32;
    match dim {
        Dim::D2 => morton_encode2(o.x << shift, o.y << shift),
        Dim::D3 => morton_encode3(o.x << shift, o.y << shift, o.z << shift),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Octree;

    #[test]
    fn children_sort_after_parent_position() {
        // A refined leaf's children occupy exactly the parent's slot in the
        // ordering: first child has the parent's key.
        let dim = Dim::D3;
        let parent = Octant::new(2, 1, 2, 3);
        let children = parent.children(dim);
        assert_eq!(sfc_key(&parent, dim), sfc_key(&children[0], dim));
        for w in children.windows(2) {
            assert!(sfc_key(&w[0], dim) < sfc_key(&w[1], dim));
        }
    }

    #[test]
    fn keys_unique_across_mixed_levels() {
        let mut t = Octree::uniform_roots(Dim::D3, (2, 2, 2));
        t.refine(&Octant::new(0, 0, 0, 0));
        t.refine(&Octant::new(1, 0, 0, 0));
        let leaves = t.leaves_sorted();
        let mut keys: Vec<u64> = leaves.iter().map(|o| sfc_key(o, Dim::D3)).collect();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate SFC keys among leaves");
    }

    #[test]
    fn sfc_order_matches_dfs_order() {
        // Build a small refined tree and compare the sorted-key order with an
        // explicit depth-first traversal.
        let dim = Dim::D2;
        let mut t = Octree::uniform_roots(dim, (1, 1, 0));
        let root = Octant::new(0, 0, 0, 0);
        t.refine(&root);
        let c = root.children(dim)[2];
        t.refine(&c);

        fn dfs(t: &Octree, o: &Octant, out: &mut Vec<Octant>) {
            if t.is_leaf(o) {
                out.push(*o);
            } else {
                for ch in o.children(t.dim()) {
                    dfs(t, &ch, out);
                }
            }
        }
        let mut dfs_order = Vec::new();
        dfs(&t, &root, &mut dfs_order);
        assert_eq!(t.leaves_sorted(), dfs_order);
    }
}
