//! `AmrMesh`: the top-level mesh API tying together tree, blocks, SFC
//! ordering and neighbor topology.
//!
//! This is the interface the rest of the workspace consumes: workloads tag
//! blocks for (de)refinement, the mesh adapts while keeping 2:1 balance,
//! block IDs are re-assigned in SFC order (exactly the redistribution
//! pipeline of §V-A: *assign block IDs via Z-order SFC → compute placement →
//! migrate*), and placement policies read the SFC-ordered cost vector plus
//! the neighbor graph.
//!
//! ## Incremental remeshing
//!
//! A real AMR step changes only a few percent of blocks near the front, so
//! [`AmrMesh::adapt`] is O(changed blocks), not O(mesh): block IDs live in a
//! Morton-sorted array where every refine/coarsen edits a contiguous span
//! (children are consecutive on the curve), so the post-adapt index is a
//! single merge walk that copies surviving blocks and splices changed spans.
//! The walk also fills [`RefinementDelta::remap`] — the old→new [`BlockId`]
//! fate of every pre-adapt block — which downstream consumers use to patch
//! the neighbor graph ([`NeighborGraph::patch`]) and remap placement state
//! instead of rebuilding from scratch.

use crate::block::{BlockId, BlockSpec, MeshBlock};
use crate::geom::{Aabb, Dim};
use crate::neighbors::{NeighborGraph, PatchScratch};
use crate::octant::Octant;
use crate::sfc::sfc_key;
use crate::tree::{Coverage, Octree, NORM_LEVEL};
use amr_telemetry::trace::{Counter as TraceCounter, TraceHandle, TracePhase};
use serde::{Deserialize, Serialize};

/// Static configuration of an AMR mesh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshConfig {
    pub dim: Dim,
    /// Root grid (initial blocks per axis). One initial block per root.
    pub roots: (u32, u32, u32),
    /// Physical domain covered by the root grid.
    pub domain: Aabb,
    /// Per-block cell counts / ghost width / variables.
    pub spec: BlockSpec,
    /// Maximum refinement level (relative to the roots).
    pub max_level: u8,
    /// Periodic domain boundaries (opposite faces are neighbors).
    pub periodic: bool,
}

impl MeshConfig {
    /// Config for the paper's Sedov setups: `mesh_cells` total cells per axis
    /// with `16³` blocks gives `mesh_cells/16` roots per axis (Table I).
    pub fn from_cells(dim: Dim, mesh_cells: (u32, u32, u32), max_level: u8) -> MeshConfig {
        let spec = BlockSpec::default();
        let b = spec.cells_per_axis;
        assert!(
            mesh_cells.0.is_multiple_of(b)
                && mesh_cells.1.is_multiple_of(b)
                && (dim == Dim::D2 || mesh_cells.2.is_multiple_of(b)),
            "mesh cells must be a multiple of the block size"
        );
        MeshConfig {
            dim,
            roots: (
                mesh_cells.0 / b,
                mesh_cells.1 / b,
                if dim == Dim::D2 { 1 } else { mesh_cells.2 / b },
            ),
            domain: Aabb::unit(),
            spec,
            max_level,
            periodic: false,
        }
    }

    /// Same configuration with periodic domain boundaries.
    pub fn with_periodic(mut self) -> MeshConfig {
        self.periodic = true;
        self
    }
}

/// Per-block adaptation decision produced by a workload's tagging criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineTag {
    /// Split the block into `2^d` children.
    Refine,
    /// Merge with siblings into the parent (only applied if all siblings
    /// agree and 2:1 balance permits).
    Coarsen,
    /// Leave as is.
    Keep,
}

/// The fate of one pre-adapt block across an adaptation step, indexed by its
/// old [`BlockId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockFate {
    /// The octant survived; this is its post-adapt id.
    Same(BlockId),
    /// The octant was subdivided; its region is now covered by `count` new
    /// leaves at contiguous ids `first .. first + count` (children are
    /// consecutive on the SFC, so the span covers ripple re-refinement too).
    Refined { first: BlockId, count: u32 },
    /// The octant merged with its siblings; the parent leaf has this
    /// post-adapt id (all `2^d` siblings map to the same id).
    Coarsened(BlockId),
}

/// Changeset of one adaptation step: summary counters plus the full old→new
/// block remap that incremental consumers (graph patching, placement-state
/// remapping) key off.
///
/// The changeset is pooled inside the mesh — [`AmrMesh::adapt`] returns a
/// borrow and [`AmrMesh::last_delta`] re-exposes it — so a steady-state adapt
/// allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefinementDelta {
    /// Leaves refined (including balance-induced ripples).
    pub refined: usize,
    /// Parents created by coarsening.
    pub coarsened: usize,
    /// Block count before adaptation.
    pub blocks_before: usize,
    /// Block count after adaptation.
    pub blocks_after: usize,
    /// Fate of every pre-adapt block, indexed by old [`BlockId`]. Empty when
    /// the adapt was a no-op (`!changed()`): the identity remap is implied
    /// and nothing is materialized.
    pub remap: Vec<BlockFate>,
    /// Pre-adapt leaves that were subdivided (in old SFC order).
    pub refined_parents: Vec<Octant>,
    /// Parent leaves created by merging complete families (in SFC order).
    pub coarsened_parents: Vec<Octant>,
}

impl RefinementDelta {
    /// Did the mesh change (requiring redistribution)?
    pub fn changed(&self) -> bool {
        self.refined > 0 || self.coarsened > 0
    }

    /// True when the adapt took the no-op fast path: nothing changed and no
    /// remap was materialized (identity implied).
    pub fn is_identity(&self) -> bool {
        !self.changed() && self.remap.is_empty()
    }

    /// Number of pre-adapt blocks whose fate is not [`BlockFate::Same`].
    pub fn changed_old_blocks(&self) -> usize {
        self.remap
            .iter()
            .filter(|f| !matches!(f, BlockFate::Same(_)))
            .count()
    }

    /// Post-adapt ids of blocks created by refinement, ascending.
    pub fn new_child_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.remap.iter().flat_map(|f| {
            let span = match f {
                BlockFate::Refined { first, count } => {
                    first.index()..first.index() + *count as usize
                }
                _ => 0..0,
            };
            span.map(|i| BlockId(i as u32))
        })
    }
}

/// A block-structured AMR mesh: 2:1-balanced octree forest + SFC-ordered
/// block index.
///
/// ```
/// use amr_mesh::{AmrMesh, Dim, MeshConfig, Point, RefineTag};
/// // 64^3 cells, 16^3 blocks -> 4x4x4 roots.
/// let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2));
/// assert_eq!(mesh.num_blocks(), 64);
/// let hot = Point::new(0.25, 0.25, 0.25);
/// mesh.adapt(|b| if b.bounds.contains(&hot) { RefineTag::Refine } else { RefineTag::Keep });
/// assert_eq!(mesh.num_blocks(), 64 + 7); // one block split into 8
/// mesh.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct AmrMesh {
    config: MeshConfig,
    tree: Octree,
    blocks: Vec<MeshBlock>,
    /// SFC key of each block, parallel to `blocks` and strictly ascending;
    /// `id_of` is a binary search over this array (no per-leaf hash map).
    keys: Vec<u64>,
    /// Last adapt's changeset (pooled; see [`AmrMesh::last_delta`]).
    delta: RefinementDelta,
    // Pooled scratch so steady-state adapts allocate nothing.
    tags_scratch: Vec<(MeshBlock, RefineTag)>,
    coarsen_scratch: Vec<(Octant, u32)>,
    blocks_spare: Vec<MeshBlock>,
    keys_spare: Vec<u64>,
    leaves_scratch: Vec<Octant>,
    /// Optional trace handle: when set, adapts record `remesh`/`splice_index`
    /// spans and graph repairs record `graph_patch` spans (plus counters).
    /// `None` — the default — leaves every path untouched.
    trace: Option<TraceHandle>,
}

impl AmrMesh {
    /// Build the initial mesh: one block per root-grid cell.
    pub fn new(config: MeshConfig) -> AmrMesh {
        assert!(config.max_level <= NORM_LEVEL);
        let mut tree = Octree::uniform_roots(config.dim, config.roots);
        tree.set_periodic(config.periodic);
        let mut mesh = AmrMesh::empty(config, tree);
        mesh.rebuild_index();
        mesh
    }

    /// Rebuild a mesh from a config and a validated tree (checkpoint
    /// restore). Fails if the tree's dimensionality or root grid disagrees
    /// with the config.
    pub fn from_parts(config: MeshConfig, tree: Octree) -> Result<AmrMesh, String> {
        if tree.dim() != config.dim {
            return Err("tree/config dimensionality mismatch".into());
        }
        let rz = match config.dim {
            Dim::D2 => 1,
            Dim::D3 => config.roots.2,
        };
        if tree.roots() != (config.roots.0, config.roots.1, rz) {
            return Err("tree/config root grid mismatch".into());
        }
        if config.max_level > NORM_LEVEL {
            return Err("max_level beyond supported depth".into());
        }
        let mut tree = tree;
        tree.set_periodic(config.periodic);
        // Re-validate: periodic domains impose extra 2:1 constraints across
        // the wrap that a non-periodic check would not see.
        if config.periodic {
            tree.check_invariants()?;
        }
        let mut mesh = AmrMesh::empty(config, tree);
        mesh.rebuild_index();
        Ok(mesh)
    }

    fn empty(config: MeshConfig, tree: Octree) -> AmrMesh {
        AmrMesh {
            config,
            tree,
            blocks: Vec::new(),
            keys: Vec::new(),
            delta: RefinementDelta::default(),
            tags_scratch: Vec::new(),
            coarsen_scratch: Vec::new(),
            blocks_spare: Vec::new(),
            keys_spare: Vec::new(),
            leaves_scratch: Vec::new(),
            trace: None,
        }
    }

    /// Attach (or detach, with `None`) a trace handle; see
    /// [`amr_telemetry::trace`]. Instrumentation only observes — traced and
    /// untraced adapts produce identical meshes and deltas.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Mesh configuration.
    #[inline]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Underlying tree (read-only).
    #[inline]
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks in SFC order (index == `BlockId`).
    #[inline]
    pub fn blocks(&self) -> &[MeshBlock] {
        &self.blocks
    }

    /// SFC key of each block, parallel to [`AmrMesh::blocks`] and strictly
    /// ascending.
    #[inline]
    pub fn sfc_keys(&self) -> &[u64] {
        &self.keys
    }

    /// Look up a block by ID.
    #[inline]
    pub fn block(&self, id: BlockId) -> &MeshBlock {
        &self.blocks[id.index()]
    }

    /// The changeset of the most recent [`AmrMesh::adapt`] call. Default
    /// (identity) before any adapt or after a full index rebuild.
    #[inline]
    pub fn last_delta(&self) -> &RefinementDelta {
        &self.delta
    }

    /// The `BlockId` of a leaf octant, if it is a current leaf: a binary
    /// search over the sorted key array (an ancestor or descendant of a leaf
    /// can share the leaf's key, hence the octant equality check).
    pub fn id_of(&self, o: &Octant) -> Option<BlockId> {
        match self.keys.binary_search(&sfc_key(o, self.config.dim)) {
            Ok(i) if self.blocks[i].octant == *o => Some(BlockId(i as u32)),
            _ => None,
        }
    }

    /// Blocks whose bounds intersect `region` (positive-measure overlap),
    /// in SFC order. Used by diagnostics and region-of-interest tooling.
    pub fn blocks_in_region(&self, region: &Aabb) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.blocks_in_region_into(region, &mut out);
        out
    }

    /// Allocation-reusing variant of [`AmrMesh::blocks_in_region`]: clears
    /// `out` and fills it with the intersecting block ids in SFC (ascending)
    /// order. Per-step callers keep `out` pooled.
    pub fn blocks_in_region_into(&self, region: &Aabb, out: &mut Vec<BlockId>) {
        out.clear();
        out.extend(
            self.blocks
                .iter()
                .filter(|b| b.bounds.intersects(region))
                .map(|b| b.id),
        );
    }

    /// The block containing a physical point, if the point lies inside the
    /// domain (half-open block bounds: exactly one block matches).
    pub fn block_at(&self, p: &crate::geom::Point) -> Option<BlockId> {
        self.blocks
            .iter()
            .find(|b| b.bounds.contains(p))
            .map(|b| b.id)
    }

    /// Build the neighbor graph for the current mesh snapshot.
    pub fn neighbor_graph(&self) -> NeighborGraph {
        let leaves: Vec<Octant> = self.blocks.iter().map(|b| b.octant).collect();
        NeighborGraph::build(&self.tree, &leaves)
    }

    /// Bring `graph` (the neighbor graph of the *pre-adapt* mesh) up to date
    /// with the mesh after the most recent [`AmrMesh::adapt`], repairing only
    /// the CSR rows whose neighborhoods touch changed octants. Falls back to
    /// a full [`AmrMesh::neighbor_graph`] build when the stored delta cannot
    /// vouch for `graph` (identity delta, stale delta, or a block-count
    /// mismatch). Returns `true` iff the incremental patch path ran.
    pub fn patch_neighbor_graph(
        &self,
        graph: &mut NeighborGraph,
        scratch: &mut PatchScratch,
    ) -> bool {
        let _span = self.trace.as_ref().map(|t| t.span(TracePhase::GraphPatch));
        let d = &self.delta;
        if d.remap.len() == d.blocks_before
            && !d.remap.is_empty()
            && graph.num_blocks() == d.blocks_before
            && self.blocks.len() == d.blocks_after
        {
            graph.patch(&self.tree, &self.blocks, &self.keys, d, scratch);
            if let Some(t) = &self.trace {
                t.metrics.incr(TraceCounter::GraphPatches, 1);
            }
            true
        } else {
            *graph = self.neighbor_graph();
            if let Some(t) = &self.trace {
                t.metrics.incr(TraceCounter::GraphFullBuilds, 1);
                // Distinct from GraphFullBuilds so callers can tell "the
                // patch entry point gave up" apart from intentional builds.
                t.metrics.incr(TraceCounter::GraphPatchFallbacks, 1);
            }
            false
        }
    }

    /// Apply one adaptation step driven by a per-block tagging criterion.
    ///
    /// Refinement is capped at `config.max_level` and triggers 2:1 ripple
    /// refinement; coarsening requires all `2^d` siblings tagged `Coarsen`
    /// and balance to permit the merge. Block IDs are re-assigned in SFC
    /// order by splicing the changed spans into the sorted block array —
    /// O(changed blocks), not O(mesh) — and the returned changeset records
    /// every pre-adapt block's fate. A no-op adapt (nothing refined or
    /// coarsened) leaves the index untouched and allocates nothing.
    pub fn adapt<F>(&mut self, tag: F) -> &RefinementDelta
    where
        F: Fn(&MeshBlock) -> RefineTag,
    {
        // Cheap Rc bump (no allocation) so the span guard doesn't hold a
        // borrow of `self` across the mutations below.
        let trace = self.trace.clone();
        let _span = trace.as_ref().map(|t| t.span(TracePhase::Remesh));
        let blocks_before = self.blocks.len();
        let mut tags = std::mem::take(&mut self.tags_scratch);
        tags.clear();
        tags.extend(self.blocks.iter().map(|b| (*b, tag(b))));

        let mut refined = 0usize;
        for (b, t) in &tags {
            if *t == RefineTag::Refine && b.level() < self.config.max_level {
                refined += self.tree.refine(&b.octant);
            }
        }

        // Group coarsen tags by parent without hashing: blocks arrive in SFC
        // order, and a complete sibling family is always one contiguous run
        // of `2^d` Coarsen tags (siblings are consecutive on the curve; any
        // interloper between two siblings is a descendant of a refined
        // sibling, which already disqualifies the family). Count run lengths.
        let mut cands = std::mem::take(&mut self.coarsen_scratch);
        cands.clear();
        for (b, t) in &tags {
            if *t == RefineTag::Coarsen {
                if let Some(p) = b.octant.parent() {
                    match cands.last_mut() {
                        Some((q, c)) if *q == p => *c += 1,
                        _ => cands.push((p, 1)),
                    }
                }
            }
        }
        let family = self.config.dim.children_per_octant() as u32;
        let mut coarsened = 0usize;
        for (p, c) in &cands {
            // A sibling may have been refined by a balance ripple above; the
            // can_coarsen check inside coarsen() guards that.
            if *c == family && self.tree.coarsen(p) {
                coarsened += 1;
            }
        }
        cands.clear();
        self.coarsen_scratch = cands;
        tags.clear();
        self.tags_scratch = tags;

        self.delta.refined = refined;
        self.delta.coarsened = coarsened;
        self.delta.blocks_before = blocks_before;
        if refined == 0 && coarsened == 0 {
            // No-op fast path: the index is already current; the empty remap
            // means identity.
            self.delta.remap.clear();
            self.delta.refined_parents.clear();
            self.delta.coarsened_parents.clear();
        } else {
            let _splice = trace.as_ref().map(|t| t.span(TracePhase::SpliceIndex));
            self.splice_index();
        }
        self.delta.blocks_after = self.blocks.len();
        if let Some(t) = &trace {
            t.metrics.incr(TraceCounter::Adapts, 1);
            if refined == 0 && coarsened == 0 {
                t.metrics.incr(TraceCounter::NoopAdapts, 1);
            }
            t.metrics.incr(TraceCounter::BlocksRefined, refined as u64);
            t.metrics
                .incr(TraceCounter::BlocksCoarsened, coarsened as u64);
        }
        &self.delta
    }

    /// Incremental index update: one merge walk over the pre-adapt block
    /// array. Surviving leaves are copied (bounds reused); a subdivided
    /// block's slot expands into the leaves now within it (recursion covers
    /// ripples that re-refined same-pass children); a coarsened family's
    /// `2^d` contiguous slots collapse into one parent emitted at the first
    /// child. Children are consecutive on the SFC, so the output stays
    /// sorted without re-sorting, and the walk doubles as the fate recorder.
    fn splice_index(&mut self) {
        std::mem::swap(&mut self.blocks, &mut self.blocks_spare);
        std::mem::swap(&mut self.keys, &mut self.keys_spare);
        // `blocks_spare`/`keys_spare` now hold the pre-adapt index; the new
        // index builds into the (cleared) pooled arrays.
        self.blocks.clear();
        self.keys.clear();
        self.delta.remap.clear();
        self.delta.refined_parents.clear();
        self.delta.coarsened_parents.clear();
        let domain = &self.config.domain;
        let roots = self.tree.roots();
        let dim = self.config.dim;
        let mut within = std::mem::take(&mut self.leaves_scratch);
        for (i, b) in self.blocks_spare.iter().enumerate() {
            if self.tree.is_leaf(&b.octant) {
                let id = BlockId(self.blocks.len() as u32);
                self.delta.remap.push(BlockFate::Same(id));
                self.keys.push(self.keys_spare[i]);
                self.blocks.push(MeshBlock {
                    id,
                    octant: b.octant,
                    bounds: b.bounds,
                });
                continue;
            }
            match self.tree.coverage(&b.octant) {
                Coverage::Subdivided => {
                    within.clear();
                    self.tree.collect_leaves_within(&b.octant, &mut within);
                    let first = BlockId(self.blocks.len() as u32);
                    self.delta.remap.push(BlockFate::Refined {
                        first,
                        count: within.len() as u32,
                    });
                    self.delta.refined_parents.push(b.octant);
                    for o in &within {
                        let id = BlockId(self.blocks.len() as u32);
                        self.keys.push(sfc_key(o, dim));
                        self.blocks.push(MeshBlock {
                            id,
                            octant: *o,
                            bounds: o.bounds(domain, roots, dim),
                        });
                    }
                }
                Coverage::CoveredBy(p) => {
                    debug_assert_eq!(b.octant.parent(), Some(p), "multi-level collapse");
                    match self.blocks.last() {
                        Some(last) if last.octant == p => {
                            // Later sibling of an already-emitted parent.
                            self.delta.remap.push(BlockFate::Coarsened(last.id));
                        }
                        _ => {
                            let id = BlockId(self.blocks.len() as u32);
                            self.delta.remap.push(BlockFate::Coarsened(id));
                            self.delta.coarsened_parents.push(p);
                            self.keys.push(sfc_key(&p, dim));
                            self.blocks.push(MeshBlock {
                                id,
                                octant: p,
                                bounds: p.bounds(domain, roots, dim),
                            });
                        }
                    }
                }
                Coverage::Leaf | Coverage::Outside => {
                    unreachable!("pre-adapt block neither survived nor changed")
                }
            }
        }
        self.leaves_scratch = within;
        debug_assert_eq!(self.blocks.len(), self.tree.num_leaves());
        debug_assert!(self.keys.windows(2).all(|w| w[0] < w[1]));
    }

    /// Recompute SFC-ordered block IDs and physical bounds from scratch
    /// (initial construction and checkpoint restore).
    fn rebuild_index(&mut self) {
        let leaves = self.tree.leaves_sorted();
        self.blocks.clear();
        self.keys.clear();
        self.blocks.reserve(leaves.len());
        self.keys.reserve(leaves.len());
        for (i, o) in leaves.iter().enumerate() {
            let id = BlockId(i as u32);
            self.blocks.push(MeshBlock {
                id,
                octant: *o,
                bounds: o.bounds(&self.config.domain, self.tree.roots(), self.config.dim),
            });
            self.keys.push(sfc_key(o, self.config.dim));
        }
    }

    /// Rebuild the block index from scratch, discarding the incremental
    /// state. The stored delta is invalidated (reset to identity) so
    /// [`AmrMesh::patch_neighbor_graph`] falls back to a full build. Kept as
    /// the oracle for the incremental-vs-full equivalence tests and the
    /// full-rebuild arm of the evolving-mesh benchmarks.
    pub fn force_full_rebuild(&mut self) {
        self.rebuild_index();
        self.delta = RefinementDelta {
            blocks_before: self.blocks.len(),
            blocks_after: self.blocks.len(),
            ..RefinementDelta::default()
        };
    }

    /// Validate structural invariants (tiling, balance, index coherence).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()?;
        if self.blocks.len() != self.tree.num_leaves() {
            return Err("block index out of sync with tree".into());
        }
        if self.keys.len() != self.blocks.len() {
            return Err("key array out of sync with blocks".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.index() != i {
                return Err(format!("block {i} has id {}", b.id));
            }
            if !self.tree.is_leaf(&b.octant) {
                return Err(format!("block {} is not a tree leaf", b.id));
            }
            if self.keys[i] != sfc_key(&b.octant, self.config.dim) {
                return Err(format!("stale SFC key for block {}", b.id));
            }
            if i > 0 && self.keys[i - 1] >= self.keys[i] {
                return Err(format!("keys not strictly ascending at block {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn cfg(roots: u32, max_level: u8) -> MeshConfig {
        MeshConfig {
            dim: Dim::D3,
            roots: (roots, roots, roots),
            domain: Aabb::unit(),
            spec: BlockSpec::default(),
            max_level,
            periodic: false,
        }
    }

    #[test]
    fn table1_configs_have_one_block_per_rank() {
        // Table I: 512 ranks <-> 128^3 cells, 16^3 blocks -> 512 roots.
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 128, 128), 3));
        assert_eq!(m.num_blocks(), 512);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 128, 256), 3));
        assert_eq!(m.num_blocks(), 1024);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 256, 256), 3));
        assert_eq!(m.num_blocks(), 2048);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (256, 256, 256), 3));
        assert_eq!(m.num_blocks(), 4096);
    }

    #[test]
    fn adapt_refines_tagged_blocks() {
        let mut m = AmrMesh::new(cfg(2, 3));
        let delta = m.adapt(|b| {
            if b.bounds.contains(&Point::new(0.1, 0.1, 0.1)) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        assert!(delta.changed());
        assert_eq!(delta.refined, 1);
        assert_eq!(delta.blocks_before, 8);
        assert_eq!(delta.blocks_after, 15);
        m.check_invariants().unwrap();
    }

    #[test]
    fn adapt_respects_max_level() {
        let mut m = AmrMesh::new(cfg(1, 1));
        let d1 = m.adapt(|_| RefineTag::Refine);
        assert_eq!(d1.blocks_after, 8);
        // All at max level now; further refinement is a no-op.
        let d2 = m.adapt(|_| RefineTag::Refine);
        assert!(!d2.changed());
        assert_eq!(d2.blocks_after, 8);
    }

    #[test]
    fn adapt_coarsens_complete_families_only() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant == Octant::new(0, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(m.num_blocks(), 15);
        // Tag only some of the children: nothing merges.
        let d = m.adapt(|b| {
            if b.level() == 1 && b.octant.x == 0 && b.octant.y == 0 && b.octant.z == 0 {
                RefineTag::Coarsen
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(d.coarsened, 0);
        // Tag the whole family: merges back.
        let d = m.adapt(|b| {
            if b.level() == 1 {
                RefineTag::Coarsen
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(d.coarsened, 1);
        assert_eq!(m.num_blocks(), 8);
        m.check_invariants().unwrap();
    }

    #[test]
    fn block_ids_are_sfc_sequential_after_adapt() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m.check_invariants().unwrap();
        let keys: Vec<u64> = m
            .blocks()
            .iter()
            .map(|b| crate::sfc::sfc_key(&b.octant, Dim::D3))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys, m.sfc_keys());
    }

    #[test]
    fn incremental_index_matches_full_rebuild() {
        let mut m = AmrMesh::new(cfg(2, 2));
        // Refine, then coarsen part of it back, then refine elsewhere: every
        // splice case (copy, expand, collapse) in play.
        m.adapt(|b| {
            if b.octant.x == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m.adapt(|b| {
            if b.level() == 1 && b.octant.y < 2 {
                RefineTag::Coarsen
            } else if b.level() == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m.check_invariants().unwrap();
        let mut full = m.clone();
        full.force_full_rebuild();
        assert_eq!(m.blocks(), full.blocks());
        assert_eq!(m.sfc_keys(), full.sfc_keys());
    }

    #[test]
    fn patch_fallback_is_reported_via_trace_counter() {
        use amr_telemetry::trace::Counter as TC;
        let mut m = AmrMesh::new(cfg(2, 3));
        let handle = TraceHandle::new(64);
        m.set_trace(Some(handle.clone()));
        let mut graph = m.neighbor_graph();
        let mut scratch = PatchScratch::default();
        // A live delta patches incrementally: no fallback recorded.
        m.adapt(|b| {
            if b.id.index() == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        assert!(m.patch_neighbor_graph(&mut graph, &mut scratch));
        assert_eq!(handle.metrics.counter(TC::GraphPatches), 1);
        assert_eq!(handle.metrics.counter(TC::GraphPatchFallbacks), 0);
        // Invalidate the stored delta: the entry point must degrade to a
        // full rebuild — and say so, distinctly from intentional builds.
        m.force_full_rebuild();
        assert!(!m.patch_neighbor_graph(&mut graph, &mut scratch));
        assert_eq!(handle.metrics.counter(TC::GraphPatchFallbacks), 1);
        assert_eq!(handle.metrics.counter(TC::GraphFullBuilds), 1);
        assert_eq!(graph, m.neighbor_graph());
    }

    #[test]
    fn remap_tracks_every_old_block() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant == Octant::new(0, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let old_blocks: Vec<MeshBlock> = m.blocks().to_vec();
        let delta = m
            .adapt(|b| {
                if b.level() == 1 && b.octant.x < 2 && b.octant.y < 2 && b.octant.z < 2 {
                    RefineTag::Coarsen
                } else if b.octant == Octant::new(0, 1, 1, 1) {
                    RefineTag::Refine
                } else {
                    RefineTag::Keep
                }
            })
            .clone();
        assert_eq!(delta.remap.len(), old_blocks.len());
        assert!(delta.refined >= 1 && delta.coarsened == 1);
        for (old, fate) in delta.remap.iter().enumerate() {
            let o = old_blocks[old].octant;
            match *fate {
                BlockFate::Same(new) => {
                    // Every surviving octant maps to its new id.
                    assert_eq!(m.block(new).octant, o);
                    assert_eq!(m.id_of(&o), Some(new));
                }
                BlockFate::Refined { first, count } => {
                    // The span covers exactly the leaves now within the old
                    // block, in SFC order.
                    let within = m.tree().leaves_within(&o);
                    assert_eq!(within.len(), count as usize);
                    for (k, w) in within.iter().enumerate() {
                        assert_eq!(m.block(BlockId((first.index() + k) as u32)).octant, *w);
                    }
                }
                BlockFate::Coarsened(new) => {
                    // Every coarsened child maps to its parent's new id.
                    assert_eq!(m.block(new).octant, o.parent().unwrap());
                }
            }
        }
        m.check_invariants().unwrap();
    }

    #[test]
    fn noop_adapt_is_identity_and_preserves_index() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let before: Vec<MeshBlock> = m.blocks().to_vec();
        let d = m.adapt(|_| RefineTag::Keep);
        assert!(d.is_identity());
        assert_eq!(d.blocks_before, d.blocks_after);
        assert_eq!(m.blocks(), &before[..]);
    }

    #[test]
    fn id_of_binary_search_matches_leaves() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 && b.octant.y == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        for b in m.blocks() {
            assert_eq!(m.id_of(&b.octant), Some(b.id));
        }
        // Non-leaves: refined parent (shares first child's key) and a
        // descendant of a leaf (shares the leaf's key) both miss.
        assert_eq!(m.id_of(&Octant::new(0, 0, 0, 0)), None);
        assert_eq!(m.id_of(&Octant::new(3, 15, 15, 15)), None);
    }

    #[test]
    fn neighbor_graph_matches_block_count() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 && b.octant.y == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let g = m.neighbor_graph();
        assert_eq!(g.num_blocks(), m.num_blocks());
        g.check_symmetry().unwrap();
    }

    #[test]
    fn patch_neighbor_graph_matches_full_build() {
        let mut m = AmrMesh::new(cfg(2, 2));
        let mut g = m.neighbor_graph();
        let mut scratch = PatchScratch::default();
        // Refine -> mixed refine/coarsen -> no-op: patch must track each.
        type TagFn = Box<dyn Fn(&MeshBlock) -> RefineTag>;
        let tags: Vec<TagFn> = vec![
            Box::new(|b: &MeshBlock| {
                if b.octant.x == 0 {
                    RefineTag::Refine
                } else {
                    RefineTag::Keep
                }
            }),
            Box::new(|b: &MeshBlock| {
                if b.level() == 1 && b.octant.y < 2 {
                    RefineTag::Coarsen
                } else if b.level() == 0 && b.octant.x == 1 {
                    RefineTag::Refine
                } else {
                    RefineTag::Keep
                }
            }),
            Box::new(|_: &MeshBlock| RefineTag::Keep),
        ];
        for tag in &tags {
            m.adapt(|b| tag(b));
            m.patch_neighbor_graph(&mut g, &mut scratch);
            assert_eq!(g, m.neighbor_graph());
            g.check_symmetry().unwrap();
        }
    }

    #[test]
    fn periodic_mesh_has_full_neighborhoods() {
        // Every block of a uniform periodic 3D mesh has exactly 26 neighbors
        // (wrap-around removes the domain boundary).
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1).with_periodic());
        let g = m.neighbor_graph();
        g.check_symmetry().unwrap();
        for (_, nbs) in g.iter() {
            assert_eq!(nbs.len(), 26);
        }
    }

    #[test]
    fn periodic_refinement_ripples_across_the_wrap() {
        // Deep refinement at the domain corner must ripple to the opposite
        // corner blocks through the periodic boundary.
        let mut m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2).with_periodic());
        m.adapt(|b| {
            if b.octant == Octant::new(0, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let d2 = m
            .adapt(|b| {
                if b.octant == Octant::new(1, 0, 0, 0) {
                    RefineTag::Refine
                } else {
                    RefineTag::Keep
                }
            })
            .clone();
        // The level-2 corner leaf touches the far corner root (3,3,3) across
        // the wrap; that root must have been ripple-refined.
        assert!(d2.refined > 1, "no periodic ripple: {d2:?}");
        assert!(!m.tree().is_leaf(&Octant::new(0, 3, 3, 3)));
        m.tree().check_invariants().unwrap();
        let g = m.neighbor_graph();
        g.check_symmetry().unwrap();
    }

    #[test]
    fn spatial_queries() {
        let m = AmrMesh::new(cfg(4, 1));
        // The whole domain returns every block.
        assert_eq!(m.blocks_in_region(&Aabb::unit()).len(), 64);
        // A thin slab returns one layer of the 4x4x4 grid.
        let slab = Aabb::new(Point::new(0.0, 0.0, 0.3), Point::new(1.0, 1.0, 0.4));
        assert_eq!(m.blocks_in_region(&slab).len(), 16);
        // The pooled variant returns the same ids and reuses the buffer.
        let mut buf = Vec::new();
        m.blocks_in_region_into(&slab, &mut buf);
        assert_eq!(buf, m.blocks_in_region(&slab));
        let cap = buf.capacity();
        m.blocks_in_region_into(&slab, &mut buf);
        assert_eq!(buf.capacity(), cap);
        // Point lookup is unique and consistent with bounds.
        let p = Point::new(0.6, 0.1, 0.9);
        let id = m.block_at(&p).unwrap();
        assert!(m.block(id).bounds.contains(&p));
        // Outside the domain: none.
        assert!(m.block_at(&Point::new(1.5, 0.0, 0.0)).is_none());
    }

    #[test]
    fn bounds_cover_domain() {
        let m = AmrMesh::new(cfg(2, 1));
        let total_vol: f64 = m
            .blocks()
            .iter()
            .map(|b| {
                let e = b.bounds.extent();
                e.x * e.y * e.z
            })
            .sum();
        assert!((total_vol - 1.0).abs() < 1e-9);
    }
}
