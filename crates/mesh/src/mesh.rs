//! `AmrMesh`: the top-level mesh API tying together tree, blocks, SFC
//! ordering and neighbor topology.
//!
//! This is the interface the rest of the workspace consumes: workloads tag
//! blocks for (de)refinement, the mesh adapts while keeping 2:1 balance,
//! block IDs are re-assigned in SFC order (exactly the redistribution
//! pipeline of §V-A: *assign block IDs via Z-order SFC → compute placement →
//! migrate*), and placement policies read the SFC-ordered cost vector plus
//! the neighbor graph.

use crate::block::{BlockId, BlockSpec, MeshBlock};
use crate::geom::{Aabb, Dim};
use crate::neighbors::NeighborGraph;
use crate::octant::Octant;
use crate::tree::{Octree, NORM_LEVEL};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Static configuration of an AMR mesh.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeshConfig {
    pub dim: Dim,
    /// Root grid (initial blocks per axis). One initial block per root.
    pub roots: (u32, u32, u32),
    /// Physical domain covered by the root grid.
    pub domain: Aabb,
    /// Per-block cell counts / ghost width / variables.
    pub spec: BlockSpec,
    /// Maximum refinement level (relative to the roots).
    pub max_level: u8,
    /// Periodic domain boundaries (opposite faces are neighbors).
    pub periodic: bool,
}

impl MeshConfig {
    /// Config for the paper's Sedov setups: `mesh_cells` total cells per axis
    /// with `16³` blocks gives `mesh_cells/16` roots per axis (Table I).
    pub fn from_cells(dim: Dim, mesh_cells: (u32, u32, u32), max_level: u8) -> MeshConfig {
        let spec = BlockSpec::default();
        let b = spec.cells_per_axis;
        assert!(
            mesh_cells.0.is_multiple_of(b)
                && mesh_cells.1.is_multiple_of(b)
                && (dim == Dim::D2 || mesh_cells.2.is_multiple_of(b)),
            "mesh cells must be a multiple of the block size"
        );
        MeshConfig {
            dim,
            roots: (
                mesh_cells.0 / b,
                mesh_cells.1 / b,
                if dim == Dim::D2 { 1 } else { mesh_cells.2 / b },
            ),
            domain: Aabb::unit(),
            spec,
            max_level,
            periodic: false,
        }
    }

    /// Same configuration with periodic domain boundaries.
    pub fn with_periodic(mut self) -> MeshConfig {
        self.periodic = true;
        self
    }
}

/// Per-block adaptation decision produced by a workload's tagging criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineTag {
    /// Split the block into `2^d` children.
    Refine,
    /// Merge with siblings into the parent (only applied if all siblings
    /// agree and 2:1 balance permits).
    Coarsen,
    /// Leave as is.
    Keep,
}

/// Summary of one adaptation step.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefinementDelta {
    /// Leaves refined (including balance-induced ripples).
    pub refined: usize,
    /// Parents created by coarsening.
    pub coarsened: usize,
    /// Block count before adaptation.
    pub blocks_before: usize,
    /// Block count after adaptation.
    pub blocks_after: usize,
}

impl RefinementDelta {
    /// Did the mesh change (requiring redistribution)?
    pub fn changed(&self) -> bool {
        self.refined > 0 || self.coarsened > 0
    }
}

/// A block-structured AMR mesh: 2:1-balanced octree forest + SFC-ordered
/// block index.
///
/// ```
/// use amr_mesh::{AmrMesh, Dim, MeshConfig, Point, RefineTag};
/// // 64^3 cells, 16^3 blocks -> 4x4x4 roots.
/// let mut mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2));
/// assert_eq!(mesh.num_blocks(), 64);
/// let hot = Point::new(0.25, 0.25, 0.25);
/// mesh.adapt(|b| if b.bounds.contains(&hot) { RefineTag::Refine } else { RefineTag::Keep });
/// assert_eq!(mesh.num_blocks(), 64 + 7); // one block split into 8
/// mesh.check_invariants().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct AmrMesh {
    config: MeshConfig,
    tree: Octree,
    blocks: Vec<MeshBlock>,
    id_of: HashMap<Octant, BlockId>,
}

impl AmrMesh {
    /// Build the initial mesh: one block per root-grid cell.
    pub fn new(config: MeshConfig) -> AmrMesh {
        assert!(config.max_level <= NORM_LEVEL);
        let mut tree = Octree::uniform_roots(config.dim, config.roots);
        tree.set_periodic(config.periodic);
        let mut mesh = AmrMesh {
            config,
            tree,
            blocks: Vec::new(),
            id_of: HashMap::new(),
        };
        mesh.rebuild_index();
        mesh
    }

    /// Rebuild a mesh from a config and a validated tree (checkpoint
    /// restore). Fails if the tree's dimensionality or root grid disagrees
    /// with the config.
    pub fn from_parts(config: MeshConfig, tree: Octree) -> Result<AmrMesh, String> {
        if tree.dim() != config.dim {
            return Err("tree/config dimensionality mismatch".into());
        }
        let rz = match config.dim {
            Dim::D2 => 1,
            Dim::D3 => config.roots.2,
        };
        if tree.roots() != (config.roots.0, config.roots.1, rz) {
            return Err("tree/config root grid mismatch".into());
        }
        if config.max_level > NORM_LEVEL {
            return Err("max_level beyond supported depth".into());
        }
        let mut tree = tree;
        tree.set_periodic(config.periodic);
        // Re-validate: periodic domains impose extra 2:1 constraints across
        // the wrap that a non-periodic check would not see.
        if config.periodic {
            tree.check_invariants()?;
        }
        let mut mesh = AmrMesh {
            config,
            tree,
            blocks: Vec::new(),
            id_of: HashMap::new(),
        };
        mesh.rebuild_index();
        Ok(mesh)
    }

    /// Mesh configuration.
    #[inline]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Underlying tree (read-only).
    #[inline]
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks in SFC order (index == `BlockId`).
    #[inline]
    pub fn blocks(&self) -> &[MeshBlock] {
        &self.blocks
    }

    /// Look up a block by ID.
    #[inline]
    pub fn block(&self, id: BlockId) -> &MeshBlock {
        &self.blocks[id.index()]
    }

    /// The `BlockId` of a leaf octant, if it is a current leaf.
    pub fn id_of(&self, o: &Octant) -> Option<BlockId> {
        self.id_of.get(o).copied()
    }

    /// Blocks whose bounds intersect `region` (positive-measure overlap),
    /// in SFC order. Used by diagnostics and region-of-interest tooling.
    pub fn blocks_in_region(&self, region: &Aabb) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| b.bounds.intersects(region))
            .map(|b| b.id)
            .collect()
    }

    /// The block containing a physical point, if the point lies inside the
    /// domain (half-open block bounds: exactly one block matches).
    pub fn block_at(&self, p: &crate::geom::Point) -> Option<BlockId> {
        self.blocks
            .iter()
            .find(|b| b.bounds.contains(p))
            .map(|b| b.id)
    }

    /// Build the neighbor graph for the current mesh snapshot.
    pub fn neighbor_graph(&self) -> NeighborGraph {
        let leaves: Vec<Octant> = self.blocks.iter().map(|b| b.octant).collect();
        NeighborGraph::build(&self.tree, &leaves)
    }

    /// Apply one adaptation step driven by a per-block tagging criterion.
    ///
    /// Refinement is capped at `config.max_level` and triggers 2:1 ripple
    /// refinement; coarsening requires all `2^d` siblings tagged `Coarsen`
    /// and balance to permit the merge. Block IDs are re-assigned in SFC
    /// order afterwards.
    pub fn adapt<F>(&mut self, tag: F) -> RefinementDelta
    where
        F: Fn(&MeshBlock) -> RefineTag,
    {
        let blocks_before = self.blocks.len();
        let tags: Vec<(MeshBlock, RefineTag)> = self.blocks.iter().map(|b| (*b, tag(b))).collect();

        let mut refined = 0usize;
        for (b, t) in &tags {
            if *t == RefineTag::Refine && b.level() < self.config.max_level {
                refined += self.tree.refine(&b.octant);
            }
        }

        // Group coarsen tags by parent; merge only complete, willing families.
        let mut coarsened = 0usize;
        let mut by_parent: HashMap<Octant, usize> = HashMap::new();
        for (b, t) in &tags {
            if *t == RefineTag::Coarsen {
                if let Some(p) = b.octant.parent() {
                    *by_parent.entry(p).or_insert(0) += 1;
                }
            }
        }
        let family = self.config.dim.children_per_octant();
        let mut parents: Vec<Octant> = by_parent
            .iter()
            .filter(|(_, &c)| c == family)
            .map(|(p, _)| *p)
            .collect();
        // Deterministic order for reproducibility.
        parents.sort();
        for p in parents {
            // A sibling may have been refined by a balance ripple above; the
            // can_coarsen check inside coarsen() guards that.
            if self.tree.coarsen(&p) {
                coarsened += 1;
            }
        }

        self.rebuild_index();
        RefinementDelta {
            refined,
            coarsened,
            blocks_before,
            blocks_after: self.blocks.len(),
        }
    }

    /// Recompute SFC-ordered block IDs and physical bounds after any tree
    /// mutation.
    fn rebuild_index(&mut self) {
        let leaves = self.tree.leaves_sorted();
        self.blocks.clear();
        self.id_of.clear();
        self.blocks.reserve(leaves.len());
        for (i, o) in leaves.iter().enumerate() {
            let id = BlockId(i as u32);
            self.blocks.push(MeshBlock {
                id,
                octant: *o,
                bounds: o.bounds(&self.config.domain, self.tree.roots(), self.config.dim),
            });
            self.id_of.insert(*o, id);
        }
    }

    /// Validate structural invariants (tiling, balance, index coherence).
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tree.check_invariants()?;
        if self.blocks.len() != self.tree.num_leaves() {
            return Err("block index out of sync with tree".into());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.index() != i {
                return Err(format!("block {i} has id {}", b.id));
            }
            if self.id_of.get(&b.octant) != Some(&b.id) {
                return Err(format!("octant map out of sync for {}", b.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn cfg(roots: u32, max_level: u8) -> MeshConfig {
        MeshConfig {
            dim: Dim::D3,
            roots: (roots, roots, roots),
            domain: Aabb::unit(),
            spec: BlockSpec::default(),
            max_level,
            periodic: false,
        }
    }

    #[test]
    fn table1_configs_have_one_block_per_rank() {
        // Table I: 512 ranks <-> 128^3 cells, 16^3 blocks -> 512 roots.
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 128, 128), 3));
        assert_eq!(m.num_blocks(), 512);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 128, 256), 3));
        assert_eq!(m.num_blocks(), 1024);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (128, 256, 256), 3));
        assert_eq!(m.num_blocks(), 2048);
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (256, 256, 256), 3));
        assert_eq!(m.num_blocks(), 4096);
    }

    #[test]
    fn adapt_refines_tagged_blocks() {
        let mut m = AmrMesh::new(cfg(2, 3));
        let delta = m.adapt(|b| {
            if b.bounds.contains(&Point::new(0.1, 0.1, 0.1)) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        assert!(delta.changed());
        assert_eq!(delta.refined, 1);
        assert_eq!(delta.blocks_before, 8);
        assert_eq!(delta.blocks_after, 15);
        m.check_invariants().unwrap();
    }

    #[test]
    fn adapt_respects_max_level() {
        let mut m = AmrMesh::new(cfg(1, 1));
        let d1 = m.adapt(|_| RefineTag::Refine);
        assert_eq!(d1.blocks_after, 8);
        // All at max level now; further refinement is a no-op.
        let d2 = m.adapt(|_| RefineTag::Refine);
        assert!(!d2.changed());
        assert_eq!(d2.blocks_after, 8);
    }

    #[test]
    fn adapt_coarsens_complete_families_only() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant == Octant::new(0, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(m.num_blocks(), 15);
        // Tag only some of the children: nothing merges.
        let d = m.adapt(|b| {
            if b.level() == 1 && b.octant.x == 0 && b.octant.y == 0 && b.octant.z == 0 {
                RefineTag::Coarsen
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(d.coarsened, 0);
        // Tag the whole family: merges back.
        let d = m.adapt(|b| {
            if b.level() == 1 {
                RefineTag::Coarsen
            } else {
                RefineTag::Keep
            }
        });
        assert_eq!(d.coarsened, 1);
        assert_eq!(m.num_blocks(), 8);
        m.check_invariants().unwrap();
    }

    #[test]
    fn block_ids_are_sfc_sequential_after_adapt() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        m.check_invariants().unwrap();
        let keys: Vec<u64> = m
            .blocks()
            .iter()
            .map(|b| crate::sfc::sfc_key(&b.octant, Dim::D3))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn neighbor_graph_matches_block_count() {
        let mut m = AmrMesh::new(cfg(2, 2));
        m.adapt(|b| {
            if b.octant.x == 0 && b.octant.y == 0 {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let g = m.neighbor_graph();
        assert_eq!(g.num_blocks(), m.num_blocks());
        g.check_symmetry().unwrap();
    }

    #[test]
    fn periodic_mesh_has_full_neighborhoods() {
        // Every block of a uniform periodic 3D mesh has exactly 26 neighbors
        // (wrap-around removes the domain boundary).
        let m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1).with_periodic());
        let g = m.neighbor_graph();
        g.check_symmetry().unwrap();
        for (_, nbs) in g.iter() {
            assert_eq!(nbs.len(), 26);
        }
    }

    #[test]
    fn periodic_refinement_ripples_across_the_wrap() {
        // Deep refinement at the domain corner must ripple to the opposite
        // corner blocks through the periodic boundary.
        let mut m = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 2).with_periodic());
        m.adapt(|b| {
            if b.octant == Octant::new(0, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        let d2 = m.adapt(|b| {
            if b.octant == Octant::new(1, 0, 0, 0) {
                RefineTag::Refine
            } else {
                RefineTag::Keep
            }
        });
        // The level-2 corner leaf touches the far corner root (3,3,3) across
        // the wrap; that root must have been ripple-refined.
        assert!(d2.refined > 1, "no periodic ripple: {d2:?}");
        assert!(!m.tree().is_leaf(&Octant::new(0, 3, 3, 3)));
        m.tree().check_invariants().unwrap();
        let g = m.neighbor_graph();
        g.check_symmetry().unwrap();
    }

    #[test]
    fn spatial_queries() {
        let m = AmrMesh::new(cfg(4, 1));
        // The whole domain returns every block.
        assert_eq!(m.blocks_in_region(&Aabb::unit()).len(), 64);
        // A thin slab returns one layer of the 4x4x4 grid.
        let slab = Aabb::new(Point::new(0.0, 0.0, 0.3), Point::new(1.0, 1.0, 0.4));
        assert_eq!(m.blocks_in_region(&slab).len(), 16);
        // Point lookup is unique and consistent with bounds.
        let p = Point::new(0.6, 0.1, 0.9);
        let id = m.block_at(&p).unwrap();
        assert!(m.block(id).bounds.contains(&p));
        // Outside the domain: none.
        assert!(m.block_at(&Point::new(1.5, 0.0, 0.0)).is_none());
    }

    #[test]
    fn bounds_cover_domain() {
        let m = AmrMesh::new(cfg(2, 1));
        let total_vol: f64 = m
            .blocks()
            .iter()
            .map(|b| {
                let e = b.bounds.extent();
                e.x * e.y * e.z
            })
            .sum();
        assert!((total_vol - 1.0).abs() < 1e-9);
    }
}
