//! Sharded mesh view: contiguous per-node SFC partitions with shard-local
//! CSR neighbor graphs and a halo (boundary-exchange) table.
//!
//! A single global [`NeighborGraph`] caps the simulator far below the
//! operating regime of extreme-scale BAMR frameworks, which never hold
//! global mesh state: each node owns a contiguous window of the
//! space-filling curve plus ghost metadata for the blocks its window talks
//! to. [`ShardedMesh`] reproduces that layout on top of [`AmrMesh`]:
//!
//! * The SFC **key space** is split into `S` contiguous ranges at
//!   construction (`bounds`). Keys are stable across adaptation (a surviving
//!   block keeps its key; children subdivide the parent's key range), so the
//!   partition never has to be renegotiated — only the block-index window of
//!   each shard (`starts`) moves.
//! * Each shard owns a **shard-local CSR** ([`ShardGraph`]): the rows of its
//!   blocks, with neighbor ids kept global (rows are bit-identical to the
//!   global graph's rows — the flat/sharded equivalence proof reduces to
//!   concatenation), plus a sorted **halo table** of the out-of-shard blocks
//!   its rows reference and a count of cross-shard relations.
//! * [`ShardedMesh::refresh`] repairs all shards from the
//!   [`RefinementDelta`] of the latest adapt using the same
//!   affected-row analysis as [`NeighborGraph::patch`]: unaffected rows are
//!   copied with ids renumbered through the fate table, affected rows are
//!   rebuilt, and everything stages through pooled scratch so steady-state
//!   refreshes allocate nothing. [`AmrMesh::neighbor_graph`] stays the
//!   correctness oracle (see `flatten_into` and the property tests).
//!
//! ## Why shard boundaries never split a changed span
//!
//! Shard bounds are SFC keys of blocks that existed at planning time. Block
//! key ranges are disjoint, so a bound falls inside exactly one block's
//! range — at its start. A refined parent's children all lie inside the
//! parent's key range, hence in the parent's shard. A coarsened family's
//! parent takes the first sibling's key; if a bound pointed at a later
//! sibling, the merged parent simply lands in the preceding shard and the
//! window boundaries (`starts`) move — recomputed per refresh by binary
//! search, O(S log n).

use crate::block::{BlockId, MeshBlock};
use crate::geom::Dim;
use crate::mesh::{AmrMesh, BlockFate};
use crate::neighbors::{build_row, BlockIndex, Neighbor, NeighborGraph};
use crate::octant::Direction;
use crate::pool::WorkerPool;
use crate::tree::Octree;

/// One shard's view of the neighbor topology: the CSR rows of the blocks in
/// `start..end` (global ids in the entries, rows sorted by id — identical to
/// the same rows of the global graph) plus the halo table.
#[derive(Debug, Clone, Default)]
pub struct ShardGraph {
    /// Global index of the first owned block.
    start: u32,
    /// One past the global index of the last owned block.
    end: u32,
    /// Local row boundaries; `offsets.len() == num_blocks() + 1`.
    offsets: Vec<u32>,
    /// Packed rows; neighbor ids are global [`BlockId`]s.
    entries: Vec<Neighbor>,
    /// Sorted, deduplicated global indices of out-of-shard blocks referenced
    /// by the rows — the ghost metadata this shard must import each exchange.
    halo: Vec<u32>,
    /// Directed relations whose target lies outside the shard.
    cross: u32,
}

impl ShardGraph {
    /// Number of blocks owned by the shard.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Global block-index window `start..end`.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }

    /// Row of the block with local index `local` (global id `start + local`),
    /// sorted by global neighbor id.
    #[inline]
    pub fn neighbors_local(&self, local: usize) -> &[Neighbor] {
        &self.entries[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }

    /// The halo table: sorted global indices of ghost blocks.
    #[inline]
    pub fn halo(&self) -> &[u32] {
        &self.halo
    }

    /// Directed relations leaving the shard.
    #[inline]
    pub fn cross_relations(&self) -> usize {
        self.cross as usize
    }

    /// Total directed relations stored in the shard.
    #[inline]
    pub fn total_relations(&self) -> usize {
        self.entries.len()
    }

    /// Slot of a global block id in the halo table, if it is a ghost.
    #[inline]
    pub fn halo_slot(&self, global: u32) -> Option<usize> {
        self.halo.binary_search(&global).ok()
    }

    /// Recompute the halo table and cross-relation count from the rows.
    fn rebuild_halo(&mut self) {
        self.halo.clear();
        let (lo, hi) = (self.start, self.end);
        let mut cross = 0u32;
        for e in &self.entries {
            let g = e.block.0;
            if g < lo || g >= hi {
                cross += 1;
                self.halo.push(g);
            }
        }
        self.cross = cross;
        self.halo.sort_unstable();
        self.halo.dedup();
    }
}

/// Pooled scratch for [`ShardedMesh::refresh`]: staging CSR arrays swap with
/// each shard's own, so steady-state refreshes run allocation-free.
#[derive(Debug, Clone, Default)]
struct ShardScratch {
    /// Direction table (fixed per mesh dimensionality, filled once).
    dirs: Vec<Direction>,
    /// Per-new-block flag: row must be rebuilt (vs copied + renumbered).
    affected: Vec<bool>,
    /// Shard windows of the pre-adapt index, saved before recomputation.
    old_starts: Vec<u32>,
    /// Staging CSR arrays for the shard currently being emitted.
    offsets: Vec<u32>,
    entries: Vec<Neighbor>,
    row: Vec<Neighbor>,
}

/// Per-node SFC partition of an [`AmrMesh`]: `S` contiguous key ranges, each
/// owning a [`ShardGraph`]. See the module docs for the layout and the
/// incremental-refresh contract.
#[derive(Debug, Clone)]
pub struct ShardedMesh {
    /// Key-space partition, `len == num_shards + 1`; shard `s` owns keys in
    /// `bounds[s]..bounds[s+1]`. Fixed at construction.
    bounds: Vec<u64>,
    /// Block-index windows for the current snapshot, `len == num_shards + 1`.
    starts: Vec<u32>,
    shards: Vec<ShardGraph>,
    scratch: ShardScratch,
}

/// Plan the key-space partition for `num_shards` shards over the current
/// snapshot of `mesh`, balanced by block count. Bound `s` is the SFC key of
/// the block at index `s·n/S`, so shard windows start equal-sized.
pub fn plan_shard_bounds(mesh: &AmrMesh, num_shards: usize) -> Vec<u64> {
    assert!(num_shards >= 1, "at least one shard");
    let keys = mesh.sfc_keys();
    let n = keys.len();
    let mut bounds = Vec::with_capacity(num_shards + 1);
    bounds.push(0u64);
    for s in 1..num_shards {
        let idx = s * n / num_shards;
        bounds.push(if idx < n { keys[idx] } else { u64::MAX });
    }
    bounds.push(u64::MAX);
    bounds
}

/// Build one shard's rows into caller-owned buffers: the streaming entry
/// point that lets a driver hold only one shard's CSR at a time (the
/// peak-memory story of the sharded trajectory benchmarks). `bounds` comes
/// from [`plan_shard_bounds`]; the buffers are cleared and refilled.
pub fn build_shard(mesh: &AmrMesh, bounds: &[u64], s: usize, g: &mut ShardGraph) {
    let keys = mesh.sfc_keys();
    let lo = keys.partition_point(|&k| k < bounds[s]);
    let hi = keys.partition_point(|&k| k < bounds[s + 1]);
    let dirs = Direction::all(mesh.config().dim);
    let mut row = Vec::with_capacity(32);
    build_shard_rows(mesh, lo, hi, &dirs, &mut row, g);
}

/// Shared row builder: fill `g` with the rows of blocks `lo..hi`.
fn build_shard_rows(
    mesh: &AmrMesh,
    lo: usize,
    hi: usize,
    dirs: &[Direction],
    row: &mut Vec<Neighbor>,
    g: &mut ShardGraph,
) {
    build_shard_rows_parts(
        mesh.tree(),
        mesh.blocks(),
        mesh.sfc_keys(),
        mesh.config().dim,
        lo,
        hi,
        dirs,
        row,
        g,
    );
}

/// Row builder over the mesh's plain-data parts. Worker tasks use this form:
/// `AmrMesh` itself is not `Sync` (it may hold a trace handle), but the
/// tree/blocks/keys snapshot the rows are a pure function of is.
#[allow(clippy::too_many_arguments)]
fn build_shard_rows_parts(
    tree: &Octree,
    blocks: &[MeshBlock],
    keys: &[u64],
    dim: Dim,
    lo: usize,
    hi: usize,
    dirs: &[Direction],
    row: &mut Vec<Neighbor>,
    g: &mut ShardGraph,
) {
    g.start = lo as u32;
    g.end = hi as u32;
    g.offsets.clear();
    g.offsets.push(0);
    g.entries.clear();
    let index = BlockIndex { blocks, keys, dim };
    for b in &blocks[lo..hi] {
        build_row(tree, &index, dirs, &b.octant, row);
        g.entries.extend_from_slice(row);
        g.offsets.push(g.entries.len() as u32);
    }
    g.rebuild_halo();
}

impl ShardedMesh {
    /// Partition `mesh` into `num_shards` contiguous SFC shards (balanced by
    /// block count at planning time) and build every shard graph.
    pub fn new(mesh: &AmrMesh, num_shards: usize) -> ShardedMesh {
        let bounds = plan_shard_bounds(mesh, num_shards);
        let mut sharded = ShardedMesh {
            bounds,
            starts: Vec::with_capacity(num_shards + 1),
            shards: vec![ShardGraph::default(); num_shards],
            scratch: ShardScratch {
                dirs: Direction::all(mesh.config().dim),
                ..ShardScratch::default()
            },
        };
        sharded.rebuild(mesh);
        sharded
    }

    /// [`ShardedMesh::new`] with the initial per-shard builds distributed
    /// across `pool` (capped at `threads`); bitwise identical to the serial
    /// constructor (see [`ShardedMesh::rebuild_on`]).
    pub fn new_on(
        mesh: &AmrMesh,
        num_shards: usize,
        pool: &WorkerPool,
        threads: usize,
    ) -> ShardedMesh {
        let bounds = plan_shard_bounds(mesh, num_shards);
        let mut sharded = ShardedMesh {
            bounds,
            starts: Vec::with_capacity(num_shards + 1),
            shards: vec![ShardGraph::default(); num_shards],
            scratch: ShardScratch {
                dirs: Direction::all(mesh.config().dim),
                ..ShardScratch::default()
            },
        };
        sharded.rebuild_on(mesh, pool, threads);
        sharded
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s graph.
    #[inline]
    pub fn shard(&self, s: usize) -> &ShardGraph {
        &self.shards[s]
    }

    /// Block-index window boundaries, `len == num_shards + 1`: shard `s`
    /// owns global blocks `starts[s]..starts[s+1]`.
    #[inline]
    pub fn shard_starts(&self) -> &[u32] {
        &self.starts
    }

    /// Total blocks across all shards (== the mesh's block count).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        *self.starts.last().unwrap_or(&0) as usize
    }

    /// The shard owning global block index `g`.
    #[inline]
    pub fn shard_of(&self, g: u32) -> usize {
        debug_assert!((g as usize) < self.num_blocks());
        self.starts.partition_point(|&x| x <= g) - 1
    }

    /// The row of a global block, resolved through its owning shard —
    /// bit-identical to the same row of the global graph.
    #[inline]
    pub fn neighbors(&self, b: BlockId) -> &[Neighbor] {
        let sh = &self.shards[self.shard_of(b.0)];
        sh.neighbors_local((b.0 - sh.start) as usize)
    }

    /// Ghost blocks summed over all shards (a block neighboring `k` shards
    /// is counted `k` times — each imports its own copy).
    pub fn total_halo_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.halo.len()).sum()
    }

    /// Directed cross-shard relations summed over all shards.
    pub fn total_cross_relations(&self) -> usize {
        self.shards.iter().map(|s| s.cross as usize).sum()
    }

    /// Directed relations summed over all shards (== the global graph's
    /// `total_relations`).
    pub fn total_relations(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Concatenate the shard rows into a global [`NeighborGraph`] — the
    /// bridge to the oracle: `flatten_into` of a fresh/refreshed
    /// `ShardedMesh` must equal [`AmrMesh::neighbor_graph`] exactly.
    pub fn flatten_into(&self, g: &mut NeighborGraph) {
        g.offsets.clear();
        g.offsets.push(0);
        g.entries.clear();
        for sh in &self.shards {
            let base = g.entries.len() as u32;
            g.entries.extend_from_slice(&sh.entries);
            for &o in &sh.offsets[1..] {
                g.offsets.push(base + o);
            }
        }
    }

    /// Recompute every shard window and rebuild every shard graph from
    /// scratch — the fallback when the mesh's stored delta cannot vouch for
    /// the shards (and the initial build).
    pub fn rebuild(&mut self, mesh: &AmrMesh) {
        self.recompute_starts(mesh);
        if self.scratch.dirs.is_empty() {
            self.scratch.dirs = Direction::all(mesh.config().dim);
        }
        for s in 0..self.shards.len() {
            let (lo, hi) = (self.starts[s] as usize, self.starts[s + 1] as usize);
            build_shard_rows(
                mesh,
                lo,
                hi,
                &self.scratch.dirs,
                &mut self.scratch.row,
                &mut self.shards[s],
            );
        }
    }

    /// [`ShardedMesh::rebuild`] with per-shard builds distributed across
    /// `pool` (capped at `threads`). Shard rows are pure functions of the
    /// mesh snapshot and every task writes only its own [`ShardGraph`], so
    /// the result is bitwise identical to the serial rebuild at any thread
    /// count. Unlike the steady-state serial path, each task allocates its
    /// own small row scratch — acceptable because rebuilds are the fallback
    /// (initial build or stale delta), not the per-step path.
    pub fn rebuild_on(&mut self, mesh: &AmrMesh, pool: &WorkerPool, threads: usize) {
        self.recompute_starts(mesh);
        if self.scratch.dirs.is_empty() {
            self.scratch.dirs = Direction::all(mesh.config().dim);
        }
        let ShardedMesh {
            starts,
            shards,
            scratch,
            ..
        } = self;
        let dirs = &scratch.dirs;
        let (tree, blocks, keys, dim) = (
            mesh.tree(),
            mesh.blocks(),
            mesh.sfc_keys(),
            mesh.config().dim,
        );
        pool.run_with_capped(threads, shards, |s, g| {
            let mut row = Vec::with_capacity(32);
            build_shard_rows_parts(
                tree,
                blocks,
                keys,
                dim,
                starts[s] as usize,
                starts[s + 1] as usize,
                dirs,
                &mut row,
                g,
            );
        });
    }

    fn recompute_starts(&mut self, mesh: &AmrMesh) {
        let keys = mesh.sfc_keys();
        self.starts.clear();
        for &b in &self.bounds {
            self.starts.push(keys.partition_point(|&k| k < b) as u32);
        }
        debug_assert_eq!(*self.starts.last().unwrap() as usize, keys.len());
    }

    /// Bring every shard up to date with the mesh after the most recent
    /// [`AmrMesh::adapt`]: the per-shard analogue of
    /// [`NeighborGraph::patch`]. Unaffected rows are copied with neighbor
    /// ids renumbered through the fate table; rows whose neighborhoods touch
    /// changed octants are rebuilt; each shard's halo table is refreshed.
    /// All staging goes through pooled scratch (steady state allocates
    /// nothing). Falls back to [`ShardedMesh::rebuild`] when the stored
    /// delta cannot vouch for the current shards. Returns `true` iff the
    /// incremental path ran.
    pub fn refresh(&mut self, mesh: &AmrMesh) -> bool {
        if !self.delta_vouches(mesh) {
            self.rebuild(mesh);
            return false;
        }
        self.refresh_incremental(mesh);
        true
    }

    /// [`ShardedMesh::refresh`] with the full-rebuild fallback distributed
    /// across `pool` (see [`ShardedMesh::rebuild_on`]). The incremental path
    /// itself stays serial: it is a single in-order splice over the fate
    /// table (already O(changed rows)), and keeping it on one thread
    /// preserves its zero-allocation staging discipline.
    pub fn refresh_on(&mut self, mesh: &AmrMesh, pool: &WorkerPool, threads: usize) -> bool {
        if !self.delta_vouches(mesh) {
            self.rebuild_on(mesh, pool, threads);
            return false;
        }
        self.refresh_incremental(mesh);
        true
    }

    /// Can the mesh's stored delta vouch for the current shards?
    fn delta_vouches(&self, mesh: &AmrMesh) -> bool {
        let d = mesh.last_delta();
        d.remap.len() == d.blocks_before
            && !d.remap.is_empty()
            && self.num_blocks() == d.blocks_before
            && mesh.num_blocks() == d.blocks_after
    }

    fn refresh_incremental(&mut self, mesh: &AmrMesh) {
        let d = mesh.last_delta();
        let n_new = d.blocks_after;
        let num_shards = self.shards.len();

        // Save the pre-adapt windows, then move the windows to the new index.
        let mut old_starts = std::mem::take(&mut self.scratch.old_starts);
        old_starts.clear();
        old_starts.extend_from_slice(&self.starts);
        self.scratch.old_starts = old_starts;
        self.recompute_starts(mesh);
        let ShardedMesh {
            starts,
            shards,
            scratch,
            ..
        } = self;

        // Phase 1: mark affected new rows — same completeness argument as
        // `NeighborGraph::patch`: a block touches a new child only if it
        // touched the refined parent, and a coarsened parent's neighbors
        // were neighbors of some child, both recorded in the old (sharded)
        // symmetric graph.
        scratch.affected.clear();
        scratch.affected.resize(n_new, false);
        let mut os = 0usize; // old-shard cursor (old ids ascend)
        for (old, fate) in d.remap.iter().enumerate() {
            while old >= scratch.old_starts[os + 1] as usize {
                os += 1;
            }
            let changed = match *fate {
                BlockFate::Same(_) => false,
                BlockFate::Refined { first, count } => {
                    scratch.affected[first.index()..first.index() + count as usize].fill(true);
                    true
                }
                BlockFate::Coarsened(new) => {
                    scratch.affected[new.index()] = true;
                    true
                }
            };
            if changed {
                let sh = &shards[os];
                let local = old - sh.start as usize;
                let r = sh.offsets[local] as usize..sh.offsets[local + 1] as usize;
                for e in &sh.entries[r] {
                    if let BlockFate::Same(new) = d.remap[e.block.index()] {
                        scratch.affected[new.index()] = true;
                    }
                }
            }
        }

        // Phase 2: walk old ids globally (new ids come out ascending) and
        // emit each shard's rows into the staging arrays; when a shard's
        // window fills, swap the staging in and refresh its halo.
        let index = BlockIndex {
            blocks: mesh.blocks(),
            keys: mesh.sfc_keys(),
            dim: mesh.config().dim,
        };
        let tree = mesh.tree();
        let blocks = mesh.blocks();
        scratch.offsets.clear();
        scratch.offsets.push(0);
        scratch.entries.clear();
        let mut emitted = 0usize;
        let mut s = 0usize;
        let finalize_full = |s: &mut usize,
                             emitted: usize,
                             shards: &mut Vec<ShardGraph>,
                             scratch: &mut ShardScratch| {
            while *s < num_shards && emitted == starts[*s + 1] as usize {
                let g = &mut shards[*s];
                g.start = starts[*s];
                g.end = starts[*s + 1];
                std::mem::swap(&mut g.offsets, &mut scratch.offsets);
                std::mem::swap(&mut g.entries, &mut scratch.entries);
                g.rebuild_halo();
                scratch.offsets.clear();
                scratch.offsets.push(0);
                scratch.entries.clear();
                *s += 1;
            }
        };
        finalize_full(&mut s, emitted, shards, scratch);
        let mut os = 0usize;
        for (old, fate) in d.remap.iter().enumerate() {
            while old >= scratch.old_starts[os + 1] as usize {
                os += 1;
            }
            match *fate {
                BlockFate::Same(new) => {
                    debug_assert_eq!(new.index(), emitted);
                    if scratch.affected[new.index()] {
                        build_row(
                            tree,
                            &index,
                            &scratch.dirs,
                            &blocks[new.index()].octant,
                            &mut scratch.row,
                        );
                        scratch.entries.extend_from_slice(&scratch.row);
                    } else {
                        // A surviving block keeps its key, so its old row
                        // lives in the shard being emitted right now.
                        debug_assert_eq!(os, s);
                        let sh = &shards[os];
                        let local = old - sh.start as usize;
                        let r = sh.offsets[local] as usize..sh.offsets[local + 1] as usize;
                        for e in &sh.entries[r.clone()] {
                            let BlockFate::Same(nb) = d.remap[e.block.index()] else {
                                unreachable!("unaffected row references a changed block");
                            };
                            scratch.entries.push(Neighbor { block: nb, ..*e });
                        }
                    }
                    scratch.offsets.push(scratch.entries.len() as u32);
                    emitted += 1;
                    finalize_full(&mut s, emitted, shards, scratch);
                }
                BlockFate::Refined { first, count } => {
                    debug_assert_eq!(first.index(), emitted);
                    for child in &blocks[first.index()..first.index() + count as usize] {
                        build_row(tree, &index, &scratch.dirs, &child.octant, &mut scratch.row);
                        scratch.entries.extend_from_slice(&scratch.row);
                        scratch.offsets.push(scratch.entries.len() as u32);
                    }
                    emitted += count as usize;
                    finalize_full(&mut s, emitted, shards, scratch);
                }
                BlockFate::Coarsened(new) => {
                    if new.index() == emitted {
                        build_row(
                            tree,
                            &index,
                            &scratch.dirs,
                            &blocks[new.index()].octant,
                            &mut scratch.row,
                        );
                        scratch.entries.extend_from_slice(&scratch.row);
                        scratch.offsets.push(scratch.entries.len() as u32);
                        emitted += 1;
                        finalize_full(&mut s, emitted, shards, scratch);
                    }
                }
            }
        }
        debug_assert_eq!(emitted, n_new);
        debug_assert_eq!(s, num_shards, "every shard finalized");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Dim;
    use crate::mesh::{MeshConfig, RefineTag};

    fn random_mesh_steps(dim: Dim, steps: usize, salt: u64) -> (AmrMesh, Vec<u64>) {
        let cells = match dim {
            Dim::D2 => (64, 64, 64),
            Dim::D3 => (32, 32, 32),
        };
        let mesh = AmrMesh::new(MeshConfig::from_cells(dim, cells, 2));
        let keys: Vec<u64> = (0..steps as u64).map(|k| salt.wrapping_add(k)).collect();
        (mesh, keys)
    }

    fn hash_adapt(mesh: &mut AmrMesh, key: u64) {
        mesh.adapt(|b| {
            let h = (b.id.index() as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(key);
            match h % 5 {
                0 => RefineTag::Refine,
                1 => RefineTag::Coarsen,
                _ => RefineTag::Keep,
            }
        });
    }

    fn assert_matches_oracle(sharded: &ShardedMesh, mesh: &AmrMesh) {
        let mut flat = NeighborGraph::default();
        sharded.flatten_into(&mut flat);
        let oracle = mesh.neighbor_graph();
        assert_eq!(flat, oracle);
        assert_eq!(sharded.num_blocks(), mesh.num_blocks());
        assert_eq!(sharded.total_relations(), oracle.total_relations());
        // Halo tables are consistent: sorted, deduped, strictly out-of-shard,
        // and exactly the ids referenced outside the window.
        for s in 0..sharded.num_shards() {
            let sh = sharded.shard(s);
            let r = sh.range();
            assert!(sh.halo().windows(2).all(|w| w[0] < w[1]));
            for &g in sh.halo() {
                assert!(!r.contains(&(g as usize)));
            }
            let mut cross = 0usize;
            for local in 0..sh.num_blocks() {
                for e in sh.neighbors_local(local) {
                    if !r.contains(&e.block.index()) {
                        cross += 1;
                        assert!(sh.halo_slot(e.block.0).is_some());
                    }
                }
            }
            assert_eq!(cross, sh.cross_relations());
        }
    }

    #[test]
    fn single_shard_equals_global_graph() {
        for dim in [Dim::D2, Dim::D3] {
            let (mut mesh, keys) = random_mesh_steps(dim, 3, 42);
            for k in keys {
                hash_adapt(&mut mesh, k);
            }
            let sharded = ShardedMesh::new(&mesh, 1);
            assert_matches_oracle(&sharded, &mesh);
            assert_eq!(sharded.shard(0).cross_relations(), 0);
            assert!(sharded.shard(0).halo().is_empty());
        }
    }

    #[test]
    fn multi_shard_build_matches_global_graph() {
        for shards in [2usize, 3, 8, 17] {
            let (mut mesh, keys) = random_mesh_steps(Dim::D3, 2, 7);
            for k in keys {
                hash_adapt(&mut mesh, k);
            }
            let sharded = ShardedMesh::new(&mesh, shards);
            assert_matches_oracle(&sharded, &mesh);
            assert!(sharded.total_cross_relations() > 0);
        }
    }

    #[test]
    fn refresh_tracks_adapt_sequence() {
        for dim in [Dim::D2, Dim::D3] {
            let (mut mesh, keys) = random_mesh_steps(dim, 5, 3);
            let mut sharded = ShardedMesh::new(&mesh, 4);
            for k in keys {
                hash_adapt(&mut mesh, k);
                let incremental = sharded.refresh(&mesh);
                assert!(incremental || !mesh.last_delta().changed());
                assert_matches_oracle(&sharded, &mesh);
            }
        }
    }

    #[test]
    fn refresh_falls_back_on_stale_delta() {
        let (mut mesh, _) = random_mesh_steps(Dim::D3, 0, 0);
        hash_adapt(&mut mesh, 11);
        let mut sharded = ShardedMesh::new(&mesh, 4);
        // A full rebuild resets the delta to identity: refresh cannot vouch
        // for the shards and must fall back (and still be correct).
        mesh.force_full_rebuild();
        assert!(!sharded.refresh(&mesh));
        assert_matches_oracle(&sharded, &mesh);
    }

    #[test]
    fn streaming_build_matches_resident_shards() {
        let (mut mesh, keys) = random_mesh_steps(Dim::D3, 2, 19);
        for k in keys {
            hash_adapt(&mut mesh, k);
        }
        let resident = ShardedMesh::new(&mesh, 6);
        let bounds = plan_shard_bounds(&mesh, 6);
        let mut g = ShardGraph::default();
        for s in 0..6 {
            build_shard(&mesh, &bounds, s, &mut g);
            assert_eq!(g.range(), resident.shard(s).range());
            assert_eq!(g.entries, resident.shard(s).entries);
            assert_eq!(g.offsets, resident.shard(s).offsets);
            assert_eq!(g.halo, resident.shard(s).halo);
        }
    }

    #[test]
    fn neighbors_resolve_through_owning_shard() {
        let (mut mesh, keys) = random_mesh_steps(Dim::D3, 2, 23);
        for k in keys {
            hash_adapt(&mut mesh, k);
        }
        let sharded = ShardedMesh::new(&mesh, 5);
        let oracle = mesh.neighbor_graph();
        for b in 0..mesh.num_blocks() {
            let id = BlockId(b as u32);
            assert_eq!(sharded.neighbors(id), oracle.neighbors(id));
        }
    }

    #[test]
    fn parallel_rebuild_is_bitwise_identical_to_serial() {
        let pool = WorkerPool::new(4);
        for threads in [1usize, 2, 4] {
            let (mut mesh, keys) = random_mesh_steps(Dim::D3, 3, 29);
            let mut serial: Option<ShardedMesh> = None;
            let mut parallel: Option<ShardedMesh> = None;
            for (i, k) in keys.iter().enumerate() {
                hash_adapt(&mut mesh, *k);
                if i == 0 {
                    serial = Some(ShardedMesh::new(&mesh, 6));
                    parallel = Some(ShardedMesh::new_on(&mesh, 6, &pool, threads));
                } else {
                    let s = serial.as_mut().unwrap();
                    let p = parallel.as_mut().unwrap();
                    s.refresh(&mesh);
                    p.refresh_on(&mesh, &pool, threads);
                    if i == 2 {
                        // Force the parallel full-rebuild fallback too.
                        mesh.force_full_rebuild();
                        assert!(!p.refresh_on(&mesh, &pool, threads));
                        assert!(!s.refresh(&mesh));
                    }
                }
                let (s, p) = (serial.as_ref().unwrap(), parallel.as_ref().unwrap());
                assert_eq!(s.shard_starts(), p.shard_starts());
                for sh in 0..s.num_shards() {
                    assert_eq!(s.shard(sh).entries, p.shard(sh).entries);
                    assert_eq!(s.shard(sh).offsets, p.shard(sh).offsets);
                    assert_eq!(s.shard(sh).halo, p.shard(sh).halo);
                    assert_eq!(s.shard(sh).cross, p.shard(sh).cross);
                }
                assert_matches_oracle(p, &mesh);
            }
        }
    }

    #[test]
    fn more_shards_than_blocks_degenerates_gracefully() {
        let mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D2, (32, 32, 1), 1));
        let n = mesh.num_blocks();
        let mut sharded = ShardedMesh::new(&mesh, n * 2);
        assert_matches_oracle(&sharded, &mesh);
        let mut mesh = mesh;
        hash_adapt(&mut mesh, 5);
        sharded.refresh(&mesh);
        assert_matches_oracle(&sharded, &mesh);
    }
}
