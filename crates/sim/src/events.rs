//! Allocation-free event plumbing for the discrete-event engine.
//!
//! [`EventArena`] is a slab with a free list: event payloads live in one
//! `Vec`, ids are recycled, and a warm arena never allocates. [`CalendarQueue`]
//! is a bucketed priority queue over `(time, seq)` keys (R. Brown's calendar
//! queue): O(1) expected push/pop against the sorted-heap's O(log n), and —
//! more important here — its buckets are plain `Vec`s whose capacity
//! survives [`CalendarQueue::clear`], so a warm queue re-run allocates
//! nothing.
//!
//! The queue requires *monotone* operation: a push below the last popped
//! time is a caller bug (debug-asserted). The MPI engine satisfies this
//! because an unblocked rank's clock is at least the delivering event's
//! time, so every arrival it schedules lies in the future.

/// Index of an event slot inside an [`EventArena`].
pub type EventId = u32;

/// Slab allocator for event payloads with id recycling.
#[derive(Debug)]
pub struct EventArena<T> {
    slots: Vec<T>,
    free: Vec<EventId>,
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl<T> Default for EventArena<T> {
    fn default() -> EventArena<T> {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::new(),
        }
    }
}

impl<T: Copy> EventArena<T> {
    pub fn new() -> EventArena<T> {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::new(),
        }
    }

    /// Store a payload, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> EventId {
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = value;
                #[cfg(debug_assertions)]
                {
                    debug_assert!(!self.live[id as usize], "double insert into live slot");
                    self.live[id as usize] = true;
                }
                id
            }
            None => {
                let id = self.slots.len() as EventId;
                self.slots.push(value);
                #[cfg(debug_assertions)]
                self.live.push(true);
                id
            }
        }
    }

    /// Read a payload out and recycle its slot.
    pub fn remove(&mut self, id: EventId) -> T {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.live[id as usize], "remove of a dead event id");
            self.live[id as usize] = false;
        }
        self.free.push(id);
        self.slots[id as usize]
    }

    /// Live payload count.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all payloads but keep slot capacity for the next run.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        #[cfg(debug_assertions)]
        self.live.clear();
    }
}

/// Starting bucket count (power of two).
const INITIAL_BUCKETS: usize = 16;
/// Starting bucket width in time units, re-estimated on every resize.
const INITIAL_WIDTH: u64 = 1 << 12;

/// Bucketed calendar queue over `(time, seq, EventId)` entries, popped in
/// ascending `(time, seq)` order. Buckets hold entries sorted *descending*
/// so the bucket minimum pops from the back in O(1).
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Vec<(u64, u64, EventId)>>,
    /// `buckets.len() - 1`; bucket count is always a power of two.
    mask: usize,
    /// Bucket width in time units.
    width: u64,
    len: usize,
    /// Time of the most recent pop — the floor of the year scan, and the
    /// monotonicity floor for pushes.
    last: u64,
    /// Scratch for resize redistribution (capacity reused).
    spill: Vec<(u64, u64, EventId)>,
}

impl Default for CalendarQueue {
    fn default() -> CalendarQueue {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INITIAL_BUCKETS - 1,
            width: INITIAL_WIDTH,
            len: 0,
            last: 0,
            spill: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empty the queue but keep bucket capacity (and the adapted width).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.last = 0;
    }

    /// Insert an entry. `time` must be at or after the last popped time.
    pub fn push(&mut self, time: u64, seq: u64, id: EventId) {
        debug_assert!(time >= self.last, "calendar queue requires monotone pushes");
        if self.len >= self.buckets.len() * 2 {
            self.resize();
        }
        self.insert_entry(time, seq, id);
    }

    fn insert_entry(&mut self, time: u64, seq: u64, id: EventId) {
        let b = ((time / self.width) as usize) & self.mask;
        let bucket = &mut self.buckets[b];
        let pos = bucket.partition_point(|&(t, s, _)| (t, s) > (time, seq));
        bucket.insert(pos, (time, seq, id));
        self.len += 1;
    }

    /// Pop the entry with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(u64, u64, EventId)> {
        if self.len == 0 {
            return None;
        }
        // Year scan: walk buckets starting at the bucket of `last`, one
        // width-window per step; the first bucket whose minimum falls inside
        // its current window holds the global minimum (same-time entries
        // always share a bucket, and earlier times are met in earlier steps).
        let mut i = ((self.last / self.width) as usize) & self.mask;
        let mut top = (self.last / self.width + 1).saturating_mul(self.width);
        for _ in 0..self.buckets.len() {
            if let Some(&(t, _, _)) = self.buckets[i].last() {
                if t < top {
                    let item = self.buckets[i].pop().unwrap();
                    self.len -= 1;
                    self.last = item.0;
                    return Some(item);
                }
            }
            i = (i + 1) & self.mask;
            top = top.saturating_add(self.width);
        }
        // Full cycle without a hit (sparse far-future content): direct min
        // over the bucket minima.
        let mut best = (u64::MAX, u64::MAX);
        let mut bi = usize::MAX;
        for (j, b) in self.buckets.iter().enumerate() {
            if let Some(&(t, s, _)) = b.last() {
                if (t, s) < best {
                    best = (t, s);
                    bi = j;
                }
            }
        }
        let item = self.buckets[bi].pop().unwrap();
        self.len -= 1;
        self.last = item.0;
        Some(item)
    }

    /// Double the bucket count and re-estimate the width from the resident
    /// entries' time span, then redistribute.
    fn resize(&mut self) {
        let mut spill = std::mem::take(&mut self.spill);
        spill.clear();
        for b in &mut self.buckets {
            spill.append(b);
        }
        let new_n = (self.buckets.len() * 2).max(INITIAL_BUCKETS);
        self.buckets.resize_with(new_n, Vec::new);
        self.mask = new_n - 1;
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for &(t, _, _) in &spill {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        if !spill.is_empty() {
            self.width = ((hi - lo) / spill.len() as u64).max(1);
        }
        self.len = 0;
        for &(t, s, id) in &spill {
            self.insert_entry(t, s, id);
        }
        self.spill = spill;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Deterministic LCG for test traffic.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn arena_recycles_slots() {
        let mut a: EventArena<(u32, u32)> = EventArena::new();
        let i0 = a.insert((1, 2));
        let i1 = a.insert((3, 4));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(i0), (1, 2));
        let i2 = a.insert((5, 6));
        assert_eq!(i2, i0, "freed slot must be reused");
        assert_eq!(a.remove(i1), (3, 4));
        assert_eq!(a.remove(i2), (5, 6));
        assert!(a.is_empty());
    }

    #[test]
    fn calendar_matches_heap_under_monotone_traffic() {
        let mut rng = Lcg(42);
        let mut cq = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, EventId)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut clock = 0u64; // pushes stay >= the last popped time
        for round in 0u32..5000 {
            // Burst of pushes at or after the current clock.
            for _ in 0..(rng.next() % 4) {
                let t = clock + rng.next() % 10_000;
                cq.push(t, seq, seq as EventId);
                heap.push(Reverse((t, seq, seq as EventId)));
                seq += 1;
            }
            // Duplicate-time pushes exercise the seq tiebreak.
            if round.is_multiple_of(7) {
                let t = clock + 100;
                for _ in 0..2 {
                    cq.push(t, seq, seq as EventId);
                    heap.push(Reverse((t, seq, seq as EventId)));
                    seq += 1;
                }
            }
            if !rng.next().is_multiple_of(3) {
                let a = cq.pop();
                let b = heap.pop().map(|Reverse(x)| x);
                assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    clock = t;
                }
            }
        }
        loop {
            let a = cq.pop();
            let b = heap.pop().map(|Reverse(x)| x);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(cq.is_empty());
    }

    #[test]
    fn clear_resets_for_reuse() {
        let mut cq = CalendarQueue::new();
        for s in 0..100u64 {
            cq.push(s * 17, s, s as EventId);
        }
        cq.clear();
        assert!(cq.is_empty());
        assert_eq!(cq.pop(), None);
        cq.push(5, 0, 9);
        assert_eq!(cq.pop(), Some((5, 0, 9)));
    }

    #[test]
    fn far_future_entries_found_by_direct_scan() {
        let mut cq = CalendarQueue::new();
        // One entry many years (bucket cycles) ahead.
        cq.push(INITIAL_WIDTH * INITIAL_BUCKETS as u64 * 1000, 0, 1);
        assert_eq!(
            cq.pop(),
            Some((INITIAL_WIDTH * INITIAL_BUCKETS as u64 * 1000, 0, 1))
        );
    }
}
