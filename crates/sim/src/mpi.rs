//! An event-driven, MPI-like nonblocking communication layer.
//!
//! [`crate::microsim`] prices one boundary round analytically; this module
//! is the ground-truth counterpart: a discrete-event engine in which every
//! rank executes a *program* of MPI-style operations — `Compute`, `Isend`,
//! `Irecv`, `WaitAll`, `Barrier` — with genuine nonblocking semantics:
//! sends post immediately, receives match messages by `(src, tag)` in FIFO
//! order (with an unexpected-message queue, as in real MPI), `WaitAll`
//! blocks until every posted receive has matched *and* arrived, and
//! barriers complete a binomial tree after the last arrival.
//!
//! Use it when per-message causality matters (critical-path studies,
//! validating the analytic models); use `microsim`/`macrosim` for sweeps.

use crate::collectives::tree_depth;
use crate::network::NetworkConfig;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// One operation of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Busy compute for the given duration.
    Compute(u64),
    /// Post a nonblocking send of `bytes` to `dst` with a matching `tag`.
    Isend { dst: u32, tag: u32, bytes: u64 },
    /// Post a nonblocking receive from `src` with `tag`.
    Irecv { src: u32, tag: u32 },
    /// Block until all outstanding receives posted so far have completed.
    WaitAll,
    /// Enter a global barrier.
    Barrier,
}

/// Per-rank outcome of a program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankStats {
    /// Time the rank finished its program.
    pub finish_ns: SimTime,
    /// Total time blocked in `WaitAll`.
    pub wait_ns: u64,
    /// Total time blocked in barriers.
    pub barrier_ns: u64,
    /// Messages sent / received.
    pub sent: u32,
    pub received: u32,
}

/// Outcome of an [`MpiWorld::run`].
#[derive(Debug, Clone)]
pub struct WorldResult {
    pub ranks: Vec<RankStats>,
    /// Virtual time when every rank finished.
    pub makespan_ns: SimTime,
}

/// Errors detected by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// All ranks blocked with no events pending: circular waits or missing
    /// sends/receives.
    Deadlock { stuck_ranks: Vec<u32> },
    /// A barrier was entered by some ranks while another finished its
    /// program without entering it.
    BarrierMismatch,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Deadlock { stuck_ranks } => {
                write!(f, "deadlock: ranks {stuck_ranks:?} blocked forever")
            }
            MpiError::BarrierMismatch => write!(f, "barrier entered by a strict subset of ranks"),
        }
    }
}

impl std::error::Error for MpiError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    None,
    WaitAll,
    Barrier,
    Done,
}

#[derive(Debug)]
struct RankState {
    program: Vec<Op>,
    pc: usize,
    clock: SimTime,
    block: Block,
    /// Outstanding receive requests: (src, tag) not yet completed.
    pending_recvs: Vec<(u32, u32)>,
    /// Matched-but-not-yet-waited receives do not block; only pending ones.
    stats: RankStats,
    blocked_since: SimTime,
}

/// Pending arrivals at a receiver, keyed by (src, tag).
#[derive(Debug, Default)]
struct Mailbox {
    /// Arrived messages not yet matched to a posted receive.
    unexpected: HashMap<(u32, u32), VecDeque<SimTime>>,
}

/// The event-driven MPI world.
pub struct MpiWorld {
    topology: Topology,
    network: NetworkConfig,
}

#[derive(Debug, PartialEq, Eq)]
enum Event {
    /// Message from (src, tag) becomes visible at `dst`.
    Arrival { dst: u32, src: u32, tag: u32 },
}

impl MpiWorld {
    /// Create a world over the given topology and network model.
    pub fn new(topology: Topology, network: NetworkConfig) -> MpiWorld {
        MpiWorld { topology, network }
    }

    /// Execute one program per rank to completion.
    pub fn run(&self, programs: Vec<Vec<Op>>) -> Result<WorldResult, MpiError> {
        let r = programs.len();
        assert_eq!(r, self.topology.num_ranks, "one program per rank");
        let mut ranks: Vec<RankState> = programs
            .into_iter()
            .map(|program| RankState {
                program,
                pc: 0,
                clock: 0,
                block: Block::None,
                pending_recvs: Vec::new(),
                stats: RankStats::default(),
                blocked_since: 0,
            })
            .collect();
        let mut mailboxes: Vec<Mailbox> = (0..r).map(|_| Mailbox::default()).collect();
        // Event queue ordered by (time, seq) for determinism.
        let mut queue: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut events: HashMap<u32, Event> = HashMap::new();
        let mut seq = 0u64;

        // Barrier bookkeeping.
        let mut barrier_entered: Vec<Option<SimTime>> = vec![None; r];
        let mut barrier_count = 0usize;

        // Run every rank as far as it can go; repeat on each event.
        let mut runnable: VecDeque<usize> = (0..r).collect();
        loop {
            while let Some(ri) = runnable.pop_front() {
                self.advance(
                    ri,
                    &mut ranks,
                    &mut mailboxes,
                    &mut queue,
                    &mut events,
                    &mut seq,
                    &mut barrier_entered,
                    &mut barrier_count,
                    &mut runnable,
                );
            }
            // Barrier release: everyone in?
            if barrier_count == r {
                let last = barrier_entered.iter().map(|t| t.unwrap()).max().unwrap();
                let release = last + tree_depth(r) as u64 * self.network.fabric.latency_ns;
                for (ri, rank) in ranks.iter_mut().enumerate() {
                    debug_assert_eq!(rank.block, Block::Barrier);
                    rank.stats.barrier_ns += release - barrier_entered[ri].unwrap();
                    rank.clock = release;
                    rank.block = Block::None;
                    runnable.push_back(ri);
                }
                barrier_entered.iter_mut().for_each(|t| *t = None);
                barrier_count = 0;
                continue;
            }
            // Deliver the next event.
            match queue.pop() {
                Some(Reverse((time, _, eid))) => {
                    let Event::Arrival { dst, src, tag } = events.remove(&eid).expect("event");
                    let rank = &mut ranks[dst as usize];
                    // Match against a pending receive, else park as
                    // unexpected.
                    if let Some(pos) = rank
                        .pending_recvs
                        .iter()
                        .position(|&(s, t)| s == src && t == tag)
                    {
                        rank.pending_recvs.swap_remove(pos);
                        rank.stats.received += 1;
                        // Receive completion costs service time at the head.
                        let done = time + self.network.recv_overhead_ns;
                        if rank.block == Block::WaitAll {
                            rank.clock = rank.clock.max(done);
                            if rank.pending_recvs.is_empty() {
                                rank.stats.wait_ns += rank.clock - rank.blocked_since;
                                rank.block = Block::None;
                                runnable.push_back(dst as usize);
                            }
                        } else {
                            rank.clock = rank.clock.max(done);
                        }
                    } else {
                        mailboxes[dst as usize]
                            .unexpected
                            .entry((src, tag))
                            .or_default()
                            .push_back(time);
                    }
                }
                None => break, // no events left
            }
        }

        // Completion / error analysis. Deadlocked (WaitAll-stuck) ranks take
        // precedence: a rank parked at a barrier while others are deadlocked
        // is a symptom, not the cause.
        let mut stuck = Vec::new();
        let mut at_barrier = false;
        for (ri, rank) in ranks.iter().enumerate() {
            match rank.block {
                Block::Done => {}
                Block::Barrier => at_barrier = true,
                _ => stuck.push(ri as u32),
            }
        }
        if !stuck.is_empty() {
            return Err(MpiError::Deadlock { stuck_ranks: stuck });
        }
        if at_barrier {
            return Err(MpiError::BarrierMismatch);
        }

        let makespan = ranks.iter().map(|r| r.stats.finish_ns).max().unwrap_or(0);
        Ok(WorldResult {
            ranks: ranks.into_iter().map(|r| r.stats).collect(),
            makespan_ns: makespan,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        ri: usize,
        ranks: &mut [RankState],
        mailboxes: &mut [Mailbox],
        queue: &mut BinaryHeap<Reverse<(SimTime, u64, u32)>>,
        events: &mut HashMap<u32, Event>,
        seq: &mut u64,
        barrier_entered: &mut [Option<SimTime>],
        barrier_count: &mut usize,
        _runnable: &mut VecDeque<usize>,
    ) {
        loop {
            let rank = &mut ranks[ri];
            if rank.block != Block::None {
                return;
            }
            if rank.pc >= rank.program.len() {
                rank.block = Block::Done;
                rank.stats.finish_ns = rank.clock;
                return;
            }
            let op = rank.program[rank.pc];
            rank.pc += 1;
            match op {
                Op::Compute(dur) => {
                    rank.clock += dur;
                }
                Op::Isend { dst, tag, bytes } => {
                    rank.clock += self.network.dispatch_ns(bytes);
                    rank.stats.sent += 1;
                    let local = self.topology.same_node(ri, dst as usize);
                    let arrive = rank.clock + self.network.transfer_ns(bytes, local);
                    let eid = *seq as u32;
                    events.insert(
                        eid,
                        Event::Arrival {
                            dst,
                            src: ri as u32,
                            tag,
                        },
                    );
                    queue.push(Reverse((arrive, *seq, eid)));
                    *seq += 1;
                }
                Op::Irecv { src, tag } => {
                    // Unexpected message already here? Complete immediately.
                    let mb = &mut mailboxes[ri];
                    let done = mb
                        .unexpected
                        .get_mut(&(src, tag))
                        .and_then(|q| q.pop_front());
                    if let Some(arrival) = done {
                        ranks[ri].stats.received += 1;
                        ranks[ri].clock =
                            ranks[ri].clock.max(arrival + self.network.recv_overhead_ns);
                    } else {
                        ranks[ri].pending_recvs.push((src, tag));
                    }
                }
                Op::WaitAll => {
                    if !rank.pending_recvs.is_empty() {
                        rank.block = Block::WaitAll;
                        rank.blocked_since = rank.clock;
                        return;
                    }
                }
                Op::Barrier => {
                    rank.block = Block::Barrier;
                    barrier_entered[ri] = Some(rank.clock);
                    *barrier_count += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NetworkConfig {
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        }
    }

    fn ring_programs(r: usize, bytes: u64, compute: u64) -> Vec<Vec<Op>> {
        (0..r as u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + r as u32 - 1) % r as u32,
                        tag: 0,
                    },
                    Op::Isend {
                        dst: (i + 1) % r as u32,
                        tag: 0,
                        bytes,
                    },
                    Op::Compute(compute),
                    Op::WaitAll,
                    Op::Barrier,
                ]
            })
            .collect()
    }

    #[test]
    fn ring_exchange_completes() {
        let world = MpiWorld::new(Topology::paper(8), quiet());
        let res = world.run(ring_programs(8, 4096, 100_000)).unwrap();
        assert_eq!(res.ranks.len(), 8);
        for s in &res.ranks {
            assert_eq!(s.sent, 1);
            assert_eq!(s.received, 1);
            assert!(s.finish_ns >= 100_000);
        }
        assert!(res.makespan_ns >= 100_000);
    }

    #[test]
    fn compute_only_program() {
        let world = MpiWorld::new(Topology::paper(4), quiet());
        let progs = (0..4).map(|i| vec![Op::Compute(100 * (i + 1))]).collect();
        let res = world.run(progs).unwrap();
        assert_eq!(res.makespan_ns, 400);
        assert_eq!(res.ranks[2].finish_ns, 300);
        assert!(res.ranks.iter().all(|s| s.wait_ns == 0));
    }

    #[test]
    fn late_send_charges_wait() {
        // Rank 0 computes long then sends; rank 1 waits.
        let world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Compute(1_000_000),
                Op::Isend {
                    dst: 1,
                    tag: 7,
                    bytes: 100,
                },
            ],
            vec![Op::Irecv { src: 0, tag: 7 }, Op::WaitAll],
        ];
        let res = world.run(progs).unwrap();
        assert!(res.ranks[1].wait_ns >= 1_000_000);
        assert_eq!(res.ranks[1].received, 1);
    }

    #[test]
    fn unexpected_message_queue_matches_fifo() {
        // Two sends with the same (src, tag) arrive before the receives are
        // posted; both must match.
        let world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Isend {
                    dst: 1,
                    tag: 3,
                    bytes: 10,
                },
                Op::Isend {
                    dst: 1,
                    tag: 3,
                    bytes: 10,
                },
            ],
            vec![
                Op::Compute(10_000_000), // let the messages land first
                Op::Irecv { src: 0, tag: 3 },
                Op::Irecv { src: 0, tag: 3 },
                Op::WaitAll,
            ],
        ];
        let res = world.run(progs).unwrap();
        assert_eq!(res.ranks[1].received, 2);
        assert_eq!(res.ranks[1].wait_ns, 0, "messages were already there");
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks wait for a message that is never sent.
        let world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![Op::Irecv { src: 1, tag: 0 }, Op::WaitAll],
            vec![Op::Irecv { src: 0, tag: 0 }, Op::WaitAll],
        ];
        match world.run(progs) {
            Err(MpiError::Deadlock { stuck_ranks }) => {
                assert_eq!(stuck_ranks, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn barrier_mismatch_detected() {
        let world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![vec![Op::Barrier], vec![Op::Compute(5)]];
        assert_eq!(world.run(progs).unwrap_err(), MpiError::BarrierMismatch);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let world = MpiWorld::new(Topology::paper(4), quiet());
        let progs = (0..4)
            .map(|i| {
                vec![
                    Op::Compute(100 * (i as u64 + 1)),
                    Op::Barrier,
                    Op::Compute(10),
                ]
            })
            .collect();
        let res = world.run(progs).unwrap();
        // All ranks leave the barrier together; finishes within tree slack.
        let finishes: Vec<u64> = res.ranks.iter().map(|s| s.finish_ns).collect();
        assert!(finishes.iter().all(|&f| f == finishes[0]));
        // The earliest arriver waited the longest.
        assert!(res.ranks[0].barrier_ns > res.ranks[3].barrier_ns);
    }

    #[test]
    fn tags_disambiguate_messages() {
        // Receiver posts tag 1 then tag 2; sender sends tag 2 then tag 1.
        let world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Isend {
                    dst: 1,
                    tag: 2,
                    bytes: 10,
                },
                Op::Isend {
                    dst: 1,
                    tag: 1,
                    bytes: 10,
                },
            ],
            vec![
                Op::Irecv { src: 0, tag: 1 },
                Op::Irecv { src: 0, tag: 2 },
                Op::WaitAll,
            ],
        ];
        let res = world.run(progs).unwrap();
        assert_eq!(res.ranks[1].received, 2);
    }

    #[test]
    fn agrees_with_microsim_on_ordering_effects() {
        // Qualitative cross-validation: a late send (compute-first) must
        // produce more wait than sends-first in both engines.
        let world = MpiWorld::new(Topology::paper(8), quiet());
        let sends_first: Vec<Vec<Op>> = (0..8u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + 7) % 8,
                        tag: 0,
                    },
                    Op::Isend {
                        dst: (i + 1) % 8,
                        tag: 0,
                        bytes: 20_480,
                    },
                    Op::Compute(1_000_000),
                    Op::WaitAll,
                ]
            })
            .collect();
        let compute_first: Vec<Vec<Op>> = (0..8u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + 7) % 8,
                        tag: 0,
                    },
                    Op::Compute(1_000_000),
                    Op::Isend {
                        dst: (i + 1) % 8,
                        tag: 0,
                        bytes: 20_480,
                    },
                    Op::WaitAll,
                ]
            })
            .collect();
        let sf = world.run(sends_first).unwrap();
        let cf = world.run(compute_first).unwrap();
        let sf_wait: u64 = sf.ranks.iter().map(|s| s.wait_ns).sum();
        let cf_wait: u64 = cf.ranks.iter().map(|s| s.wait_ns).sum();
        assert!(sf_wait < cf_wait);
        assert!(sf.makespan_ns <= cf.makespan_ns);
    }
}
