//! An event-driven, MPI-like nonblocking communication layer.
//!
//! [`crate::microsim`] prices one boundary round analytically; this module
//! is the ground-truth counterpart: a discrete-event engine in which every
//! rank executes a *program* of MPI-style operations — `Compute`, `Isend`,
//! `Irecv`, `WaitAll`, `Barrier` — with genuine nonblocking semantics:
//! sends post immediately, receives match messages by `(src, tag)` in FIFO
//! order (with an unexpected-message queue, as in real MPI), `WaitAll`
//! blocks until every posted receive has matched *and* arrived, and
//! barriers complete a binomial tree after the last arrival.
//!
//! Use it when per-message causality matters (critical-path studies,
//! validating the analytic models); use `microsim`/`macrosim` for sweeps.
//!
//! ## Engine internals
//!
//! The scheduler is a [`CalendarQueue`] over `(time, seq)` keys with event
//! payloads in an [`EventArena`] slab — O(1) expected push/pop and recycled
//! ids, replacing the original `BinaryHeap` + `HashMap<u32, Event>` pair
//! (kept as [`MpiWorld::run_heap_reference`], the property-test oracle).
//! Unexpected messages live in a flat `Vec` indexed `src * nranks + dst`
//! (O(ranks²) cells, sized once at construction — this engine runs at the
//! hundreds-of-ranks microbenchmark scale, not the macrosim scale), and all
//! per-run state — rank records, queue buckets, arena slots, mailboxes —
//! is pooled in [`MpiWorld`] and recycled, so a warm [`MpiWorld::run_into`]
//! allocates nothing in steady state.

use crate::collectives::tree_depth;
use crate::events::{CalendarQueue, EventArena, EventId};
use crate::network::NetworkConfig;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// One operation of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Busy compute for the given duration.
    Compute(u64),
    /// Post a nonblocking send of `bytes` to `dst` with a matching `tag`.
    Isend { dst: u32, tag: u32, bytes: u64 },
    /// Post a nonblocking receive from `src` with `tag`.
    Irecv { src: u32, tag: u32 },
    /// Block until all outstanding receives posted so far have completed.
    WaitAll,
    /// Enter a global barrier.
    Barrier,
}

/// Per-rank outcome of a program run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankStats {
    /// Time the rank finished its program.
    pub finish_ns: SimTime,
    /// Total time blocked in `WaitAll`.
    pub wait_ns: u64,
    /// Total time blocked in barriers.
    pub barrier_ns: u64,
    /// Messages sent / received.
    pub sent: u32,
    pub received: u32,
}

/// Outcome of an [`MpiWorld::run`].
#[derive(Debug, Clone)]
pub struct WorldResult {
    pub ranks: Vec<RankStats>,
    /// Virtual time when every rank finished.
    pub makespan_ns: SimTime,
}

/// Errors detected by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// All ranks blocked with no events pending: circular waits or missing
    /// sends/receives.
    Deadlock { stuck_ranks: Vec<u32> },
    /// A barrier was entered by some ranks while another finished its
    /// program without entering it.
    BarrierMismatch,
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::Deadlock { stuck_ranks } => {
                write!(f, "deadlock: ranks {stuck_ranks:?} blocked forever")
            }
            MpiError::BarrierMismatch => write!(f, "barrier entered by a strict subset of ranks"),
        }
    }
}

impl std::error::Error for MpiError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    None,
    WaitAll,
    Barrier,
    Done,
}

/// Per-rank execution record. Pooled across runs; [`RankState::reset`]
/// clears logical state while `pending_recvs` keeps its capacity.
#[derive(Debug)]
struct RankState {
    pc: usize,
    clock: SimTime,
    block: Block,
    /// Outstanding receive requests: (src, tag) not yet completed.
    /// Matched-but-not-yet-waited receives do not block; only pending ones.
    pending_recvs: Vec<(u32, u32)>,
    stats: RankStats,
    blocked_since: SimTime,
}

impl Default for RankState {
    fn default() -> RankState {
        RankState {
            pc: 0,
            clock: 0,
            block: Block::None,
            pending_recvs: Vec::new(),
            stats: RankStats::default(),
            blocked_since: 0,
        }
    }
}

impl RankState {
    fn reset(&mut self) {
        self.pc = 0;
        self.clock = 0;
        self.block = Block::None;
        self.pending_recvs.clear();
        self.stats = RankStats::default();
        self.blocked_since = 0;
    }
}

/// Payload of a scheduled arrival: message from (src, tag) becomes visible
/// at `dst` at the event's time.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    dst: u32,
    src: u32,
    tag: u32,
}

/// All pooled per-run state: recycled by [`MpiWorld::run_into`] so warm
/// runs allocate nothing.
#[derive(Debug, Default)]
struct WorldScratch {
    ranks: Vec<RankState>,
    /// Unexpected-message queues, flat-indexed `src * nranks + dst`; each
    /// entry is (tag, arrival time) in arrival order, so a scan for the
    /// first matching tag preserves per-(src, tag) FIFO.
    unexpected: Vec<VecDeque<(u32, SimTime)>>,
    /// Flat indices of `unexpected` cells touched this run (cheap targeted
    /// reset instead of an O(ranks²) sweep).
    dirty_cells: Vec<u32>,
    queue: CalendarQueue,
    arena: EventArena<Arrival>,
    seq: u64,
    barrier_entered: Vec<Option<SimTime>>,
    barrier_count: usize,
    runnable: VecDeque<usize>,
}

/// The event-driven MPI world.
pub struct MpiWorld {
    topology: Topology,
    network: NetworkConfig,
    scratch: WorldScratch,
}

impl MpiWorld {
    /// Create a world over the given topology and network model.
    pub fn new(topology: Topology, network: NetworkConfig) -> MpiWorld {
        let r = topology.num_ranks;
        let mut scratch = WorldScratch::default();
        scratch.unexpected.resize_with(r * r, VecDeque::new);
        MpiWorld {
            topology,
            network,
            scratch,
        }
    }

    /// Execute one program per rank to completion.
    pub fn run(&mut self, programs: Vec<Vec<Op>>) -> Result<WorldResult, MpiError> {
        let mut stats = Vec::new();
        let makespan_ns = self.run_into(&programs, &mut stats)?;
        Ok(WorldResult {
            ranks: stats,
            makespan_ns,
        })
    }

    /// Execute one program per rank, writing per-rank stats into `out`
    /// (cleared first). Allocation-free once warm: all engine state is
    /// pooled in `self` and `out`'s capacity is reused.
    pub fn run_into(
        &mut self,
        programs: &[Vec<Op>],
        out: &mut Vec<RankStats>,
    ) -> Result<SimTime, MpiError> {
        let r = programs.len();
        assert_eq!(r, self.topology.num_ranks, "one program per rank");
        let MpiWorld {
            topology,
            network,
            scratch: s,
        } = self;

        // Recycle pooled state.
        s.ranks.resize_with(r, RankState::default);
        for rank in &mut s.ranks {
            rank.reset();
        }
        debug_assert_eq!(s.unexpected.len(), r * r);
        for &cell in &s.dirty_cells {
            s.unexpected[cell as usize].clear();
        }
        s.dirty_cells.clear();
        s.queue.clear();
        s.arena.clear();
        s.seq = 0;
        s.barrier_entered.clear();
        s.barrier_entered.resize(r, None);
        s.barrier_count = 0;
        s.runnable.clear();
        s.runnable.extend(0..r);

        // Run every rank as far as it can go; repeat on each event.
        loop {
            while let Some(ri) = s.runnable.pop_front() {
                advance(topology, network, ri, programs, s);
            }
            // Barrier release: everyone in?
            if s.barrier_count == r {
                let last = s.barrier_entered.iter().map(|t| t.unwrap()).max().unwrap();
                let release = last + tree_depth(r) as u64 * network.fabric.latency_ns;
                for (ri, rank) in s.ranks.iter_mut().enumerate() {
                    debug_assert_eq!(rank.block, Block::Barrier);
                    rank.stats.barrier_ns += release - s.barrier_entered[ri].unwrap();
                    rank.clock = release;
                    rank.block = Block::None;
                    s.runnable.push_back(ri);
                }
                s.barrier_entered.iter_mut().for_each(|t| *t = None);
                s.barrier_count = 0;
                continue;
            }
            // Deliver the next event.
            match s.queue.pop() {
                Some((time, _, eid)) => {
                    let Arrival { dst, src, tag } = s.arena.remove(eid);
                    let rank = &mut s.ranks[dst as usize];
                    // Match against a pending receive, else park as
                    // unexpected.
                    if let Some(pos) = rank
                        .pending_recvs
                        .iter()
                        .position(|&(sr, t)| sr == src && t == tag)
                    {
                        rank.pending_recvs.swap_remove(pos);
                        rank.stats.received += 1;
                        // Receive completion costs service time at the head.
                        let done = time + network.recv_overhead_ns;
                        rank.clock = rank.clock.max(done);
                        if rank.block == Block::WaitAll && rank.pending_recvs.is_empty() {
                            rank.stats.wait_ns += rank.clock - rank.blocked_since;
                            rank.block = Block::None;
                            s.runnable.push_back(dst as usize);
                        }
                    } else {
                        let cell = src as usize * r + dst as usize;
                        if s.unexpected[cell].is_empty() {
                            s.dirty_cells.push(cell as u32);
                        }
                        s.unexpected[cell].push_back((tag, time));
                    }
                }
                None => break, // no events left
            }
        }

        // Completion / error analysis. Deadlocked (WaitAll-stuck) ranks take
        // precedence: a rank parked at a barrier while others are deadlocked
        // is a symptom, not the cause.
        let mut stuck = Vec::new();
        let mut at_barrier = false;
        for (ri, rank) in s.ranks.iter().enumerate() {
            match rank.block {
                Block::Done => {}
                Block::Barrier => at_barrier = true,
                _ => stuck.push(ri as u32),
            }
        }
        if !stuck.is_empty() {
            return Err(MpiError::Deadlock { stuck_ranks: stuck });
        }
        if at_barrier {
            return Err(MpiError::BarrierMismatch);
        }

        out.clear();
        out.extend(s.ranks.iter().map(|r| r.stats));
        Ok(out.iter().map(|r| r.finish_ns).max().unwrap_or(0))
    }
}

/// Run rank `ri` until it blocks or finishes, scheduling arrivals for its
/// sends and completing receives already satisfied from the mailbox.
fn advance(
    topology: &Topology,
    network: &NetworkConfig,
    ri: usize,
    programs: &[Vec<Op>],
    s: &mut WorldScratch,
) {
    let r = programs.len();
    loop {
        let rank = &mut s.ranks[ri];
        if rank.block != Block::None {
            return;
        }
        if rank.pc >= programs[ri].len() {
            rank.block = Block::Done;
            rank.stats.finish_ns = rank.clock;
            return;
        }
        let op = programs[ri][rank.pc];
        rank.pc += 1;
        match op {
            Op::Compute(dur) => {
                rank.clock += dur;
            }
            Op::Isend { dst, tag, bytes } => {
                rank.clock += network.dispatch_ns(bytes);
                rank.stats.sent += 1;
                let local = topology.same_node(ri, dst as usize);
                let arrive = rank.clock + network.transfer_ns(bytes, local);
                let eid = s.arena.insert(Arrival {
                    dst,
                    src: ri as u32,
                    tag,
                });
                s.queue.push(arrive, s.seq, eid);
                s.seq += 1;
            }
            Op::Irecv { src, tag } => {
                // Unexpected message already here? Complete immediately
                // (first matching tag in the per-(src, dst) queue = FIFO
                // per (src, tag)).
                let cell = &mut s.unexpected[src as usize * r + ri];
                if let Some(pos) = cell.iter().position(|&(t, _)| t == tag) {
                    let (_, arrival) = cell.remove(pos).unwrap();
                    rank.stats.received += 1;
                    rank.clock = rank.clock.max(arrival + network.recv_overhead_ns);
                } else {
                    rank.pending_recvs.push((src, tag));
                }
            }
            Op::WaitAll => {
                if !rank.pending_recvs.is_empty() {
                    rank.block = Block::WaitAll;
                    rank.blocked_since = rank.clock;
                    return;
                }
            }
            Op::Barrier => {
                rank.block = Block::Barrier;
                s.barrier_entered[ri] = Some(rank.clock);
                s.barrier_count += 1;
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Heap-based reference engine (the original implementation), retained as the
// oracle for the calendar-queue engine's equivalence property tests.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct HeapRankState {
    program: Vec<Op>,
    pc: usize,
    clock: SimTime,
    block: Block,
    pending_recvs: Vec<(u32, u32)>,
    stats: RankStats,
    blocked_since: SimTime,
}

/// Pending arrivals at a receiver, keyed by (src, tag).
#[derive(Debug, Default)]
struct HeapMailbox {
    unexpected: HashMap<(u32, u32), VecDeque<SimTime>>,
}

#[derive(Debug, PartialEq, Eq)]
enum HeapEvent {
    Arrival { dst: u32, src: u32, tag: u32 },
}

impl MpiWorld {
    /// Reference scheduler: `BinaryHeap<Reverse<(time, seq, id)>>` +
    /// `HashMap` event store and hash-keyed unexpected queues. Semantically
    /// identical to [`MpiWorld::run_into`] (same `(time, seq)` delivery
    /// order); allocates freely. Kept for equivalence testing and
    /// before/after benchmarking only.
    pub fn run_heap_reference(&self, programs: Vec<Vec<Op>>) -> Result<WorldResult, MpiError> {
        let r = programs.len();
        assert_eq!(r, self.topology.num_ranks, "one program per rank");
        let mut ranks: Vec<HeapRankState> = programs
            .into_iter()
            .map(|program| HeapRankState {
                program,
                pc: 0,
                clock: 0,
                block: Block::None,
                pending_recvs: Vec::new(),
                stats: RankStats::default(),
                blocked_since: 0,
            })
            .collect();
        let mut mailboxes: Vec<HeapMailbox> = (0..r).map(|_| HeapMailbox::default()).collect();
        // Event queue ordered by (time, seq) for determinism.
        let mut queue: BinaryHeap<Reverse<(SimTime, u64, EventId)>> = BinaryHeap::new();
        let mut events: HashMap<EventId, HeapEvent> = HashMap::new();
        let mut seq = 0u64;

        let mut barrier_entered: Vec<Option<SimTime>> = vec![None; r];
        let mut barrier_count = 0usize;

        let mut runnable: VecDeque<usize> = (0..r).collect();
        loop {
            while let Some(ri) = runnable.pop_front() {
                self.advance_heap(
                    ri,
                    &mut ranks,
                    &mut mailboxes,
                    &mut queue,
                    &mut events,
                    &mut seq,
                    &mut barrier_entered,
                    &mut barrier_count,
                );
            }
            if barrier_count == r {
                let last = barrier_entered.iter().map(|t| t.unwrap()).max().unwrap();
                let release = last + tree_depth(r) as u64 * self.network.fabric.latency_ns;
                for (ri, rank) in ranks.iter_mut().enumerate() {
                    debug_assert_eq!(rank.block, Block::Barrier);
                    rank.stats.barrier_ns += release - barrier_entered[ri].unwrap();
                    rank.clock = release;
                    rank.block = Block::None;
                    runnable.push_back(ri);
                }
                barrier_entered.iter_mut().for_each(|t| *t = None);
                barrier_count = 0;
                continue;
            }
            match queue.pop() {
                Some(Reverse((time, _, eid))) => {
                    let HeapEvent::Arrival { dst, src, tag } = events.remove(&eid).expect("event");
                    let rank = &mut ranks[dst as usize];
                    if let Some(pos) = rank
                        .pending_recvs
                        .iter()
                        .position(|&(sr, t)| sr == src && t == tag)
                    {
                        rank.pending_recvs.swap_remove(pos);
                        rank.stats.received += 1;
                        let done = time + self.network.recv_overhead_ns;
                        rank.clock = rank.clock.max(done);
                        if rank.block == Block::WaitAll && rank.pending_recvs.is_empty() {
                            rank.stats.wait_ns += rank.clock - rank.blocked_since;
                            rank.block = Block::None;
                            runnable.push_back(dst as usize);
                        }
                    } else {
                        mailboxes[dst as usize]
                            .unexpected
                            .entry((src, tag))
                            .or_default()
                            .push_back(time);
                    }
                }
                None => break,
            }
        }

        let mut stuck = Vec::new();
        let mut at_barrier = false;
        for (ri, rank) in ranks.iter().enumerate() {
            match rank.block {
                Block::Done => {}
                Block::Barrier => at_barrier = true,
                _ => stuck.push(ri as u32),
            }
        }
        if !stuck.is_empty() {
            return Err(MpiError::Deadlock { stuck_ranks: stuck });
        }
        if at_barrier {
            return Err(MpiError::BarrierMismatch);
        }

        let makespan = ranks.iter().map(|r| r.stats.finish_ns).max().unwrap_or(0);
        Ok(WorldResult {
            ranks: ranks.into_iter().map(|r| r.stats).collect(),
            makespan_ns: makespan,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_heap(
        &self,
        ri: usize,
        ranks: &mut [HeapRankState],
        mailboxes: &mut [HeapMailbox],
        queue: &mut BinaryHeap<Reverse<(SimTime, u64, EventId)>>,
        events: &mut HashMap<EventId, HeapEvent>,
        seq: &mut u64,
        barrier_entered: &mut [Option<SimTime>],
        barrier_count: &mut usize,
    ) {
        loop {
            let rank = &mut ranks[ri];
            if rank.block != Block::None {
                return;
            }
            if rank.pc >= rank.program.len() {
                rank.block = Block::Done;
                rank.stats.finish_ns = rank.clock;
                return;
            }
            let op = rank.program[rank.pc];
            rank.pc += 1;
            match op {
                Op::Compute(dur) => {
                    rank.clock += dur;
                }
                Op::Isend { dst, tag, bytes } => {
                    rank.clock += self.network.dispatch_ns(bytes);
                    rank.stats.sent += 1;
                    let local = self.topology.same_node(ri, dst as usize);
                    let arrive = rank.clock + self.network.transfer_ns(bytes, local);
                    let eid = *seq as EventId;
                    events.insert(
                        eid,
                        HeapEvent::Arrival {
                            dst,
                            src: ri as u32,
                            tag,
                        },
                    );
                    queue.push(Reverse((arrive, *seq, eid)));
                    *seq += 1;
                }
                Op::Irecv { src, tag } => {
                    let mb = &mut mailboxes[ri];
                    let done = mb
                        .unexpected
                        .get_mut(&(src, tag))
                        .and_then(|q| q.pop_front());
                    if let Some(arrival) = done {
                        ranks[ri].stats.received += 1;
                        ranks[ri].clock =
                            ranks[ri].clock.max(arrival + self.network.recv_overhead_ns);
                    } else {
                        ranks[ri].pending_recvs.push((src, tag));
                    }
                }
                Op::WaitAll => {
                    if !rank.pending_recvs.is_empty() {
                        rank.block = Block::WaitAll;
                        rank.blocked_since = rank.clock;
                        return;
                    }
                }
                Op::Barrier => {
                    rank.block = Block::Barrier;
                    barrier_entered[ri] = Some(rank.clock);
                    *barrier_count += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> NetworkConfig {
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        }
    }

    fn ring_programs(r: usize, bytes: u64, compute: u64) -> Vec<Vec<Op>> {
        (0..r as u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + r as u32 - 1) % r as u32,
                        tag: 0,
                    },
                    Op::Isend {
                        dst: (i + 1) % r as u32,
                        tag: 0,
                        bytes,
                    },
                    Op::Compute(compute),
                    Op::WaitAll,
                    Op::Barrier,
                ]
            })
            .collect()
    }

    #[test]
    fn ring_exchange_completes() {
        let mut world = MpiWorld::new(Topology::paper(8), quiet());
        let res = world.run(ring_programs(8, 4096, 100_000)).unwrap();
        assert_eq!(res.ranks.len(), 8);
        for s in &res.ranks {
            assert_eq!(s.sent, 1);
            assert_eq!(s.received, 1);
            assert!(s.finish_ns >= 100_000);
        }
        assert!(res.makespan_ns >= 100_000);
    }

    #[test]
    fn compute_only_program() {
        let mut world = MpiWorld::new(Topology::paper(4), quiet());
        let progs = (0..4).map(|i| vec![Op::Compute(100 * (i + 1))]).collect();
        let res = world.run(progs).unwrap();
        assert_eq!(res.makespan_ns, 400);
        assert_eq!(res.ranks[2].finish_ns, 300);
        assert!(res.ranks.iter().all(|s| s.wait_ns == 0));
    }

    #[test]
    fn late_send_charges_wait() {
        // Rank 0 computes long then sends; rank 1 waits.
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Compute(1_000_000),
                Op::Isend {
                    dst: 1,
                    tag: 7,
                    bytes: 100,
                },
            ],
            vec![Op::Irecv { src: 0, tag: 7 }, Op::WaitAll],
        ];
        let res = world.run(progs).unwrap();
        assert!(res.ranks[1].wait_ns >= 1_000_000);
        assert_eq!(res.ranks[1].received, 1);
    }

    #[test]
    fn unexpected_message_queue_matches_fifo() {
        // Two sends with the same (src, tag) arrive before the receives are
        // posted; both must match.
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Isend {
                    dst: 1,
                    tag: 3,
                    bytes: 10,
                },
                Op::Isend {
                    dst: 1,
                    tag: 3,
                    bytes: 10,
                },
            ],
            vec![
                Op::Compute(10_000_000), // let the messages land first
                Op::Irecv { src: 0, tag: 3 },
                Op::Irecv { src: 0, tag: 3 },
                Op::WaitAll,
            ],
        ];
        let res = world.run(progs).unwrap();
        assert_eq!(res.ranks[1].received, 2);
        assert_eq!(res.ranks[1].wait_ns, 0, "messages were already there");
    }

    #[test]
    fn deadlock_detected() {
        // Both ranks wait for a message that is never sent.
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![Op::Irecv { src: 1, tag: 0 }, Op::WaitAll],
            vec![Op::Irecv { src: 0, tag: 0 }, Op::WaitAll],
        ];
        match world.run(progs) {
            Err(MpiError::Deadlock { stuck_ranks }) => {
                assert_eq!(stuck_ranks, vec![0, 1]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn barrier_mismatch_detected() {
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![vec![Op::Barrier], vec![Op::Compute(5)]];
        assert_eq!(world.run(progs).unwrap_err(), MpiError::BarrierMismatch);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut world = MpiWorld::new(Topology::paper(4), quiet());
        let progs = (0..4)
            .map(|i| {
                vec![
                    Op::Compute(100 * (i as u64 + 1)),
                    Op::Barrier,
                    Op::Compute(10),
                ]
            })
            .collect();
        let res = world.run(progs).unwrap();
        // All ranks leave the barrier together; finishes within tree slack.
        let finishes: Vec<u64> = res.ranks.iter().map(|s| s.finish_ns).collect();
        assert!(finishes.iter().all(|&f| f == finishes[0]));
        // The earliest arriver waited the longest.
        assert!(res.ranks[0].barrier_ns > res.ranks[3].barrier_ns);
    }

    #[test]
    fn tags_disambiguate_messages() {
        // Receiver posts tag 1 then tag 2; sender sends tag 2 then tag 1.
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let progs = vec![
            vec![
                Op::Isend {
                    dst: 1,
                    tag: 2,
                    bytes: 10,
                },
                Op::Isend {
                    dst: 1,
                    tag: 1,
                    bytes: 10,
                },
            ],
            vec![
                Op::Irecv { src: 0, tag: 1 },
                Op::Irecv { src: 0, tag: 2 },
                Op::WaitAll,
            ],
        ];
        let res = world.run(progs).unwrap();
        assert_eq!(res.ranks[1].received, 2);
    }

    #[test]
    fn agrees_with_microsim_on_ordering_effects() {
        // Qualitative cross-validation: a late send (compute-first) must
        // produce more wait than sends-first in both engines.
        let mut world = MpiWorld::new(Topology::paper(8), quiet());
        let sends_first: Vec<Vec<Op>> = (0..8u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + 7) % 8,
                        tag: 0,
                    },
                    Op::Isend {
                        dst: (i + 1) % 8,
                        tag: 0,
                        bytes: 20_480,
                    },
                    Op::Compute(1_000_000),
                    Op::WaitAll,
                ]
            })
            .collect();
        let compute_first: Vec<Vec<Op>> = (0..8u32)
            .map(|i| {
                vec![
                    Op::Irecv {
                        src: (i + 7) % 8,
                        tag: 0,
                    },
                    Op::Compute(1_000_000),
                    Op::Isend {
                        dst: (i + 1) % 8,
                        tag: 0,
                        bytes: 20_480,
                    },
                    Op::WaitAll,
                ]
            })
            .collect();
        let sf = world.run(sends_first).unwrap();
        let cf = world.run(compute_first).unwrap();
        let sf_wait: u64 = sf.ranks.iter().map(|s| s.wait_ns).sum();
        let cf_wait: u64 = cf.ranks.iter().map(|s| s.wait_ns).sum();
        assert!(sf_wait < cf_wait);
        assert!(sf.makespan_ns <= cf.makespan_ns);
    }

    #[test]
    fn calendar_engine_matches_heap_reference_on_ring() {
        let mut world = MpiWorld::new(Topology::paper(16), quiet());
        let progs = ring_programs(16, 20_480, 250_000);
        let new = world.run(progs.clone()).unwrap();
        let old = world.run_heap_reference(progs).unwrap();
        assert_eq!(new.makespan_ns, old.makespan_ns);
        assert_eq!(new.ranks, old.ranks);
    }

    #[test]
    fn warm_rerun_is_deterministic() {
        // Pooled scratch must not leak state between runs.
        let mut world = MpiWorld::new(Topology::paper(8), quiet());
        let progs = ring_programs(8, 4096, 50_000);
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        let m1 = world.run_into(&progs, &mut out1).unwrap();
        let m2 = world.run_into(&progs, &mut out2).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(out1, out2);
        // ...including after an erroring run.
        let bad = vec![vec![Op::Irecv { src: 1, tag: 0 }, Op::WaitAll]; 2];
        let mut small = MpiWorld::new(Topology::new(2, 1), quiet());
        let mut o = Vec::new();
        assert!(small.run_into(&bad, &mut o).is_err());
        let good = vec![vec![Op::Compute(10)]; 2];
        assert_eq!(small.run_into(&good, &mut o).unwrap(), 10);
    }

    #[test]
    fn unmatched_sends_cleared_between_runs() {
        // A run leaving unexpected messages parked must not pollute the next.
        let mut world = MpiWorld::new(Topology::new(2, 1), quiet());
        let send_only = vec![
            vec![Op::Isend {
                dst: 1,
                tag: 9,
                bytes: 10,
            }],
            vec![Op::Compute(1)],
        ];
        world.run(send_only).unwrap();
        // Next run posts a receive for that (src, tag); it must NOT match a
        // stale message from the previous run.
        let recv_late = vec![
            vec![Op::Compute(1)],
            vec![Op::Irecv { src: 0, tag: 9 }, Op::WaitAll],
        ];
        match world.run(recv_late) {
            Err(MpiError::Deadlock { stuck_ranks }) => assert_eq!(stuck_ranks, vec![1]),
            other => panic!("stale mailbox leaked into new run: {other:?}"),
        }
    }
}
