//! Collective (synchronization) cost model.
//!
//! Synchronization operations "inherently expose performance variability by
//! forcing all ranks to wait until the last rank reaches the synchronization
//! point" (§II-B). We model barriers/blocking-allreduce with a binomial
//! tree: once every rank has arrived, completion takes `⌈log₂ r⌉` fabric
//! hops. Each rank's *wait* is the idle gap between its own arrival and the
//! moment the last rank arrives — the tree hops after that point are work
//! every rank participates in, not waiting, so the last arriver waits ~0.
//! This is the mechanism that converts per-rank compute imbalance into the
//! 35–50%-of-runtime synchronization phase of Fig. 6a; mis-attributing the
//! tree term as wait would over-count sync by `r × depth × hop_ns` per
//! collective and skew every policy comparison built on it.

/// Result of a collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveResult {
    /// Virtual time when the collective completes (same for all ranks).
    pub completion_ns: u64,
    /// Per-rank wait time: completion − own arrival − own tree work, i.e.
    /// `max(arrival) − own arrival`. Zero for the last arriver.
    pub wait_ns: Vec<u64>,
}

impl CollectiveResult {
    /// Total wait summed over ranks.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.iter().sum()
    }

    /// Maximum single-rank wait (the earliest arriver's penalty).
    pub fn max_wait_ns(&self) -> u64 {
        self.wait_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Tree depth for `num_ranks` participants.
#[inline]
pub fn tree_depth(num_ranks: usize) -> u32 {
    if num_ranks <= 1 {
        0
    } else {
        usize::BITS - (num_ranks - 1).leading_zeros()
    }
}

/// Execute a barrier given each rank's arrival time at the sync point.
///
/// `hop_ns` is the per-tree-level message cost (fabric latency for small
/// control messages).
pub fn barrier(arrivals_ns: &[u64], hop_ns: u64) -> CollectiveResult {
    let mut wait = Vec::new();
    let completion = barrier_into(arrivals_ns, hop_ns, &mut wait);
    CollectiveResult {
        completion_ns: completion,
        wait_ns: wait,
    }
}

/// Allocation-free barrier: writes per-rank waits into `wait_out` (cleared
/// first, capacity reused) and returns the completion time. The per-step
/// collective of [`crate::macrosim`] calls this with a pooled buffer.
///
/// An empty participant set (a fault response pruned every rank) is a no-op:
/// completion 0, no waits. A single rank has tree depth 0 and waits 0.
/// Arithmetic saturates so degenerate `hop_ns` values (e.g. a payload cost
/// computed from near-zero bandwidth) cannot overflow in debug builds.
pub fn barrier_into(arrivals_ns: &[u64], hop_ns: u64, wait_out: &mut Vec<u64>) -> u64 {
    wait_out.clear();
    let r = arrivals_ns.len();
    if r == 0 {
        return 0;
    }
    let last = arrivals_ns.iter().copied().max().unwrap();
    let depth = tree_depth(r) as u64;
    let completion = last.saturating_add(depth.saturating_mul(hop_ns));
    // Wait is idle time before the straggler arrives; the `depth * hop_ns`
    // tree term after it is active participation, charged to no one's wait.
    wait_out.extend(arrivals_ns.iter().map(|&a| last - a));
    completion
}

/// Serialization time of a reduction payload, saturating on degenerate
/// bandwidth: a non-finite or non-positive `bytes_per_ns` (reachable when a
/// fail-slow NIC multiplier collapses to 0) means the payload never finishes,
/// so the cost pins at `u64::MAX` instead of overflowing through an
/// `f64 → u64` cast.
#[inline]
fn payload_ns(payload_bytes: u64, bytes_per_ns: f64) -> u64 {
    if !bytes_per_ns.is_finite() || bytes_per_ns <= 0.0 {
        return u64::MAX;
    }
    let ns = payload_bytes as f64 / bytes_per_ns;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Execute a blocking allreduce: a barrier plus a reduction payload moved at
/// every level (small vectors in AMR codes — timestep control values).
pub fn allreduce(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
) -> CollectiveResult {
    barrier(
        arrivals_ns,
        hop_ns.saturating_add(payload_ns(payload_bytes, bytes_per_ns)),
    )
}

/// Allocation-free counterpart of [`allreduce`]; see [`barrier_into`].
pub fn allreduce_into(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
    wait_out: &mut Vec<u64>,
) -> u64 {
    barrier_into(
        arrivals_ns,
        hop_ns.saturating_add(payload_ns(payload_bytes, bytes_per_ns)),
        wait_out,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_log2_ceiling() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(512), 9);
        assert_eq!(tree_depth(4096), 12);
        assert_eq!(tree_depth(4097), 13);
    }

    #[test]
    fn straggler_sets_completion() {
        let r = barrier(&[10, 20, 1000, 30], 5);
        assert_eq!(r.completion_ns, 1000 + 2 * 5);
        // The straggler's tree hops are work, not wait: it waits zero.
        assert_eq!(r.wait_ns[2], 0);
        // Early arrivers wait until the straggler shows up.
        assert_eq!(r.wait_ns[0], 990);
        assert_eq!(r.max_wait_ns(), 990);
    }

    #[test]
    fn last_arriver_waits_zero() {
        // The headline invariant: whoever arrives last never waits, no
        // matter the tree depth or hop cost.
        for arrivals in [
            vec![10u64, 20, 1000, 30],
            vec![7; 9],
            vec![0, u64::MAX / 2],
            (0..100).collect::<Vec<u64>>(),
        ] {
            let res = barrier(&arrivals, 12_345);
            let last = *arrivals.iter().max().unwrap();
            let argmax = arrivals.iter().position(|&a| a == last).unwrap();
            assert_eq!(res.wait_ns[argmax], 0);
            assert_eq!(
                res.total_wait_ns(),
                arrivals.iter().map(|&a| last - a).sum::<u64>()
            );
        }
    }

    #[test]
    fn uniform_arrivals_mean_zero_wait() {
        // Simultaneous arrivals: everyone does tree work, nobody waits.
        let r = barrier(&[100; 64], 5);
        let depth = tree_depth(64) as u64;
        assert_eq!(r.completion_ns, 100 + depth * 5);
        assert!(r.wait_ns.iter().all(|&w| w == 0));
    }

    #[test]
    fn empty_arrivals_complete_at_zero() {
        let mut wait = vec![7u64; 3];
        let c = barrier_into(&[], 5, &mut wait);
        assert_eq!(c, 0);
        assert!(wait.is_empty());
        let r = barrier(&[], 5);
        assert_eq!(r.completion_ns, 0);
        assert!(r.wait_ns.is_empty());
        assert_eq!(r.total_wait_ns(), 0);
        assert_eq!(r.max_wait_ns(), 0);
    }

    #[test]
    fn single_rank_has_no_tree_and_no_wait() {
        let r = barrier(&[42], 5_000);
        assert_eq!(r.completion_ns, 42); // depth 0: no hops
        assert_eq!(r.wait_ns, vec![0]);
    }

    #[test]
    fn wait_grows_with_scale_for_same_imbalance() {
        // Same arrival spread, more ranks -> deeper tree, and with random
        // stragglers the expected max grows; here just check tree term.
        let small = barrier(&[0, 100], 10);
        let large = barrier(
            &vec![0; 1023].into_iter().chain([100]).collect::<Vec<_>>(),
            10,
        );
        assert!(large.completion_ns > small.completion_ns);
    }

    #[test]
    fn allreduce_adds_payload_cost() {
        let b = barrier(&[0, 0], 10);
        let a = allreduce(&[0, 0], 10, 1000, 1.0);
        assert!(a.completion_ns > b.completion_ns);
    }

    #[test]
    fn degenerate_bandwidth_saturates_instead_of_overflowing() {
        // bytes_per_ns == 0 previously cast `inf` to u64::MAX and then
        // overflowed in `last + depth * hop`. Now the whole chain saturates.
        let mut wait = Vec::new();
        for bw in [0.0, -1.0, f64::NAN, f64::INFINITY * 0.0] {
            let c = allreduce_into(&[10, 20], 5, 64, bw, &mut wait);
            assert_eq!(c, u64::MAX);
            assert_eq!(wait, vec![10, 0]);
        }
        // Tiny-but-positive bandwidth also saturates rather than wrapping.
        let c = allreduce_into(&[10, 20], 5, u64::MAX, 1e-300, &mut wait);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn total_wait_sums() {
        let r = barrier(&[0, 50], 0);
        assert_eq!(r.total_wait_ns(), 50);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let arrivals = [10u64, 20, 1000, 30];
        let mut wait = vec![99; 1]; // stale content must be cleared
        let c = barrier_into(&arrivals, 5, &mut wait);
        let reference = barrier(&arrivals, 5);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
        let c = allreduce_into(&arrivals, 5, 64, 2.0, &mut wait);
        let reference = allreduce(&arrivals, 5, 64, 2.0);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
    }
}
