//! Collective (synchronization) cost model.
//!
//! Synchronization operations "inherently expose performance variability by
//! forcing all ranks to wait until the last rank reaches the synchronization
//! point" (§II-B). We model barriers/blocking-allreduce with a binomial
//! tree: once every rank has arrived, completion takes `⌈log₂ r⌉` fabric
//! hops; each rank's *wait* is the gap between its own arrival and the
//! collective's completion. This is the mechanism that converts per-rank
//! compute imbalance into the 35–50%-of-runtime synchronization phase of
//! Fig. 6a.

/// Result of a collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveResult {
    /// Virtual time when the collective completes (same for all ranks).
    pub completion_ns: u64,
    /// Per-rank wait time: completion − own arrival − own tree work.
    pub wait_ns: Vec<u64>,
}

impl CollectiveResult {
    /// Total wait summed over ranks.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.iter().sum()
    }

    /// Maximum single-rank wait (the earliest arriver's penalty).
    pub fn max_wait_ns(&self) -> u64 {
        self.wait_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Tree depth for `num_ranks` participants.
#[inline]
pub fn tree_depth(num_ranks: usize) -> u32 {
    if num_ranks <= 1 {
        0
    } else {
        usize::BITS - (num_ranks - 1).leading_zeros()
    }
}

/// Execute a barrier given each rank's arrival time at the sync point.
///
/// `hop_ns` is the per-tree-level message cost (fabric latency for small
/// control messages).
pub fn barrier(arrivals_ns: &[u64], hop_ns: u64) -> CollectiveResult {
    let mut wait = Vec::new();
    let completion = barrier_into(arrivals_ns, hop_ns, &mut wait);
    CollectiveResult {
        completion_ns: completion,
        wait_ns: wait,
    }
}

/// Allocation-free barrier: writes per-rank waits into `wait_out` (cleared
/// first, capacity reused) and returns the completion time. The per-step
/// collective of [`crate::macrosim`] calls this with a pooled buffer.
pub fn barrier_into(arrivals_ns: &[u64], hop_ns: u64, wait_out: &mut Vec<u64>) -> u64 {
    let r = arrivals_ns.len();
    assert!(r > 0);
    let last = arrivals_ns.iter().copied().max().unwrap();
    let depth = tree_depth(r) as u64;
    let completion = last + depth * hop_ns;
    wait_out.clear();
    wait_out.extend(arrivals_ns.iter().map(|&a| completion - a.min(completion)));
    completion
}

/// Execute a blocking allreduce: a barrier plus a reduction payload moved at
/// every level (small vectors in AMR codes — timestep control values).
pub fn allreduce(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
) -> CollectiveResult {
    let payload_ns = (payload_bytes as f64 / bytes_per_ns) as u64;
    barrier(arrivals_ns, hop_ns + payload_ns)
}

/// Allocation-free counterpart of [`allreduce`]; see [`barrier_into`].
pub fn allreduce_into(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
    wait_out: &mut Vec<u64>,
) -> u64 {
    let payload_ns = (payload_bytes as f64 / bytes_per_ns) as u64;
    barrier_into(arrivals_ns, hop_ns + payload_ns, wait_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_log2_ceiling() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(512), 9);
        assert_eq!(tree_depth(4096), 12);
        assert_eq!(tree_depth(4097), 13);
    }

    #[test]
    fn straggler_sets_completion() {
        let r = barrier(&[10, 20, 1000, 30], 5);
        assert_eq!(r.completion_ns, 1000 + 2 * 5);
        // The straggler waits only for the tree; early arrivers wait longest.
        assert_eq!(r.wait_ns[2], 10);
        assert_eq!(r.wait_ns[0], 1000);
        assert_eq!(r.max_wait_ns(), 1000);
    }

    #[test]
    fn uniform_arrivals_mean_minimal_wait() {
        let r = barrier(&[100; 64], 5);
        let depth = tree_depth(64) as u64;
        assert!(r.wait_ns.iter().all(|&w| w == depth * 5));
    }

    #[test]
    fn wait_grows_with_scale_for_same_imbalance() {
        // Same arrival spread, more ranks -> deeper tree, and with random
        // stragglers the expected max grows; here just check tree term.
        let small = barrier(&[0, 100], 10);
        let large = barrier(
            &vec![0; 1023].into_iter().chain([100]).collect::<Vec<_>>(),
            10,
        );
        assert!(large.completion_ns > small.completion_ns);
    }

    #[test]
    fn allreduce_adds_payload_cost() {
        let b = barrier(&[0, 0], 10);
        let a = allreduce(&[0, 0], 10, 1000, 1.0);
        assert!(a.completion_ns > b.completion_ns);
    }

    #[test]
    fn total_wait_sums() {
        let r = barrier(&[0, 50], 0);
        assert_eq!(r.total_wait_ns(), 50);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let arrivals = [10u64, 20, 1000, 30];
        let mut wait = vec![99; 1]; // stale content must be cleared
        let c = barrier_into(&arrivals, 5, &mut wait);
        let reference = barrier(&arrivals, 5);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
        let c = allreduce_into(&arrivals, 5, 64, 2.0, &mut wait);
        let reference = allreduce(&arrivals, 5, 64, 2.0);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
    }
}
