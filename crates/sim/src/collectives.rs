//! Collective (synchronization) cost model.
//!
//! Synchronization operations "inherently expose performance variability by
//! forcing all ranks to wait until the last rank reaches the synchronization
//! point" (§II-B). We model barriers/blocking-allreduce with a binomial
//! tree: once every rank has arrived, completion takes `⌈log₂ r⌉` fabric
//! hops. Each rank's *wait* is the idle gap between its own arrival and the
//! moment the last rank arrives — the tree hops after that point are work
//! every rank participates in, not waiting, so the last arriver waits ~0.
//! This is the mechanism that converts per-rank compute imbalance into the
//! 35–50%-of-runtime synchronization phase of Fig. 6a; mis-attributing the
//! tree term as wait would over-count sync by `r × depth × hop_ns` per
//! collective and skew every policy comparison built on it.
//!
//! Three allreduce algorithms share that straggler-only wait model and
//! differ only in the post-arrival term ([`CollectiveAlgo`]): the binomial
//! tree (latency-light, moves the full payload at every level), and the
//! bandwidth-optimal recursive-doubling and ring variants (Thakur/Gropp
//! costs: `2·(r−1)/r` of the payload total, more hops). Which one wins
//! depends on payload size, scale, and hop latency — the diversity the
//! adaptive control plane selects over.

use serde::{Deserialize, Serialize};

/// Allreduce algorithm: how ranks combine and redistribute the reduction
/// payload once everyone has arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveAlgo {
    /// Reduce-and-broadcast over a binomial tree: `⌈log₂ r⌉` levels, each
    /// moving the full payload. Latency-optimal for small vectors — the
    /// production default for timestep control.
    BinomialTree,
    /// Recursive halving/doubling (reduce-scatter + allgather): `2·⌈log₂ r⌉`
    /// hops but only `2·(r−1)/r` of the payload crosses any rank's link.
    RecursiveDoubling,
    /// Ring allreduce: `2·(r−1)` hops with the same bandwidth-optimal
    /// payload volume — hop-latency-heavy at scale, best for huge payloads.
    Ring,
}

impl CollectiveAlgo {
    /// Every algorithm, for sweeps and the adaptive argmin.
    pub const ALL: [CollectiveAlgo; 3] = [
        CollectiveAlgo::BinomialTree,
        CollectiveAlgo::RecursiveDoubling,
        CollectiveAlgo::Ring,
    ];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgo::BinomialTree => "binomial_tree",
            CollectiveAlgo::RecursiveDoubling => "recursive_doubling",
            CollectiveAlgo::Ring => "ring",
        }
    }

    /// The post-arrival cost: virtual time from the last rank's arrival to
    /// completion. All arithmetic saturates (degenerate bandwidth pins the
    /// payload term at `u64::MAX`, see [`payload_ns`]). For
    /// [`CollectiveAlgo::BinomialTree`] this is exactly the pre-existing
    /// `depth × (hop + payload)` term, keeping every committed baseline
    /// bit-identical.
    pub fn post_arrival_ns(
        self,
        num_ranks: usize,
        hop_ns: u64,
        payload_bytes: u64,
        bytes_per_ns: f64,
    ) -> u64 {
        if num_ranks <= 1 {
            return 0;
        }
        let depth = tree_depth(num_ranks) as u64;
        let r = num_ranks as u64;
        // Bandwidth-optimal volume per rank: 2·bytes·(r−1)/r.
        let opt_bytes = (2u128 * payload_bytes as u128 * (r as u128 - 1) / r as u128)
            .min(u64::MAX as u128) as u64;
        match self {
            CollectiveAlgo::BinomialTree => {
                depth.saturating_mul(hop_ns.saturating_add(payload_ns(payload_bytes, bytes_per_ns)))
            }
            CollectiveAlgo::RecursiveDoubling => {
                // Non-power-of-two participant counts pay the standard
                // preparation exchange (fold the excess ranks into the
                // nearest power of two and unfold after): two extra hops and
                // one extra full-payload move — the opening ring allreduce
                // exploits at scale.
                let prep = if num_ranks.is_power_of_two() {
                    0
                } else {
                    hop_ns
                        .saturating_mul(2)
                        .saturating_add(payload_ns(payload_bytes, bytes_per_ns))
                };
                depth
                    .saturating_mul(2)
                    .saturating_mul(hop_ns)
                    .saturating_add(payload_ns(opt_bytes, bytes_per_ns))
                    .saturating_add(prep)
            }
            CollectiveAlgo::Ring => (r - 1)
                .saturating_mul(2)
                .saturating_mul(hop_ns)
                .saturating_add(payload_ns(opt_bytes, bytes_per_ns)),
        }
    }
}

/// Cheapest algorithm for the given shape: argmin of the post-arrival term,
/// ties broken in [`CollectiveAlgo::ALL`] order (the binomial production
/// default wins exact ties). Deterministic — a pure function of its inputs —
/// so the adaptive selector stays bitwise thread-invariant.
pub fn cheapest_algo(
    num_ranks: usize,
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
) -> CollectiveAlgo {
    let mut best = CollectiveAlgo::BinomialTree;
    let mut best_ns = u64::MAX;
    for algo in CollectiveAlgo::ALL {
        let ns = algo.post_arrival_ns(num_ranks, hop_ns, payload_bytes, bytes_per_ns);
        if ns < best_ns {
            best = algo;
            best_ns = ns;
        }
    }
    best
}

/// How the per-step collective is chosen ([`crate::macrosim::SimConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveSelect {
    /// A fixed algorithm. `Fixed(BinomialTree)` (the default) is the
    /// pre-existing behavior, bit for bit.
    Fixed(CollectiveAlgo),
    /// Re-pick each step from live telemetry: stay on the binomial default
    /// until the sync-fraction gauge shows real pressure, then switch to the
    /// cheapest post-arrival term for the current shape (see
    /// `MacroSim::run`).
    Adaptive,
}

impl Default for CollectiveSelect {
    fn default() -> CollectiveSelect {
        CollectiveSelect::Fixed(CollectiveAlgo::BinomialTree)
    }
}

/// Result of a collective operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveResult {
    /// Virtual time when the collective completes (same for all ranks).
    pub completion_ns: u64,
    /// Per-rank wait time: completion − own arrival − own tree work, i.e.
    /// `max(arrival) − own arrival`. Zero for the last arriver.
    pub wait_ns: Vec<u64>,
}

impl CollectiveResult {
    /// Total wait summed over ranks.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.iter().sum()
    }

    /// Maximum single-rank wait (the earliest arriver's penalty).
    pub fn max_wait_ns(&self) -> u64 {
        self.wait_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Tree depth for `num_ranks` participants.
#[inline]
pub fn tree_depth(num_ranks: usize) -> u32 {
    if num_ranks <= 1 {
        0
    } else {
        usize::BITS - (num_ranks - 1).leading_zeros()
    }
}

/// Execute a barrier given each rank's arrival time at the sync point.
///
/// `hop_ns` is the per-tree-level message cost (fabric latency for small
/// control messages).
pub fn barrier(arrivals_ns: &[u64], hop_ns: u64) -> CollectiveResult {
    let mut wait = Vec::new();
    let completion = barrier_into(arrivals_ns, hop_ns, &mut wait);
    CollectiveResult {
        completion_ns: completion,
        wait_ns: wait,
    }
}

/// Allocation-free barrier: writes per-rank waits into `wait_out` (cleared
/// first, capacity reused) and returns the completion time. The per-step
/// collective of [`crate::macrosim`] calls this with a pooled buffer.
///
/// An empty participant set (a fault response pruned every rank) is a no-op:
/// completion 0, no waits. A single rank has tree depth 0 and waits 0.
/// Arithmetic saturates so degenerate `hop_ns` values (e.g. a payload cost
/// computed from near-zero bandwidth) cannot overflow in debug builds.
pub fn barrier_into(arrivals_ns: &[u64], hop_ns: u64, wait_out: &mut Vec<u64>) -> u64 {
    // A barrier is an allreduce with an empty payload (payload term 0).
    allreduce_with_into(
        CollectiveAlgo::BinomialTree,
        arrivals_ns,
        hop_ns,
        0,
        1.0,
        wait_out,
    )
}

/// The single completion core every collective shares: per-rank wait is the
/// idle gap before the straggler arrives (`max(arrival) − own arrival`; the
/// post-arrival term is active participation, charged to no one's wait), and
/// completion is the straggler's arrival plus the algorithm's post term.
fn finish_into(arrivals_ns: &[u64], post_ns: u64, wait_out: &mut Vec<u64>) -> u64 {
    wait_out.clear();
    if arrivals_ns.is_empty() {
        return 0;
    }
    let last = arrivals_ns.iter().copied().max().unwrap();
    wait_out.extend(arrivals_ns.iter().map(|&a| last - a));
    last.saturating_add(post_ns)
}

/// Serialization time of a reduction payload, saturating on degenerate
/// bandwidth: a non-finite or non-positive `bytes_per_ns` (reachable when a
/// fail-slow NIC multiplier collapses to 0) means the payload never finishes,
/// so the cost pins at `u64::MAX` instead of overflowing through an
/// `f64 → u64` cast.
#[inline]
fn payload_ns(payload_bytes: u64, bytes_per_ns: f64) -> u64 {
    if !bytes_per_ns.is_finite() || bytes_per_ns <= 0.0 {
        return u64::MAX;
    }
    let ns = payload_bytes as f64 / bytes_per_ns;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Execute a blocking allreduce: a barrier plus a reduction payload moved at
/// every level (small vectors in AMR codes — timestep control values).
///
/// Thin shim over [`allreduce_into`] — the wait-accounting and `payload_ns`
/// saturation fixes live on the `_into` path only, and a regression test
/// pins the equality.
pub fn allreduce(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
) -> CollectiveResult {
    let mut wait = Vec::new();
    let completion = allreduce_into(arrivals_ns, hop_ns, payload_bytes, bytes_per_ns, &mut wait);
    CollectiveResult {
        completion_ns: completion,
        wait_ns: wait,
    }
}

/// Allocation-free counterpart of [`allreduce`]; see [`barrier_into`].
pub fn allreduce_into(
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
    wait_out: &mut Vec<u64>,
) -> u64 {
    allreduce_with_into(
        CollectiveAlgo::BinomialTree,
        arrivals_ns,
        hop_ns,
        payload_bytes,
        bytes_per_ns,
        wait_out,
    )
}

/// Algorithm-selectable allreduce (see [`CollectiveAlgo`]); all variants use
/// the same straggler-only wait model and differ only in the post-arrival
/// term.
pub fn allreduce_with(
    algo: CollectiveAlgo,
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
) -> CollectiveResult {
    let mut wait = Vec::new();
    let completion = allreduce_with_into(
        algo,
        arrivals_ns,
        hop_ns,
        payload_bytes,
        bytes_per_ns,
        &mut wait,
    );
    CollectiveResult {
        completion_ns: completion,
        wait_ns: wait,
    }
}

/// Allocation-free counterpart of [`allreduce_with`]; see [`barrier_into`].
pub fn allreduce_with_into(
    algo: CollectiveAlgo,
    arrivals_ns: &[u64],
    hop_ns: u64,
    payload_bytes: u64,
    bytes_per_ns: f64,
    wait_out: &mut Vec<u64>,
) -> u64 {
    let post = algo.post_arrival_ns(arrivals_ns.len(), hop_ns, payload_bytes, bytes_per_ns);
    finish_into(arrivals_ns, post, wait_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_log2_ceiling() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(512), 9);
        assert_eq!(tree_depth(4096), 12);
        assert_eq!(tree_depth(4097), 13);
    }

    #[test]
    fn straggler_sets_completion() {
        let r = barrier(&[10, 20, 1000, 30], 5);
        assert_eq!(r.completion_ns, 1000 + 2 * 5);
        // The straggler's tree hops are work, not wait: it waits zero.
        assert_eq!(r.wait_ns[2], 0);
        // Early arrivers wait until the straggler shows up.
        assert_eq!(r.wait_ns[0], 990);
        assert_eq!(r.max_wait_ns(), 990);
    }

    #[test]
    fn last_arriver_waits_zero() {
        // The headline invariant: whoever arrives last never waits, no
        // matter the tree depth or hop cost.
        for arrivals in [
            vec![10u64, 20, 1000, 30],
            vec![7; 9],
            vec![0, u64::MAX / 2],
            (0..100).collect::<Vec<u64>>(),
        ] {
            let res = barrier(&arrivals, 12_345);
            let last = *arrivals.iter().max().unwrap();
            let argmax = arrivals.iter().position(|&a| a == last).unwrap();
            assert_eq!(res.wait_ns[argmax], 0);
            assert_eq!(
                res.total_wait_ns(),
                arrivals.iter().map(|&a| last - a).sum::<u64>()
            );
        }
    }

    #[test]
    fn uniform_arrivals_mean_zero_wait() {
        // Simultaneous arrivals: everyone does tree work, nobody waits.
        let r = barrier(&[100; 64], 5);
        let depth = tree_depth(64) as u64;
        assert_eq!(r.completion_ns, 100 + depth * 5);
        assert!(r.wait_ns.iter().all(|&w| w == 0));
    }

    #[test]
    fn empty_arrivals_complete_at_zero() {
        let mut wait = vec![7u64; 3];
        let c = barrier_into(&[], 5, &mut wait);
        assert_eq!(c, 0);
        assert!(wait.is_empty());
        let r = barrier(&[], 5);
        assert_eq!(r.completion_ns, 0);
        assert!(r.wait_ns.is_empty());
        assert_eq!(r.total_wait_ns(), 0);
        assert_eq!(r.max_wait_ns(), 0);
    }

    #[test]
    fn single_rank_has_no_tree_and_no_wait() {
        let r = barrier(&[42], 5_000);
        assert_eq!(r.completion_ns, 42); // depth 0: no hops
        assert_eq!(r.wait_ns, vec![0]);
    }

    #[test]
    fn wait_grows_with_scale_for_same_imbalance() {
        // Same arrival spread, more ranks -> deeper tree, and with random
        // stragglers the expected max grows; here just check tree term.
        let small = barrier(&[0, 100], 10);
        let large = barrier(
            &vec![0; 1023].into_iter().chain([100]).collect::<Vec<_>>(),
            10,
        );
        assert!(large.completion_ns > small.completion_ns);
    }

    #[test]
    fn allreduce_adds_payload_cost() {
        let b = barrier(&[0, 0], 10);
        let a = allreduce(&[0, 0], 10, 1000, 1.0);
        assert!(a.completion_ns > b.completion_ns);
    }

    #[test]
    fn degenerate_bandwidth_saturates_instead_of_overflowing() {
        // bytes_per_ns == 0 previously cast `inf` to u64::MAX and then
        // overflowed in `last + depth * hop`. Now the whole chain saturates.
        let mut wait = Vec::new();
        for bw in [0.0, -1.0, f64::NAN, f64::INFINITY * 0.0] {
            let c = allreduce_into(&[10, 20], 5, 64, bw, &mut wait);
            assert_eq!(c, u64::MAX);
            assert_eq!(wait, vec![10, 0]);
        }
        // Tiny-but-positive bandwidth also saturates rather than wrapping.
        let c = allreduce_into(&[10, 20], 5, u64::MAX, 1e-300, &mut wait);
        assert_eq!(c, u64::MAX);
    }

    #[test]
    fn total_wait_sums() {
        let r = barrier(&[0, 50], 0);
        assert_eq!(r.total_wait_ns(), 50);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let arrivals = [10u64, 20, 1000, 30];
        let mut wait = vec![99; 1]; // stale content must be cleared
        let c = barrier_into(&arrivals, 5, &mut wait);
        let reference = barrier(&arrivals, 5);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
        let c = allreduce_into(&arrivals, 5, 64, 2.0, &mut wait);
        let reference = allreduce(&arrivals, 5, 64, 2.0);
        assert_eq!(c, reference.completion_ns);
        assert_eq!(wait, reference.wait_ns);
        for algo in CollectiveAlgo::ALL {
            let c = allreduce_with_into(algo, &arrivals, 5, 64, 2.0, &mut wait);
            let reference = allreduce_with(algo, &arrivals, 5, 64, 2.0);
            assert_eq!(c, reference.completion_ns);
            assert_eq!(wait, reference.wait_ns);
        }
    }

    /// The legacy wrappers are shims over the `_into` path: identical on the
    /// saturation edge cases that used to live only on the `_into` side.
    #[test]
    fn legacy_wrappers_share_the_saturating_path() {
        let arrivals = [10u64, 20];
        for bw in [0.0, -1.0, f64::NAN, 1e-300] {
            let r = allreduce(&arrivals, 5, u64::MAX, bw);
            assert_eq!(r.completion_ns, u64::MAX);
            assert_eq!(r.wait_ns, vec![10, 0]);
        }
        // Degenerate hop on the barrier wrapper saturates too.
        let r = barrier(&[u64::MAX, 1], u64::MAX);
        assert_eq!(r.completion_ns, u64::MAX);
    }

    /// `Fixed(BinomialTree)` — the default — reproduces the legacy formula
    /// bit for bit; every committed baseline rests on this.
    #[test]
    fn binomial_variant_is_the_legacy_allreduce() {
        let cases: [(&[u64], u64, u64, f64); 3] = [
            (&[10, 20, 1000, 30], 2_500, 64, 5.0),
            (&[7; 9], 400, 1 << 20, 10.0),
            (&[0, u64::MAX / 2], 12_345, 0, 1.0),
        ];
        let mut wait_a = Vec::new();
        let mut wait_b = Vec::new();
        for (arrivals, hop, bytes, bw) in cases {
            let a = allreduce_into(arrivals, hop, bytes, bw, &mut wait_a);
            let b = allreduce_with_into(
                CollectiveAlgo::BinomialTree,
                arrivals,
                hop,
                bytes,
                bw,
                &mut wait_b,
            );
            assert_eq!(a, b);
            assert_eq!(wait_a, wait_b);
        }
        assert_eq!(
            CollectiveSelect::default(),
            CollectiveSelect::Fixed(CollectiveAlgo::BinomialTree)
        );
    }

    /// All algorithms share the straggler-only wait model: identical waits,
    /// only the post-arrival completion term differs.
    #[test]
    fn algorithms_share_straggler_waits() {
        let arrivals = [10u64, 20, 1000, 30];
        let reference = allreduce(&arrivals, 5, 1 << 20, 5.0);
        for algo in CollectiveAlgo::ALL {
            let r = allreduce_with(algo, &arrivals, 5, 1 << 20, 5.0);
            assert_eq!(
                r.wait_ns,
                reference.wait_ns,
                "{} waits diverge",
                algo.name()
            );
            assert!(r.completion_ns >= 1000);
        }
    }

    #[test]
    fn bandwidth_optimal_variants_win_big_payloads() {
        // 64 ranks (power of two), 8 MiB payload: recursive doubling moves
        // 2·(r−1)/r of the vector once instead of log r full copies.
        let (r, hop, bw) = (64usize, 2_500u64, 5.0);
        let big = 8u64 << 20;
        let bino = CollectiveAlgo::BinomialTree.post_arrival_ns(r, hop, big, bw);
        let rd = CollectiveAlgo::RecursiveDoubling.post_arrival_ns(r, hop, big, bw);
        assert!(rd < bino, "recursive doubling {rd} !< binomial {bino}");
        // Tiny control payloads: the latency-light tree stays cheapest.
        assert_eq!(cheapest_algo(r, hop, 64, bw), CollectiveAlgo::BinomialTree);
        assert_eq!(
            cheapest_algo(r, hop, big, bw),
            CollectiveAlgo::RecursiveDoubling
        );
    }

    #[test]
    fn ring_wins_non_power_of_two_with_huge_payload() {
        // 6 ranks: recursive doubling pays the fold/unfold preparation; the
        // ring's 2·(r−1) hops stay cheap at this scale.
        let (r, hop, bw) = (6usize, 2_500u64, 5.0);
        let big = 1u64 << 20;
        assert_eq!(cheapest_algo(r, hop, big, bw), CollectiveAlgo::Ring);
        // Power-of-two at the same scale: no prep penalty, doubling wins.
        assert_eq!(
            cheapest_algo(8, hop, big, bw),
            CollectiveAlgo::RecursiveDoubling
        );
    }

    #[test]
    fn cheapest_algo_is_argmin_and_tie_breaks_to_binomial() {
        for (r, hop, bytes, bw) in [
            (2usize, 1u64, 0u64, 1.0f64),
            (64, 2_500, 64, 5.0),
            (100, 2_500, 1 << 22, 5.0),
            (4096, 400, 1 << 16, 10.0),
        ] {
            let best = cheapest_algo(r, hop, bytes, bw);
            let best_ns = best.post_arrival_ns(r, hop, bytes, bw);
            for algo in CollectiveAlgo::ALL {
                assert!(best_ns <= algo.post_arrival_ns(r, hop, bytes, bw));
            }
        }
        // Single rank: every algorithm is free; the tie goes to the default.
        assert_eq!(cheapest_algo(1, 9, 9, 1.0), CollectiveAlgo::BinomialTree);
    }

    #[test]
    fn post_arrival_saturates_for_all_algorithms() {
        for algo in CollectiveAlgo::ALL {
            assert_eq!(algo.post_arrival_ns(3, u64::MAX, u64::MAX, 0.0), u64::MAX);
            assert_eq!(algo.post_arrival_ns(1, u64::MAX, u64::MAX, 0.0), 0);
        }
    }
}
