//! Step-level simulation of a full AMR run.
//!
//! Message-level simulation of 30k–53k timesteps at 4096 ranks is neither
//! feasible nor necessary: the Fig. 6 findings are about per-step phase
//! times and their propagation through synchronization. `MacroSim` computes,
//! per timestep:
//!
//! 1. **Compute** — per-rank sums of per-block costs from the workload,
//!    scaled by node fault multipliers and OS jitter ([`crate::faults`]);
//! 2. **Boundary exchange** — per-rank dispatch + receive-service times from
//!    the placement-classified message aggregates (intra-rank relations are
//!    memcpys), plus the two-rank-critical-path wait: a rank blocks until its
//!    slowest sending neighbor has dispatched (§IV-D);
//! 3. **Synchronization** — a binomial-tree barrier over per-rank finish
//!    times ([`crate::collectives`]): stragglers charge everyone;
//! 4. **Redistribution** — when the trigger fires, the placement policy runs
//!    through a reused [`amr_core::engine::PlacementEngine`] (wall-clock
//!    measured against the paper's 50 ms budget, allocation-free in steady
//!    state) and the engine's migration accounting is charged at fabric
//!    bandwidth.
//!
//! Per-block compute telemetry feeds an EWMA cost model
//! ([`amr_core::cost::TelemetryCostModel`]) which in turn feeds the policy —
//! the full telemetry-driven placement loop of the paper.

use crate::collectives::{self, CollectiveAlgo, CollectiveSelect};
use crate::exec::{PooledCommunicator, SimCommunicator};
use crate::faults::{FaultResponse, FaultTimeline};
use crate::health::blacklist_and_rehost;
use crate::network::NetworkConfig;
use crate::par;
use crate::report::{MessageTotals, PhaseBreakdown};
use crate::topology::{NodeMap, Topology};
use amr_core::cost::{CostModel, CostOrigin, TelemetryCostModel};
use amr_core::engine::PlacementEngine;
use amr_core::policies::PlacementPolicy;
use amr_core::trigger::{RebalanceTrigger, TriggerContext};
use amr_core::Placement;
use amr_mesh::{AmrMesh, BlockId, Neighbor, NeighborGraph, PatchScratch, ShardedMesh};
use amr_telemetry::anomaly::{OnlineDetectorConfig, OnlineThrottleDetector};
use amr_telemetry::trace::{
    Counter as TraceCounter, Gauge as TraceGauge, MetricsRegistry, TraceHandle, TracePhase,
};
use amr_telemetry::{Collector, EventTable, Phase};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Bytes per ghost-block metadata record in the inter-shard halo exchange:
/// SFC key (8) + level/owner (8) + cost estimate (8) + bounds tag (8).
const GHOST_META_BYTES: f64 = 32.0;

/// Measured sync share above which [`CollectiveSelect::Adaptive`] abandons
/// the binomial-tree default and re-selects the cheapest algorithm for the
/// current scale and payload. Below it, synchronization isn't the problem
/// and switching would only churn the collective schedule.
const ADAPTIVE_SYNC_THRESHOLD: f64 = 0.15;

/// What a workload reports after advancing one step.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStep {
    /// Did the mesh refine/coarsen (requiring redistribution)?
    pub mesh_changed: bool,
    /// When the mesh changed: for each *new* block, where its cost history
    /// comes from.
    pub origins: Option<Vec<CostOrigin>>,
}

/// A simulation workload: evolving mesh + per-block compute costs.
///
/// Implementations live in `amr-workloads` (Sedov blast wave, galaxy-cooling
/// style, synthetic). The contract: after `advance(step)`, `mesh()` and
/// `block_compute_ns()` describe the state for step `step`.
pub trait Workload {
    /// The current mesh snapshot.
    fn mesh(&self) -> &AmrMesh;
    /// Advance the physics to `step` (0-based), possibly adapting the mesh.
    fn advance(&mut self, step: u64) -> WorkloadStep;
    /// Ground-truth expected compute cost (ns) per block, SFC order, for the
    /// current step. The simulator adds fault/jitter multipliers on top.
    fn block_compute_ns(&self) -> &[f64];
    /// Number of steps this scenario runs.
    fn total_steps(&self) -> u64;
}

/// Macro-simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub topology: Topology,
    pub network: NetworkConfig,
    /// Dynamic fault schedule (a plain [`crate::faults::FaultConfig`]
    /// converts via `.into()` for whole-run static faults).
    pub faults: FaultTimeline,
    /// How the run reacts when the online detector flags a node: ignore it,
    /// reweight placement capacities, or blacklist-and-migrate to spares.
    pub fault_response: FaultResponse,
    /// Tuning for the online throttle detector (only consulted when
    /// `fault_response` is not [`FaultResponse::Oblivious`]).
    pub detector: OnlineDetectorConfig,
    /// Spare machines overprovisioned for [`FaultResponse::PruneAndMigrate`]
    /// (the paper's §IV-A launch workflow).
    pub spare_nodes: usize,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Record telemetry every `n`-th step (1 = all).
    pub telemetry_sampling: u32,
    /// Record per-block compute events (heavier) in addition to rank-level.
    pub per_block_telemetry: bool,
    /// Feed measured (EWMA) costs to the policy instead of uniform 1.0 —
    /// the paper's §V-A3 change (1). With `false`, even cost-aware policies
    /// see the production default of "every block costs 1".
    pub use_measured_costs: bool,
    /// EWMA smoothing for the telemetry cost model.
    pub cost_alpha: f64,
    /// The paper's placement computation budget (50 ms), for reporting.
    pub placement_budget_ns: u64,
    /// Coupling between a sender's compute time and its boundary-send
    /// dispatch time. 0.0 models the fully tuned sends-first schedule
    /// (§IV-B: sends dispatched before compute); 1.0 models the untuned
    /// compute-before-send order where receivers wait out their slowest
    /// neighbor's entire compute. The tuned default keeps a small residue:
    /// later blocks' sends still trail their own kernels.
    pub send_coupling: f64,
    /// Boundary exchanges per timestep. Multi-stage time integrators
    /// exchange ghost zones once per stage plus flux correction (Parthenon's
    /// drivers typically run 2–3 stages), so each step carries several
    /// rounds of the per-round message aggregates.
    pub exchanges_per_step: u32,
    /// Asynchronous-runtime masking efficiency (§IV-D "overlapping
    /// computation to hide wait stalls"): the fraction of point-to-point
    /// wait hidden by independent work from *other blocks on the same
    /// rank*. 0.0 models strict BSP execution; 1.0 a perfect task runtime.
    /// A rank holding only one block has nothing to overlap with, so the
    /// effective masking scales with `1 - 1/blocks_on_rank` — the
    /// counterintuitive locality tension the paper points out.
    pub overlap_efficiency: f64,
    /// Number of SFC shards the mesh topology is partitioned into
    /// (hierarchical-scale runs). `0` (the default) keeps the flat path: one
    /// resident global [`NeighborGraph`], incrementally patched. Any value
    /// ≥ 1 switches the run to a [`ShardedMesh`] — per-shard CSR graphs with
    /// halo tables, refreshed per shard on mesh change — and charges a
    /// ghost-metadata exchange between shards on mesh-change steps. With
    /// `num_shards == 1` the halo is empty, the charge is exactly zero, and
    /// virtual time is bit-identical to the flat path (the shard rows keep
    /// global block ids, so every float accumulates in the same order).
    pub num_shards: usize,
    /// Accumulate per-relation observed exchange bytes in an
    /// [`ExchangeByteLedger`](crate::ledger::ExchangeByteLedger) and feed
    /// them to the placement policy as measured edge weights
    /// ([`PlacementCtx::edge_weights`](amr_core::engine::PlacementCtx)) —
    /// the closed observe→partition loop that lets the multilevel family
    /// optimize real traffic instead of the static model (§VIII). Flat-path
    /// only (`num_shards == 0`): the ledger is entry-parallel to the
    /// resident global [`NeighborGraph`]. Policies that ignore edge weights
    /// see bit-identical virtual time with this on or off.
    pub observe_exchange_bytes: bool,
    /// OS threads the in-process simulator may use. `1` (the default) takes
    /// the original serial path, untouched. Any value > 1 spawns a
    /// simulator-owned worker pool and executes the embarrassingly-parallel
    /// phases — epoch fill, compute scatter, the fused ready/finish pass,
    /// and (sharded runs) shard rebuilds — on real threads under the
    /// slot-ownership rule of [`crate::par`], which keeps virtual time
    /// **bitwise identical** to the serial run at any thread count. The
    /// pool is sized exactly `threads`, not the host's core count, so the
    /// parallel code paths are genuinely exercised (timesharing if need be)
    /// even on small machines.
    pub threads: usize,
    /// Which allreduce algorithm closes each step's synchronization: a fixed
    /// [`CollectiveAlgo`] (the default pins the legacy binomial tree,
    /// bit-identical to the pre-enum simulator) or
    /// [`CollectiveSelect::Adaptive`], which watches the run's own
    /// sync-fraction feedback gauge and switches to the cheapest algorithm
    /// for the current scale/payload once synchronization dominates.
    pub collectives: CollectiveSelect,
    /// Payload of the per-step timestep-control allreduce (dt plus CFL
    /// diagnostics), bytes. The historical hard-coded value was 64.
    pub collective_payload_bytes: u64,
}

impl SimConfig {
    /// Tuned, healthy defaults at the given scale.
    pub fn tuned(num_ranks: usize) -> SimConfig {
        SimConfig {
            topology: Topology::paper(num_ranks),
            network: NetworkConfig::tuned(),
            faults: FaultTimeline::healthy(),
            fault_response: FaultResponse::Oblivious,
            detector: OnlineDetectorConfig::default(),
            spare_nodes: 0,
            seed: 0xA17,
            telemetry_sampling: 1,
            per_block_telemetry: false,
            use_measured_costs: true,
            cost_alpha: 0.5,
            placement_budget_ns: 50_000_000,
            send_coupling: 0.05,
            exchanges_per_step: 3,
            overlap_efficiency: 0.0,
            observe_exchange_bytes: false,
            num_shards: 0,
            threads: 1,
            collectives: CollectiveSelect::default(),
            collective_payload_bytes: 64,
        }
    }

    /// Boundary validation run by [`MacroSim::new`]: reject degenerate
    /// bandwidths and fault multipliers before they can poison the cost
    /// model mid-run. A zero/non-finite `bytes_per_ns` — reachable through a
    /// struct-literal [`crate::faults::FaultEpisode`] with
    /// `nic_bandwidth_mult: 0.0` — would saturate every allreduce to
    /// `u64::MAX` and (pre-fix) overflow the completion sum in debug builds.
    pub fn validate(&self) -> Result<(), String> {
        self.network
            .validate()
            .map_err(|e| format!("network.{e}"))?;
        self.faults.validate().map_err(|e| format!("faults: {e}"))?;
        if self.threads == 0 {
            return Err("threads must be >= 1 (1 = serial path)".to_string());
        }
        if self.observe_exchange_bytes && self.num_shards > 0 {
            return Err(
                "observe_exchange_bytes requires the flat path (num_shards == 0): \
                 the ledger is entry-parallel to the resident global graph"
                    .to_string(),
            );
        }
        if !self.cost_alpha.is_finite() || !(0.0..=1.0).contains(&self.cost_alpha) {
            return Err(format!(
                "cost_alpha must be finite and in [0, 1] (got {})",
                self.cost_alpha
            ));
        }
        if self.collective_payload_bytes == 0 {
            return Err(
                "collective_payload_bytes must be >= 1 (the dt allreduce always carries data)"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// Outcome of a macro-simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Policy name used.
    pub policy: String,
    /// Steps simulated.
    pub steps: u64,
    /// Phase totals, mean per rank (ns).
    pub phases: PhaseBreakdown,
    /// Virtual wall time of the whole run (sum of step completions), ns.
    pub total_ns: f64,
    /// Number of redistribution invocations.
    pub lb_invocations: u64,
    /// Steps on which the mesh changed.
    pub mesh_change_steps: u64,
    /// Message totals over the run.
    pub messages: MessageTotals,
    /// Blocks migrated across all redistributions.
    pub blocks_migrated: u64,
    /// Initial / final block counts (Table I's n_init / n_final).
    pub initial_blocks: usize,
    pub final_blocks: usize,
    /// Host wall-clock time spent computing placements (total and max per
    /// invocation) — checked against the paper's 50 ms budget.
    pub placement_wall_total_ns: u64,
    pub placement_wall_max_ns: u64,
    /// Nodes blacklisted and re-hosted onto spares by the online loop.
    pub nodes_pruned: u64,
    /// Times the detector's verdict changed the capacity vector handed to
    /// the placement engine (onsets and recoveries both count).
    pub capacity_updates: u64,
    /// Shards the run's mesh topology was partitioned into (0 = flat path).
    pub num_shards: usize,
    /// Total virtual time charged for inter-shard ghost-metadata exchange
    /// across all mesh-change steps (exactly 0.0 on the flat path and at
    /// `num_shards == 1`, where the halo is empty).
    pub halo_exchange_ns: f64,
    /// Halo (ghost) blocks of the final epoch, summed over shards.
    pub final_halo_blocks: u64,
    /// Collected telemetry.
    pub telemetry: EventTable,
}

impl RunReport {
    /// Did every placement computation meet the budget?
    pub fn placement_within_budget(&self, budget_ns: u64) -> bool {
        self.placement_wall_max_ns <= budget_ns
    }
}

/// The topology source an epoch is filled from: the flat resident
/// [`NeighborGraph`], or a [`ShardedMesh`] walked shard by shard. Shard rows
/// store *global* neighbor ids in the same per-row order as the flat graph,
/// and shards tile the SFC index space contiguously, so both variants visit
/// identical `(block, neighbor)` pairs in identical order — the float
/// accumulation in [`MacroSim::fill_epoch`] is bit-for-bit the same.
#[derive(Clone, Copy)]
pub(crate) enum GraphView<'a> {
    Flat(&'a NeighborGraph),
    Sharded(&'a ShardedMesh),
}

impl GraphView<'_> {
    /// Visit every block's neighbor row in global SFC order.
    pub(crate) fn for_each_row(&self, mut f: impl FnMut(BlockId, &[Neighbor])) {
        match *self {
            GraphView::Flat(g) => {
                for (block, nbs) in g.iter() {
                    f(block, nbs);
                }
            }
            GraphView::Sharded(sm) => {
                for s in 0..sm.num_shards() {
                    let shard = sm.shard(s);
                    let base = shard.range().start;
                    for local in 0..shard.num_blocks() {
                        f(BlockId((base + local) as u32), shard.neighbors_local(local));
                    }
                }
            }
        }
    }
}

/// Per-rank communication aggregates for the current (mesh, placement)
/// epoch. Recomputed only when either changes.
#[derive(Debug, Clone, Default)]
pub(crate) struct CommEpoch {
    /// Dispatch time per rank (MPI sends only).
    pub(crate) dispatch_ns: Vec<f64>,
    /// Receive service time per rank (incl. shm contention).
    pub(crate) service_ns: Vec<f64>,
    /// Intra-rank memcpy time per rank.
    pub(crate) memcpy_ns: Vec<f64>,
    /// Ranks that send to each rank (for the arrival/wait model).
    pub(crate) senders: Vec<Vec<u32>>,
    /// Per-round message counts by class.
    pub(crate) intra_msgs: u64,
    pub(crate) local_msgs: u64,
    pub(crate) remote_msgs: u64,
    /// Flux-correction traffic (fine→coarse face pairs, §II-B): per-rank
    /// dispatch+service time and MPI message count per step.
    pub(crate) flux_ns: Vec<f64>,
    pub(crate) flux_msgs: u64,
    /// Representative per-message transfer latency into each rank (max over
    /// classes present), for the arrival model.
    pub(crate) transfer_tail_ns: Vec<f64>,
    /// Blocks hosted per rank (for overlap availability).
    pub(crate) blocks_per_rank: Vec<u32>,
    /// One round's remote boundary+flux bytes per directed node link, flat
    /// `src_node * num_nodes + dst_node`. Sized only while the credit model
    /// is enabled ([`NetworkConfig::congestion_enabled`]); empty otherwise.
    pub(crate) link_bytes: Vec<u64>,
    /// Per-rank worst-outgoing-link congestion stall (ns/round): the sender
    /// blocks for credit returns, so it lands in the rank's ready time.
    pub(crate) cong_send_ns: Vec<f64>,
    /// Per-rank worst-incoming-link congestion stall (ns/round): retransmits
    /// delay the receive service tail.
    pub(crate) cong_recv_ns: Vec<f64>,
}

impl CommEpoch {
    /// Clear all aggregates and size the per-rank vectors for `r` ranks,
    /// keeping every buffer's capacity (epochs are refilled in place; the
    /// nested `senders` rows likewise keep theirs).
    fn reset(&mut self, r: usize) {
        for v in [
            &mut self.dispatch_ns,
            &mut self.service_ns,
            &mut self.memcpy_ns,
            &mut self.flux_ns,
            &mut self.transfer_tail_ns,
            &mut self.cong_send_ns,
            &mut self.cong_recv_ns,
        ] {
            v.clear();
            v.resize(r, 0.0);
        }
        self.blocks_per_rank.clear();
        self.blocks_per_rank.resize(r, 0);
        self.link_bytes.clear();
        self.senders.resize_with(r, Vec::new);
        self.senders.truncate(r);
        for s in &mut self.senders {
            s.clear();
        }
        self.intra_msgs = 0;
        self.local_msgs = 0;
        self.remote_msgs = 0;
        self.flux_msgs = 0;
    }
}

/// The step-level simulator.
pub struct MacroSim {
    config: SimConfig,
    rng: StdRng,
    /// Placement engine reused across rebalances (and runs): its scratch and
    /// double-buffered placements make the steady-state rebalance loop
    /// allocation-free for the sequential policies.
    engine: PlacementEngine,
    /// Staging buffers for incremental neighbor-graph repair on mesh change
    /// (reused across adapts and runs).
    patch_scratch: PatchScratch,
    /// Optional trace handle shared with the engine (and, by callers, the
    /// mesh): per-step virtual spans plus pipeline counters/gauges.
    trace: Option<TraceHandle>,
    /// Worker pool behind the parallel phase kernels; `None` ⇔
    /// `config.threads == 1` ⇔ the original serial path runs. Owned by the
    /// simulator (not the process-global pool) so workers persist across
    /// steps and runs — steady-state dispatch allocates nothing.
    exec: Option<PooledCommunicator>,
    /// Observed exchange-byte accumulator (active only with
    /// `config.observe_exchange_bytes`); owned by the simulator so its
    /// buffers stay warm across runs.
    ledger: crate::ledger::ExchangeByteLedger,
    /// Per-task byte partials for the pooled ledger flush.
    ledger_partials: Vec<u64>,
    /// The always-on feedback plane: the same metrics registry shape the
    /// trace pipeline uses, but owned by the simulator and updated every
    /// step whether or not tracing is attached. The rebalance trigger reads
    /// its sync-fraction gauge, and [`CollectiveSelect::Adaptive`] reads the
    /// gauge plus the per-phase histograms — control decisions consume the
    /// run's *measured* signals, not the cost model's estimates.
    feedback: MetricsRegistry,
}

impl MacroSim {
    /// Create a simulator from a config.
    ///
    /// # Panics
    /// On an invalid config (see [`SimConfig::validate`]): degenerate
    /// network bandwidth or malformed fault timeline. Servers hosting many
    /// tenants use [`MacroSim::try_new`] instead — one bad request must not
    /// kill the process.
    pub fn new(config: SimConfig) -> MacroSim {
        MacroSim::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MacroSim::new`]: an invalid config (see
    /// [`SimConfig::validate`]) comes back as `Err` instead of a panic.
    pub fn try_new(config: SimConfig) -> Result<MacroSim, String> {
        config
            .validate()
            .map_err(|e| format!("invalid SimConfig: {e}"))?;
        let seed = config.seed;
        let exec = (config.threads > 1).then(|| PooledCommunicator::new(config.threads));
        Ok(MacroSim {
            config,
            rng: StdRng::seed_from_u64(seed),
            engine: PlacementEngine::new(),
            patch_scratch: PatchScratch::default(),
            trace: None,
            exec,
            ledger: crate::ledger::ExchangeByteLedger::default(),
            ledger_partials: Vec::new(),
            feedback: MetricsRegistry::new(),
        })
    }

    /// The live feedback registry (sync-fraction gauge, per-phase
    /// histograms). Meaningful after (or during) a run; reset at run start.
    pub fn feedback(&self) -> &MetricsRegistry {
        &self.feedback
    }

    /// The observed exchange-byte ledger (meaningful after a run with
    /// `observe_exchange_bytes`; tests and benches inspect it).
    pub fn exchange_ledger(&self) -> &crate::ledger::ExchangeByteLedger {
        &self.ledger
    }

    /// Attach (or detach, with `None`) a trace handle; the placement engine
    /// shares it, so `place` spans and rebalance metrics ride along.
    /// Tracing observes simulated time and never perturbs it: traced and
    /// untraced runs are bit-identical in virtual time (pinned by a property
    /// test in `tests/sim_properties.rs`).
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.engine.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Run `workload` under `policy`, rebalancing per `trigger`.
    ///
    /// # Panics
    /// If a placement fails (zero ranks, degenerate costs). Servers use
    /// [`MacroSim::try_run`], which surfaces the failure as `Err`.
    pub fn run(
        &mut self,
        workload: &mut dyn Workload,
        policy: &dyn PlacementPolicy,
        trigger: RebalanceTrigger,
    ) -> RunReport {
        self.try_run(workload, policy, trigger)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MacroSim::run`]: initial and mid-run placement failures
    /// come back as `Err` with the offending step named, leaving the
    /// simulator reusable, instead of panicking.
    pub fn try_run(
        &mut self,
        workload: &mut dyn Workload,
        policy: &dyn PlacementPolicy,
        trigger: RebalanceTrigger,
    ) -> Result<RunReport, String> {
        let cfg = self.config.clone();
        let r = cfg.topology.num_ranks;
        let steps = workload.total_steps();
        let mut collector = Collector::with_sampling(cfg.telemetry_sampling);
        // Each run starts with a clean feedback plane; the registry is owned
        // by the simulator so its histogram buffers stay warm across runs.
        self.feedback.reset();

        // The closed fault loop: the collector's per-step compute series
        // feeds an online throttle detector; its verdicts feed back as
        // placement capacities (Reweight) or node blacklisting
        // (PruneAndMigrate). Oblivious runs skip all of it.
        let respond = cfg.fault_response != FaultResponse::Oblivious;
        let mut detector = if respond {
            collector.track_step_compute(r);
            Some(OnlineThrottleDetector::new(
                r,
                cfg.topology.ranks_per_node,
                cfg.detector,
            ))
        } else {
            None
        };
        let mut node_map = NodeMap::with_spares(cfg.topology.num_nodes(), cfg.spare_nodes);
        // Capacity vector currently applied to the engine (empty ⇔ inactive).
        let mut caps: Vec<f64> = Vec::new();
        let mut caps_active = false;
        let mut det_signal = vec![0.0f64; r];
        let mut force_rebalance = false;
        let mut pending_migration_ns = 0.0f64;
        let mut nodes_pruned = 0u64;
        let mut capacity_updates = 0u64;
        // Per-rank NIC slowdowns stay pinned at 1.0 on compute-only
        // timelines; multiplying by 1.0 is bit-exact, so the healthy path's
        // arithmetic is unchanged.
        let nic_dynamic = cfg.faults.any_nic_degradation();
        let mut nic_slow = vec![1.0f64; r];
        let mut nic_hop_mult = 1.0f64;

        let initial_blocks = workload.mesh().num_blocks();
        let mut cost_model = TelemetryCostModel::new(initial_blocks, cfg.cost_alpha, 1.0e6);
        let spec = workload.mesh().config().spec;
        let dim = workload.mesh().config().dim;
        let block_bytes = spec.cells(workload.mesh().config().dim)
            * spec.num_vars as u64
            * spec.bytes_per_value as u64;

        // Scratch reused across steps and rebalances.
        let mut uniform: Vec<f64> = Vec::new();
        let mut cost_spare: Vec<f64> = Vec::new();
        let mut shm_in: Vec<usize> = Vec::new();
        let mut epoch_partials: Vec<par::EpochPartial> = Vec::new();

        self.engine.reset();
        {
            let costs: &[f64] = if cfg.use_measured_costs {
                cost_model.costs()
            } else {
                uniform.resize(initial_blocks, 1.0);
                &uniform
            };
            self.engine
                .rebalance_with(policy, costs, r, Some(workload.mesh()), None)
                .map_err(|e| format!("initial placement failed: {e}"))?;
        }
        // The neighbor topology depends only on the mesh, not the placement:
        // cache it across epochs and rebuild only when the mesh changes
        // (placement-only rebalances — e.g. a periodic trigger — refill the
        // epoch from the cached topology). Flat runs hold one resident
        // global graph; sharded runs hold per-shard CSR graphs with halo
        // tables instead and never materialize the global CSR.
        let mut flat_graph: Option<NeighborGraph> = if cfg.num_shards == 0 {
            Some(workload.mesh().neighbor_graph())
        } else {
            None
        };
        let mut sharded_mesh: Option<ShardedMesh> = if cfg.num_shards > 0 {
            Some(match &self.exec {
                // Shard builds distribute over the simulator's own pool; the
                // rows are pure functions of (tree, range), so chunking does
                // not change their contents.
                Some(ex) => {
                    ShardedMesh::new_on(workload.mesh(), cfg.num_shards, ex.pool(), ex.threads())
                }
                None => ShardedMesh::new(workload.mesh(), cfg.num_shards),
            })
        } else {
            None
        };
        // Arm the exchange-byte ledger against the resident flat graph
        // (validate() already rejected the sharded combination).
        let observe = cfg.observe_exchange_bytes;
        if observe {
            let g = flat_graph
                .as_ref()
                .expect("validate() pinned observe_exchange_bytes to the flat path");
            self.ledger.begin_run(g);
        }
        let mut halo_exchange_ns = 0.0f64;
        let mut epoch = CommEpoch::default();
        {
            let placement = self
                .engine
                .placement()
                .expect("initial placement primed the engine");
            let view = match (&flat_graph, &sharded_mesh) {
                (Some(g), _) => GraphView::Flat(g),
                (_, Some(sm)) => GraphView::Sharded(sm),
                _ => unreachable!("one topology source is always live"),
            };
            self.fill_epoch(
                workload.mesh(),
                placement,
                view,
                &mut epoch,
                &mut shm_in,
                &mut epoch_partials,
            );
        }

        let mut phases = PhaseBreakdown::default();
        let mut total_ns = 0.0f64;
        let mut messages = MessageTotals::default();
        let mut lb_invocations = 0u64;
        let mut mesh_change_steps = 0u64;
        let mut blocks_migrated = 0u64;
        let mut placement_wall_total = 0u64;
        let mut placement_wall_max = 0u64;

        // Tracing clones the handle once (an Rc bump) so span guards never
        // borrow `self` across the engine calls below. Everything recorded
        // is derived from values the untraced run computes anyway: tracing
        // observes virtual time, never perturbs it.
        let trace = self.trace.clone();
        if let Some(t) = &trace {
            t.metrics.set(TraceGauge::Ranks, r as f64);
        }

        // Scratch buffers reused across steps.
        let mut compute = vec![0.0f64; r];
        let mut ready = vec![0.0f64; r];
        let mut finish = vec![0.0f64; r];
        let mut rank_mult = vec![0.0f64; r];
        let mut measured: Vec<f64> = Vec::new();
        let mut arrivals: Vec<u64> = Vec::with_capacity(r);
        let mut coll_wait: Vec<u64> = Vec::with_capacity(r);

        for step in 0..steps {
            collector.begin_step(step as u32);
            if let Some(t) = &trace {
                t.sink.set_step(step as u32);
                t.metrics.incr(TraceCounter::Steps, 1);
            }
            let ws = workload.advance(step);

            // --- Redistribution (placement + migration) -------------------
            // Pruning decided at the end of the previous step charges its
            // state migration here, at the top of the step it takes effect.
            let mut redist_per_rank = pending_migration_ns;
            pending_migration_ns = 0.0;
            let mut redist_moved = 0u64;
            let mut redist_bytes = 0u64;
            if ws.mesh_changed {
                mesh_change_steps += 1;
                if let Some(g) = flat_graph.as_mut() {
                    // The remesh invalidates the ledger's relation space:
                    // flush pending observations against the dying graph and
                    // stage its layout before the patch rewrites it...
                    if observe {
                        match &self.exec {
                            Some(comm) => {
                                self.ledger
                                    .flush_on(comm, g, spec, dim, &mut self.ledger_partials)
                            }
                            None => self.ledger.flush(g, spec, dim),
                        }
                        self.ledger.prepare_remesh(g, spec, dim);
                    }
                    // Incremental repair: only CSR rows touching changed
                    // octants are rebuilt (falls back to a full build when
                    // the workload's last delta doesn't describe this
                    // graph's mesh).
                    workload
                        .mesh()
                        .patch_neighbor_graph(g, &mut self.patch_scratch);
                    // ...then carry bytes for relations whose endpoints both
                    // survived (`CostOrigin::Same`); the rest start at zero.
                    if observe {
                        self.ledger.apply_remesh(ws.origins.as_deref(), g);
                    }
                }
                if let Some(sm) = sharded_mesh.as_mut() {
                    // Per-shard splice of the same delta; a stale delta
                    // degrades to a full per-shard rebuild (still streaming,
                    // never a global CSR) and is reported like the flat
                    // path's fallback.
                    let patched = {
                        let _span = trace.as_ref().map(|t| t.span(TracePhase::GraphPatch));
                        match &self.exec {
                            // The incremental splice stays serial either way
                            // (a single in-order pass); only the full-rebuild
                            // fallback fans out over the pool.
                            Some(ex) => sm.refresh_on(workload.mesh(), ex.pool(), ex.threads()),
                            None => sm.refresh(workload.mesh()),
                        }
                    };
                    if let Some(t) = &trace {
                        if patched {
                            t.metrics.incr(TraceCounter::GraphPatches, 1);
                        } else {
                            t.metrics.incr(TraceCounter::GraphFullBuilds, 1);
                            t.metrics.incr(TraceCounter::GraphPatchFallbacks, 1);
                        }
                    }
                    // Remeshing republishes ghost-block metadata across every
                    // shard boundary before the next exchange epoch can run:
                    // each shard ships (key, level, owner) records for its
                    // halo over the fabric. The slowest shard gates the step
                    // (the refresh precedes redistribution). Exactly zero
                    // when the halo is empty — i.e. always at one shard — so
                    // the flat path's arithmetic is untouched.
                    let mut worst_ns = 0.0f64;
                    for s in 0..sm.num_shards() {
                        let halo = sm.shard(s).halo().len() as f64;
                        if halo > 0.0 {
                            let ns = cfg.network.fabric.latency_ns as f64
                                + halo * GHOST_META_BYTES / cfg.network.fabric.bytes_per_ns;
                            if ns > worst_ns {
                                worst_ns = ns;
                            }
                        }
                    }
                    halo_exchange_ns += worst_ns;
                    redist_per_rank += worst_ns;
                }
                if let Some(origins) = &ws.origins {
                    // Warm remap: children inherit the parent's estimate,
                    // merges average — staged in the reused spare buffer.
                    cost_model.remap_in_place(origins, &mut cost_spare);
                } else {
                    cost_model = TelemetryCostModel::new(
                        workload.mesh().num_blocks(),
                        cfg.cost_alpha,
                        1.0e6,
                    );
                }
            }
            let imbalance = match self.engine.placement() {
                Some(p) if p.num_blocks() == cost_model.len() => p.imbalance(cost_model.costs()),
                _ => f64::INFINITY,
            };
            let ctx = TriggerContext {
                step,
                mesh_changed: ws.mesh_changed,
                imbalance,
                // The previous step's measured sync share (0.0 at step 0):
                // the trace-driven trigger reacts to what the run actually
                // lost, congestion and fault stalls included.
                sync_fraction: self.feedback.gauge(TraceGauge::SyncFraction),
            };
            let count_mismatch = self
                .engine
                .placement()
                .is_none_or(|p| p.num_blocks() != cost_model.len());
            if trigger.should_rebalance(&ctx) || count_mismatch || force_rebalance {
                force_rebalance = false;
                lb_invocations += 1;
                let n = workload.mesh().num_blocks();
                let costs: &[f64] = if cfg.use_measured_costs {
                    cost_model.costs()
                } else {
                    uniform.clear();
                    uniform.resize(n, 1.0);
                    &uniform
                };
                // Observed weights: materialize everything noted so far and
                // hand the per-relation bytes to the policy alongside the
                // cached graph. Weight-blind policies ignore both, so this
                // leaves their virtual time bit-identical (pinned by test).
                let edge_weights = if observe {
                    let g = flat_graph.as_ref().expect("flat path");
                    match &self.exec {
                        Some(comm) => {
                            self.ledger
                                .flush_on(comm, g, spec, dim, &mut self.ledger_partials)
                        }
                        None => self.ledger.flush(g, spec, dim),
                    }
                    self.ledger.has_observations().then(|| self.ledger.bytes())
                } else {
                    None
                };
                let t0 = Instant::now();
                let report = self
                    .engine
                    .rebalance_weighted(
                        policy,
                        costs,
                        r,
                        Some(workload.mesh()),
                        ws.origins.as_deref(),
                        flat_graph.as_ref(),
                        edge_weights,
                    )
                    .map_err(|e| format!("rebalance at step {step} failed: {e}"))?;
                let wall = t0.elapsed().as_nanos() as u64;
                placement_wall_total += wall;
                placement_wall_max = placement_wall_max.max(wall);

                // Migration is an all-to-all of moved blocks: each rank's
                // cost is bounded by the larger of its outgoing and incoming
                // volume over the fabric, and the phase ends with the
                // slowest rank (it precedes a synchronization). The engine
                // charges it — diffed against the previous placement, or
                // flowed through the cost-origin remap across block-count
                // changes.
                let migration_ns = match report.migration {
                    Some(m) => {
                        redist_moved = m.moved as u64;
                        m.max_rank_flow as f64 * block_bytes as f64
                            / cfg.network.fabric.bytes_per_ns
                    }
                    None => {
                        // No comparable history (block count changed without
                        // origin tracking): every payload is rebuilt and
                        // shipped once; approximate by the mean per-rank
                        // volume.
                        redist_moved = report.num_blocks as u64;
                        redist_moved as f64 * block_bytes as f64
                            / cfg.network.fabric.bytes_per_ns
                            / r as f64
                    }
                };
                blocks_migrated += redist_moved;
                redist_bytes = redist_moved * block_bytes;
                redist_per_rank += wall as f64 + migration_ns;

                let placement = self
                    .engine
                    .placement()
                    .expect("rebalance primed the engine");
                let view = match (&flat_graph, &sharded_mesh) {
                    (Some(g), _) => GraphView::Flat(g),
                    (_, Some(sm)) => GraphView::Sharded(sm),
                    _ => unreachable!("one topology source is always live"),
                };
                self.fill_epoch(
                    workload.mesh(),
                    placement,
                    view,
                    &mut epoch,
                    &mut shm_in,
                    &mut epoch_partials,
                );
            }

            // --- Compute phase --------------------------------------------
            let block_ns = workload.block_compute_ns();
            let placement = self.engine.placement().expect("engine holds a placement");
            debug_assert_eq!(block_ns.len(), placement.num_blocks());
            compute.iter_mut().for_each(|c| *c = 0.0);
            measured.clear();
            measured.resize(block_ns.len(), 0.0);
            // Per-rank multiplier for this step (node fault + jitter),
            // sampled from the timeline at the node's *physical* machine —
            // a pruned node re-hosted on a spare escapes its episode.
            for (rank, m) in rank_mult.iter_mut().enumerate() {
                let phys = node_map.physical(cfg.topology.node_of(rank));
                *m = cfg.faults.compute_multiplier(step, phys, &mut self.rng);
            }
            if nic_dynamic {
                nic_hop_mult = 1.0;
                for (rank, s) in nic_slow.iter_mut().enumerate() {
                    let phys = node_map.physical(cfg.topology.node_of(rank));
                    *s = cfg.faults.nic_slowdown(step, phys);
                    if *s > nic_hop_mult {
                        nic_hop_mult = *s;
                    }
                }
            }
            match &self.exec {
                // Per-block collector records pin the per-block-telemetry
                // path to the owning thread, so that (rare, heavy) mode
                // keeps the serial scatter.
                Some(comm) if !cfg.per_block_telemetry => {
                    par::compute_phase_parallel(
                        comm,
                        block_ns,
                        placement,
                        &rank_mult,
                        &mut compute,
                        &mut measured,
                    );
                }
                _ => {
                    for (b, &base) in block_ns.iter().enumerate() {
                        let rank = placement.rank_of(b) as usize;
                        let t = base * rank_mult[rank];
                        compute[rank] += t;
                        measured[b] = t;
                        if cfg.per_block_telemetry {
                            collector.record_block(rank as u32, b as u32, Phase::Compute, t as u64);
                        }
                    }
                }
            }
            // With capacities applied, deflate observations back to
            // intrinsic block cost — otherwise the fault inflation would be
            // counted twice (once in the cost estimate, once in the
            // capacity) and placement would oscillate.
            if caps_active {
                cost_model.observe_all_deflated(&measured, placement.as_slice(), &caps);
            } else {
                cost_model.observe_all(&measured);
            }

            // --- Boundary exchange ----------------------------------------
            // ready = compute + dispatch + memcpy; arrival-constrained finish.
            // Per-rank NIC slowdowns (1.0 on healthy timelines — multiplying
            // by 1.0 is bit-exact) stretch the fabric-facing terms: dispatch,
            // service, flux, and the transfer tail. Memcpys don't ride the NIC.
            let xs = cfg.exchanges_per_step as f64;
            if let Some(comm) = &self.exec {
                // A rank's finish reads only its own ready plus other ranks'
                // compute/dispatch, so the two loops fuse per owned rank.
                par::ready_finish_parallel(
                    comm,
                    xs,
                    cfg.send_coupling,
                    cfg.overlap_efficiency,
                    &epoch,
                    &compute,
                    &nic_slow,
                    &mut ready,
                    &mut finish,
                );
            } else {
                for rank in 0..r {
                    // Congestion terms are exactly 0.0 while the credit
                    // model is disabled, so adding them is bit-exact for the
                    // default stacks.
                    ready[rank] = compute[rank]
                        + xs * (epoch.dispatch_ns[rank] * nic_slow[rank] + epoch.memcpy_ns[rank])
                        + epoch.flux_ns[rank] * nic_slow[rank]
                        + xs * epoch.cong_send_ns[rank] * nic_slow[rank];
                }
                for rank in 0..r {
                    // Last inbound message ~ slowest sender's dispatch + tail.
                    // With the tuned sends-first schedule, dispatch times are
                    // only weakly coupled to the sender's compute
                    // (§IV-B/§IV-D).
                    let mut arrival = 0.0f64;
                    for &s in &epoch.senders[rank] {
                        let a = cfg.send_coupling * compute[s as usize]
                            + xs * epoch.dispatch_ns[s as usize] * nic_slow[s as usize]
                            + xs * epoch.cong_send_ns[s as usize] * nic_slow[s as usize];
                        if a > arrival {
                            arrival = a;
                        }
                    }
                    if !epoch.senders[rank].is_empty() {
                        arrival += epoch.transfer_tail_ns[rank] * nic_slow[rank];
                    }
                    // Async masking: independent work from co-resident blocks
                    // hides part of the arrival wait (§IV-D).
                    let raw_wait = (arrival - ready[rank]).max(0.0);
                    let nb = epoch.blocks_per_rank[rank].max(1) as f64;
                    let masking = cfg.overlap_efficiency * (1.0 - 1.0 / nb);
                    let f = ready[rank]
                        + raw_wait * (1.0 - masking)
                        + xs * epoch.service_ns[rank] * nic_slow[rank]
                        + xs * epoch.cong_recv_ns[rank] * nic_slow[rank];
                    finish[rank] = f;
                }
            }

            // --- Synchronization ------------------------------------------
            // Timestep control is a blocking allreduce over a small vector
            // (dt and CFL diagnostics), not a bare barrier (§II-B).
            arrivals.clear();
            arrivals.extend(finish.iter().map(|&f| f as u64));
            // A degraded-NIC participant gates the whole collective: every
            // tree level waits on the slowest link, so the hop cost scales
            // with the worst per-rank NIC slowdown this step. Healthy
            // timelines keep the integer latency untouched.
            let hop_ns = if nic_hop_mult > 1.0 {
                (cfg.network.fabric.latency_ns as f64 * nic_hop_mult) as u64
            } else {
                cfg.network.fabric.latency_ns
            };
            // Algorithm selection. Fixed pins one variant for the whole run
            // (the binomial default reproduces the legacy simulator bit for
            // bit). Adaptive consults the feedback plane: once the measured
            // sync share crosses the threshold — and at least one collective
            // has actually been observed, so step 0 never switches on a
            // zeroed gauge — it picks the cheapest algorithm for this scale
            // and payload. The decision reads only virtual-time signals, so
            // it is identical at any thread count.
            let algo = match cfg.collectives {
                CollectiveSelect::Fixed(a) => a,
                CollectiveSelect::Adaptive => {
                    if self.feedback.gauge(TraceGauge::SyncFraction) > ADAPTIVE_SYNC_THRESHOLD
                        && self.feedback.phase_count(TracePhase::Collective) > 0
                    {
                        collectives::cheapest_algo(
                            r,
                            hop_ns,
                            cfg.collective_payload_bytes,
                            cfg.network.fabric.bytes_per_ns,
                        )
                    } else {
                        CollectiveAlgo::BinomialTree
                    }
                }
            };
            let completion_ns = collectives::allreduce_with_into(
                algo,
                &arrivals,
                hop_ns,
                cfg.collective_payload_bytes,
                cfg.network.fabric.bytes_per_ns,
                &mut coll_wait,
            );
            // Virtual-time base of this step (for trace spans).
            let step_base_ns = total_ns as u64;
            let step_total = completion_ns as f64 + redist_per_rank;
            total_ns += step_total;

            // --- Accounting ------------------------------------------------
            let mut step_phases = PhaseBreakdown::default();
            for rank in 0..r {
                let comm = finish[rank] - compute[rank];
                let sync = coll_wait[rank] as f64;
                step_phases.compute_ns += compute[rank];
                step_phases.comm_ns += comm;
                step_phases.sync_ns += sync;
                collector.record_rank(rank as u32, Phase::Compute, compute[rank] as u64);
                if epoch.flux_ns[rank] > 0.0 {
                    collector.record_rank(
                        rank as u32,
                        Phase::FluxCorrection,
                        epoch.flux_ns[rank] as u64,
                    );
                }
                collector.record_comm_rank(
                    rank as u32,
                    Phase::BoundaryComm,
                    comm as u64,
                    (epoch.local_msgs + epoch.remote_msgs) as u32 / r as u32,
                    0,
                );
                collector.record_rank(rank as u32, Phase::Synchronization, sync as u64);
            }
            step_phases.redist_ns = redist_per_rank * r as f64;
            if redist_per_rank > 0.0 {
                // The placement report's migration accounting rides along:
                // moved blocks as the message count, shipped payload as bytes.
                collector.record_comm_rank(
                    0,
                    Phase::Redistribution,
                    (redist_per_rank * r as f64) as u64,
                    redist_moved.min(u32::MAX as u64) as u32,
                    redist_bytes,
                );
            }
            phases.accumulate(&step_phases.scaled(1.0 / r as f64));

            // The feedback plane updates unconditionally — the trigger and
            // the adaptive collective selector read it whether or not a
            // trace handle is attached, so traced and untraced runs make
            // identical control decisions.
            let inv_r = 1.0 / r as f64;
            let mean_compute = (step_phases.compute_ns * inv_r) as u64;
            let mean_comm = (step_phases.comm_ns * inv_r) as u64;
            let mean_sync = (step_phases.sync_ns * inv_r) as u64;
            let denom = step_phases.compute_ns + step_phases.comm_ns + step_phases.sync_ns;
            if denom > 0.0 {
                self.feedback
                    .set(TraceGauge::SyncFraction, step_phases.sync_ns / denom);
            }
            self.feedback
                .observe_phase_ns(TracePhase::Exchange, mean_comm);
            self.feedback
                .observe_phase_ns(TracePhase::Collective, mean_sync);

            if let Some(t) = &trace {
                // Virtual spans replay the step's mean-rank timeline:
                // exchange from end-of-compute to end-of-comm, then the
                // collective's tree+payload term after the last arrival.
                // Per-rank waits land in the sync_fraction gauge instead of
                // r separate spans.
                t.record_virtual(
                    TracePhase::Exchange,
                    step_base_ns.saturating_add(mean_compute),
                    mean_comm,
                );
                let last_arrival = arrivals.iter().copied().max().unwrap_or(0);
                t.record_virtual(
                    TracePhase::Collective,
                    step_base_ns.saturating_add(last_arrival),
                    completion_ns.saturating_sub(last_arrival),
                );
                t.metrics.incr(TraceCounter::Collectives, 1);
                if denom > 0.0 {
                    t.metrics
                        .set(TraceGauge::SyncFraction, step_phases.sync_ns / denom);
                }
                t.metrics
                    .set(TraceGauge::Blocks, workload.mesh().num_blocks() as f64);
            }

            let xm = cfg.exchanges_per_step as u64;
            messages.intra += epoch.intra_msgs * xm;
            messages.local += epoch.local_msgs * xm;
            messages.remote += epoch.remote_msgs * xm;
            if observe {
                // O(1): the per-relation charge materializes lazily at the
                // next flush point (rebalance or remesh).
                self.ledger.note_step(cfg.exchanges_per_step);
            }

            // --- Online fault response (detect → reweight / prune) --------
            if let Some(det) = detector.as_mut() {
                let _fr_span = trace.as_ref().map(|t| t.span(TracePhase::FaultResponse));
                // Normalize the collector's compute series by the capacity
                // already applied to each rank: a derated rank legitimately
                // holds less work, so its *raw* time looks healthy — the
                // normalized signal keeps measuring the machine, not the
                // placement, and the flag stays stable after reweighting.
                let series = collector.step_compute();
                for rank in 0..r {
                    let applied = if caps_active { caps[rank] } else { 1.0 };
                    det_signal[rank] = series[rank] / applied;
                }
                if det.observe(&det_signal) {
                    if cfg.fault_response == FaultResponse::PruneAndMigrate {
                        let flagged = det.flagged_nodes();
                        let moved = blacklist_and_rehost(&mut node_map, &flagged);
                        for &(node, _spare) in &moved {
                            // The flagged machine is gone; its window
                            // history and flag describe dead hardware.
                            det.clear_flag(node);
                            // Every block on the node's ranks ships to the
                            // spare over the fabric, charged next step.
                            let node_blocks: u64 = cfg
                                .topology
                                .ranks_on_node(node)
                                .map(|rank| epoch.blocks_per_rank[rank] as u64)
                                .sum();
                            pending_migration_ns += node_blocks as f64 * block_bytes as f64
                                / cfg.network.fabric.bytes_per_ns;
                            blocks_migrated += node_blocks;
                            nodes_pruned += 1;
                        }
                        if !moved.is_empty() {
                            det.reset_window();
                        }
                    }
                    // Reweight is the primary response, and the fallback for
                    // flagged nodes the spare pool couldn't absorb.
                    caps_active = det.capacities_into(&mut caps);
                    if caps_active {
                        self.engine.set_capacities(&caps);
                    } else {
                        self.engine.clear_capacities();
                    }
                    capacity_updates += 1;
                    force_rebalance = true;
                    if let Some(t) = &trace {
                        t.metrics.incr(TraceCounter::CapacityUpdates, 1);
                    }
                }
            }
        }
        if let Some(t) = &trace {
            t.metrics.incr(TraceCounter::NodesPruned, nodes_pruned);
            if observe {
                t.metrics
                    .incr(TraceCounter::LedgerFlushes, self.ledger.flushes());
                t.metrics
                    .incr(TraceCounter::LedgerRemaps, self.ledger.remaps());
                t.metrics.incr(
                    TraceCounter::LedgerObservedBytes,
                    self.ledger.observed_total(),
                );
            }
        }

        Ok(RunReport {
            policy: policy.name(),
            steps,
            phases,
            total_ns,
            lb_invocations,
            mesh_change_steps,
            messages,
            blocks_migrated,
            initial_blocks,
            final_blocks: workload.mesh().num_blocks(),
            placement_wall_total_ns: placement_wall_total,
            placement_wall_max_ns: placement_wall_max,
            nodes_pruned,
            capacity_updates,
            num_shards: cfg.num_shards,
            halo_exchange_ns,
            final_halo_blocks: sharded_mesh
                .as_ref()
                .map_or(0, |sm| sm.total_halo_blocks() as u64),
            telemetry: collector.finish(),
        })
    }

    /// Fill per-rank communication aggregates for a (mesh, placement) epoch
    /// into the reused `e` (all buffers recycled, no allocation once warm).
    /// `graph` is the cached neighbor topology of `mesh` — flat or sharded,
    /// both walk identical rows in identical order; `shm_in` and `partials`
    /// are pooled scratch buffers.
    ///
    /// With `threads > 1` the two graph passes and the contention/sort pass
    /// run on the worker pool via [`par::fill_epoch_parallel`] under the
    /// slot-ownership rule — bitwise identical to this serial body at any
    /// thread count. Only the cheap O(n + r) prologue (reset, block counts,
    /// shm zeroing) is shared.
    fn fill_epoch(
        &self,
        mesh: &AmrMesh,
        placement: &Placement,
        graph: GraphView<'_>,
        e: &mut CommEpoch,
        shm_in: &mut Vec<usize>,
        partials: &mut Vec<par::EpochPartial>,
    ) {
        let cfg = &self.config;
        let r = cfg.topology.num_ranks;
        let spec = mesh.config().spec;
        let dim = mesh.config().dim;

        e.reset(r);
        for b in 0..placement.num_blocks() {
            e.blocks_per_rank[placement.rank_of(b) as usize] += 1;
        }
        shm_in.clear();
        shm_in.resize(r, 0);
        let nodes = cfg.topology.num_nodes();
        let congestion = cfg.network.congestion_enabled();
        if congestion {
            // Flat (src_node, dst_node) byte matrix; `reset` cleared it, so
            // the resize re-zeroes in place.
            e.link_bytes.resize(nodes * nodes, 0);
        }

        if let Some(comm) = &self.exec {
            // Worker lanes observe wall clock per task (host track only);
            // they feed nothing back, so traced and untraced parallel runs
            // stay bit-identical in virtual time.
            if let Some(t) = &self.trace {
                let t_n = comm.threads().min(r).max(1);
                t.sink.ensure_lanes(t_n, par::LANE_SPAN_CAPACITY);
                let step = t.sink.step();
                t.sink.with_lanes_mut(|lanes| {
                    par::fill_epoch_parallel(
                        comm,
                        &cfg.topology,
                        &cfg.network,
                        spec,
                        dim,
                        placement,
                        graph,
                        e,
                        shm_in,
                        partials,
                        Some((lanes, step)),
                    );
                });
            } else {
                par::fill_epoch_parallel(
                    comm,
                    &cfg.topology,
                    &cfg.network,
                    spec,
                    dim,
                    placement,
                    graph,
                    e,
                    shm_in,
                    partials,
                    None,
                );
            }
            if congestion {
                self.fill_congestion(e);
            }
            return;
        }

        graph.for_each_row(|block, nbs| {
            let src = placement.rank_of(block.index()) as usize;
            for n in nbs {
                let bytes = spec.message_bytes(dim, n.kind.codim());
                let dst = placement.rank_of(n.block.index()) as usize;
                if dst == src {
                    e.intra_msgs += 1;
                    // memcpy at memory bandwidth (use shm bandwidth).
                    e.memcpy_ns[src] += bytes as f64 / cfg.network.shm.bytes_per_ns;
                    continue;
                }
                let local = cfg.topology.same_node(src, dst);
                if local {
                    e.local_msgs += 1;
                    shm_in[dst] += 1;
                } else {
                    e.remote_msgs += 1;
                    if congestion {
                        let idx = cfg.topology.node_of(src) * nodes + cfg.topology.node_of(dst);
                        e.link_bytes[idx] += bytes;
                    }
                }
                e.dispatch_ns[src] += cfg.network.dispatch_ns(bytes) as f64;
                e.service_ns[dst] += cfg.network.service_ns(bytes, local) as f64;
                let tail = cfg.network.transfer_ns(bytes, local) as f64;
                if tail > e.transfer_tail_ns[dst] {
                    e.transfer_tail_ns[dst] = tail;
                }
                // Duplicates resolved by a sort+dedup pass below (the hot
                // loop stays branch-light; no per-rank hash/tree set).
                e.senders[dst].push(src as u32);
            }
        });
        // Flux correction: every fine block sends conserved-flux data for
        // each face shared with a coarser neighbor — small messages, one
        // round per step (§II-B). The payload is the fine face restricted
        // onto the coarse grid: a quarter of a face exchange.
        graph.for_each_row(|block, nbs| {
            let src = placement.rank_of(block.index()) as usize;
            for n in nbs {
                if n.level_delta != -1 || n.kind != amr_mesh::NeighborKind::Face {
                    continue; // only fine→coarse faces carry flux fix-ups
                }
                let bytes = spec.message_bytes(dim, 1) / 4;
                let dst = placement.rank_of(n.block.index()) as usize;
                if dst == src {
                    e.flux_ns[src] += bytes as f64 / cfg.network.shm.bytes_per_ns;
                    continue;
                }
                e.flux_msgs += 1;
                let local = cfg.topology.same_node(src, dst);
                e.flux_ns[src] += cfg.network.dispatch_ns(bytes) as f64;
                e.flux_ns[dst] += cfg.network.service_ns(bytes, local) as f64;
                if local {
                    e.local_msgs += 1;
                } else {
                    e.remote_msgs += 1;
                    if congestion {
                        let idx = cfg.topology.node_of(src) * nodes + cfg.topology.node_of(dst);
                        e.link_bytes[idx] += bytes;
                    }
                }
            }
        });
        for (dst, &shm) in shm_in.iter().enumerate().take(r) {
            e.service_ns[dst] += cfg.network.shm_contention_ns(shm) as f64;
            let s = &mut e.senders[dst];
            s.sort_unstable();
            s.dedup();
        }
        if congestion {
            self.fill_congestion(e);
        }
    }

    /// Epilogue of [`Self::fill_epoch`] when the credit model is live:
    /// convert the merged per-link byte matrix into per-rank stalls. A
    /// rank's round is gated by its node's most congested outgoing link
    /// (the send side blocks for credit returns) and incoming link
    /// (retransmits delay the service tail). [`NetworkConfig::congestion_ns`]
    /// is monotone, so taking the byte max first equals maxing the stalls —
    /// and prices each worst link exactly once. Pure integer maxima over the
    /// merged matrix: identical at any thread count.
    fn fill_congestion(&self, e: &mut CommEpoch) {
        let cfg = &self.config;
        let nodes = cfg.topology.num_nodes();
        for rank in 0..cfg.topology.num_ranks {
            let sn = cfg.topology.node_of(rank);
            let mut worst_out = 0u64;
            let mut worst_in = 0u64;
            for peer in 0..nodes {
                worst_out = worst_out.max(e.link_bytes[sn * nodes + peer]);
                worst_in = worst_in.max(e.link_bytes[peer * nodes + sn]);
            }
            e.cong_send_ns[rank] = cfg.network.congestion_ns(worst_out) as f64;
            e.cong_recv_ns[rank] = cfg.network.congestion_ns(worst_in) as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_core::policies::{Baseline, Lpt};
    use amr_mesh::{Dim, MeshConfig, RefineTag};

    /// Minimal synthetic workload: static mesh, fixed skewed costs.
    pub(super) struct StaticWorkload {
        mesh: AmrMesh,
        costs: Vec<f64>,
        steps: u64,
    }

    impl StaticWorkload {
        pub(super) fn new(roots: u32, steps: u64, skew: f64) -> StaticWorkload {
            let mesh = AmrMesh::new(MeshConfig::from_cells(
                Dim::D3,
                (roots * 16, roots * 16, roots * 16),
                2,
            ));
            let n = mesh.num_blocks();
            let costs = (0..n)
                .map(|i| 1.0e6 * (1.0 + skew * (i % 7) as f64))
                .collect();
            StaticWorkload { mesh, costs, steps }
        }
    }

    impl Workload for StaticWorkload {
        fn mesh(&self) -> &AmrMesh {
            &self.mesh
        }
        fn advance(&mut self, _step: u64) -> WorkloadStep {
            WorkloadStep::default()
        }
        fn block_compute_ns(&self) -> &[f64] {
            &self.costs
        }
        fn total_steps(&self) -> u64 {
            self.steps
        }
    }

    fn small_config(ranks: usize) -> SimConfig {
        let mut c = SimConfig::tuned(ranks);
        c.topology = Topology::new(ranks, 4);
        c
    }

    #[test]
    fn phases_sum_to_total() {
        let mut sim = MacroSim::new(small_config(16));
        let mut w = StaticWorkload::new(4, 10, 0.5); // 64 blocks, 16 ranks
        let rep = sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
        assert_eq!(rep.steps, 10);
        // Mean-per-rank phases ≈ total virtual time (within redist rounding
        // and tree overheads).
        let ratio = rep.phases.total_ns() / rep.total_ns;
        assert!((0.9..=1.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn lpt_reduces_sync_on_skewed_costs() {
        let mut w1 = StaticWorkload::new(4, 20, 2.0);
        let mut w2 = StaticWorkload::new(4, 20, 2.0);
        // Force one rebalance so LPT sees measured costs.
        let trig = RebalanceTrigger::MeshChangeOrImbalance(1.01);
        let mut sim1 = MacroSim::new(small_config(16));
        let base = sim1.run(&mut w1, &Baseline, trig);
        let mut sim2 = MacroSim::new(small_config(16));
        let lpt = sim2.run(&mut w2, &Lpt, trig);
        assert!(
            lpt.phases.sync_ns < base.phases.sync_ns,
            "LPT sync {} vs baseline {}",
            lpt.phases.sync_ns,
            base.phases.sync_ns
        );
        assert!(lpt.total_ns < base.total_ns);
    }

    #[test]
    fn compute_invariant_across_policies() {
        // Total compute work must not depend on placement (Fig. 6a's flat
        // compute row).
        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, 10, 1.0);
        let mut w2 = StaticWorkload::new(4, 10, 1.0);
        let a = MacroSim::new(small_config(16)).run(&mut w1, &Baseline, trig);
        let b = MacroSim::new(small_config(16)).run(&mut w2, &Lpt, trig);
        let rel = (a.phases.compute_ns - b.phases.compute_ns).abs() / a.phases.compute_ns;
        assert!(rel < 0.05, "compute differs by {rel}");
    }

    #[test]
    fn telemetry_collected_per_phase() {
        let mut sim = MacroSim::new(small_config(8));
        let mut w = StaticWorkload::new(2, 5, 0.3); // 8 blocks
        let rep = sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
        use amr_telemetry::Query;
        let t = &rep.telemetry;
        assert!(Query::new(t).phase(Phase::Compute).count() >= 8 * 5);
        assert!(Query::new(t).phase(Phase::Synchronization).count() >= 8 * 5);
        assert!(Query::new(t).phase(Phase::BoundaryComm).count() >= 8 * 5);
    }

    #[test]
    fn throttled_node_inflates_sync() {
        let mut cfg = small_config(16); // 4 nodes x 4 ranks
        cfg.faults = crate::faults::FaultConfig::with_throttled_nodes([1]).into();
        let mut w1 = StaticWorkload::new(4, 10, 0.0);
        let rep_faulty = MacroSim::new(cfg).run(&mut w1, &Baseline, RebalanceTrigger::OnMeshChange);
        let mut w2 = StaticWorkload::new(4, 10, 0.0);
        let rep_ok =
            MacroSim::new(small_config(16)).run(&mut w2, &Baseline, RebalanceTrigger::OnMeshChange);
        assert!(rep_faulty.phases.sync_ns > 2.0 * rep_ok.phases.sync_ns);
        assert!(rep_faulty.total_ns > rep_ok.total_ns);
    }

    #[test]
    fn online_reweight_recovers_midrun_throttle() {
        use crate::faults::{FaultEpisode, FaultResponse, FaultTimeline};
        let steps = 60u64;
        let mk = |response| {
            let mut cfg = small_config(16); // 4 nodes x 4 ranks
            cfg.faults = FaultTimeline::with_episode(FaultEpisode::throttle(20, 40, [1], 4.0));
            cfg.fault_response = response;
            cfg
        };
        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, steps, 0.5);
        let obliv = MacroSim::new(mk(FaultResponse::Oblivious)).run(&mut w1, &Lpt, trig);
        let mut w2 = StaticWorkload::new(4, steps, 0.5);
        let rew = MacroSim::new(mk(FaultResponse::Reweight)).run(&mut w2, &Lpt, trig);
        // The flag must rise after onset and clear after recovery.
        assert!(
            rew.capacity_updates >= 2,
            "capacity updates = {}",
            rew.capacity_updates
        );
        assert_eq!(rew.nodes_pruned, 0);
        assert!(rew.lb_invocations > obliv.lb_invocations);
        assert!(
            rew.total_ns < obliv.total_ns,
            "reweight {} !< oblivious {}",
            rew.total_ns,
            obliv.total_ns
        );
    }

    #[test]
    fn prune_migrates_to_spare_and_escapes_episode() {
        use crate::faults::{FaultEpisode, FaultResponse, FaultTimeline};
        let steps = 50u64;
        // Permanent episode with NIC degradation: reweighting can shed
        // compute but not escape the slow NIC; pruning escapes both.
        let mk = |response, spares| {
            let mut cfg = small_config(16);
            cfg.faults = FaultTimeline::with_episode(
                FaultEpisode::throttle(15, u64::MAX, [1], 4.0).with_nic_degradation(0.5),
            );
            cfg.fault_response = response;
            cfg.spare_nodes = spares;
            cfg
        };
        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, steps, 0.5);
        let obliv = MacroSim::new(mk(FaultResponse::Oblivious, 0)).run(&mut w1, &Lpt, trig);
        let mut w2 = StaticWorkload::new(4, steps, 0.5);
        let prune = MacroSim::new(mk(FaultResponse::PruneAndMigrate, 1)).run(&mut w2, &Lpt, trig);
        assert_eq!(prune.nodes_pruned, 1);
        assert!(prune.blocks_migrated > 0);
        assert!(
            prune.total_ns < obliv.total_ns,
            "prune {} !< oblivious {}",
            prune.total_ns,
            obliv.total_ns
        );
        // With no spares the response degrades to reweighting, not a panic.
        let mut w3 = StaticWorkload::new(4, steps, 0.5);
        let starved = MacroSim::new(mk(FaultResponse::PruneAndMigrate, 0)).run(&mut w3, &Lpt, trig);
        assert_eq!(starved.nodes_pruned, 0);
        assert!(starved.capacity_updates >= 1);
        assert!(starved.total_ns < obliv.total_ns);
    }

    /// Workload that refines once at a given step.
    pub(super) struct RefiningWorkload {
        mesh: AmrMesh,
        costs: Vec<f64>,
        steps: u64,
        refine_at: u64,
    }

    impl RefiningWorkload {
        pub(super) fn new(steps: u64, refine_at: u64) -> Self {
            let mesh = AmrMesh::new(MeshConfig::from_cells(Dim::D3, (32, 32, 32), 2));
            let n = mesh.num_blocks();
            RefiningWorkload {
                mesh,
                costs: vec![1.0e6; n],
                steps,
                refine_at,
            }
        }
    }

    impl Workload for RefiningWorkload {
        fn mesh(&self) -> &AmrMesh {
            &self.mesh
        }
        fn advance(&mut self, step: u64) -> WorkloadStep {
            if step == self.refine_at {
                let delta = self.mesh.adapt(|b| {
                    if b.id.index() == 0 {
                        RefineTag::Refine
                    } else {
                        RefineTag::Keep
                    }
                });
                assert!(delta.changed());
                self.costs = vec![1.0e6; self.mesh.num_blocks()];
                // No origin tracking in this toy: rebuild cost model.
                WorkloadStep {
                    mesh_changed: true,
                    origins: None,
                }
            } else {
                WorkloadStep::default()
            }
        }
        fn block_compute_ns(&self) -> &[f64] {
            &self.costs
        }
        fn total_steps(&self) -> u64 {
            self.steps
        }
    }

    #[test]
    fn flux_correction_recorded_on_refined_meshes() {
        // A refined mesh has fine-coarse face pairs; flux telemetry must
        // appear. A uniform mesh has none.
        let mut sim = MacroSim::new(small_config(8));
        let mut w = RefiningWorkload::new(6, 1);
        let rep = sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
        use amr_telemetry::Query;
        assert!(
            Query::new(&rep.telemetry)
                .phase(Phase::FluxCorrection)
                .count()
                > 0,
            "no flux records after refinement"
        );

        let mut sim2 = MacroSim::new(small_config(8));
        let mut w2 = StaticWorkload::new(2, 6, 0.0); // uniform mesh
        let rep2 = sim2.run(&mut w2, &Baseline, RebalanceTrigger::OnMeshChange);
        assert_eq!(
            Query::new(&rep2.telemetry)
                .phase(Phase::FluxCorrection)
                .count(),
            0
        );
    }

    #[test]
    fn mesh_change_triggers_redistribution() {
        let mut sim = MacroSim::new(small_config(8));
        let mut w = RefiningWorkload::new(6, 3);
        let rep = sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
        assert_eq!(rep.mesh_change_steps, 1);
        assert!(rep.lb_invocations >= 1);
        assert!(rep.final_blocks > rep.initial_blocks);
        assert!(rep.phases.redist_ns > 0.0);
        assert!(rep.blocks_migrated > 0);
    }

    #[test]
    fn placement_wall_time_tracked() {
        let mut sim = MacroSim::new(small_config(8));
        let mut w = StaticWorkload::new(2, 3, 0.1);
        let rep = sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
        // Initial placement happens outside run's wall tracking; with no mesh
        // change there may be no invocation — force one with Periodic.
        let mut sim2 = MacroSim::new(small_config(8));
        let mut w2 = StaticWorkload::new(2, 3, 0.1);
        let rep2 = sim2.run(&mut w2, &Baseline, RebalanceTrigger::Periodic(1));
        assert!(rep2.lb_invocations >= 3);
        assert!(rep2.placement_wall_max_ns > 0);
        assert!(rep.placement_within_budget(50_000_000));
    }
}

#[cfg(test)]
mod knob_tests {
    use super::tests::StaticWorkload;
    use super::*;
    use amr_core::policies::Baseline;

    fn cfg16() -> SimConfig {
        let mut c = SimConfig::tuned(16);
        c.topology = Topology::new(16, 4);
        c
    }

    #[test]
    fn more_exchanges_per_step_cost_more_comm() {
        let mut prev = 0.0;
        for xs in [1u32, 2, 4] {
            let mut cfg = cfg16();
            cfg.exchanges_per_step = xs;
            let mut w = StaticWorkload::new(4, 10, 0.5);
            let rep = MacroSim::new(cfg).run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
            assert!(
                rep.phases.comm_ns > prev,
                "comm did not grow with exchanges: {} vs {}",
                rep.phases.comm_ns,
                prev
            );
            prev = rep.phases.comm_ns;
        }
    }

    #[test]
    fn higher_send_coupling_means_more_comm_wait() {
        let mut prev = -1.0;
        for coupling in [0.0f64, 0.5, 1.0] {
            let mut cfg = cfg16();
            cfg.send_coupling = coupling;
            let mut w = StaticWorkload::new(4, 10, 2.0);
            let rep = MacroSim::new(cfg).run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
            assert!(
                rep.phases.comm_ns >= prev,
                "comm fell as coupling rose: {} < {}",
                rep.phases.comm_ns,
                prev
            );
            prev = rep.phases.comm_ns;
        }
    }

    #[test]
    fn overlap_masks_coupled_waits() {
        // With strong coupling, masking must reduce comm; totals must be
        // monotone non-increasing in overlap.
        let mut prev = f64::INFINITY;
        for overlap in [0.0f64, 0.5, 1.0] {
            let mut cfg = cfg16();
            cfg.send_coupling = 1.0;
            cfg.overlap_efficiency = overlap;
            let mut w = StaticWorkload::new(4, 10, 2.0);
            let rep = MacroSim::new(cfg).run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange);
            assert!(
                rep.total_ns <= prev * 1.0001,
                "total rose with masking: {} vs {}",
                rep.total_ns,
                prev
            );
            prev = rep.total_ns;
        }
    }

    #[test]
    fn exchanges_scale_message_totals_linearly() {
        let count = |xs: u32| {
            let mut cfg = cfg16();
            cfg.exchanges_per_step = xs;
            let mut w = StaticWorkload::new(4, 10, 0.0);
            MacroSim::new(cfg)
                .run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange)
                .messages
                .mpi()
        };
        assert_eq!(count(2), 2 * count(1));
    }

    /// Regression for the degenerate-bandwidth overflow: a struct-literal
    /// episode with `nic_bandwidth_mult: 0.0` (bypassing the constructor
    /// asserts) used to drive `bytes_per_ns` to 0 mid-run and overflow the
    /// allreduce completion in debug builds. The boundary check now rejects
    /// the config before the run starts.
    #[test]
    #[should_panic(expected = "nic_bandwidth_mult")]
    fn zero_nic_bandwidth_multiplier_is_rejected_at_construction() {
        let mut cfg = cfg16();
        cfg.faults.episodes.push(crate::faults::FaultEpisode {
            onset_step: 2,
            recovery_step: 8,
            nodes: [1].into_iter().collect(),
            throttle_factor: 1.0,
            nic_bandwidth_mult: 0.0,
        });
        let _ = MacroSim::new(cfg);
    }

    #[test]
    #[should_panic(expected = "bytes_per_ns")]
    fn zero_fabric_bandwidth_is_rejected_at_construction() {
        let mut cfg = cfg16();
        cfg.network.fabric.bytes_per_ns = 0.0;
        let _ = MacroSim::new(cfg);
    }

    /// The service-facing constructor returns the same rejection as `Err`
    /// instead of panicking — one bad request must not kill a process
    /// hosting many sessions — and a `try_new` simulator runs identically
    /// to a `new` one.
    #[test]
    fn try_new_rejects_without_panicking_and_runs_identically() {
        use amr_core::policies::Lpt;
        let mut bad = cfg16();
        bad.network.fabric.bytes_per_ns = 0.0;
        let Err(err) = MacroSim::try_new(bad) else {
            panic!("degenerate bandwidth accepted");
        };
        assert!(err.contains("invalid SimConfig"), "{err}");
        assert!(err.contains("bytes_per_ns"), "{err}");

        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, 10, 1.0);
        let base = MacroSim::new(cfg16()).run(&mut w1, &Lpt, trig);
        let mut w2 = StaticWorkload::new(4, 10, 1.0);
        let fallible = MacroSim::try_new(cfg16())
            .unwrap()
            .try_run(&mut w2, &Lpt, trig)
            .unwrap();
        assert_eq!(fallible.total_ns.to_bits(), base.total_ns.to_bits());
        assert_eq!(fallible.messages, base.messages);
    }

    /// Tracing observes without perturbing, and the artifacts are populated:
    /// same virtual phases bit-for-bit, spans in the sink, counters and the
    /// sync-fraction gauge live in the registry.
    #[test]
    fn traced_run_matches_untraced_and_fills_artifacts() {
        use amr_core::policies::Lpt;
        use amr_telemetry::trace::{chrome_trace_json, collapsed_stacks};
        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, 10, 1.0);
        let base = MacroSim::new(cfg16()).run(&mut w1, &Lpt, trig);
        let mut w2 = StaticWorkload::new(4, 10, 1.0);
        let mut sim = MacroSim::new(cfg16());
        let handle = TraceHandle::new(1024);
        sim.set_trace(Some(handle.clone()));
        let traced = sim.run(&mut w2, &Lpt, trig);
        assert_eq!(
            traced.phases.sync_ns.to_bits(),
            base.phases.sync_ns.to_bits()
        );
        assert_eq!(
            traced.phases.comm_ns.to_bits(),
            base.phases.comm_ns.to_bits()
        );
        assert_eq!(traced.total_ns.to_bits(), base.total_ns.to_bits());
        assert_eq!(handle.metrics.counter(TraceCounter::Steps), 10);
        assert_eq!(handle.metrics.counter(TraceCounter::Collectives), 10);
        // Static mesh + OnMeshChange trigger: only the initial placement.
        assert_eq!(
            handle.metrics.counter(TraceCounter::Rebalances),
            traced.lb_invocations + 1
        );
        let sf = handle.metrics.gauge(TraceGauge::SyncFraction);
        assert!((0.0..1.0).contains(&sf), "sync fraction {sf}");
        let spans = handle.sink.snapshot();
        assert!(spans.iter().any(|s| s.phase == TracePhase::Collective));
        assert!(spans.iter().any(|s| s.phase == TracePhase::Exchange));
        assert!(spans.iter().any(|s| s.phase == TracePhase::Place));
        let json = chrome_trace_json(&spans);
        assert!(json.contains("\"name\":\"collective\""));
        assert!(collapsed_stacks(&spans).contains("amr;virtual;exchange"));
    }

    #[test]
    fn zero_threads_config_is_rejected() {
        let mut cfg = cfg16();
        cfg.threads = 0;
        assert!(cfg.validate().unwrap_err().contains("threads"));
    }

    /// The tentpole determinism proof at unit scale: every parallel phase —
    /// epoch fill, compute scatter, the fused ready/finish pass, shard
    /// rebuilds — follows the slot-ownership rule, so a multi-threaded run
    /// reproduces the serial oracle's virtual time **bit for bit** at any
    /// thread count, through mesh adaptation, a throttle episode with NIC
    /// degradation, and both graph paths (flat and sharded). Virtual phases
    /// and counters are compared; `total_ns`/`redist_ns` are excluded
    /// because redistribution charges real placement wall-clock.
    #[test]
    fn parallel_run_is_bitwise_identical_to_serial() {
        use super::tests::RefiningWorkload;
        use crate::faults::{FaultEpisode, FaultTimeline};
        use amr_core::policies::Lpt;
        let trig = RebalanceTrigger::OnMeshChange;
        let mk = |shards: usize, threads: usize| {
            let mut cfg = cfg16();
            cfg.num_shards = shards;
            cfg.threads = threads;
            cfg.faults = FaultTimeline::with_episode(
                FaultEpisode::throttle(3, 9, [1], 3.0).with_nic_degradation(0.6),
            );
            cfg
        };
        for shards in [0usize, 3] {
            let mut w = RefiningWorkload::new(12, 4);
            let base = MacroSim::new(mk(shards, 1)).run(&mut w, &Lpt, trig);
            for threads in [2usize, 4] {
                let mut w = RefiningWorkload::new(12, 4);
                let rep = MacroSim::new(mk(shards, threads)).run(&mut w, &Lpt, trig);
                assert_eq!(
                    rep.phases.compute_ns.to_bits(),
                    base.phases.compute_ns.to_bits(),
                    "compute diverged at {threads} threads, {shards} shards"
                );
                assert_eq!(
                    rep.phases.comm_ns.to_bits(),
                    base.phases.comm_ns.to_bits(),
                    "comm diverged at {threads} threads, {shards} shards"
                );
                assert_eq!(
                    rep.phases.sync_ns.to_bits(),
                    base.phases.sync_ns.to_bits(),
                    "sync diverged at {threads} threads, {shards} shards"
                );
                assert_eq!(
                    rep.halo_exchange_ns.to_bits(),
                    base.halo_exchange_ns.to_bits()
                );
                assert_eq!(&rep.messages, &base.messages);
                assert_eq!(rep.lb_invocations, base.lb_invocations);
                assert_eq!(rep.mesh_change_steps, base.mesh_change_steps);
                assert_eq!(rep.blocks_migrated, base.blocks_migrated);
                assert_eq!(rep.final_blocks, base.final_blocks);
                assert_eq!(rep.final_halo_blocks, base.final_halo_blocks);
            }
        }
    }

    /// Worker lanes observe parallel epoch fills without perturbing them: a
    /// traced 4-thread run matches the untraced one bit for bit, and the
    /// sink's snapshot carries host-track `Exchange` spans from lanes ≥ 1.
    #[test]
    fn traced_parallel_run_matches_and_records_worker_lanes() {
        use amr_core::policies::Lpt;
        let trig = RebalanceTrigger::OnMeshChange;
        let mk = || {
            let mut cfg = cfg16();
            cfg.threads = 4;
            cfg
        };
        let mut w1 = StaticWorkload::new(4, 8, 1.0);
        let base = MacroSim::new(mk()).run(&mut w1, &Lpt, trig);
        let mut w2 = StaticWorkload::new(4, 8, 1.0);
        let mut sim = MacroSim::new(mk());
        let handle = TraceHandle::new(1024);
        sim.set_trace(Some(handle.clone()));
        let traced = sim.run(&mut w2, &Lpt, trig);
        assert_eq!(traced.total_ns.to_bits(), base.total_ns.to_bits());
        assert_eq!(
            traced.phases.comm_ns.to_bits(),
            base.phases.comm_ns.to_bits()
        );
        // 16 ranks at 4 threads ⇒ 4 lanes, each with one span per epoch fill.
        assert_eq!(handle.sink.lane_count(), 4);
        let spans = handle.sink.snapshot();
        use amr_telemetry::trace::Track;
        assert!(
            spans
                .iter()
                .any(|s| s.lane >= 1 && s.track == Track::Host && s.phase == TracePhase::Exchange),
            "no worker-lane exchange spans in the snapshot"
        );
    }

    /// The new control-plane knobs go through the same boundary validation
    /// as the bandwidth regression above — rejected before a run can start.
    #[test]
    fn degenerate_control_plane_knobs_are_rejected() {
        let cases: Vec<(SimConfig, &str)> = vec![
            (
                {
                    let mut c = cfg16();
                    c.network.fabric_credit_bytes = 0;
                    c
                },
                "fabric_credit_bytes",
            ),
            (
                {
                    let mut c = cfg16();
                    c.network.congestion_backoff = -1.0;
                    c
                },
                "congestion_backoff",
            ),
            (
                {
                    let mut c = cfg16();
                    c.network.ack_loss_prob = 2.0;
                    c
                },
                "ack_loss_prob",
            ),
            (
                {
                    let mut c = cfg16();
                    c.network.shm_queue_size = 0;
                    c
                },
                "shm_queue_size",
            ),
            (
                {
                    let mut c = cfg16();
                    c.collective_payload_bytes = 0;
                    c
                },
                "collective_payload_bytes",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{err} does not mention {needle}");
        }
    }

    /// An *enabled but never exhausted* credit window adds exactly-0.0
    /// congestion terms everywhere, so its virtual time is bit-identical to
    /// the disabled default — the wiring itself costs nothing.
    #[test]
    fn idle_credit_window_is_bit_identical_to_disabled() {
        let trig = RebalanceTrigger::OnMeshChange;
        let mut w1 = StaticWorkload::new(4, 10, 1.0);
        let base = MacroSim::new(cfg16()).run(&mut w1, &Baseline, trig);
        let mut cfg = cfg16();
        cfg.network.fabric_credit_bytes = u64::MAX - 1; // enabled, unreachable
        cfg.network.congestion_backoff = 4.0;
        let mut w2 = StaticWorkload::new(4, 10, 1.0);
        let idle = MacroSim::new(cfg).run(&mut w2, &Baseline, trig);
        assert_eq!(idle.total_ns.to_bits(), base.total_ns.to_bits());
        assert_eq!(idle.phases.comm_ns.to_bits(), base.phases.comm_ns.to_bits());
        assert_eq!(idle.phases.sync_ns.to_bits(), base.phases.sync_ns.to_bits());
    }

    /// A window the epoch's hot links actually exceed charges the run:
    /// strictly more comm than the same run with credits disabled, and
    /// monotone — tightening the window never speeds anything up.
    #[test]
    fn exhausted_credit_window_charges_comm() {
        let trig = RebalanceTrigger::OnMeshChange;
        let run = |credit: u64| {
            let mut cfg = cfg16();
            if credit > 0 {
                cfg.network.fabric_credit_bytes = credit;
                cfg.network.congestion_backoff = 2.0;
            }
            let mut w = StaticWorkload::new(4, 10, 0.5);
            MacroSim::new(cfg).run(&mut w, &Baseline, trig)
        };
        let off = run(0);
        let loose = run(1 << 22);
        let tight = run(1 << 16);
        assert!(
            tight.phases.comm_ns > off.phases.comm_ns,
            "tight window {} !> uncongested {}",
            tight.phases.comm_ns,
            off.phases.comm_ns
        );
        assert!(tight.total_ns > off.total_ns);
        assert!(
            tight.total_ns >= loose.total_ns,
            "tightening the window sped the run up"
        );
    }

    /// Adaptive collective selection reads the feedback plane mid-run: under
    /// heavy sync pressure and a fat payload it abandons the binomial tree
    /// for a bandwidth-optimal algorithm and beats the fixed default, while
    /// the switching decision itself is thread-invariant (checked bitwise in
    /// `congested_adaptive_run_is_bitwise_identical_across_threads`).
    #[test]
    fn adaptive_collectives_switch_under_sync_pressure() {
        let trig = RebalanceTrigger::Never; // keep the imbalance (and sync) high
        let mk = |select: CollectiveSelect| {
            let mut cfg = cfg16();
            cfg.collectives = select;
            cfg.collective_payload_bytes = 1 << 20; // diagnostics-heavy dt vector
            cfg
        };
        let mut w1 = StaticWorkload::new(4, 20, 2.0);
        let mut fixed_sim = MacroSim::new(mk(CollectiveSelect::default()));
        let fixed = fixed_sim.run(&mut w1, &Baseline, trig);
        let mut w2 = StaticWorkload::new(4, 20, 2.0);
        let mut adaptive_sim = MacroSim::new(mk(CollectiveSelect::Adaptive));
        let adaptive = adaptive_sim.run(&mut w2, &Baseline, trig);
        // The skewed static mesh keeps measured sync share above threshold...
        let sf = adaptive_sim.feedback().gauge(TraceGauge::SyncFraction);
        assert!(sf > ADAPTIVE_SYNC_THRESHOLD, "sync fraction only {sf}");
        // ...and at 16 ranks with a 1 MiB payload the bandwidth-optimal
        // variants clearly beat the tree, so the switch must pay off.
        assert!(
            adaptive.total_ns < fixed.total_ns,
            "adaptive {} !< fixed binomial {}",
            adaptive.total_ns,
            fixed.total_ns
        );
        assert_ne!(
            collectives::cheapest_algo(16, 2_500, 1 << 20, 5.0),
            CollectiveAlgo::BinomialTree
        );
    }

    /// The full new control plane at once — congested fabric, adaptive
    /// collectives, sync-fraction trigger — stays on the slot-ownership
    /// rails: virtual time is bitwise identical at any thread count.
    #[test]
    fn congested_adaptive_run_is_bitwise_identical_across_threads() {
        use super::tests::RefiningWorkload;
        use amr_core::policies::Lpt;
        let trig = RebalanceTrigger::SyncFractionAbove(0.1);
        let mk = |threads: usize| {
            let mut cfg = cfg16();
            cfg.threads = threads;
            cfg.network = NetworkConfig {
                fabric_credit_bytes: 1 << 16,
                congestion_backoff: 2.0,
                ..NetworkConfig::tuned()
            };
            cfg.collectives = CollectiveSelect::Adaptive;
            cfg.collective_payload_bytes = 1 << 18;
            cfg
        };
        let mut w = RefiningWorkload::new(12, 4);
        let base = MacroSim::new(mk(1)).run(&mut w, &Lpt, trig);
        for threads in [2usize, 4] {
            let mut w = RefiningWorkload::new(12, 4);
            let rep = MacroSim::new(mk(threads)).run(&mut w, &Lpt, trig);
            assert_eq!(
                rep.phases.compute_ns.to_bits(),
                base.phases.compute_ns.to_bits(),
                "compute diverged at {threads} threads"
            );
            assert_eq!(
                rep.phases.comm_ns.to_bits(),
                base.phases.comm_ns.to_bits(),
                "comm diverged at {threads} threads"
            );
            assert_eq!(
                rep.phases.sync_ns.to_bits(),
                base.phases.sync_ns.to_bits(),
                "sync diverged at {threads} threads"
            );
            assert_eq!(rep.lb_invocations, base.lb_invocations);
            assert_eq!(&rep.messages, &base.messages);
        }
        // The measured-signal trigger actually fired beyond the initial
        // mesh-change placements (sync share over the refining run is high).
        assert!(
            base.lb_invocations > base.mesh_change_steps,
            "sync-fraction trigger never fired: {} invocations over {} mesh changes",
            base.lb_invocations,
            base.mesh_change_steps
        );
    }
}
