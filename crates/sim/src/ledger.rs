//! Observed exchange-byte accounting: the feedback half of the
//! measured-weight placement loop.
//!
//! The paper's §VIII finding is that *static* edge cuts — weights derived
//! from message sizes the topology implies — correlate poorly with runtime
//! communication. The placement side of the fix is
//! [`CutWeights::Observed`](amr_core::policies::CutWeights): partition on
//! what was measured, not what was modeled. This module is the measuring
//! instrument: an [`ExchangeByteLedger`] rides along with the macro-sim's
//! flat [`NeighborGraph`] and accumulates, per *directed relation*, the
//! bytes the simulated run actually pushed across it — ghost exchanges every
//! round, flux corrections once per step on fine→coarse faces.
//!
//! Design constraints, in order:
//!
//! - **O(1) on the step path.** Steps only bump pending round/step tallies
//!   ([`note_step`](ExchangeByteLedger::note_step)); the O(relations)
//!   materialization ([`flush`](ExchangeByteLedger::flush)) runs only when a
//!   consumer needs the numbers — before a rebalance or a remesh.
//! - **Delta-aware across remeshes.** A remesh invalidates the relation
//!   space, but most relations survive (both endpoints
//!   [`CostOrigin::Same`]). [`prepare_remesh`](ExchangeByteLedger::prepare_remesh)
//!   flushes against the dying graph and stages its layout;
//!   [`apply_remesh`](ExchangeByteLedger::apply_remesh) carries bytes onto
//!   the patched graph for surviving relations and zeros the rest, so
//!   observations persist through AMR instead of resetting every adapt.
//! - **Deterministic, and invisible to virtual time.** The ledger only
//!   *reads* simulation state — flushing from worker threads uses the same
//!   contiguous-ownership rule as [`crate::par`] (each task owns a block
//!   range, hence a disjoint CSR entry range), and the per-task byte totals
//!   are `u64` (associative), merged in task order. A run with the ledger on
//!   is bitwise identical in virtual time to the same run with it off until
//!   a policy actually consumes the weights (pinned by tests).

use amr_core::cost::CostOrigin;
use amr_mesh::pool::Disjoint;
use amr_mesh::{BlockSpec, Dim, NeighborGraph, NeighborKind};

use crate::exec::SimCommunicator;

/// Per-relation observed-byte accumulator for a flat [`NeighborGraph`].
#[derive(Debug, Default)]
pub struct ExchangeByteLedger {
    /// Observed bytes per directed relation, parallel to the graph's CSR
    /// entry space ([`NeighborGraph::row_start`] indexing).
    bytes: Vec<u64>,
    /// Ghost-exchange rounds noted since the last flush.
    pending_rounds: u64,
    /// Steps noted since the last flush (flux correction is once per step).
    pending_steps: u64,
    /// Staged layout of the pre-remesh graph: CSR offsets, neighbor block
    /// ids, and flushed bytes — consumed by [`apply_remesh`](Self::apply_remesh).
    old_offsets: Vec<u32>,
    old_neighbor: Vec<u32>,
    old_bytes: Vec<u64>,
    staged: bool,
    /// Lifetime tallies (reported via trace counters).
    flushes: u64,
    remaps: u64,
    observed_total: u64,
}

impl ExchangeByteLedger {
    /// Re-arm the ledger for a run over `graph`: one zeroed slot per
    /// directed relation, pendings cleared. Buffer capacity survives across
    /// runs.
    pub fn begin_run(&mut self, graph: &NeighborGraph) {
        self.bytes.clear();
        self.bytes.resize(graph.total_relations(), 0);
        self.pending_rounds = 0;
        self.pending_steps = 0;
        self.staged = false;
        self.flushes = 0;
        self.remaps = 0;
        self.observed_total = 0;
    }

    /// Note one simulated step carrying `exchanges` ghost rounds. O(1).
    #[inline]
    pub fn note_step(&mut self, exchanges: u32) {
        self.pending_rounds += exchanges as u64;
        self.pending_steps += 1;
    }

    /// Materialize pending rounds/steps into per-relation bytes: every
    /// relation gains `rounds · message_bytes(codim)`, and fine→coarse Face
    /// relations additionally gain `steps · message_bytes(1)/4` of flux
    /// correction — exactly the per-relation charges `fill_epoch` models.
    /// Serial; see [`flush_on`](Self::flush_on) for the pooled variant.
    pub fn flush(&mut self, graph: &NeighborGraph, spec: BlockSpec, dim: Dim) {
        if self.pending_rounds == 0 && self.pending_steps == 0 {
            return;
        }
        debug_assert_eq!(self.bytes.len(), graph.total_relations());
        let (rounds, steps) = (self.pending_rounds, self.pending_steps);
        let mut added = 0u64;
        let mut entry = 0usize;
        for (_, nbs) in graph.iter() {
            for n in nbs {
                let add = relation_bytes(spec, dim, n.kind, n.level_delta, rounds, steps);
                self.bytes[entry] = self.bytes[entry].saturating_add(add);
                added = added.saturating_add(add);
                entry += 1;
            }
        }
        self.finish_flush(added);
    }

    /// Pooled [`flush`](Self::flush): tasks own contiguous *block* ranges,
    /// hence pairwise-disjoint CSR entry ranges (`row_start(lo)..row_start(hi)`),
    /// so each byte slot has exactly one writer; the per-task `u64` totals
    /// are associative and merge in task order. Bitwise identical to the
    /// serial flush at any thread count.
    pub fn flush_on<C: SimCommunicator>(
        &mut self,
        comm: &C,
        graph: &NeighborGraph,
        spec: BlockSpec,
        dim: Dim,
        partials: &mut Vec<u64>,
    ) {
        if self.pending_rounds == 0 && self.pending_steps == 0 {
            return;
        }
        debug_assert_eq!(self.bytes.len(), graph.total_relations());
        let (rounds, steps) = (self.pending_rounds, self.pending_steps);
        let n = graph.num_blocks();
        let t_n = comm.threads().min(n).max(1);
        partials.clear();
        partials.resize(t_n, 0);
        let out = Disjoint::new(&mut self.bytes);
        comm.run_with(partials, |t, total| {
            let (blo, bhi) = (t * n / t_n, (t + 1) * n / t_n);
            let (elo, ehi) = (graph.row_start(blo), graph.row_start(bhi));
            // SAFETY: block ranges are pairwise disjoint and contiguous, so
            // the CSR entry ranges they map to are as well.
            let out = unsafe { out.slice(elo, ehi) };
            let mut entry = elo;
            for b in blo..bhi {
                for nb in graph.neighbors(amr_mesh::BlockId(b as u32)) {
                    let add = relation_bytes(spec, dim, nb.kind, nb.level_delta, rounds, steps);
                    out[entry - elo] = out[entry - elo].saturating_add(add);
                    *total = total.saturating_add(add);
                    entry += 1;
                }
            }
        });
        let added = partials.iter().fold(0u64, |a, &p| a.saturating_add(p));
        self.finish_flush(added);
    }

    fn finish_flush(&mut self, added: u64) {
        self.pending_rounds = 0;
        self.pending_steps = 0;
        self.flushes += 1;
        self.observed_total = self.observed_total.saturating_add(added);
    }

    /// Stage for a remesh: flush everything pending against the *current*
    /// (about-to-be-patched) graph, then capture its layout so
    /// [`apply_remesh`](Self::apply_remesh) can carry surviving relations'
    /// bytes across. Call before `patch_neighbor_graph`.
    pub fn prepare_remesh(&mut self, graph: &NeighborGraph, spec: BlockSpec, dim: Dim) {
        self.flush(graph, spec, dim);
        let n = graph.num_blocks();
        self.old_offsets.clear();
        self.old_offsets.push(0);
        self.old_neighbor.clear();
        for (_, nbs) in graph.iter() {
            for nb in nbs {
                self.old_neighbor.push(nb.block.index() as u32);
            }
            self.old_offsets.push(self.old_neighbor.len() as u32);
        }
        debug_assert_eq!(self.old_offsets.len(), n + 1);
        std::mem::swap(&mut self.old_bytes, &mut self.bytes);
        self.staged = true;
    }

    /// Rebuild the byte vector for the patched graph. A relation `a → b`
    /// keeps its observation iff both endpoints are [`CostOrigin::Same`]
    /// survivors and the old graph had the relation (binary search on the
    /// old sorted row); everything else — split children, merge parents,
    /// fresh blocks, relations the remesh created — starts at zero. Without
    /// origins there is no ancestry to follow: observations reset.
    pub fn apply_remesh(&mut self, origins: Option<&[CostOrigin]>, graph: &NeighborGraph) {
        debug_assert!(self.staged, "prepare_remesh must precede apply_remesh");
        self.staged = false;
        self.bytes.clear();
        self.bytes.resize(graph.total_relations(), 0);
        let Some(origins) = origins else {
            self.observed_total = 0;
            return;
        };
        if origins.len() != graph.num_blocks() {
            self.observed_total = 0;
            return;
        }
        self.remaps += 1;
        let mut carried = 0u64;
        let mut entry = 0usize;
        for (block, nbs) in graph.iter() {
            let src_old = match origins[block.index()] {
                CostOrigin::Same(i) => Some(i),
                _ => None,
            };
            for nb in nbs {
                if let (Some(sa), CostOrigin::Same(sb)) = (src_old, &origins[nb.block.index()]) {
                    if sa + 1 < self.old_offsets.len() {
                        let row = self.old_offsets[sa] as usize..self.old_offsets[sa + 1] as usize;
                        if let Ok(pos) = self.old_neighbor[row.clone()].binary_search(&(*sb as u32))
                        {
                            let b = self.old_bytes[row.start + pos];
                            self.bytes[entry] = b;
                            carried = carried.saturating_add(b);
                        }
                    }
                }
                entry += 1;
            }
        }
        // Lifetime total keeps only what survived (plus future flushes).
        self.observed_total = carried;
    }

    /// Per-relation observed bytes (valid after a flush; entry-parallel to
    /// the graph it was flushed against).
    pub fn bytes(&self) -> &[u64] {
        &self.bytes
    }

    /// True once at least one flush has landed nonzero observations —
    /// before that, the weights would be all zeros and the topological
    /// model is strictly more informative.
    pub fn has_observations(&self) -> bool {
        self.observed_total > 0
    }

    /// Lifetime flush count (trace counter feed).
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Lifetime successful remap count (trace counter feed).
    pub fn remaps(&self) -> u64 {
        self.remaps
    }

    /// Observed bytes currently represented in the ledger.
    pub fn observed_total(&self) -> u64 {
        self.observed_total
    }
}

/// Bytes one directed relation accumulates over `rounds` ghost rounds and
/// `steps` steps — mirrors the charges `fill_epoch` models: every relation
/// ships its codim message each round; fine→coarse faces add a quarter-face
/// flux correction once per step.
#[inline]
fn relation_bytes(
    spec: BlockSpec,
    dim: Dim,
    kind: NeighborKind,
    level_delta: i8,
    rounds: u64,
    steps: u64,
) -> u64 {
    let mut b = rounds.saturating_mul(spec.message_bytes(dim, kind.codim()));
    if level_delta == -1 && kind == NeighborKind::Face {
        b = b.saturating_add(steps.saturating_mul(spec.message_bytes(dim, 1) / 4));
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PooledCommunicator;
    use amr_mesh::{AmrMesh, MeshConfig};

    fn mesh() -> AmrMesh {
        AmrMesh::new(MeshConfig::from_cells(Dim::D3, (64, 64, 64), 1))
    }

    #[test]
    fn flush_charges_every_relation_once_per_round() {
        let m = mesh();
        let g = m.neighbor_graph();
        let spec = m.config().spec;
        let dim = m.config().dim;
        let mut led = ExchangeByteLedger::default();
        led.begin_run(&g);
        led.note_step(3);
        led.note_step(3);
        led.flush(&g, spec, dim);
        assert!(led.has_observations());
        let mut entry = 0usize;
        for (_, nbs) in g.iter() {
            for n in nbs {
                let expect = relation_bytes(spec, dim, n.kind, n.level_delta, 6, 2);
                assert_eq!(led.bytes()[entry], expect);
                entry += 1;
            }
        }
    }

    #[test]
    fn parallel_flush_is_bitwise_identical() {
        let m = mesh();
        let g = m.neighbor_graph();
        let spec = m.config().spec;
        let dim = m.config().dim;
        let mut serial = ExchangeByteLedger::default();
        serial.begin_run(&g);
        serial.note_step(3);
        serial.flush(&g, spec, dim);
        for threads in [2usize, 4] {
            let comm = PooledCommunicator::new(threads);
            let mut par = ExchangeByteLedger::default();
            par.begin_run(&g);
            par.note_step(3);
            let mut partials = Vec::new();
            par.flush_on(&comm, &g, spec, dim, &mut partials);
            assert_eq!(serial.bytes(), par.bytes(), "threads = {threads}");
            assert_eq!(serial.observed_total(), par.observed_total());
        }
    }

    #[test]
    fn flush_is_lazy_and_idempotent() {
        let m = mesh();
        let g = m.neighbor_graph();
        let (spec, dim) = (m.config().spec, m.config().dim);
        let mut led = ExchangeByteLedger::default();
        led.begin_run(&g);
        led.flush(&g, spec, dim); // nothing pending: no flush recorded
        assert_eq!(led.flushes(), 0);
        led.note_step(1);
        led.flush(&g, spec, dim);
        let snapshot: Vec<u64> = led.bytes().to_vec();
        led.flush(&g, spec, dim); // still nothing new pending
        assert_eq!(led.bytes(), &snapshot[..]);
        assert_eq!(led.flushes(), 1);
    }

    #[test]
    fn remesh_with_identity_origins_carries_all_bytes() {
        let m = mesh();
        let g = m.neighbor_graph();
        let (spec, dim) = (m.config().spec, m.config().dim);
        let mut led = ExchangeByteLedger::default();
        led.begin_run(&g);
        led.note_step(3);
        led.prepare_remesh(&g, spec, dim);
        let before: Vec<u64> = led.old_bytes.clone();
        let origins: Vec<CostOrigin> = (0..g.num_blocks()).map(CostOrigin::Same).collect();
        led.apply_remesh(Some(&origins), &g);
        assert_eq!(led.bytes(), &before[..], "identity remap must be lossless");
        assert_eq!(led.remaps(), 1);
    }

    #[test]
    fn remesh_without_origins_resets() {
        let m = mesh();
        let g = m.neighbor_graph();
        let (spec, dim) = (m.config().spec, m.config().dim);
        let mut led = ExchangeByteLedger::default();
        led.begin_run(&g);
        led.note_step(1);
        led.prepare_remesh(&g, spec, dim);
        led.apply_remesh(None, &g);
        assert!(!led.has_observations());
        assert!(led.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn remesh_zeroes_fresh_blocks_only() {
        let m = mesh();
        let g = m.neighbor_graph();
        let (spec, dim) = (m.config().spec, m.config().dim);
        let mut led = ExchangeByteLedger::default();
        led.begin_run(&g);
        led.note_step(2);
        led.prepare_remesh(&g, spec, dim);
        // Pretend block 0 was replaced: everything touching it resets.
        let origins: Vec<CostOrigin> = (0..g.num_blocks())
            .map(|i| {
                if i == 0 {
                    CostOrigin::Fresh
                } else {
                    CostOrigin::Same(i)
                }
            })
            .collect();
        led.apply_remesh(Some(&origins), &g);
        let mut entry = 0usize;
        for (block, nbs) in g.iter() {
            for n in nbs {
                let touches0 = block.index() == 0 || n.block.index() == 0;
                if touches0 {
                    assert_eq!(led.bytes()[entry], 0, "relations of a fresh block reset");
                } else {
                    assert!(led.bytes()[entry] > 0, "surviving relations carry");
                }
                entry += 1;
            }
        }
    }
}
