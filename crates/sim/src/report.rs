//! Run reports: the phase decomposition the paper's Fig. 6a plots.

use serde::{Deserialize, Serialize};

/// Per-run phase totals, expressed as *mean time per rank* in nanoseconds so
/// that the components sum to (approximately) the run's wall time:
/// `compute + comm + sync + redist ≈ total`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Physics/mesh kernels.
    pub compute_ns: f64,
    /// Boundary communication: send dispatch, receive service, queue
    /// contention, and point-to-point wait.
    pub comm_ns: f64,
    /// Blocking-collective wait (the paper's "synchronization").
    pub sync_ns: f64,
    /// Redistribution: placement computation + block migration.
    pub redist_ns: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.comm_ns + self.sync_ns + self.redist_ns
    }

    /// Fraction of total spent in a synchronization.
    pub fn sync_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0.0 {
            0.0
        } else {
            self.sync_ns / t
        }
    }

    /// Non-compute time (the paper reports CPLX's reduction of this too).
    pub fn non_compute_ns(&self) -> f64 {
        self.comm_ns + self.sync_ns + self.redist_ns
    }

    /// Add another breakdown (accumulation across steps).
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.compute_ns += other.compute_ns;
        self.comm_ns += other.comm_ns;
        self.sync_ns += other.sync_ns;
        self.redist_ns += other.redist_ns;
    }

    /// Scale all phases (e.g. ns → seconds or per-rank normalization).
    pub fn scaled(&self, f: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            compute_ns: self.compute_ns * f,
            comm_ns: self.comm_ns * f,
            sync_ns: self.sync_ns * f,
            redist_ns: self.redist_ns * f,
        }
    }
}

/// Message-volume totals by locality class, accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageTotals {
    /// Same-rank memcpys (not MPI-visible).
    pub intra: u64,
    /// Same-node MPI messages (shared memory).
    pub local: u64,
    /// Cross-node MPI messages (fabric).
    pub remote: u64,
}

impl MessageTotals {
    /// MPI-visible messages.
    pub fn mpi(&self) -> u64 {
        self.local + self.remote
    }

    /// Remote share of MPI-visible messages.
    pub fn remote_fraction(&self) -> f64 {
        if self.mpi() == 0 {
            0.0
        } else {
            self.remote as f64 / self.mpi() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let p = PhaseBreakdown {
            compute_ns: 50.0,
            comm_ns: 10.0,
            sync_ns: 35.0,
            redist_ns: 5.0,
        };
        assert_eq!(p.total_ns(), 100.0);
        assert!((p.sync_fraction() - 0.35).abs() < 1e-12);
        assert_eq!(p.non_compute_ns(), 50.0);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = PhaseBreakdown::default();
        let b = PhaseBreakdown {
            compute_ns: 1.0,
            comm_ns: 2.0,
            sync_ns: 3.0,
            redist_ns: 4.0,
        };
        a.accumulate(&b);
        a.accumulate(&b);
        assert_eq!(a.total_ns(), 20.0);
        let half = a.scaled(0.5);
        assert_eq!(half.total_ns(), 10.0);
    }

    #[test]
    fn message_totals() {
        let m = MessageTotals {
            intra: 10,
            local: 30,
            remote: 70,
        };
        assert_eq!(m.mpi(), 100);
        assert!((m.remote_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(MessageTotals::default().remote_fraction(), 0.0);
    }
}

impl PhaseBreakdown {
    /// Render as a proportional ASCII bar (`#` compute, `~` comm, `=` sync,
    /// `%` redist), the terminal cousin of Fig. 6a's stacked bars.
    pub fn render_bar(&self, width: usize) -> String {
        let total = self.total_ns();
        if total <= 0.0 || width == 0 {
            return String::new();
        }
        let mut bar = String::with_capacity(width);
        let segments = [
            (self.compute_ns, '#'),
            (self.comm_ns, '~'),
            (self.sync_ns, '='),
            (self.redist_ns, '%'),
        ];
        let mut emitted = 0usize;
        for (i, (value, ch)) in segments.iter().enumerate() {
            let cells = if i == segments.len() - 1 {
                width - emitted // last segment absorbs rounding
            } else {
                (value / total * width as f64).round() as usize
            };
            let cells = cells.min(width - emitted);
            bar.extend(std::iter::repeat_n(*ch, cells));
            emitted += cells;
        }
        bar
    }
}

#[cfg(test)]
mod bar_tests {
    use super::*;

    #[test]
    fn bar_is_exactly_width_and_proportional() {
        let p = PhaseBreakdown {
            compute_ns: 50.0,
            comm_ns: 10.0,
            sync_ns: 35.0,
            redist_ns: 5.0,
        };
        let bar = p.render_bar(40);
        assert_eq!(bar.len(), 40);
        assert_eq!(bar.matches('#').count(), 20);
        assert_eq!(bar.matches('~').count(), 4);
        assert_eq!(bar.matches('=').count(), 14);
        assert_eq!(bar.matches('%').count(), 2);
    }

    #[test]
    fn degenerate_bars() {
        assert_eq!(PhaseBreakdown::default().render_bar(10), "");
        let p = PhaseBreakdown {
            compute_ns: 1.0,
            ..PhaseBreakdown::default()
        };
        assert_eq!(p.render_bar(0), "");
        let bar = p.render_bar(8);
        assert_eq!(bar, "########");
    }
}
