//! Fault injection: the fail-slow hardware and OS-noise behaviors the paper
//! had to diagnose before placement work could start (§IV-A).
//!
//! * **Thermal throttling** — whole nodes compute slower by a factor
//!   (the paper measured ≈4×), affecting all 16 ranks of the node at once.
//!   This cluster signature is what [`crate::health`] and
//!   `amr_telemetry::anomaly::detect_throttling` look for.
//! * **OS jitter** — small multiplicative noise on every compute kernel,
//!   always present even on healthy nodes (Petrini et al.'s classic
//!   "missing supercomputer performance").
//!
//! Faults are *dynamic*: the paper's fail-slow nodes appeared mid-campaign,
//! not at job launch. A [`FaultTimeline`] layers step-bounded
//! [`FaultEpisode`]s (onset/recovery, throttle factor, optional degraded-NIC
//! bandwidth) on top of a static base [`FaultConfig`]; the simulator samples
//! the active multiplier per step, so a run can start healthy, degrade at
//! one-third, and recover at two-thirds — the scenario the online detection
//! loop ([`crate::health`], `amr_telemetry::anomaly`) has to catch.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Static fault-injection configuration: node throttling that holds for the
/// whole run, plus ever-present OS jitter. For mid-run onset/recovery wrap
/// it in a [`FaultTimeline`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Nodes whose ranks compute `throttle_factor`× slower.
    pub throttled_nodes: BTreeSet<usize>,
    /// Compute-time inflation on throttled nodes (the paper observed ~4×).
    pub throttle_factor: f64,
    /// Uniform multiplicative compute jitter half-width: each kernel's time
    /// is scaled by `1 + U(-jitter, +jitter)`.
    pub compute_jitter: f64,
}

/// A derived `Default` would zero `throttle_factor`, making any node listed
/// in `throttled_nodes` compute in *zero* time — the opposite of a fault.
/// The default is the healthy configuration instead.
impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::healthy()
    }
}

impl FaultConfig {
    /// No faults, light OS jitter — the post-§IV "tuned and healthy" state.
    pub fn healthy() -> FaultConfig {
        FaultConfig {
            throttled_nodes: BTreeSet::new(),
            throttle_factor: 1.0,
            compute_jitter: 0.02,
        }
    }

    /// Throttle the given nodes at the paper's observed 4× inflation.
    pub fn with_throttled_nodes(nodes: impl IntoIterator<Item = usize>) -> FaultConfig {
        FaultConfig {
            throttled_nodes: nodes.into_iter().collect(),
            throttle_factor: 4.0,
            ..FaultConfig::healthy()
        }
    }

    /// Compute-time multiplier for a rank on `node`, sampling jitter from
    /// `rng`.
    pub fn compute_multiplier<R: Rng>(&self, node: usize, rng: &mut R) -> f64 {
        let base = if self.throttled_nodes.contains(&node) {
            self.throttle_factor
        } else {
            1.0
        };
        apply_jitter(base, self.compute_jitter, rng)
    }

    /// Any node-level faults configured?
    pub fn any_throttled(&self) -> bool {
        !self.throttled_nodes.is_empty() && self.throttle_factor > 1.0
    }

    /// Reject configurations that would deflate compute time or poison the
    /// cost model with non-finite multipliers. Struct-literal construction
    /// bypasses the constructor asserts; this is the boundary check the
    /// simulator applies before a run starts.
    pub fn validate(&self) -> Result<(), String> {
        if !self.throttle_factor.is_finite() || self.throttle_factor < 1.0 {
            return Err(format!(
                "throttle_factor must be finite and >= 1 (got {})",
                self.throttle_factor
            ));
        }
        if !self.compute_jitter.is_finite() || !(0.0..1.0).contains(&self.compute_jitter) {
            return Err(format!(
                "compute_jitter must be finite and in [0, 1) (got {})",
                self.compute_jitter
            ));
        }
        Ok(())
    }
}

/// Scale `base` by one jitter draw (shared by the static and timeline paths
/// so both consume the RNG identically).
#[inline]
fn apply_jitter<R: Rng>(base: f64, jitter: f64, rng: &mut R) -> f64 {
    if jitter > 0.0 {
        base * (1.0 + rng.gen_range(-jitter..jitter))
    } else {
        base
    }
}

/// How the simulated run reacts when the online detector flags a node
/// (§IV-A's operational spectrum, from ignoring the fault to blacklisting
/// the machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultResponse {
    /// Ignore detector verdicts; placement stays fault-oblivious.
    #[default]
    Oblivious,
    /// Feed measured per-rank speeds into the placement engine as
    /// capacities, so slow nodes receive proportionally less work.
    Reweight,
    /// Blacklist flagged nodes and re-host their ranks on spare machines
    /// (charging the state migration as fabric traffic); falls back to
    /// [`FaultResponse::Reweight`] when the spare pool is exhausted.
    PruneAndMigrate,
}

/// One step-bounded fault episode: the named nodes degrade at `onset_step`
/// and recover at `recovery_step` (exclusive; `u64::MAX` = never).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEpisode {
    /// First step (inclusive) on which the episode is active.
    pub onset_step: u64,
    /// First step on which the nodes are healthy again (exclusive bound).
    pub recovery_step: u64,
    /// Nodes affected while the episode is active.
    pub nodes: BTreeSet<usize>,
    /// Compute-time inflation on the affected nodes (≥ 1; the paper's
    /// thermal throttling was ≈4×).
    pub throttle_factor: f64,
    /// Multiplier on the affected nodes' fabric bandwidth (≤ 1.0; 1.0 means
    /// the NIC is unaffected). Applied in the `NetworkConfig` dispatch /
    /// service path for messages touching these nodes.
    pub nic_bandwidth_mult: f64,
}

impl FaultEpisode {
    /// A pure compute-throttle episode (NIC unaffected).
    pub fn throttle(
        onset_step: u64,
        recovery_step: u64,
        nodes: impl IntoIterator<Item = usize>,
        throttle_factor: f64,
    ) -> FaultEpisode {
        assert!(
            onset_step < recovery_step,
            "episode must have positive span"
        );
        assert!(throttle_factor >= 1.0, "throttle factor must be >= 1");
        FaultEpisode {
            onset_step,
            recovery_step,
            nodes: nodes.into_iter().collect(),
            throttle_factor,
            nic_bandwidth_mult: 1.0,
        }
    }

    /// Add NIC degradation to the episode (`mult` in (0, 1]).
    pub fn with_nic_degradation(mut self, mult: f64) -> FaultEpisode {
        assert!(
            mult > 0.0 && mult <= 1.0,
            "NIC multiplier must be in (0, 1]"
        );
        self.nic_bandwidth_mult = mult;
        self
    }

    /// Boundary check for episodes built via struct literals (which skip the
    /// constructor asserts): spans must be positive, throttle factors finite
    /// and >= 1, and the NIC multiplier finite in (0, 1]. A multiplier of 0
    /// would drive fabric bandwidth to zero and saturate every allreduce.
    pub fn validate(&self) -> Result<(), String> {
        if self.onset_step >= self.recovery_step {
            return Err(format!(
                "episode span [{}, {}) is empty",
                self.onset_step, self.recovery_step
            ));
        }
        if !self.throttle_factor.is_finite() || self.throttle_factor < 1.0 {
            return Err(format!(
                "episode throttle_factor must be finite and >= 1 (got {})",
                self.throttle_factor
            ));
        }
        if !self.nic_bandwidth_mult.is_finite()
            || self.nic_bandwidth_mult <= 0.0
            || self.nic_bandwidth_mult > 1.0
        {
            return Err(format!(
                "episode nic_bandwidth_mult must be finite and in (0, 1] (got {})",
                self.nic_bandwidth_mult
            ));
        }
        Ok(())
    }

    /// Is the episode active at `step`?
    #[inline]
    pub fn active_at(&self, step: u64) -> bool {
        step >= self.onset_step && step < self.recovery_step
    }

    /// Does the episode degrade the named node at `step`?
    #[inline]
    pub fn affects(&self, step: u64, node: usize) -> bool {
        self.active_at(step) && self.nodes.contains(&node)
    }
}

/// Dynamic fault schedule for a simulated run: a static base config plus
/// step-bounded episodes. With no episodes this is exactly the base config
/// (same multipliers, same RNG consumption), so zero-fault runs reproduce
/// the static-fault behavior bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTimeline {
    /// Faults present for the entire run (plus the jitter model).
    pub base: FaultConfig,
    /// Step-bounded degradation episodes layered on top.
    pub episodes: Vec<FaultEpisode>,
}

impl Default for FaultTimeline {
    fn default() -> FaultTimeline {
        FaultTimeline::healthy()
    }
}

impl From<FaultConfig> for FaultTimeline {
    fn from(base: FaultConfig) -> FaultTimeline {
        FaultTimeline {
            base,
            episodes: Vec::new(),
        }
    }
}

impl FaultTimeline {
    /// Healthy base, no episodes.
    pub fn healthy() -> FaultTimeline {
        FaultConfig::healthy().into()
    }

    /// Healthy base plus one episode.
    pub fn with_episode(episode: FaultEpisode) -> FaultTimeline {
        FaultTimeline {
            base: FaultConfig::healthy(),
            episodes: vec![episode],
        }
    }

    /// Append an episode.
    pub fn push_episode(&mut self, episode: FaultEpisode) -> &mut Self {
        self.episodes.push(episode);
        self
    }

    /// Validate the base config and every episode; see
    /// [`FaultEpisode::validate`]. Called by `SimConfig::validate` before a
    /// simulated run so degenerate multipliers are rejected up front rather
    /// than saturating the collective model mid-run.
    pub fn validate(&self) -> Result<(), String> {
        self.base.validate().map_err(|e| format!("base: {e}"))?;
        for (i, e) in self.episodes.iter().enumerate() {
            e.validate().map_err(|msg| format!("episode {i}: {msg}"))?;
        }
        Ok(())
    }

    /// No episodes scheduled: fault state is constant over the run.
    #[inline]
    pub fn is_static(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Any fault at all (base or episodic)?
    pub fn any_faults(&self) -> bool {
        self.base.any_throttled()
            || self
                .episodes
                .iter()
                .any(|e| e.throttle_factor > 1.0 || e.nic_bandwidth_mult < 1.0)
    }

    /// Does any episode degrade NIC bandwidth? (Lets the simulator skip the
    /// per-rank bandwidth pass entirely on compute-only timelines.)
    pub fn any_nic_degradation(&self) -> bool {
        self.episodes.iter().any(|e| e.nic_bandwidth_mult < 1.0)
    }

    /// Compute-time multiplier for a rank on `node` at `step`, sampling
    /// jitter from `rng`. Consumes exactly one jitter draw — the same as the
    /// static [`FaultConfig::compute_multiplier`] — regardless of how many
    /// episodes are active.
    pub fn compute_multiplier<R: Rng>(&self, step: u64, node: usize, rng: &mut R) -> f64 {
        let mut base = if self.base.throttled_nodes.contains(&node) {
            self.base.throttle_factor
        } else {
            1.0
        };
        for e in &self.episodes {
            if e.affects(step, node) {
                base *= e.throttle_factor;
            }
        }
        apply_jitter(base, self.base.compute_jitter, rng)
    }

    /// NIC *slowdown* (≥ 1.0) for `node` at `step`: the reciprocal of the
    /// composed bandwidth multipliers of all active episodes naming the
    /// node. 1.0 when the NIC is healthy.
    pub fn nic_slowdown(&self, step: u64, node: usize) -> f64 {
        let mut bw = 1.0f64;
        for e in &self.episodes {
            if e.nic_bandwidth_mult < 1.0 && e.affects(step, node) {
                bw *= e.nic_bandwidth_mult;
            }
        }
        1.0 / bw
    }

    /// Nodes with an active compute throttle at `step` (base + episodes),
    /// collected into `out` (cleared, sorted, deduplicated).
    pub fn throttled_nodes_at(&self, step: u64, out: &mut Vec<usize>) {
        out.clear();
        if self.base.any_throttled() {
            out.extend(self.base.throttled_nodes.iter().copied());
        }
        for e in &self.episodes {
            if e.active_at(step) && e.throttle_factor > 1.0 {
                out.extend(e.nodes.iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Snapshot of the fault state at `step` as a static [`FaultConfig`]
    /// (compute throttling only; used by step-scoped health probes). The
    /// throttle factor is the maximum active factor — a probe cares about
    /// the worst case.
    pub fn config_at(&self, step: u64) -> FaultConfig {
        let mut cfg = self.base.clone();
        for e in &self.episodes {
            if e.active_at(step) && e.throttle_factor > 1.0 {
                cfg.throttled_nodes.extend(e.nodes.iter().copied());
                cfg.throttle_factor = cfg.throttle_factor.max(e.throttle_factor);
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn healthy_multiplier_near_one() {
        let f = FaultConfig::healthy();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = f.compute_multiplier(3, &mut rng);
            assert!((0.9..1.1).contains(&m));
        }
        assert!(!f.any_throttled());
    }

    #[test]
    fn throttled_node_inflates() {
        let f = FaultConfig::with_throttled_nodes([2]);
        let mut rng = StdRng::seed_from_u64(2);
        let healthy = f.compute_multiplier(0, &mut rng);
        let slow = f.compute_multiplier(2, &mut rng);
        assert!(slow > 3.5 && slow < 4.5);
        assert!(healthy < 1.1);
        assert!(f.any_throttled());
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let f = FaultConfig {
            compute_jitter: 0.0,
            ..FaultConfig::with_throttled_nodes([1])
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(f.compute_multiplier(1, &mut rng), 4.0);
        assert_eq!(f.compute_multiplier(0, &mut rng), 1.0);
    }

    /// Regression: the old derived `Default` yielded `throttle_factor: 0.0`,
    /// so a default config with `throttled_nodes` set made those nodes
    /// compute in zero time.
    #[test]
    fn default_is_healthy_not_zero_throttle() {
        let d = FaultConfig::default();
        assert_eq!(d, FaultConfig::healthy());
        assert_eq!(d.throttle_factor, 1.0);
        // Even if someone adds nodes to a default config, the multiplier
        // must never deflate compute time.
        let cfg = FaultConfig {
            throttled_nodes: [1].into_iter().collect(),
            compute_jitter: 0.0,
            ..FaultConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(cfg.compute_multiplier(1, &mut rng), 1.0);
        assert_eq!(FaultTimeline::default(), FaultTimeline::healthy());
    }

    #[test]
    fn empty_timeline_matches_static_config_bitwise() {
        let cfg = FaultConfig::with_throttled_nodes([1, 3]);
        let tl: FaultTimeline = cfg.clone().into();
        assert!(tl.is_static());
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for step in 0..20u64 {
            for node in 0..5 {
                let x = cfg.compute_multiplier(node, &mut a);
                let y = tl.compute_multiplier(step, node, &mut b);
                assert_eq!(x.to_bits(), y.to_bits(), "step {step} node {node}");
            }
        }
    }

    #[test]
    fn episode_bounds_are_half_open() {
        let tl = FaultTimeline::with_episode(FaultEpisode::throttle(10, 20, [2], 4.0));
        let mut rng = StdRng::seed_from_u64(5);
        // Kill jitter for exact checks.
        let mut tl = tl;
        tl.base.compute_jitter = 0.0;
        assert_eq!(tl.compute_multiplier(9, 2, &mut rng), 1.0);
        assert_eq!(tl.compute_multiplier(10, 2, &mut rng), 4.0);
        assert_eq!(tl.compute_multiplier(19, 2, &mut rng), 4.0);
        assert_eq!(tl.compute_multiplier(20, 2, &mut rng), 1.0);
        // Unaffected node stays healthy mid-episode.
        assert_eq!(tl.compute_multiplier(15, 0, &mut rng), 1.0);
        assert!(tl.any_faults());
        assert!(!tl.any_nic_degradation());
    }

    #[test]
    fn nic_degradation_composes_and_reports() {
        let mut tl = FaultTimeline::healthy();
        tl.push_episode(FaultEpisode::throttle(5, 15, [1], 4.0).with_nic_degradation(0.5));
        tl.push_episode(FaultEpisode::throttle(10, 20, [1], 1.0).with_nic_degradation(0.5));
        assert!(tl.any_nic_degradation());
        assert_eq!(tl.nic_slowdown(0, 1), 1.0);
        assert_eq!(tl.nic_slowdown(7, 1), 2.0);
        assert_eq!(tl.nic_slowdown(12, 1), 4.0); // both episodes active
        assert_eq!(tl.nic_slowdown(17, 1), 2.0);
        assert_eq!(tl.nic_slowdown(12, 0), 1.0); // other nodes unaffected
    }

    #[test]
    fn validate_rejects_degenerate_multipliers() {
        assert!(FaultTimeline::healthy().validate().is_ok());
        let mut tl = FaultTimeline::healthy();
        tl.push_episode(FaultEpisode::throttle(5, 15, [1], 4.0).with_nic_degradation(0.1));
        assert!(tl.validate().is_ok());

        // Struct-literal episode with a zeroed NIC multiplier: the PR-4
        // regression path that drove fabric bandwidth to 0 mid-run.
        let bad = FaultEpisode {
            onset_step: 0,
            recovery_step: 10,
            nodes: [1].into_iter().collect(),
            throttle_factor: 1.0,
            nic_bandwidth_mult: 0.0,
        };
        assert!(bad.validate().is_err());
        let mut tl = FaultTimeline::healthy();
        tl.push_episode(bad);
        assert!(tl.validate().unwrap_err().contains("nic_bandwidth_mult"));

        for factor in [0.5, 0.0, f64::NAN, f64::INFINITY] {
            let cfg = FaultConfig {
                throttle_factor: factor,
                ..FaultConfig::healthy()
            };
            assert!(cfg.validate().is_err(), "factor {factor} passed");
        }
        let cfg = FaultConfig {
            compute_jitter: 1.5,
            ..FaultConfig::healthy()
        };
        assert!(cfg.validate().is_err());
        let empty_span = FaultEpisode {
            recovery_step: 5,
            ..FaultEpisode::throttle(5, 6, [0], 2.0)
        };
        assert!(empty_span.validate().is_err());
    }

    #[test]
    fn throttled_nodes_at_merges_base_and_episodes() {
        let mut tl: FaultTimeline = FaultConfig::with_throttled_nodes([7]).into();
        tl.push_episode(FaultEpisode::throttle(3, 6, [2, 4], 4.0));
        let mut out = vec![99; 4]; // stale pooled buffer
        tl.throttled_nodes_at(0, &mut out);
        assert_eq!(out, vec![7]);
        tl.throttled_nodes_at(4, &mut out);
        assert_eq!(out, vec![2, 4, 7]);
        let snap = tl.config_at(4);
        assert_eq!(
            snap.throttled_nodes.iter().copied().collect::<Vec<_>>(),
            vec![2, 4, 7]
        );
        assert_eq!(snap.throttle_factor, 4.0);
    }
}
