//! Fault injection: the fail-slow hardware and OS-noise behaviors the paper
//! had to diagnose before placement work could start (§IV-A).
//!
//! * **Thermal throttling** — whole nodes compute slower by a factor
//!   (the paper measured ≈4×), affecting all 16 ranks of the node at once.
//!   This cluster signature is what [`crate::health`] and
//!   `amr_telemetry::anomaly::detect_throttling` look for.
//! * **OS jitter** — small multiplicative noise on every compute kernel,
//!   always present even on healthy nodes (Petrini et al.'s classic
//!   "missing supercomputer performance").

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fault-injection configuration for a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultConfig {
    /// Nodes whose ranks compute `throttle_factor`× slower.
    pub throttled_nodes: BTreeSet<usize>,
    /// Compute-time inflation on throttled nodes (the paper observed ~4×).
    pub throttle_factor: f64,
    /// Uniform multiplicative compute jitter half-width: each kernel's time
    /// is scaled by `1 + U(-jitter, +jitter)`.
    pub compute_jitter: f64,
}

impl FaultConfig {
    /// No faults, light OS jitter — the post-§IV "tuned and healthy" state.
    pub fn healthy() -> FaultConfig {
        FaultConfig {
            throttled_nodes: BTreeSet::new(),
            throttle_factor: 1.0,
            compute_jitter: 0.02,
        }
    }

    /// Throttle the given nodes at the paper's observed 4× inflation.
    pub fn with_throttled_nodes(nodes: impl IntoIterator<Item = usize>) -> FaultConfig {
        FaultConfig {
            throttled_nodes: nodes.into_iter().collect(),
            throttle_factor: 4.0,
            ..FaultConfig::healthy()
        }
    }

    /// Compute-time multiplier for a rank on `node`, sampling jitter from
    /// `rng`.
    pub fn compute_multiplier<R: Rng>(&self, node: usize, rng: &mut R) -> f64 {
        let base = if self.throttled_nodes.contains(&node) {
            self.throttle_factor
        } else {
            1.0
        };
        if self.compute_jitter > 0.0 {
            base * (1.0 + rng.gen_range(-self.compute_jitter..self.compute_jitter))
        } else {
            base
        }
    }

    /// Any node-level faults configured?
    pub fn any_throttled(&self) -> bool {
        !self.throttled_nodes.is_empty() && self.throttle_factor > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn healthy_multiplier_near_one() {
        let f = FaultConfig::healthy();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let m = f.compute_multiplier(3, &mut rng);
            assert!((0.9..1.1).contains(&m));
        }
        assert!(!f.any_throttled());
    }

    #[test]
    fn throttled_node_inflates() {
        let f = FaultConfig::with_throttled_nodes([2]);
        let mut rng = StdRng::seed_from_u64(2);
        let healthy = f.compute_multiplier(0, &mut rng);
        let slow = f.compute_multiplier(2, &mut rng);
        assert!(slow > 3.5 && slow < 4.5);
        assert!(healthy < 1.1);
        assert!(f.any_throttled());
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let f = FaultConfig {
            compute_jitter: 0.0,
            ..FaultConfig::with_throttled_nodes([1])
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(f.compute_multiplier(1, &mut rng), 4.0);
        assert_eq!(f.compute_multiplier(0, &mut rng), 1.0);
    }
}
