//! # amr-sim — a discrete-event cluster simulator for AMR placement studies
//!
//! The paper ran on a 600-node research cluster (16-core Xeons, 40 Gbps
//! QLogic fabric, MVAPICH2 + PSM). This crate replaces that physical
//! substrate with a simulator that reproduces the *mechanisms* the paper's
//! experiments exercise:
//!
//! * [`topology`] — nodes × ranks-per-node layout (16 ranks/node in the
//!   paper); placement locality is judged against it.
//! * [`network`] — a two-path communication cost model: intra-node shared
//!   memory vs inter-node fabric, each with latency + bandwidth, plus the
//!   two §IV-B misbehaviors: an undersized shared-memory queue (contention
//!   penalties) and the PSM missing-ACK recovery path that blocks senders
//!   (with the paper's drain-queue mitigation as a switch).
//! * [`collectives`] — binomial-tree barrier/allreduce cost, exposing the
//!   straggler-amplification that makes synchronization 35–50% of runtime.
//! * [`faults`] — node-level fail-slow injection (thermal throttling in
//!   clusters of one node's ranks, §IV-A) and OS jitter.
//! * [`microsim`] — message-level simulation of one boundary-exchange round
//!   (used by `commbench`/Figs. 1, 3, 7a).
//! * [`macrosim`] — step-level simulation of a full AMR run: compute →
//!   boundary exchange → synchronization → (on refinement) redistribution,
//!   with telemetry collection and placement-policy plug-in (Fig. 6/Table I).
//! * [`health`] — pre/post-run node health checks with overprovisioning and
//!   pruning, the paper's measurement-integrity workflow.
//!
//! Virtual time is nanoseconds (`u64`). All stochastic behavior is seeded;
//! identical configs reproduce identical runs.

pub mod collectives;
pub mod events;
pub mod exec;
pub mod faults;
pub mod health;
pub mod ledger;
pub mod macrosim;
pub mod microsim;
pub mod mpi;
pub mod network;
mod par;
pub mod report;
pub mod topology;

pub use collectives::{cheapest_algo, CollectiveAlgo, CollectiveSelect};
pub use exec::{PooledCommunicator, SerialCommunicator, SimCommunicator};
pub use faults::{FaultConfig, FaultEpisode, FaultResponse, FaultTimeline};
pub use health::{blacklist_and_rehost, run_health_check, run_health_check_at, HealthCheck};
pub use ledger::ExchangeByteLedger;
pub use macrosim::{MacroSim, RunReport, SimConfig, Workload, WorkloadStep};
pub use microsim::{Message, MicroSim, RoundResult, RoundSpec, TaskOrder};
pub use mpi::{MpiWorld, Op};
pub use network::NetworkConfig;
pub use report::PhaseBreakdown;
pub use topology::{NodeMap, Topology};
