//! Parallel kernels for the macro-simulator's per-step phases.
//!
//! Every kernel here follows one rule — **slot ownership**: the rank space
//! `0..r` is split into `threads` contiguous ranges, and each task writes
//! only the per-rank slots inside its own range. Where the input is indexed
//! by *block* (the epoch's graph rows, the compute scatter), each task scans
//! the whole input in the serial loop's order and applies only the updates
//! whose target slot it owns. That costs a redundant read pass per task, but
//! it buys the property the whole PR rests on: per-slot floating-point
//! accumulation happens in exactly the serial order, so virtual time is
//! **bitwise identical** at any thread count (f64 addition is not
//! associative; merging per-chunk partial sums would reorder it). Integer
//! message counters are associative, so those use per-task partials
//! ([`EpochPartial`]) summed in task order after the join.
//!
//! The kernels receive only plain-data views (`Topology`, `NetworkConfig`,
//! `Placement`, `GraphView`) — never `&AmrMesh`, which holds an `Rc`-based
//! trace handle and is not `Sync`. This module is policed by the workspace
//! `disallowed_types` clippy guard: no `Rc`, `RefCell`, or `Cell`; shared
//! mutable state crosses the dispatch boundary only through
//! [`Disjoint`](amr_mesh::pool::Disjoint) range ownership.

use crate::exec::SimCommunicator;
use crate::macrosim::{CommEpoch, GraphView};
use crate::network::NetworkConfig;
use crate::topology::Topology;
use amr_core::Placement;
use amr_mesh::pool::Disjoint;
use amr_mesh::{BlockSpec, Dim, NeighborKind};
use amr_telemetry::{TracePhase, WorkerLane};

/// Span slots pre-allocated per worker lane the first time a traced
/// simulator dispatches in parallel (one host span per task per epoch fill,
/// so this covers hundreds of fills before the ring recycles).
pub(crate) const LANE_SPAN_CAPACITY: usize = 256;

/// One task's private integer counters, merged in task-index order after the
/// join. Only associative `u64` sums live here — float accumulation stays in
/// owned [`CommEpoch`] slots.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochPartial {
    pub intra: u64,
    pub local: u64,
    pub remote: u64,
    pub flux: u64,
    /// Per-directed-node-link remote bytes seen by this task (src-owned
    /// messages only, so each message lands in exactly one partial). Sized
    /// `nodes²` only while the credit model is enabled; empty otherwise.
    pub link_bytes: Vec<u64>,
}

/// Contiguous rank range owned by task `t` of `t_n`.
#[inline]
fn own_range(t: usize, t_n: usize, r: usize) -> (usize, usize) {
    (t * r / t_n, (t + 1) * r / t_n)
}

/// Parallel body of [`MacroSim::fill_epoch`](crate::macrosim::MacroSim):
/// boundary pass, flux pass, and the per-destination contention/sort pass.
/// The caller has already run `e.reset(r)`, counted `blocks_per_rank`, and
/// zero-filled `shm_in` (all O(r + n) and trivially serial).
///
/// Each task scans both graph passes in full and applies src-slot updates
/// (dispatch, memcpy, flux-send, message-class counters) when it owns `src`,
/// dst-slot updates (service, transfer tail, senders, shm fan-in, flux
/// receive) when it owns `dst`. A slot's contributions therefore arrive from
/// exactly one task, in global row order — the serial order. The final
/// contention + `senders` sort/dedup pass touches only dst-owned slots, so
/// no barrier is needed between passes: one dispatch runs all three.
///
/// When the simulator is traced, each task records one host-track
/// [`TracePhase::Exchange`] span into its own [`WorkerLane`] — lanes observe
/// wall clock only and feed nothing back, so traced parallel runs stay
/// bit-identical to untraced ones.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_epoch_parallel<C: SimCommunicator>(
    comm: &C,
    topology: &Topology,
    network: &NetworkConfig,
    spec: BlockSpec,
    dim: Dim,
    placement: &Placement,
    graph: GraphView<'_>,
    e: &mut CommEpoch,
    shm_in: &mut [usize],
    partials: &mut Vec<EpochPartial>,
    lanes: Option<(&mut [WorkerLane], u32)>,
) {
    let r = topology.num_ranks;
    let t_n = comm.threads().min(r).max(1);
    let nodes = topology.num_nodes();
    let congestion = network.congestion_enabled();
    partials.clear();
    partials.resize(t_n, EpochPartial::default());
    if congestion {
        for p in partials.iter_mut() {
            p.link_bytes.clear();
            p.link_bytes.resize(nodes * nodes, 0);
        }
    }

    let dispatch = Disjoint::new(&mut e.dispatch_ns);
    let service = Disjoint::new(&mut e.service_ns);
    let memcpy = Disjoint::new(&mut e.memcpy_ns);
    let flux = Disjoint::new(&mut e.flux_ns);
    let tail = Disjoint::new(&mut e.transfer_tail_ns);
    let senders = Disjoint::new(&mut e.senders);
    let shm = Disjoint::new(shm_in);
    let (lanes, step) = match lanes {
        Some((l, s)) => (Some(Disjoint::new(l)), s),
        None => (None, 0),
    };

    comm.run_with(partials, |t, p| {
        let (lo, hi) = own_range(t, t_n, r);
        // SAFETY: tasks own pairwise-disjoint rank ranges [lo, hi); every
        // slice below is indexed only by owned ranks (rk - lo). Lanes are
        // indexed by the task id itself, also pairwise disjoint.
        let _span = lanes.as_ref().map(|l| {
            let lane = unsafe { &mut l.slice(t, t + 1)[0] };
            lane.span(TracePhase::Exchange, step)
        });
        let dispatch = unsafe { dispatch.slice(lo, hi) };
        let service = unsafe { service.slice(lo, hi) };
        let memcpy = unsafe { memcpy.slice(lo, hi) };
        let flux = unsafe { flux.slice(lo, hi) };
        let tail = unsafe { tail.slice(lo, hi) };
        let senders = unsafe { senders.slice(lo, hi) };
        let shm = unsafe { shm.slice(lo, hi) };

        graph.for_each_row(|block, nbs| {
            let src = placement.rank_of(block.index()) as usize;
            let src_owned = src >= lo && src < hi;
            for n in nbs {
                let dst = placement.rank_of(n.block.index()) as usize;
                if dst == src {
                    if src_owned {
                        p.intra += 1;
                        let bytes = spec.message_bytes(dim, n.kind.codim());
                        memcpy[src - lo] += bytes as f64 / network.shm.bytes_per_ns;
                    }
                    continue;
                }
                let dst_owned = dst >= lo && dst < hi;
                if !src_owned && !dst_owned {
                    continue;
                }
                let bytes = spec.message_bytes(dim, n.kind.codim());
                let local = topology.same_node(src, dst);
                if src_owned {
                    if local {
                        p.local += 1;
                    } else {
                        p.remote += 1;
                        if congestion {
                            let idx = topology.node_of(src) * nodes + topology.node_of(dst);
                            p.link_bytes[idx] += bytes;
                        }
                    }
                    dispatch[src - lo] += network.dispatch_ns(bytes) as f64;
                }
                if dst_owned {
                    if local {
                        shm[dst - lo] += 1;
                    }
                    service[dst - lo] += network.service_ns(bytes, local) as f64;
                    let tl = network.transfer_ns(bytes, local) as f64;
                    if tl > tail[dst - lo] {
                        tail[dst - lo] = tl;
                    }
                    senders[dst - lo].push(src as u32);
                }
            }
        });
        graph.for_each_row(|block, nbs| {
            let src = placement.rank_of(block.index()) as usize;
            let src_owned = src >= lo && src < hi;
            for n in nbs {
                if n.level_delta != -1 || n.kind != NeighborKind::Face {
                    continue; // only fine→coarse faces carry flux fix-ups
                }
                let bytes = spec.message_bytes(dim, 1) / 4;
                let dst = placement.rank_of(n.block.index()) as usize;
                if dst == src {
                    if src_owned {
                        flux[src - lo] += bytes as f64 / network.shm.bytes_per_ns;
                    }
                    continue;
                }
                let dst_owned = dst >= lo && dst < hi;
                if !src_owned && !dst_owned {
                    continue;
                }
                let local = topology.same_node(src, dst);
                if src_owned {
                    p.flux += 1;
                    flux[src - lo] += network.dispatch_ns(bytes) as f64;
                    if local {
                        p.local += 1;
                    } else {
                        p.remote += 1;
                        if congestion {
                            let idx = topology.node_of(src) * nodes + topology.node_of(dst);
                            p.link_bytes[idx] += bytes;
                        }
                    }
                }
                if dst_owned {
                    flux[dst - lo] += network.service_ns(bytes, local) as f64;
                }
            }
        });
        for dst in lo..hi {
            service[dst - lo] += network.shm_contention_ns(shm[dst - lo]) as f64;
            let s = &mut senders[dst - lo];
            s.sort_unstable();
            s.dedup();
        }
    });

    // Fixed-order merge of the associative integer partials. The link-byte
    // matrices are u64 sums too, so the merged matrix equals the serial one
    // regardless of how rows were split across tasks; the caller's
    // congestion epilogue reads only the merged result.
    if congestion {
        e.link_bytes.resize(nodes * nodes, 0);
    }
    for p in partials.iter() {
        e.intra_msgs += p.intra;
        e.local_msgs += p.local;
        e.remote_msgs += p.remote;
        e.flux_msgs += p.flux;
        for (acc, &b) in e.link_bytes.iter_mut().zip(&p.link_bytes) {
            *acc += b;
        }
    }
}

/// Parallel compute-phase scatter: `compute[rank] += block_ns[b] *
/// rank_mult[rank]` for every block, plus the per-block `measured` record.
/// Each task scans all blocks and accumulates only its owned ranks'
/// `compute` slots (serial per-slot order); `measured[b]` is written exactly
/// once, by the owner of block `b`'s rank. The caller zeroes both buffers.
pub(crate) fn compute_phase_parallel<C: SimCommunicator>(
    comm: &C,
    block_ns: &[f64],
    placement: &Placement,
    rank_mult: &[f64],
    compute: &mut [f64],
    measured: &mut [f64],
) {
    let r = compute.len();
    let t_n = comm.threads().min(r).max(1);
    let comp = Disjoint::new(compute);
    let meas = Disjoint::new(measured);
    comm.run(t_n, |t| {
        let (lo, hi) = own_range(t, t_n, r);
        // SAFETY: rank ranges are pairwise disjoint; each `measured[b]` has
        // exactly one writer (the owner of `placement.rank_of(b)`).
        let comp = unsafe { comp.slice(lo, hi) };
        for (b, &base) in block_ns.iter().enumerate() {
            let rank = placement.rank_of(b) as usize;
            if rank < lo || rank >= hi {
                continue;
            }
            let v = base * rank_mult[rank];
            comp[rank - lo] += v;
            unsafe { meas.write(b, v) };
        }
    });
}

/// Fused parallel ready+finish pass. Per-rank slots are independent: a
/// rank's `finish` reads its own `ready` plus *other* ranks' `compute` and
/// epoch dispatch times (read-only shared), so fusing the two serial loops
/// per owned rank reproduces the serial arithmetic exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ready_finish_parallel<C: SimCommunicator>(
    comm: &C,
    xs: f64,
    send_coupling: f64,
    overlap_efficiency: f64,
    e: &CommEpoch,
    compute: &[f64],
    nic_slow: &[f64],
    ready: &mut [f64],
    finish: &mut [f64],
) {
    let r = compute.len();
    let t_n = comm.threads().min(r).max(1);
    let ready = Disjoint::new(ready);
    let finish = Disjoint::new(finish);
    comm.run(t_n, |t| {
        let (lo, hi) = own_range(t, t_n, r);
        // SAFETY: tasks own pairwise-disjoint rank ranges [lo, hi).
        let ready = unsafe { ready.slice(lo, hi) };
        let finish = unsafe { finish.slice(lo, hi) };
        for rank in lo..hi {
            // Exact mirror of the serial loops, congestion terms included
            // (0.0 while the credit model is disabled — bit-exact).
            let rd = compute[rank]
                + xs * (e.dispatch_ns[rank] * nic_slow[rank] + e.memcpy_ns[rank])
                + e.flux_ns[rank] * nic_slow[rank]
                + xs * e.cong_send_ns[rank] * nic_slow[rank];
            ready[rank - lo] = rd;
            let mut arrival = 0.0f64;
            for &s in &e.senders[rank] {
                let a = send_coupling * compute[s as usize]
                    + xs * e.dispatch_ns[s as usize] * nic_slow[s as usize]
                    + xs * e.cong_send_ns[s as usize] * nic_slow[s as usize];
                if a > arrival {
                    arrival = a;
                }
            }
            if !e.senders[rank].is_empty() {
                arrival += e.transfer_tail_ns[rank] * nic_slow[rank];
            }
            let raw_wait = (arrival - rd).max(0.0);
            let nb = e.blocks_per_rank[rank].max(1) as f64;
            let masking = overlap_efficiency * (1.0 - 1.0 / nb);
            finish[rank - lo] = rd
                + raw_wait * (1.0 - masking)
                + xs * e.service_ns[rank] * nic_slow[rank]
                + xs * e.cong_recv_ns[rank] * nic_slow[rank];
        }
    });
}
