//! Cluster topology: which ranks share a node.
//!
//! The paper's cluster packs 16 ranks per node; whether two ranks share a
//! node decides whether their messages ride the shared-memory path or the
//! fabric — the distinction behind the local/remote split of Fig. 6c.

use serde::{Deserialize, Serialize};

/// A flat nodes × ranks-per-node topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Total MPI ranks.
    pub num_ranks: usize,
    /// Ranks packed per node (16 in the paper's cluster).
    pub ranks_per_node: usize,
}

impl Topology {
    /// Build a topology; ranks fill nodes in order, the last node may be
    /// partially filled.
    pub fn new(num_ranks: usize, ranks_per_node: usize) -> Topology {
        assert!(num_ranks > 0 && ranks_per_node > 0);
        Topology {
            num_ranks,
            ranks_per_node,
        }
    }

    /// The paper's configuration: 16 ranks per node.
    pub fn paper(num_ranks: usize) -> Topology {
        Topology::new(num_ranks, 16)
    }

    /// Number of (possibly partially filled) nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_ranks.div_ceil(self.ranks_per_node)
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.num_ranks);
        rank / self.ranks_per_node
    }

    /// Do two ranks share a node (shared-memory communication)?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on_node(&self, node: usize) -> std::ops::Range<usize> {
        let start = node * self.ranks_per_node;
        let end = ((node + 1) * self.ranks_per_node).min(self.num_ranks);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        let t = Topology::paper(48);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(15), 0);
        assert_eq!(t.node_of(16), 1);
        assert!(t.same_node(17, 31));
        assert!(!t.same_node(15, 16));
    }

    #[test]
    fn partial_last_node() {
        let t = Topology::new(20, 16);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.ranks_on_node(1), 16..20);
        assert_eq!(t.ranks_on_node(0), 0..16);
    }

    #[test]
    fn single_rank_cluster() {
        let t = Topology::new(1, 16);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.same_node(0, 0));
    }
}
