//! Cluster topology: which ranks share a node.
//!
//! The paper's cluster packs 16 ranks per node; whether two ranks share a
//! node decides whether their messages ride the shared-memory path or the
//! fabric — the distinction behind the local/remote split of Fig. 6c.

use serde::{Deserialize, Serialize};

/// A flat nodes × ranks-per-node topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Total MPI ranks.
    pub num_ranks: usize,
    /// Ranks packed per node (16 in the paper's cluster).
    pub ranks_per_node: usize,
}

impl Topology {
    /// Build a topology; ranks fill nodes in order, the last node may be
    /// partially filled.
    pub fn new(num_ranks: usize, ranks_per_node: usize) -> Topology {
        assert!(num_ranks > 0 && ranks_per_node > 0);
        Topology {
            num_ranks,
            ranks_per_node,
        }
    }

    /// The paper's configuration: 16 ranks per node.
    pub fn paper(num_ranks: usize) -> Topology {
        Topology::new(num_ranks, 16)
    }

    /// Number of (possibly partially filled) nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_ranks.div_ceil(self.ranks_per_node)
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.num_ranks);
        rank / self.ranks_per_node
    }

    /// Do two ranks share a node (shared-memory communication)?
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Ranks hosted on `node`.
    pub fn ranks_on_node(&self, node: usize) -> std::ops::Range<usize> {
        let start = node * self.ranks_per_node;
        let end = ((node + 1) * self.ranks_per_node).min(self.num_ranks);
        start..end
    }
}

/// Mapping from the job's *logical* nodes to *physical* machines, with an
/// overprovisioned spare pool — the paper's §IV-A operational answer to
/// fail-slow hardware ("overprovisioned nodes... failing nodes were
/// automatically pruned from runs and blacklisted").
///
/// Logical node ids (what [`Topology::node_of`] returns) stay stable for the
/// whole run; pruning a faulty machine re-hosts its logical node onto a
/// spare *physical* machine, so fault state — which is attached to physical
/// machines — stops applying to those ranks. The state migration this
/// implies is charged by the simulator as fabric traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMap {
    /// Physical machine hosting each logical node.
    phys: Vec<usize>,
    /// Primary machine count; physical ids `>= primary` are spares.
    primary: usize,
    /// Unused spare machine ids, lowest first.
    pool: Vec<usize>,
}

impl NodeMap {
    /// Identity map over `num_nodes` machines with `spares` extra machines
    /// held in reserve (physical ids `num_nodes..num_nodes + spares`).
    pub fn with_spares(num_nodes: usize, spares: usize) -> NodeMap {
        NodeMap {
            phys: (0..num_nodes).collect(),
            primary: num_nodes,
            // Reversed so `pop` hands out the lowest spare id first.
            pool: (num_nodes..num_nodes + spares).rev().collect(),
        }
    }

    /// Identity map with no spares.
    pub fn identity(num_nodes: usize) -> NodeMap {
        NodeMap::with_spares(num_nodes, 0)
    }

    /// Physical machine hosting logical `node`.
    #[inline]
    pub fn physical(&self, node: usize) -> usize {
        self.phys[node]
    }

    /// Has `node` been re-hosted onto a spare?
    #[inline]
    pub fn rehosted(&self, node: usize) -> bool {
        self.phys[node] >= self.primary
    }

    /// Spare machines still available.
    pub fn spares_left(&self) -> usize {
        self.pool.len()
    }

    /// Is every logical node still on its original machine?
    pub fn is_identity(&self) -> bool {
        self.phys.iter().enumerate().all(|(l, &p)| l == p)
    }

    /// Blacklist `node`'s current machine and re-host the node on the next
    /// spare. Returns the spare's physical id, or `None` when the pool is
    /// exhausted or the node is already on a spare (spares are assumed
    /// healthy; a second flag would be workload imbalance, not hardware).
    pub fn rehost(&mut self, node: usize) -> Option<usize> {
        if self.rehosted(node) {
            return None;
        }
        let spare = self.pool.pop()?;
        self.phys[node] = spare;
        Some(spare)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping() {
        let t = Topology::paper(48);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(15), 0);
        assert_eq!(t.node_of(16), 1);
        assert!(t.same_node(17, 31));
        assert!(!t.same_node(15, 16));
    }

    #[test]
    fn partial_last_node() {
        let t = Topology::new(20, 16);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.ranks_on_node(1), 16..20);
        assert_eq!(t.ranks_on_node(0), 0..16);
    }

    #[test]
    fn single_rank_cluster() {
        let t = Topology::new(1, 16);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.same_node(0, 0));
    }

    #[test]
    fn node_map_rehosts_onto_spares_in_order() {
        let mut m = NodeMap::with_spares(4, 2);
        assert!(m.is_identity());
        assert_eq!(m.spares_left(), 2);
        for n in 0..4 {
            assert_eq!(m.physical(n), n);
            assert!(!m.rehosted(n));
        }
        assert_eq!(m.rehost(2), Some(4));
        assert_eq!(m.physical(2), 4);
        assert!(m.rehosted(2) && !m.is_identity());
        // A node already on a spare is not re-hosted again.
        assert_eq!(m.rehost(2), None);
        assert_eq!(m.spares_left(), 1);
        assert_eq!(m.rehost(0), Some(5));
        // Pool exhausted.
        assert_eq!(m.rehost(1), None);
        assert_eq!(m.spares_left(), 0);
        // Untouched nodes still map to themselves.
        assert_eq!(m.physical(1), 1);
        assert_eq!(m.physical(3), 3);
    }
}
