//! Execution layer for the macro-simulator: a communicator abstraction over
//! thread-pool dispatch.
//!
//! The real codes the paper profiles run one MPI rank per core; this crate's
//! simulator instead models all ranks in one process, which historically made
//! it strictly serial. [`SimCommunicator`] is the seam that lets the
//! embarrassingly-parallel macrosim phases (epoch fill, per-rank service/flux
//! accumulation, the fused ready/finish pass, shard rebuilds) execute on real
//! threads while keeping a provable determinism story:
//!
//! * [`SerialCommunicator`] runs every task inline on the caller — the
//!   oracle against which parallel runs are compared bit for bit.
//! * [`PooledCommunicator`] dispatches onto a persistent
//!   [`WorkerPool`](amr_mesh::pool::WorkerPool) sized by
//!   `SimConfig::threads`. The pool is owned by the simulator (not the
//!   process-global pool), so `threads: 4` genuinely runs four OS threads
//!   even on smaller hosts — timesharing, but exercising the exact code
//!   paths a big host would.
//!
//! Determinism contract: tasks dispatched through a communicator must follow
//! the *slot-ownership* rule (see `DESIGN.md` §14) — every mutable slot is
//! written by exactly one task, and per-slot floating-point accumulation
//! happens in the same order the serial loop would use. Under that rule the
//! thread count and interleaving are unobservable, which is what the
//! `parallel_runs_are_bitwise_identical_to_serial` property test asserts.
//!
//! This module is policed by the workspace `disallowed_types` clippy guard:
//! no `Rc`, `RefCell`, or `Cell` — state crossing a dispatch boundary is
//! either owned per task or wrapped in [`Disjoint`](amr_mesh::pool::Disjoint).

use amr_mesh::pool::WorkerPool;

/// Rank/shard work dispatcher for the macro-simulator's parallel phases.
///
/// Mirrors the shape of an MPI communicator: a fixed member count
/// ([`threads`](Self::threads)) and collective entry points that return only
/// after every member finished. Implementations must run task indices
/// `0..tasks` exactly once each; they may use any schedule.
pub trait SimCommunicator {
    /// Number of OS threads that participate in a dispatch (including the
    /// caller). Always ≥ 1.
    fn threads(&self) -> usize;

    /// Run `f(i, &mut states[i])` for every `i in 0..states.len()`, possibly
    /// on worker threads, returning once all tasks completed.
    fn run_with<S: Send, F: Fn(usize, &mut S) + Sync>(&self, states: &mut [S], f: F);

    /// Run `f(i)` for every `i in 0..tasks`.
    fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        let mut units = vec![(); tasks];
        self.run_with(&mut units, |i, _| f(i));
    }
}

/// Inline execution on the calling thread, in index order. This is the
/// serial oracle: a parallel kernel driven by `SerialCommunicator` must be
/// byte-for-byte the serial algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialCommunicator;

impl SimCommunicator for SerialCommunicator {
    fn threads(&self) -> usize {
        1
    }

    fn run_with<S: Send, F: Fn(usize, &mut S) + Sync>(&self, states: &mut [S], f: F) {
        for (i, s) in states.iter_mut().enumerate() {
            f(i, s);
        }
    }

    fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        for i in 0..tasks {
            f(i);
        }
    }
}

/// Dispatch onto a simulator-owned [`WorkerPool`]. Created once per
/// [`MacroSim`](crate::macrosim::MacroSim) when `SimConfig::threads > 1`;
/// workers persist across steps so steady-state dispatch allocates nothing.
#[derive(Debug)]
pub struct PooledCommunicator {
    pool: WorkerPool,
}

impl PooledCommunicator {
    /// Pool with `threads` participants (caller + `threads - 1` workers).
    pub fn new(threads: usize) -> PooledCommunicator {
        assert!(threads >= 1, "a communicator needs at least one thread");
        PooledCommunicator {
            pool: WorkerPool::new(threads),
        }
    }

    /// The underlying pool, for phases that talk to pool-native APIs
    /// (e.g. `ShardedMesh::rebuild_on`).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }
}

impl SimCommunicator for PooledCommunicator {
    fn threads(&self) -> usize {
        self.pool.threads()
    }

    fn run_with<S: Send, F: Fn(usize, &mut S) + Sync>(&self, states: &mut [S], f: F) {
        self.pool.run_with(states, f);
    }

    fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.pool.run(tasks, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_sum<C: SimCommunicator>(comm: &C, n: usize) -> u64 {
        let mut partials = vec![0u64; comm.threads().min(n.max(1))];
        let t = partials.len();
        comm.run_with(&mut partials, |i, acc| {
            let lo = i * n / t;
            let hi = (i + 1) * n / t;
            for v in lo..hi {
                *acc += (v * v) as u64;
            }
        });
        partials.iter().sum()
    }

    #[test]
    fn serial_and_pooled_communicators_agree() {
        let serial = square_sum(&SerialCommunicator, 1000);
        for threads in [1, 2, 4] {
            let pooled = PooledCommunicator::new(threads);
            assert_eq!(pooled.threads(), threads);
            assert_eq!(square_sum(&pooled, 1000), serial);
        }
    }

    #[test]
    fn default_run_covers_every_index_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..37).map(|_| AtomicU32::new(0)).collect();
        let pooled = PooledCommunicator::new(3);
        pooled.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        SerialCommunicator.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }
}
