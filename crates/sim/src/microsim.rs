//! Message-level simulation of a single boundary-exchange round.
//!
//! This is the engine behind `commbench` (Fig. 7a) and the tuning
//! experiments (Figs. 1 and 3): one synchronization window in which every
//! rank runs compute, dispatches its boundary messages, then blocks in
//! `MPI_Waitall` until all inbound messages are processed, followed by a
//! barrier.
//!
//! The model captures the §IV mechanisms:
//!
//! * **Task ordering** ([`TaskOrder`]): compute-before-sends (the GPU-tuned
//!   default that cascades delays on CPUs) vs sends-first (the paper's
//!   reordering mitigation).
//! * **Receiver-side serialization**: inbound messages are served one at a
//!   time — clustered high-traffic neighbors create incast hotspots, the
//!   effect behind the Fig. 7a U-shape.
//! * **Shared-memory queue contention**: more simultaneous local messages
//!   than the queue holds ⇒ per-excess penalties (untuned queue sizes).
//! * **ACK-loss recovery**: remote sends occasionally stall the *sender*
//!   unless the drain-queue mitigation is active.

use crate::collectives;
use crate::network::NetworkConfig;
use crate::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Scheduling order of tasks within a rank's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskOrder {
    /// Dispatch boundary sends before running compute — the §IV-B
    /// "prioritizing sends" mitigation.
    SendsFirst,
    /// Run compute first, sends after — the untuned default that was
    /// "masked on GPUs where developed".
    ComputeFirst,
}

/// One point-to-point message of a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// Specification of one boundary-exchange round.
#[derive(Debug, Clone)]
pub struct RoundSpec {
    pub num_ranks: usize,
    /// Per-rank compute time in the window (ns).
    pub compute_ns: Vec<u64>,
    /// All messages of the round. `src == dst` entries are intra-rank
    /// memcpys: charged at memory bandwidth, with no MPI overheads.
    pub messages: Vec<Message>,
    pub order: TaskOrder,
}

/// Outcome of one simulated round.
#[derive(Debug, Clone, Default)]
pub struct RoundResult {
    /// When each rank finished its *own* tasks (compute + dispatches).
    pub local_finish_ns: Vec<u64>,
    /// When each rank finished the window (all inbound messages processed,
    /// ACK stalls paid).
    pub finish_ns: Vec<u64>,
    /// Time blocked in MPI_Waitall per rank.
    pub wait_ns: Vec<u64>,
    /// Active communication time per rank (dispatch + receive service +
    /// contention penalties).
    pub comm_ns: Vec<u64>,
    /// End-to-end round latency: barrier completion after the straggler.
    pub round_latency_ns: u64,
    /// Message counts by locality class.
    pub intra_msgs: u64,
    pub local_msgs: u64,
    pub remote_msgs: u64,
    /// Number of remote sends that hit the ACK recovery path.
    pub ack_stalls: u32,
}

/// The micro-simulator: topology + network model + seeded randomness.
///
/// ```
/// use amr_sim::{Message, MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
/// let mut sim = MicroSim::new(Topology::paper(2), NetworkConfig::tuned(), 42);
/// let spec = RoundSpec {
///     num_ranks: 2,
///     compute_ns: vec![1_000, 1_000],
///     messages: vec![Message { src: 0, dst: 1, bytes: 4096 }],
///     order: TaskOrder::SendsFirst,
/// };
/// let res = sim.run_round(&spec);
/// assert_eq!(res.local_msgs + res.remote_msgs, 1);
/// assert!(res.round_latency_ns > 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct MicroSim {
    pub topology: Topology,
    pub network: NetworkConfig,
    rng: StdRng,
    scratch: RoundScratch,
}

/// Pooled per-round working memory, recycled by [`MicroSim::run_round_into`]
/// so warm rounds allocate nothing.
#[derive(Debug, Clone, Default)]
struct RoundScratch {
    dispatch_finish: Vec<u64>,
    /// Message indices grouped by source rank, preserving input order.
    by_src: Vec<Vec<usize>>,
    pending_stall: Vec<u64>,
    /// Remote bytes per directed node link, flat `src_node * nodes +
    /// dst_node` — sized only while the credit model is enabled.
    link_bytes: Vec<u64>,
    /// (arrival_time, service_time) per inbound message, per receiver.
    arrivals: Vec<Vec<(u64, u64)>>,
    shm_count: Vec<usize>,
    barrier_wait: Vec<u64>,
}

impl MicroSim {
    /// Create a simulator with the given seed.
    ///
    /// # Panics
    /// On a degenerate network model (see [`NetworkConfig::validate`]) —
    /// notably an out-of-range `ack_loss_prob`, which would otherwise panic
    /// inside the RNG mid-round with an unhelpful message.
    pub fn new(topology: Topology, network: NetworkConfig, seed: u64) -> MicroSim {
        if let Err(e) = network.validate() {
            panic!("invalid NetworkConfig: {e}");
        }
        MicroSim {
            topology,
            network,
            rng: StdRng::seed_from_u64(seed),
            scratch: RoundScratch::default(),
        }
    }

    /// Simulate one round.
    pub fn run_round(&mut self, spec: &RoundSpec) -> RoundResult {
        let mut out = RoundResult::default();
        self.run_round_into(spec, &mut out);
        out
    }

    /// Simulate one round into a reused result (its vectors are cleared and
    /// refilled). With a warm `self` and `out`, this allocates nothing.
    pub fn run_round_into(&mut self, spec: &RoundSpec, out: &mut RoundResult) {
        let r = spec.num_ranks;
        assert_eq!(spec.compute_ns.len(), r);
        let net = &self.network;
        let topo = &self.topology;
        let s = &mut self.scratch;

        // ---- Phase 0: per-link credit accounting --------------------------
        // The credit window is exhausted by a *link's* whole-round volume,
        // not by any single message, so the matrix is built up front. Empty
        // (and skipped below) while the model is disabled — the default.
        let congestion = net.congestion_enabled();
        let nodes = topo.num_nodes();
        s.link_bytes.clear();
        if congestion {
            s.link_bytes.resize(nodes * nodes, 0);
            for m in &spec.messages {
                if m.src == m.dst {
                    continue;
                }
                let (sn, dn) = (topo.node_of(m.src as usize), topo.node_of(m.dst as usize));
                if sn != dn {
                    s.link_bytes[sn * nodes + dn] += m.bytes;
                }
            }
        }

        // ---- Phase 1: sender-side dispatch ------------------------------
        // Per-rank ordered dispatch of messages; compute before or after.
        s.dispatch_finish.clear();
        s.dispatch_finish.resize(spec.messages.len(), 0);
        out.local_finish_ns.clear();
        out.local_finish_ns.resize(r, 0);
        out.comm_ns.clear();
        out.comm_ns.resize(r, 0);
        s.pending_stall.clear();
        s.pending_stall.resize(r, 0);
        out.intra_msgs = 0;
        out.local_msgs = 0;
        out.remote_msgs = 0;
        out.ack_stalls = 0;

        s.by_src.resize_with(r, Vec::new);
        for v in &mut s.by_src {
            v.clear();
        }
        for (i, m) in spec.messages.iter().enumerate() {
            s.by_src[m.src as usize].push(i);
        }

        for rank in 0..r {
            let mut t = 0u64;
            if spec.order == TaskOrder::ComputeFirst {
                t += spec.compute_ns[rank];
            }
            for &mi in &s.by_src[rank] {
                let m = &spec.messages[mi];
                if m.src == m.dst {
                    out.intra_msgs += 1;
                    // Intra-rank ghost exchange: a memcpy at shared-memory
                    // bandwidth, no MPI involvement.
                    let d = (m.bytes as f64 / net.shm.bytes_per_ns) as u64;
                    t += d;
                    out.comm_ns[rank] += d;
                    continue;
                }
                let local = topo.same_node(m.src as usize, m.dst as usize);
                if local {
                    out.local_msgs += 1;
                } else {
                    out.remote_msgs += 1;
                }
                let d = net.dispatch_ns(m.bytes);
                t += d;
                out.comm_ns[rank] += d;
                s.dispatch_finish[mi] = t;
                // ACK-loss recovery: remote only; blocks the sender at its
                // MPI_Wait unless the drain queue absorbs it.
                // Exactly one draw per remote message, taken *before* the
                // drain-queue branch — mitigated and unmitigated runs
                // consume identical RNG streams (pinned by proptest).
                if !local && self.rng.gen_bool(net.ack_loss_prob) {
                    out.ack_stalls += 1;
                    if !net.drain_queue {
                        s.pending_stall[rank] =
                            s.pending_stall[rank].saturating_add(net.ack_recovery_ns);
                    }
                }
            }
            if spec.order == TaskOrder::SendsFirst {
                t += spec.compute_ns[rank];
            }
            out.local_finish_ns[rank] = t;
        }
        if congestion {
            // Credit starvation blocks the *sender* in MPI_Wait, like the
            // ACK recovery path: charge each rank its node's worst outgoing
            // link. congestion_ns is monotone, so maxing bytes first equals
            // maxing the stalls.
            for rank in 0..r {
                let sn = topo.node_of(rank);
                let mut worst_out = 0u64;
                for peer in 0..nodes {
                    worst_out = worst_out.max(s.link_bytes[sn * nodes + peer]);
                }
                s.pending_stall[rank] =
                    s.pending_stall[rank].saturating_add(net.congestion_ns(worst_out));
            }
        }

        // ---- Phase 2: receiver-side arrival + service --------------------
        // arrivals[dst] = (arrival_time, service_time) per inbound message.
        // (A per-node shared-NIC serialization stage was evaluated here and
        // rejected: it overweights total remote volume and pushes the
        // Fig. 7a sweep far outside the paper's ±0.5 ms band. The per-rank
        // busy-server below keeps the receiver-hotspot mechanism without
        // that distortion.)
        s.arrivals.resize_with(r, Vec::new);
        for v in &mut s.arrivals {
            v.clear();
        }
        s.shm_count.clear();
        s.shm_count.resize(r, 0);
        for (i, m) in spec.messages.iter().enumerate() {
            if m.src == m.dst {
                continue;
            }
            let local = topo.same_node(m.src as usize, m.dst as usize);
            if local {
                s.shm_count[m.dst as usize] += 1;
            }
            let arr = s.dispatch_finish[i] + net.transfer_ns(m.bytes, local);
            s.arrivals[m.dst as usize].push((arr, net.service_ns(m.bytes, local)));
        }

        out.finish_ns.clear();
        out.finish_ns.resize(r, 0);
        out.wait_ns.clear();
        out.wait_ns.resize(r, 0);
        for rank in 0..r {
            s.arrivals[rank].sort_unstable();
            // Busy-server model: MPI progress serves inbound messages in
            // arrival order.
            let mut server = 0u64;
            for &(arr, svc) in &s.arrivals[rank] {
                server = server.max(arr) + svc;
                out.comm_ns[rank] += svc;
            }
            // Shared-memory queue overflow penalties land on the receiver;
            // so do retransmits of the node's most congested incoming link.
            let mut contention = net.shm_contention_ns(s.shm_count[rank]);
            if congestion {
                let sn = topo.node_of(rank);
                let mut worst_in = 0u64;
                for peer in 0..nodes {
                    worst_in = worst_in.max(s.link_bytes[peer * nodes + sn]);
                }
                contention = contention.saturating_add(net.congestion_ns(worst_in));
            }
            out.comm_ns[rank] += contention;
            let done = out.local_finish_ns[rank]
                .max(server.saturating_add(contention))
                .max(out.local_finish_ns[rank].saturating_add(s.pending_stall[rank]));
            out.finish_ns[rank] = done;
            out.wait_ns[rank] = done - out.local_finish_ns[rank];
        }

        // ---- Phase 3: closing barrier ------------------------------------
        out.round_latency_ns =
            collectives::barrier_into(&out.finish_ns, net.fabric.latency_ns, &mut s.barrier_wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_net() -> NetworkConfig {
        NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::tuned()
        }
    }

    fn ring_spec(r: usize, bytes: u64, order: TaskOrder, compute: u64) -> RoundSpec {
        RoundSpec {
            num_ranks: r,
            compute_ns: vec![compute; r],
            messages: (0..r as u32)
                .map(|i| Message {
                    src: i,
                    dst: (i + 1) % r as u32,
                    bytes,
                })
                .collect(),
            order: TaskOrder::SendsFirst,
        }
        .with_order(order)
    }

    impl RoundSpec {
        fn with_order(mut self, order: TaskOrder) -> Self {
            self.order = order;
            self
        }
    }

    #[test]
    fn empty_round_is_just_compute_plus_barrier() {
        let mut sim = MicroSim::new(Topology::paper(4), quiet_net(), 1);
        let spec = RoundSpec {
            num_ranks: 4,
            compute_ns: vec![100, 200, 300, 400],
            messages: vec![],
            order: TaskOrder::SendsFirst,
        };
        let res = sim.run_round(&spec);
        assert_eq!(res.finish_ns, vec![100, 200, 300, 400]);
        assert_eq!(res.wait_ns, vec![0; 4]);
        assert!(res.round_latency_ns >= 400);
    }

    #[test]
    fn sends_first_beats_compute_first_on_round_latency() {
        // Heavy compute + a dependency chain: sends-first releases messages
        // early, shrinking downstream waits.
        let mut sim = MicroSim::new(Topology::paper(8), quiet_net(), 2);
        let sf = sim.run_round(&ring_spec(8, 20_000, TaskOrder::SendsFirst, 1_000_000));
        let cf = sim.run_round(&ring_spec(8, 20_000, TaskOrder::ComputeFirst, 1_000_000));
        assert!(
            sf.round_latency_ns < cf.round_latency_ns,
            "sends-first {} >= compute-first {}",
            sf.round_latency_ns,
            cf.round_latency_ns
        );
        // Compute-first inflates MPI_Wait on receivers.
        let sf_wait: u64 = sf.wait_ns.iter().sum();
        let cf_wait: u64 = cf.wait_ns.iter().sum();
        assert!(sf_wait < cf_wait);
    }

    #[test]
    fn locality_classification_counts() {
        let topo = Topology::new(4, 2); // nodes {0,1}, {2,3}
        let mut sim = MicroSim::new(topo, quiet_net(), 3);
        let spec = RoundSpec {
            num_ranks: 4,
            compute_ns: vec![0; 4],
            messages: vec![
                Message {
                    src: 0,
                    dst: 0,
                    bytes: 10,
                }, // intra-rank
                Message {
                    src: 0,
                    dst: 1,
                    bytes: 10,
                }, // same node
                Message {
                    src: 0,
                    dst: 2,
                    bytes: 10,
                }, // remote
                Message {
                    src: 3,
                    dst: 2,
                    bytes: 10,
                }, // same node
            ],
            order: TaskOrder::SendsFirst,
        };
        let res = sim.run_round(&spec);
        assert_eq!(res.intra_msgs, 1);
        assert_eq!(res.local_msgs, 2);
        assert_eq!(res.remote_msgs, 1);
    }

    #[test]
    fn ack_faults_stall_sender_without_drain_queue() {
        let faulty = NetworkConfig {
            ack_loss_prob: 1.0, // every remote send stalls
            drain_queue: false,
            ..NetworkConfig::tuned()
        };
        let drained = NetworkConfig {
            drain_queue: true,
            ..faulty
        };
        let topo = Topology::new(2, 1); // both ranks on distinct nodes
        let spec = RoundSpec {
            num_ranks: 2,
            compute_ns: vec![0; 2],
            messages: vec![Message {
                src: 0,
                dst: 1,
                bytes: 100,
            }],
            order: TaskOrder::SendsFirst,
        };
        let mut sim_f = MicroSim::new(topo, faulty, 4);
        let res_f = sim_f.run_round(&spec);
        assert_eq!(res_f.ack_stalls, 1);
        assert!(res_f.wait_ns[0] >= faulty.ack_recovery_ns);

        let mut sim_d = MicroSim::new(topo, drained, 4);
        let res_d = sim_d.run_round(&spec);
        assert_eq!(res_d.ack_stalls, 1); // still happens...
        assert!(res_d.wait_ns[0] < faulty.ack_recovery_ns); // ...but hidden
    }

    #[test]
    fn queue_contention_penalizes_fan_in() {
        // 17 local senders into rank 0 with queue size 8 => 9 excess.
        let topo = Topology::new(18, 18);
        let net = NetworkConfig {
            ack_loss_prob: 0.0,
            ..NetworkConfig::untuned()
        };
        let spec = RoundSpec {
            num_ranks: 18,
            compute_ns: vec![0; 18],
            messages: (1..18u32)
                .map(|s| Message {
                    src: s,
                    dst: 0,
                    bytes: 100,
                })
                .collect(),
            order: TaskOrder::SendsFirst,
        };
        let mut sim = MicroSim::new(topo, net, 5);
        let res = sim.run_round(&spec);
        let expected_penalty = (17 - net.shm_queue_size) as u64 * net.queue_overflow_penalty_ns;
        assert!(res.comm_ns[0] >= expected_penalty);

        // With the tuned queue, no contention penalty.
        let mut sim_t = MicroSim::new(topo, quiet_net(), 5);
        let res_t = sim_t.run_round(&spec);
        assert!(res_t.comm_ns[0] < res.comm_ns[0]);
    }

    #[test]
    fn incast_hotspot_raises_round_latency() {
        // Everyone sends to rank 0 vs a balanced ring: hotspot loses.
        let topo = Topology::paper(32);
        let mut sim = MicroSim::new(topo, quiet_net(), 6);
        let hot = RoundSpec {
            num_ranks: 32,
            compute_ns: vec![0; 32],
            messages: (1..32u32)
                .map(|s| Message {
                    src: s,
                    dst: 0,
                    bytes: 20_480,
                })
                .collect(),
            order: TaskOrder::SendsFirst,
        };
        let ring = ring_spec(32, 20_480, TaskOrder::SendsFirst, 0);
        let hot_res = sim.run_round(&hot);
        let ring_res = sim.run_round(&ring);
        assert!(hot_res.round_latency_ns > ring_res.round_latency_ns);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ring_spec(16, 1000, TaskOrder::SendsFirst, 500);
        let a = MicroSim::new(Topology::paper(16), NetworkConfig::untuned(), 9).run_round(&spec);
        let b = MicroSim::new(Topology::paper(16), NetworkConfig::untuned(), 9).run_round(&spec);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.round_latency_ns, b.round_latency_ns);
    }

    #[test]
    fn run_round_into_reuses_result_correctly() {
        // A warm (sim, out) pair must produce the same numbers as a cold
        // run_round — including after a larger round shrank back down.
        let big = ring_spec(16, 1000, TaskOrder::SendsFirst, 500);
        let small = ring_spec(8, 2000, TaskOrder::ComputeFirst, 100);
        let mut warm = MicroSim::new(Topology::paper(16), quiet_net(), 9);
        let mut out = RoundResult::default();
        warm.run_round_into(&big, &mut out);
        let small16 = RoundSpec {
            num_ranks: 16,
            compute_ns: vec![100; 16],
            messages: small.messages.clone(),
            order: small.order,
        };
        warm.run_round_into(&small16, &mut out);
        let cold = MicroSim::new(Topology::paper(16), quiet_net(), 9).run_round(&small16);
        assert_eq!(out.finish_ns, cold.finish_ns);
        assert_eq!(out.wait_ns, cold.wait_ns);
        assert_eq!(out.comm_ns, cold.comm_ns);
        assert_eq!(out.round_latency_ns, cold.round_latency_ns);
    }

    #[test]
    #[should_panic(expected = "ack_loss_prob")]
    fn degenerate_network_rejected_at_construction() {
        // Out of range, it would otherwise panic deep inside the RNG on the
        // first remote message.
        let net = NetworkConfig {
            ack_loss_prob: 1.5,
            ..NetworkConfig::tuned()
        };
        let _ = MicroSim::new(Topology::paper(2), net, 1);
    }

    #[test]
    fn drain_queue_does_not_shift_the_ack_draw_stream() {
        // The mitigation hides stalls; it must not change *which* sends hit
        // the recovery path. Same seed, fractional probability: identical
        // stall counts with the drain queue on or off.
        let spec = ring_spec(32, 4_096, TaskOrder::SendsFirst, 100);
        let base = NetworkConfig {
            ack_loss_prob: 0.5,
            drain_queue: false,
            ..NetworkConfig::tuned()
        };
        let drained = NetworkConfig {
            drain_queue: true,
            ..base
        };
        let topo = Topology::new(32, 1); // every message remote => 32 draws
        let raw = MicroSim::new(topo, base, 77).run_round(&spec);
        let mit = MicroSim::new(topo, drained, 77).run_round(&spec);
        assert_eq!(raw.ack_stalls, mit.ack_stalls);
        assert!(raw.ack_stalls > 0, "p=0.5 over 32 draws never firing");
        // And the mitigation only ever helps.
        assert!(mit.round_latency_ns <= raw.round_latency_ns);
    }

    #[test]
    fn credit_window_stalls_concentrated_traffic_only() {
        // Two nodes, all traffic on the single 0→1 link. Under the window:
        // identical to the disabled model. Over it: strictly slower.
        let topo = Topology::new(8, 4);
        let bytes = 1 << 20; // 4 MiB over the link per round
        let spec = RoundSpec {
            num_ranks: 8,
            compute_ns: vec![0; 8],
            messages: (0..4u32)
                .map(|i| Message {
                    src: i,
                    dst: i + 4,
                    bytes,
                })
                .collect(),
            order: TaskOrder::SendsFirst,
        };
        let generous = NetworkConfig {
            fabric_credit_bytes: 64 << 20,
            ack_loss_prob: 0.0,
            ..NetworkConfig::congested()
        };
        let starved = NetworkConfig {
            fabric_credit_bytes: 1 << 20,
            ..generous
        };
        let off = quiet_net();
        let res_off = MicroSim::new(topo, off, 11).run_round(&spec);
        let res_gen = MicroSim::new(topo, generous, 11).run_round(&spec);
        let res_starved = MicroSim::new(topo, starved, 11).run_round(&spec);
        assert_eq!(res_gen.round_latency_ns, res_off.round_latency_ns);
        assert!(
            res_starved.round_latency_ns > res_gen.round_latency_ns,
            "starved {} !> generous {}",
            res_starved.round_latency_ns,
            res_gen.round_latency_ns
        );
    }
}
