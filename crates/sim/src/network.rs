//! Communication cost model: shared-memory vs fabric paths, queue
//! contention, and the PSM ACK-recovery misbehavior.
//!
//! Parameters loosely calibrated to the paper's hardware — 40 Gbps QLogic
//! fabric (≈ 5 GB/s, microsecond-scale latency) and intra-node shared
//! memory — but what matters to the experiments is the *structure*:
//!
//! * local messages are cheaper than remote ones (locality matters);
//! * per-receiver shared-memory queues of finite depth cause nonlinear
//!   contention penalties when overflowed (the §IV-B "queue size tuning"
//!   example — an undersized preconfigured queue destroys the correlation
//!   between communication time and message volume, Fig. 1a);
//! * remote sends can, with small probability, hit a missing-ACK recovery
//!   path that blocks the *sender* in `MPI_Wait` for milliseconds (§IV-B
//!   "MPI_Wait spikes"); the paper's drain-queue mitigation makes the stall
//!   invisible to the sender.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth parameters for one communication path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathParams {
    /// One-way message latency (ns).
    pub latency_ns: u64,
    /// Sustained bandwidth in bytes per nanosecond (== GB/s).
    pub bytes_per_ns: f64,
}

impl PathParams {
    /// Pure transfer time of a payload on this path (latency + serialization).
    /// Saturating: a degenerate payload or bandwidth clamps to `u64::MAX`
    /// instead of overflowing past the `f64 -> u64` saturating cast.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns
            .saturating_add((bytes as f64 / self.bytes_per_ns) as u64)
    }

    /// The same path with its bandwidth degraded to `bw_mult` of nominal
    /// (`0 < bw_mult <= 1`) — a fail-slow NIC negotiating a lower rate or
    /// burning cycles in firmware recovery, per the §IV-B pathologies.
    /// Latency is unchanged; only the serialization rate drops.
    #[must_use]
    pub fn degraded(&self, bw_mult: f64) -> PathParams {
        assert!(
            bw_mult > 0.0 && bw_mult <= 1.0,
            "bandwidth multiplier must be in (0, 1]"
        );
        PathParams {
            latency_ns: self.latency_ns,
            bytes_per_ns: self.bytes_per_ns * bw_mult,
        }
    }
}

/// Full network model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Intra-node shared-memory path.
    pub shm: PathParams,
    /// Inter-node fabric path.
    pub fabric: PathParams,
    /// Sender-side per-message dispatch overhead (posting the buffer), ns.
    pub send_overhead_ns: u64,
    /// Receiver-side per-message processing overhead, ns.
    pub recv_overhead_ns: u64,
    /// Depth of the per-receiver shared-memory queue. Messages beyond this
    /// many simultaneous shm arrivals pay `queue_overflow_penalty_ns` each.
    pub shm_queue_size: usize,
    /// Contention penalty per excess shm message (ns).
    pub queue_overflow_penalty_ns: u64,
    /// Probability that a remote send triggers the missing-ACK recovery path.
    pub ack_loss_prob: f64,
    /// Sender-side stall when recovery triggers (ns). The paper saw
    /// multi-millisecond stalls.
    pub ack_recovery_ns: u64,
    /// The paper's mitigation: a drain queue that transparently re-allocates
    /// the blocked request so the sender never stalls.
    pub drain_queue: bool,
    /// Outstanding-byte credit window per inter-node fabric link (directed
    /// node pair). A round's remote traffic on one link beyond this many
    /// in-flight bytes stalls for credit returns and pays the backed-off
    /// retransmit path — the finite-capacity mechanism behind the Fig. 7a
    /// large-scale inversion. `u64::MAX` disables the model entirely (the
    /// tuned/untuned defaults: the small-cluster fabrics of §IV never
    /// saturated).
    pub fabric_credit_bytes: u64,
    /// Congestion-window backoff factor: each byte past the credit window is
    /// re-serialized at `congestion_backoff ×` its nominal fabric cost
    /// (retransmit after the recovery handshake, layered on the same
    /// credit-starved path as the ACK-loss machinery). `0.0` keeps only the
    /// credit-return round-trip stalls.
    pub congestion_backoff: f64,
}

impl NetworkConfig {
    /// The *tuned* stack of §IV-B: generous shm queue, drain-queue
    /// mitigation enabled. With this configuration, communication time
    /// correlates cleanly with message volume.
    pub fn tuned() -> NetworkConfig {
        NetworkConfig {
            shm: PathParams {
                latency_ns: 400,
                bytes_per_ns: 10.0,
            },
            fabric: PathParams {
                latency_ns: 2_500,
                bytes_per_ns: 5.0,
            },
            send_overhead_ns: 1_500,
            recv_overhead_ns: 1_500,
            shm_queue_size: 64,
            queue_overflow_penalty_ns: 20_000,
            ack_loss_prob: 0.002,
            ack_recovery_ns: 5_000_000,
            drain_queue: true,
            fabric_credit_bytes: u64::MAX,
            congestion_backoff: 0.0,
        }
    }

    /// The *untuned* stack the paper started from: small preconfigured shm
    /// queue, no drain queue — both §IV-B pathologies active.
    pub fn untuned() -> NetworkConfig {
        NetworkConfig {
            shm_queue_size: 8,
            drain_queue: false,
            ..NetworkConfig::tuned()
        }
    }

    /// A saturated large-scale fabric: the tuned stack with finite per-link
    /// credits and retransmit backoff enabled. Dense traffic concentrated on
    /// few links (strict-locality placements funnel chunk-boundary exchange
    /// onto SFC-adjacent node pairs) exhausts the window and stalls; the
    /// same volume spread across many links stays under it. The window is
    /// sized against the `perf_trajectory --network` arm's per-link volumes
    /// (see DESIGN.md §16).
    pub fn congested() -> NetworkConfig {
        NetworkConfig {
            fabric_credit_bytes: 2 << 20,
            congestion_backoff: 2.0,
            ..NetworkConfig::tuned()
        }
    }

    /// Boundary validation of every knob that can silently poison a run:
    /// degenerate bandwidths saturate collectives to `u64::MAX`, an
    /// out-of-range `ack_loss_prob` panics inside the RNG mid-round, a zero
    /// shm queue penalizes every local message, a zero credit window marks
    /// every remote byte congested, and an extreme `ack_recovery_ns` can
    /// overflow the per-rank stall accumulator. Called by
    /// [`SimConfig::validate`](crate::macrosim::SimConfig) (which prefixes
    /// `network.`) and by [`MicroSim::new`](crate::microsim::MicroSim).
    pub fn validate(&self) -> Result<(), String> {
        for (name, path) in [("fabric", &self.fabric), ("shm", &self.shm)] {
            if !path.bytes_per_ns.is_finite() || path.bytes_per_ns <= 0.0 {
                return Err(format!(
                    "{name}.bytes_per_ns must be finite and > 0 (got {})",
                    path.bytes_per_ns
                ));
            }
        }
        if !self.ack_loss_prob.is_finite() || !(0.0..=1.0).contains(&self.ack_loss_prob) {
            return Err(format!(
                "ack_loss_prob must be a probability in [0, 1] (got {})",
                self.ack_loss_prob
            ));
        }
        // Headroom so thousands of per-round stalls can accumulate in a u64
        // without wrapping (the draw path adds, it doesn't saturate).
        if self.ack_recovery_ns > u64::MAX / 4096 {
            return Err(format!(
                "ack_recovery_ns is degenerate (got {}; max {})",
                self.ack_recovery_ns,
                u64::MAX / 4096
            ));
        }
        if self.shm_queue_size == 0 {
            return Err(
                "shm_queue_size must be >= 1 (a zero-depth queue penalizes every local message)"
                    .to_string(),
            );
        }
        if self.fabric_credit_bytes == 0 {
            return Err(
                "fabric_credit_bytes must be >= 1 (use u64::MAX to disable the credit model)"
                    .to_string(),
            );
        }
        if !self.congestion_backoff.is_finite() || self.congestion_backoff < 0.0 {
            return Err(format!(
                "congestion_backoff must be finite and >= 0 (got {})",
                self.congestion_backoff
            ));
        }
        Ok(())
    }

    /// Is the finite-credit congestion model active? The `u64::MAX` default
    /// window can never be exceeded, so the simulators skip the per-link
    /// bookkeeping entirely (and stay bit-identical to the pre-credit model).
    #[inline]
    pub fn congestion_enabled(&self) -> bool {
        self.fabric_credit_bytes != u64::MAX
    }

    /// Stall (ns) from pushing `outstanding_bytes` of one round's remote
    /// traffic through one fabric link under the credit window. Zero while
    /// the window holds. Past it, every exhausted window waits out a
    /// credit-return round trip (2 × fabric latency), and the excess bytes
    /// are retransmitted at `congestion_backoff ×` their nominal
    /// serialization cost. Saturating and strictly monotone (non-decreasing)
    /// in `outstanding_bytes` — pinned by a proptest.
    #[inline]
    pub fn congestion_ns(&self, outstanding_bytes: u64) -> u64 {
        let window = self.fabric_credit_bytes.max(1);
        let excess = outstanding_bytes.saturating_sub(window);
        if excess == 0 {
            return 0;
        }
        let credit_rtts = excess.div_ceil(window);
        let stall = credit_rtts.saturating_mul(self.fabric.latency_ns.saturating_mul(2));
        let retransmit = if self.congestion_backoff > 0.0 && self.fabric.bytes_per_ns > 0.0 {
            let ns = excess as f64 * self.congestion_backoff / self.fabric.bytes_per_ns;
            if ns >= u64::MAX as f64 {
                u64::MAX
            } else {
                ns as u64
            }
        } else {
            0
        };
        stall.saturating_add(retransmit)
    }

    /// Transfer time for a message between `src` and `dst` given locality.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64, local: bool) -> u64 {
        if local {
            self.shm.transfer_ns(bytes)
        } else {
            self.fabric.transfer_ns(bytes)
        }
    }

    /// Sender dispatch cost for one message (independent of path; posting a
    /// nonblocking send is cheap either way, §II-B).
    #[inline]
    pub fn dispatch_ns(&self, bytes: u64) -> u64 {
        // Injection serializes at fabric bandwidth (worst case of the two).
        // Saturating: the cast clamps to u64::MAX on degenerate payloads and
        // the add must not wrap past it.
        self.send_overhead_ns
            .saturating_add((bytes as f64 / self.fabric.bytes_per_ns) as u64)
    }

    /// Receiver-side service time for one message.
    #[inline]
    pub fn service_ns(&self, bytes: u64, local: bool) -> u64 {
        let bw = if local {
            self.shm.bytes_per_ns
        } else {
            self.fabric.bytes_per_ns
        };
        self.recv_overhead_ns
            .saturating_add((bytes as f64 / bw) as u64)
    }

    /// Total contention penalty for `shm_arrivals` simultaneous shm messages
    /// at one receiver.
    #[inline]
    pub fn shm_contention_ns(&self, shm_arrivals: usize) -> u64 {
        let excess = shm_arrivals.saturating_sub(self.shm_queue_size);
        (excess as u64).saturating_mul(self.queue_overflow_penalty_ns)
    }

    /// This configuration with the *fabric* path degraded to `bw_mult` of
    /// nominal bandwidth (see [`PathParams::degraded`]); the shm path is
    /// untouched — intra-node copies don't ride the NIC. Used for static
    /// whole-run NIC degradation studies; per-node mid-run degradation is
    /// applied by the simulator from the fault timeline's episode
    /// multipliers.
    #[must_use]
    pub fn with_degraded_fabric(&self, bw_mult: f64) -> NetworkConfig {
        NetworkConfig {
            fabric: self.fabric.degraded(bw_mult),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_cheaper_than_remote() {
        let n = NetworkConfig::tuned();
        let bytes = 20_480; // one face message
        assert!(n.transfer_ns(bytes, true) < n.transfer_ns(bytes, false));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let n = NetworkConfig::tuned();
        assert!(n.transfer_ns(1 << 20, false) > n.transfer_ns(1 << 10, false));
        // Latency floor for tiny messages.
        assert!(n.transfer_ns(1, false) >= n.fabric.latency_ns);
    }

    #[test]
    fn untuned_has_small_queue_and_no_drain() {
        let u = NetworkConfig::untuned();
        let t = NetworkConfig::tuned();
        assert!(u.shm_queue_size < t.shm_queue_size);
        assert!(!u.drain_queue && t.drain_queue);
    }

    #[test]
    fn contention_kicks_in_past_queue_size() {
        let n = NetworkConfig::untuned();
        assert_eq!(n.shm_contention_ns(n.shm_queue_size), 0);
        assert_eq!(
            n.shm_contention_ns(n.shm_queue_size + 3),
            3 * n.queue_overflow_penalty_ns
        );
    }

    #[test]
    fn service_time_positive() {
        let n = NetworkConfig::tuned();
        assert!(n.service_ns(0, true) >= n.recv_overhead_ns);
        assert!(n.dispatch_ns(0) >= n.send_overhead_ns);
    }

    #[test]
    fn degraded_fabric_slows_remote_only() {
        let n = NetworkConfig::tuned();
        let d = n.with_degraded_fabric(0.5);
        assert_eq!(d.fabric.bytes_per_ns, n.fabric.bytes_per_ns * 0.5);
        assert_eq!(d.fabric.latency_ns, n.fabric.latency_ns);
        assert_eq!(d.shm, n.shm);
        let bytes = 1 << 20;
        assert!(d.transfer_ns(bytes, false) > n.transfer_ns(bytes, false));
        assert_eq!(d.transfer_ns(bytes, true), n.transfer_ns(bytes, true));
        // Full multiplier is the identity.
        assert_eq!(n.with_degraded_fabric(1.0), n);
    }

    #[test]
    #[should_panic(expected = "bandwidth multiplier must be in")]
    fn rejects_zero_bandwidth_multiplier() {
        let _ = NetworkConfig::tuned().with_degraded_fabric(0.0);
    }

    #[test]
    fn default_stacks_have_congestion_disabled() {
        // The committed baselines rest on this: tuned/untuned price remote
        // traffic with the flat model, so every pre-existing virtual time is
        // bit-identical with the credit machinery merged.
        for n in [NetworkConfig::tuned(), NetworkConfig::untuned()] {
            assert_eq!(n.fabric_credit_bytes, u64::MAX);
            assert_eq!(n.congestion_ns(0), 0);
            assert_eq!(n.congestion_ns(u64::MAX), 0);
        }
        assert!(NetworkConfig::congested().fabric_credit_bytes < u64::MAX);
    }

    #[test]
    fn congestion_zero_within_window_then_grows() {
        let n = NetworkConfig::congested();
        let w = n.fabric_credit_bytes;
        assert_eq!(n.congestion_ns(0), 0);
        assert_eq!(n.congestion_ns(w), 0);
        let one_over = n.congestion_ns(w + 1);
        assert!(one_over >= 2 * n.fabric.latency_ns, "missing credit RTT");
        let two_windows = n.congestion_ns(3 * w);
        assert!(two_windows > one_over);
        // Backoff contributes: doubling it raises the stall for the same
        // excess.
        let harsher = NetworkConfig {
            congestion_backoff: 2.0 * n.congestion_backoff,
            ..n
        };
        assert!(harsher.congestion_ns(3 * w) > two_windows);
    }

    #[test]
    fn congestion_saturates_on_degenerate_extremes() {
        let n = NetworkConfig {
            fabric_credit_bytes: 1,
            congestion_backoff: f64::MAX,
            ..NetworkConfig::tuned()
        };
        assert_eq!(n.congestion_ns(u64::MAX), u64::MAX);
    }

    #[test]
    fn transfer_dispatch_service_saturate_at_max_payload() {
        // A crawling path makes u64::MAX bytes serialize past u64::MAX ns:
        // the f64 -> u64 cast saturates and the overhead add must not wrap
        // (debug panic / release wraparound before the fix).
        let crawl = PathParams {
            latency_ns: 2_500,
            bytes_per_ns: 1.0e-6,
        };
        assert_eq!(crawl.transfer_ns(u64::MAX), u64::MAX);
        let n = NetworkConfig {
            fabric: crawl,
            shm: PathParams {
                latency_ns: 400,
                bytes_per_ns: 1.0e-6,
            },
            ..NetworkConfig::tuned()
        };
        assert_eq!(n.transfer_ns(u64::MAX, true), u64::MAX);
        assert_eq!(n.transfer_ns(u64::MAX, false), u64::MAX);
        assert_eq!(n.dispatch_ns(u64::MAX), u64::MAX);
        assert_eq!(n.service_ns(u64::MAX, true), u64::MAX);
        assert_eq!(n.service_ns(u64::MAX, false), u64::MAX);
        // Sane payloads on the tuned stack are unaffected by the clamps.
        let t = NetworkConfig::tuned();
        assert_eq!(
            t.dispatch_ns(1 << 20),
            t.send_overhead_ns + ((1u64 << 20) as f64 / t.fabric.bytes_per_ns) as u64
        );
    }

    #[test]
    fn shm_contention_saturates_at_max_arrivals() {
        // usize::MAX arrivals overflow the excess * penalty multiply unless
        // it saturates.
        let n = NetworkConfig::tuned();
        assert!(n.queue_overflow_penalty_ns > 1);
        assert_eq!(n.shm_contention_ns(usize::MAX), u64::MAX);
        // Still exact in the sane regime.
        assert_eq!(
            n.shm_contention_ns(n.shm_queue_size + 2),
            2 * n.queue_overflow_penalty_ns
        );
    }

    #[test]
    fn validate_accepts_all_presets() {
        for n in [
            NetworkConfig::tuned(),
            NetworkConfig::untuned(),
            NetworkConfig::congested(),
        ] {
            n.validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let t = NetworkConfig::tuned();
        let cases: Vec<(NetworkConfig, &str)> = vec![
            (
                NetworkConfig {
                    ack_loss_prob: 1.5,
                    ..t
                },
                "ack_loss_prob",
            ),
            (
                NetworkConfig {
                    ack_loss_prob: f64::NAN,
                    ..t
                },
                "ack_loss_prob",
            ),
            (
                NetworkConfig {
                    ack_recovery_ns: u64::MAX,
                    ..t
                },
                "ack_recovery_ns",
            ),
            (
                NetworkConfig {
                    shm_queue_size: 0,
                    ..t
                },
                "shm_queue_size",
            ),
            (
                NetworkConfig {
                    fabric_credit_bytes: 0,
                    ..t
                },
                "fabric_credit_bytes",
            ),
            (
                NetworkConfig {
                    congestion_backoff: -1.0,
                    ..t
                },
                "congestion_backoff",
            ),
            (
                NetworkConfig {
                    congestion_backoff: f64::INFINITY,
                    ..t
                },
                "congestion_backoff",
            ),
        ];
        for (cfg, needle) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.contains(needle), "{err} does not mention {needle}");
        }
    }
}
