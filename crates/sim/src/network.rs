//! Communication cost model: shared-memory vs fabric paths, queue
//! contention, and the PSM ACK-recovery misbehavior.
//!
//! Parameters loosely calibrated to the paper's hardware — 40 Gbps QLogic
//! fabric (≈ 5 GB/s, microsecond-scale latency) and intra-node shared
//! memory — but what matters to the experiments is the *structure*:
//!
//! * local messages are cheaper than remote ones (locality matters);
//! * per-receiver shared-memory queues of finite depth cause nonlinear
//!   contention penalties when overflowed (the §IV-B "queue size tuning"
//!   example — an undersized preconfigured queue destroys the correlation
//!   between communication time and message volume, Fig. 1a);
//! * remote sends can, with small probability, hit a missing-ACK recovery
//!   path that blocks the *sender* in `MPI_Wait` for milliseconds (§IV-B
//!   "MPI_Wait spikes"); the paper's drain-queue mitigation makes the stall
//!   invisible to the sender.

use serde::{Deserialize, Serialize};

/// Latency/bandwidth parameters for one communication path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathParams {
    /// One-way message latency (ns).
    pub latency_ns: u64,
    /// Sustained bandwidth in bytes per nanosecond (== GB/s).
    pub bytes_per_ns: f64,
}

impl PathParams {
    /// Pure transfer time of a payload on this path (latency + serialization).
    #[inline]
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.bytes_per_ns) as u64
    }

    /// The same path with its bandwidth degraded to `bw_mult` of nominal
    /// (`0 < bw_mult <= 1`) — a fail-slow NIC negotiating a lower rate or
    /// burning cycles in firmware recovery, per the §IV-B pathologies.
    /// Latency is unchanged; only the serialization rate drops.
    #[must_use]
    pub fn degraded(&self, bw_mult: f64) -> PathParams {
        assert!(
            bw_mult > 0.0 && bw_mult <= 1.0,
            "bandwidth multiplier must be in (0, 1]"
        );
        PathParams {
            latency_ns: self.latency_ns,
            bytes_per_ns: self.bytes_per_ns * bw_mult,
        }
    }
}

/// Full network model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Intra-node shared-memory path.
    pub shm: PathParams,
    /// Inter-node fabric path.
    pub fabric: PathParams,
    /// Sender-side per-message dispatch overhead (posting the buffer), ns.
    pub send_overhead_ns: u64,
    /// Receiver-side per-message processing overhead, ns.
    pub recv_overhead_ns: u64,
    /// Depth of the per-receiver shared-memory queue. Messages beyond this
    /// many simultaneous shm arrivals pay `queue_overflow_penalty_ns` each.
    pub shm_queue_size: usize,
    /// Contention penalty per excess shm message (ns).
    pub queue_overflow_penalty_ns: u64,
    /// Probability that a remote send triggers the missing-ACK recovery path.
    pub ack_loss_prob: f64,
    /// Sender-side stall when recovery triggers (ns). The paper saw
    /// multi-millisecond stalls.
    pub ack_recovery_ns: u64,
    /// The paper's mitigation: a drain queue that transparently re-allocates
    /// the blocked request so the sender never stalls.
    pub drain_queue: bool,
}

impl NetworkConfig {
    /// The *tuned* stack of §IV-B: generous shm queue, drain-queue
    /// mitigation enabled. With this configuration, communication time
    /// correlates cleanly with message volume.
    pub fn tuned() -> NetworkConfig {
        NetworkConfig {
            shm: PathParams {
                latency_ns: 400,
                bytes_per_ns: 10.0,
            },
            fabric: PathParams {
                latency_ns: 2_500,
                bytes_per_ns: 5.0,
            },
            send_overhead_ns: 1_500,
            recv_overhead_ns: 1_500,
            shm_queue_size: 64,
            queue_overflow_penalty_ns: 20_000,
            ack_loss_prob: 0.002,
            ack_recovery_ns: 5_000_000,
            drain_queue: true,
        }
    }

    /// The *untuned* stack the paper started from: small preconfigured shm
    /// queue, no drain queue — both §IV-B pathologies active.
    pub fn untuned() -> NetworkConfig {
        NetworkConfig {
            shm_queue_size: 8,
            drain_queue: false,
            ..NetworkConfig::tuned()
        }
    }

    /// Transfer time for a message between `src` and `dst` given locality.
    #[inline]
    pub fn transfer_ns(&self, bytes: u64, local: bool) -> u64 {
        if local {
            self.shm.transfer_ns(bytes)
        } else {
            self.fabric.transfer_ns(bytes)
        }
    }

    /// Sender dispatch cost for one message (independent of path; posting a
    /// nonblocking send is cheap either way, §II-B).
    #[inline]
    pub fn dispatch_ns(&self, bytes: u64) -> u64 {
        // Injection serializes at fabric bandwidth (worst case of the two).
        self.send_overhead_ns + (bytes as f64 / self.fabric.bytes_per_ns) as u64
    }

    /// Receiver-side service time for one message.
    #[inline]
    pub fn service_ns(&self, bytes: u64, local: bool) -> u64 {
        let bw = if local {
            self.shm.bytes_per_ns
        } else {
            self.fabric.bytes_per_ns
        };
        self.recv_overhead_ns + (bytes as f64 / bw) as u64
    }

    /// Total contention penalty for `shm_arrivals` simultaneous shm messages
    /// at one receiver.
    #[inline]
    pub fn shm_contention_ns(&self, shm_arrivals: usize) -> u64 {
        let excess = shm_arrivals.saturating_sub(self.shm_queue_size);
        excess as u64 * self.queue_overflow_penalty_ns
    }

    /// This configuration with the *fabric* path degraded to `bw_mult` of
    /// nominal bandwidth (see [`PathParams::degraded`]); the shm path is
    /// untouched — intra-node copies don't ride the NIC. Used for static
    /// whole-run NIC degradation studies; per-node mid-run degradation is
    /// applied by the simulator from the fault timeline's episode
    /// multipliers.
    #[must_use]
    pub fn with_degraded_fabric(&self, bw_mult: f64) -> NetworkConfig {
        NetworkConfig {
            fabric: self.fabric.degraded(bw_mult),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_cheaper_than_remote() {
        let n = NetworkConfig::tuned();
        let bytes = 20_480; // one face message
        assert!(n.transfer_ns(bytes, true) < n.transfer_ns(bytes, false));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let n = NetworkConfig::tuned();
        assert!(n.transfer_ns(1 << 20, false) > n.transfer_ns(1 << 10, false));
        // Latency floor for tiny messages.
        assert!(n.transfer_ns(1, false) >= n.fabric.latency_ns);
    }

    #[test]
    fn untuned_has_small_queue_and_no_drain() {
        let u = NetworkConfig::untuned();
        let t = NetworkConfig::tuned();
        assert!(u.shm_queue_size < t.shm_queue_size);
        assert!(!u.drain_queue && t.drain_queue);
    }

    #[test]
    fn contention_kicks_in_past_queue_size() {
        let n = NetworkConfig::untuned();
        assert_eq!(n.shm_contention_ns(n.shm_queue_size), 0);
        assert_eq!(
            n.shm_contention_ns(n.shm_queue_size + 3),
            3 * n.queue_overflow_penalty_ns
        );
    }

    #[test]
    fn service_time_positive() {
        let n = NetworkConfig::tuned();
        assert!(n.service_ns(0, true) >= n.recv_overhead_ns);
        assert!(n.dispatch_ns(0) >= n.send_overhead_ns);
    }

    #[test]
    fn degraded_fabric_slows_remote_only() {
        let n = NetworkConfig::tuned();
        let d = n.with_degraded_fabric(0.5);
        assert_eq!(d.fabric.bytes_per_ns, n.fabric.bytes_per_ns * 0.5);
        assert_eq!(d.fabric.latency_ns, n.fabric.latency_ns);
        assert_eq!(d.shm, n.shm);
        let bytes = 1 << 20;
        assert!(d.transfer_ns(bytes, false) > n.transfer_ns(bytes, false));
        assert_eq!(d.transfer_ns(bytes, true), n.transfer_ns(bytes, true));
        // Full multiplier is the identity.
        assert_eq!(n.with_degraded_fabric(1.0), n);
    }

    #[test]
    #[should_panic(expected = "bandwidth multiplier must be in")]
    fn rejects_zero_bandwidth_multiplier() {
        let _ = NetworkConfig::tuned().with_degraded_fabric(0.0);
    }
}
