//! Node health checks: the measurement-integrity workflow of §IV-A.
//!
//! The paper's launch workflow "overprovisioned nodes and ran pre/post-job
//! health checks... failing nodes were automatically pruned from runs and
//! blacklisted". Here, a health check runs a short synthetic compute probe
//! on every rank, feeds per-rank timings to the telemetry throttle detector,
//! and (if requested) prunes the faulty nodes — replacing them with healthy
//! spares from the overprovisioned pool, which in simulation terms means
//! clearing their fault entries.

use crate::faults::FaultConfig;
use crate::topology::Topology;
use amr_telemetry::anomaly::{detect_throttling, ThrottleReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a pre/post-run health check.
#[derive(Debug, Clone)]
pub struct HealthCheck {
    /// Per-rank probe durations (ns).
    pub probe_ns: Vec<f64>,
    /// The anomaly detector's verdict.
    pub report: ThrottleReport,
}

impl HealthCheck {
    /// Did every node pass?
    pub fn all_healthy(&self) -> bool {
        !self.report.any()
    }
}

/// Run a synthetic compute probe (nominal duration `probe_base_ns`) on every
/// rank and analyze the timings for node-level fail-slow signatures.
pub fn run_health_check(
    topology: &Topology,
    faults: &FaultConfig,
    probe_base_ns: f64,
    seed: u64,
) -> HealthCheck {
    let mut rng = StdRng::seed_from_u64(seed);
    let probe_ns: Vec<f64> = (0..topology.num_ranks)
        .map(|rank| probe_base_ns * faults.compute_multiplier(topology.node_of(rank), &mut rng))
        .collect();
    let report = detect_throttling(&probe_ns, topology.ranks_per_node, 2.0, 0.75);
    HealthCheck { probe_ns, report }
}

/// Prune the nodes flagged by a health check: in simulation, the ranks are
/// re-hosted on healthy spares, i.e. the throttle entries disappear.
/// Returns the cleaned fault config and the list of blacklisted nodes.
pub fn prune_faulty_nodes(faults: &FaultConfig, check: &HealthCheck) -> (FaultConfig, Vec<u32>) {
    let mut cleaned = faults.clone();
    for node in &check.report.throttled_nodes {
        cleaned.throttled_nodes.remove(&(*node as usize));
    }
    (cleaned, check.report.throttled_nodes.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_cluster_passes() {
        let topo = Topology::paper(64);
        let check = run_health_check(&topo, &FaultConfig::healthy(), 1.0e6, 1);
        assert!(check.all_healthy());
        assert_eq!(check.probe_ns.len(), 64);
    }

    #[test]
    fn throttled_node_caught_and_pruned() {
        let topo = Topology::paper(64); // 4 nodes
        let faults = FaultConfig::with_throttled_nodes([2]);
        let check = run_health_check(&topo, &faults, 1.0e6, 2);
        assert!(!check.all_healthy());
        assert_eq!(check.report.throttled_nodes, vec![2]);
        let (cleaned, blacklisted) = prune_faulty_nodes(&faults, &check);
        assert_eq!(blacklisted, vec![2]);
        assert!(!cleaned.any_throttled());
        // Re-check after pruning passes.
        let recheck = run_health_check(&topo, &cleaned, 1.0e6, 3);
        assert!(recheck.all_healthy());
    }

    #[test]
    fn multiple_faulty_nodes() {
        let topo = Topology::paper(128); // 8 nodes
        let faults = FaultConfig::with_throttled_nodes([1, 5, 6]);
        let check = run_health_check(&topo, &faults, 1.0e6, 4);
        assert_eq!(check.report.throttled_nodes, vec![1, 5, 6]);
        let (cleaned, _) = prune_faulty_nodes(&faults, &check);
        assert!(cleaned.throttled_nodes.is_empty());
    }
}
