//! Node health checks: the measurement-integrity workflow of §IV-A.
//!
//! The paper's launch workflow "overprovisioned nodes and ran pre/post-job
//! health checks... failing nodes were automatically pruned from runs and
//! blacklisted". Here, a health check runs a short synthetic compute probe
//! on every rank, feeds per-rank timings to the telemetry throttle detector,
//! and (if requested) prunes the faulty nodes — replacing them with healthy
//! spares from the overprovisioned pool, which in simulation terms means
//! clearing their fault entries.

use crate::faults::{FaultConfig, FaultTimeline};
use crate::topology::{NodeMap, Topology};
use amr_telemetry::anomaly::{detect_throttling, ThrottleReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a pre/post-run health check.
#[derive(Debug, Clone)]
pub struct HealthCheck {
    /// Per-rank probe durations (ns).
    pub probe_ns: Vec<f64>,
    /// The anomaly detector's verdict.
    pub report: ThrottleReport,
}

impl HealthCheck {
    /// Did every node pass?
    pub fn all_healthy(&self) -> bool {
        !self.report.any()
    }
}

/// Run a synthetic compute probe (nominal duration `probe_base_ns`) on every
/// rank and analyze the timings for node-level fail-slow signatures.
pub fn run_health_check(
    topology: &Topology,
    faults: &FaultConfig,
    probe_base_ns: f64,
    seed: u64,
) -> HealthCheck {
    let mut rng = StdRng::seed_from_u64(seed);
    let probe_ns: Vec<f64> = (0..topology.num_ranks)
        .map(|rank| probe_base_ns * faults.compute_multiplier(topology.node_of(rank), &mut rng))
        .collect();
    let report = detect_throttling(&probe_ns, topology.ranks_per_node, 2.0, 0.75);
    HealthCheck { probe_ns, report }
}

/// Mid-run re-check against a dynamic [`FaultTimeline`]: probe the fault
/// state as it stands at `step` (base faults plus whatever episodes are
/// active), through the node map — a logical node re-hosted on a healthy
/// spare probes healthy even while its original machine's episode persists.
pub fn run_health_check_at(
    topology: &Topology,
    timeline: &FaultTimeline,
    map: &NodeMap,
    step: u64,
    probe_base_ns: f64,
    seed: u64,
) -> HealthCheck {
    let mut rng = StdRng::seed_from_u64(seed ^ step);
    let probe_ns: Vec<f64> = (0..topology.num_ranks)
        .map(|rank| {
            let phys = map.physical(topology.node_of(rank));
            probe_base_ns * timeline.compute_multiplier(step, phys, &mut rng)
        })
        .collect();
    let report = detect_throttling(&probe_ns, topology.ranks_per_node, 2.0, 0.75);
    HealthCheck { probe_ns, report }
}

/// Prune the nodes flagged by a health check: in simulation, the ranks are
/// re-hosted on healthy spares, i.e. the throttle entries disappear.
/// Returns the cleaned fault config and the list of blacklisted nodes.
/// (Node ids are `usize` end to end — no lossy casts against
/// `FaultConfig`/`Topology`.)
pub fn prune_faulty_nodes(faults: &FaultConfig, check: &HealthCheck) -> (FaultConfig, Vec<usize>) {
    let mut cleaned = faults.clone();
    for node in &check.report.throttled_nodes {
        cleaned.throttled_nodes.remove(node);
    }
    (cleaned, check.report.throttled_nodes.clone())
}

/// Blacklist the flagged nodes and re-host each on a spare machine from the
/// overprovisioned pool. Returns `(logical node, spare machine)` pairs for
/// the nodes that actually moved; nodes that couldn't move (pool exhausted,
/// or already on a spare) are skipped — the caller should fall back to
/// capacity reweighting for those.
pub fn blacklist_and_rehost(map: &mut NodeMap, flagged: &[usize]) -> Vec<(usize, usize)> {
    flagged
        .iter()
        .filter_map(|&node| map.rehost(node).map(|spare| (node, spare)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_cluster_passes() {
        let topo = Topology::paper(64);
        let check = run_health_check(&topo, &FaultConfig::healthy(), 1.0e6, 1);
        assert!(check.all_healthy());
        assert_eq!(check.probe_ns.len(), 64);
    }

    #[test]
    fn throttled_node_caught_and_pruned() {
        let topo = Topology::paper(64); // 4 nodes
        let faults = FaultConfig::with_throttled_nodes([2]);
        let check = run_health_check(&topo, &faults, 1.0e6, 2);
        assert!(!check.all_healthy());
        assert_eq!(check.report.throttled_nodes, vec![2]);
        let (cleaned, blacklisted) = prune_faulty_nodes(&faults, &check);
        assert_eq!(blacklisted, vec![2]);
        assert!(!cleaned.any_throttled());
        // Re-check after pruning passes.
        let recheck = run_health_check(&topo, &cleaned, 1.0e6, 3);
        assert!(recheck.all_healthy());
    }

    #[test]
    fn multiple_faulty_nodes() {
        let topo = Topology::paper(128); // 8 nodes
        let faults = FaultConfig::with_throttled_nodes([1, 5, 6]);
        let check = run_health_check(&topo, &faults, 1.0e6, 4);
        assert_eq!(check.report.throttled_nodes, vec![1, 5, 6]);
        let (cleaned, _) = prune_faulty_nodes(&faults, &check);
        assert!(cleaned.throttled_nodes.is_empty());
    }

    #[test]
    fn midrun_check_tracks_episode_bounds() {
        use crate::faults::FaultEpisode;
        let topo = Topology::paper(64); // 4 nodes
        let tl = FaultTimeline::with_episode(FaultEpisode::throttle(10, 20, [1], 4.0));
        let map = NodeMap::identity(topo.num_nodes());
        let before = run_health_check_at(&topo, &tl, &map, 5, 1.0e6, 7);
        assert!(before.all_healthy());
        let during = run_health_check_at(&topo, &tl, &map, 15, 1.0e6, 7);
        assert_eq!(during.report.throttled_nodes, vec![1]);
        let after = run_health_check_at(&topo, &tl, &map, 25, 1.0e6, 7);
        assert!(after.all_healthy());
    }

    #[test]
    fn rehosted_node_probes_healthy_midrun() {
        use crate::faults::FaultEpisode;
        let topo = Topology::paper(64);
        let tl = FaultTimeline::with_episode(FaultEpisode::throttle(0, u64::MAX, [2], 4.0));
        let mut map = NodeMap::with_spares(topo.num_nodes(), 1);
        let flagged = run_health_check_at(&topo, &tl, &map, 3, 1.0e6, 9)
            .report
            .throttled_nodes;
        assert_eq!(flagged, vec![2]);
        let moved = blacklist_and_rehost(&mut map, &flagged);
        assert_eq!(moved, vec![(2, 4)]);
        // The logical node now probes through the healthy spare machine.
        let recheck = run_health_check_at(&topo, &tl, &map, 4, 1.0e6, 9);
        assert!(recheck.all_healthy());
        // Flagging again with the pool drained moves nothing.
        assert!(blacklist_and_rehost(&mut map, &[2, 3]).is_empty() || map.spares_left() == 0);
    }
}
