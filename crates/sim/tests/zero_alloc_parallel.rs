//! Proof that the multi-core steady state is allocation-free *per worker*:
//! once a [`PooledCommunicator`]'s threads are up and every worker lane's
//! ring exists, repeated pool dispatches — slot-ownership float
//! accumulation, ZST `run` fan-outs, and per-worker host-span recording —
//! never touch the heap from any thread. This is the guarantee that lets
//! `SimConfig { threads: N }` keep the serial simulator's zero-alloc
//! steady state (`crates/core/tests/zero_alloc.rs`) at N > 1.
//!
//! This file must stay a single-test binary: the counting allocator is
//! process-global, so a concurrently running sibling test would pollute the
//! measurement. (Worker threads share the global allocator, which is the
//! point — an allocation on *any* pool thread shows up in the count.)

use amr_mesh::pool::Disjoint;
use amr_sim::{PooledCommunicator, SimCommunicator};
use amr_telemetry::trace::{TraceHandle, TracePhase};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One warm parallel "epoch": every task accumulates into its owned slice of
/// a shared buffer (the macrosim fill/compute pattern) and records one host
/// span into its own lane (the traced-dispatch pattern).
fn parallel_epoch(
    comm: &PooledCommunicator,
    trace: &TraceHandle,
    buf: &mut [f64],
    partials: &mut [u64],
    step: u32,
) {
    let t_n = comm.threads();
    let r = buf.len();
    let out = Disjoint::new(buf);
    trace.sink.set_step(step);
    trace.sink.with_lanes_mut(|lanes| {
        let lanes = Disjoint::new(lanes);
        comm.run_with(partials, |t, p| {
            let lane = unsafe { &mut lanes.slice(t, t + 1)[0] };
            let _span = lane.span(TracePhase::Exchange, step);
            let (lo, hi) = (t * r / t_n, (t + 1) * r / t_n);
            let chunk = unsafe { out.slice(lo, hi) };
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (lo + k) as f64 * 0.5 + step as f64;
                *p += 1;
            }
        });
    });
}

#[test]
fn steady_state_parallel_dispatch_is_allocation_free() {
    let threads = 4;
    let comm = PooledCommunicator::new(threads);
    let trace = TraceHandle::new(64);
    trace.sink.ensure_lanes(threads, 32);
    assert_eq!(trace.sink.lane_count(), threads);

    let mut buf = vec![0.0f64; 257];
    let mut partials = vec![0u64; threads];

    // Warm-up: spin every worker through a few dispatches so thread-local
    // runtime state (unwind tables, TLS) settles, and wrap the lane rings so
    // the measured rounds include the overwrite path.
    for step in 0..64 {
        parallel_epoch(&comm, &trace, &mut buf, &mut partials, step);
    }

    // Measured steady state: minimum delta over several rounds so unrelated
    // background allocation cannot produce a false positive; the dispatch +
    // accumulate + lane-record path itself must hit zero on every thread.
    let mut min_delta = u64::MAX;
    for round in 0..5 {
        let before = alloc_count();
        for step in 0..8 {
            parallel_epoch(
                &comm,
                &trace,
                &mut buf,
                &mut partials,
                64 + round * 8 + step,
            );
        }
        let delta = alloc_count() - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "steady-state parallel dispatch allocated {min_delta} times"
    );

    // The ZST fan-out (`SimCommunicator::run`) must also be free: the unit
    // slice is conjured from a dangling pointer, never from the heap.
    let hits: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    comm.run(threads, |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = alloc_count();
        comm.run(threads, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        let delta = alloc_count() - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "warm ZST run dispatch allocated {min_delta} times"
    );
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 6));

    // Sanity: the work actually happened in parallel form — every slot got
    // every step's contribution, every task counted its owned slots, and the
    // per-worker lanes wrapped (recording really ran on the workers).
    let rounds = 64 + 5 * 8;
    for (i, v) in buf.iter().enumerate() {
        let per_step = i as f64 * 0.5;
        let steps_sum = (0..rounds).map(|s| s as f64).sum::<f64>();
        assert_eq!(*v, per_step * rounds as f64 + steps_sum, "slot {i}");
    }
    assert_eq!(partials.iter().sum::<u64>() as usize, buf.len() * rounds);
    trace.sink.with_lanes_mut(|lanes| {
        for lane in lanes.iter() {
            assert!(lane.dropped() > 0, "lane {} never wrapped", lane.lane());
        }
    });
}
