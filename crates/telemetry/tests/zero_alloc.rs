//! Proof that the span-tracing steady state is allocation-free: once a
//! `TraceSink`'s ring is constructed and a `MetricsRegistry`'s slots exist,
//! recording spans (host guards and virtual records), bumping counters,
//! setting gauges, and observing per-phase histograms never touch the heap —
//! the guarantee that makes the < 2% tracing-overhead budget of
//! `perf_trajectory --trace` credible.
//!
//! This file must stay a single-test binary: the counting allocator is
//! process-global, so a concurrently running sibling test would pollute the
//! measurement.

use amr_telemetry::trace::{Counter, Gauge, TraceHandle, TracePhase};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One simulated step's worth of trace traffic: a few host spans, a couple
/// of virtual spans, counters, gauges. Mirrors what macrosim + engine + mesh
/// publish per step when tracing is on.
fn trace_step(t: &TraceHandle, step: u32) {
    t.sink.set_step(step);
    {
        let _place = t.span(TracePhase::Place);
        let _patch = t.span(TracePhase::GraphPatch);
    }
    {
        let _remesh = t.span(TracePhase::Remesh);
    }
    let base = step as u64 * 1_000_000;
    t.record_virtual(TracePhase::Exchange, base, 420_000);
    t.record_virtual(TracePhase::Collective, base + 420_000, 73_000);
    t.metrics.incr(Counter::Steps, 1);
    t.metrics.incr(Counter::Collectives, 1);
    t.metrics.incr(Counter::BlocksMoved, 17);
    t.metrics.set(Gauge::Imbalance, 1.0 + step as f64 * 1e-3);
    t.metrics.set(Gauge::SyncFraction, 0.42);
    t.metrics
        .observe_phase_ns(TracePhase::FaultResponse, 1_500 + step as u64);
}

#[test]
fn steady_state_span_recording_is_allocation_free() {
    // Small ring so the measured rounds run well past capacity: steady state
    // includes the wrap-around/overwrite path, not just the fill path.
    let t = TraceHandle::new(64);
    // Clones are the sharing mechanism (engine/mesh each hold one); prove
    // the cloned handle path too.
    let t2 = t.clone();

    // Warm-up: fill the ring past capacity and touch every metric slot.
    for step in 0..32 {
        trace_step(&t, step);
        trace_step(&t2, step);
    }
    assert!(t.sink.dropped() > 0, "warm-up must wrap the ring");

    // Measured steady state. Minimum delta over several rounds so unrelated
    // background allocation (test-harness bookkeeping) cannot produce a
    // false positive; the trace path itself must hit zero.
    let mut min_delta = u64::MAX;
    for round in 0..5 {
        let before = alloc_count();
        for step in 0..16 {
            trace_step(&t, 100 + round * 16 + step);
            trace_step(&t2, 100 + round * 16 + step);
        }
        let delta = alloc_count() - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "steady-state span recording allocated {min_delta} times"
    );

    // Sanity: the sink holds exactly its capacity and the metrics saw
    // everything (records are dropped oldest-first, never silently skipped).
    assert_eq!(t.sink.len(), t.sink.capacity());
    assert_eq!(t.metrics.counter(Counter::Steps) % 2, 0);
    assert!(t.metrics.with_phase(TracePhase::Exchange, |h| h.count()) > 0);

    // Snapshot into a pre-sized buffer is also allocation-free (the export
    // *formatting* allocates, but draining the ring must not).
    let mut spans = Vec::with_capacity(t.sink.capacity());
    t.sink.snapshot_into(&mut spans); // size the buffer once
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = alloc_count();
        t.sink.snapshot_into(&mut spans);
        let delta = alloc_count() - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "warm snapshot_into allocated {min_delta} times"
    );
    assert_eq!(spans.len(), t.sink.capacity());
}
