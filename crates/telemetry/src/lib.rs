//! # amr-telemetry — structured, queryable performance telemetry
//!
//! The paper's Lesson 4: *diagnosis needs structured, queryable telemetry*.
//! Its authors evolved from TAU profiles → CSV + pandas → custom binary
//! formats → SQL over ClickHouse (§IV-C). This crate implements the endpoint
//! of that evolution, sized for a single-process simulator:
//!
//! * a fixed, typed event schema ([`record`]) keyed by
//!   `(timestep, rank, block, phase)` — the dimensions the paper's queries
//!   group by;
//! * an in-memory **columnar** store ([`table`]) — struct-of-arrays, cheap
//!   scans, no per-row allocation;
//! * a binary codec on `bytes` plus CSV interop ([`codec`]) — mirroring the
//!   paper's move from plaintext to binary formats when parsing became the
//!   bottleneck;
//! * a small relational-style query layer ([`query`]) with filters,
//!   group-bys and aggregates (sum/mean/max/percentiles);
//! * statistics ([`stats`]) including Pearson correlation — the paper's
//!   measure of telemetry reliability (Fig. 1a) — and
//! * anomaly detectors ([`anomaly`]) for the cross-stack failure modes of
//!   §IV: throttled node clusters, MPI_Wait spikes, variance regimes;
//! * a structured span-tracing and metrics layer ([`trace`]) — pooled
//!   ring-buffer spans over a fixed phase taxonomy with Chrome-trace and
//!   flamegraph exporters, so phase attribution is auditable rather than
//!   asserted.

pub mod anomaly;
pub mod chunked;
pub mod codec;
pub mod collector;
pub mod histogram;
pub mod lane;
pub mod query;
pub mod record;
pub mod stats;
pub mod table;
pub mod trace;
pub mod views;

pub use anomaly::{ThrottleReport, WaitSpikeReport};
pub use chunked::{ChunkedStore, Predicate};
pub use collector::Collector;
pub use histogram::LogHistogram;
pub use lane::WorkerLane;
pub use query::{Query, QuerySummary};
pub use record::{EventRecord, Phase, NO_BLOCK};
pub use table::EventTable;
pub use trace::{MetricsRegistry, SpanRecord, TraceHandle, TracePhase, TraceSink};
