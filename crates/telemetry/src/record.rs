//! The telemetry event schema.
//!
//! One record per `(timestep, rank, block, phase)` measurement. The schema is
//! fixed and typed on purpose: the paper found free-form trace formats
//! (OTF2, JSON) "poorly suited to multi-dimensional analysis across rank,
//! time, and task" (Lesson 4) and converged on telemetry *grouped by timestep
//! and sorted by rank* — exactly the layout [`crate::table::EventTable`]
//! maintains.

use serde::{Deserialize, Serialize};

/// Sentinel for records not attributable to a single block (collectives,
/// redistribution, whole-rank phases).
pub const NO_BLOCK: u32 = u32::MAX;

/// Execution phases distinguished by the paper's runtime decomposition
/// (Fig. 6a) plus the finer-grained MPI states used in tuning (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// Physics/mesh compute kernels on a block.
    Compute = 0,
    /// Boundary (ghost-zone) exchange: pack/send/recv time.
    BoundaryComm = 1,
    /// Time blocked in MPI_Wait on point-to-point requests.
    MpiWait = 2,
    /// Time blocked in collectives (barriers, allreduce) — the paper's
    /// "synchronization" phase.
    Synchronization = 3,
    /// Placement computation + block migration.
    Redistribution = 4,
    /// Flux-correction exchanges (small peer-to-peer messages).
    FluxCorrection = 5,
}

impl Phase {
    /// All phases, in canonical order.
    pub const ALL: [Phase; 6] = [
        Phase::Compute,
        Phase::BoundaryComm,
        Phase::MpiWait,
        Phase::Synchronization,
        Phase::Redistribution,
        Phase::FluxCorrection,
    ];

    /// Stable numeric code used in the columnar layout and binary codec.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Phase::code`].
    pub fn from_code(code: u8) -> Option<Phase> {
        Phase::ALL.get(code as usize).copied()
    }

    /// Short lowercase label for CSV export and report tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::BoundaryComm => "comm",
            Phase::MpiWait => "wait",
            Phase::Synchronization => "sync",
            Phase::Redistribution => "redist",
            Phase::FluxCorrection => "flux",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One telemetry measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Simulation timestep the measurement belongs to.
    pub step: u32,
    /// MPI rank that recorded it.
    pub rank: u32,
    /// Block the work was attributed to, or [`NO_BLOCK`].
    pub block: u32,
    /// Phase classification.
    pub phase: Phase,
    /// Duration in nanoseconds (virtual time in simulation, wall time on a
    /// real system).
    pub duration_ns: u64,
    /// Number of messages involved (0 for pure compute).
    pub msg_count: u32,
    /// Total message payload in bytes.
    pub msg_bytes: u64,
}

impl EventRecord {
    /// Convenience constructor for compute records.
    pub fn compute(step: u32, rank: u32, block: u32, duration_ns: u64) -> Self {
        EventRecord {
            step,
            rank,
            block,
            phase: Phase::Compute,
            duration_ns,
            msg_count: 0,
            msg_bytes: 0,
        }
    }

    /// Convenience constructor for rank-level (blockless) records.
    pub fn rank_phase(step: u32, rank: u32, phase: Phase, duration_ns: u64) -> Self {
        EventRecord {
            step,
            rank,
            block: NO_BLOCK,
            phase,
            duration_ns,
            msg_count: 0,
            msg_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_code(p.code()), Some(p));
        }
        assert_eq!(Phase::from_code(200), None);
    }

    #[test]
    fn phase_labels_unique() {
        let labels: std::collections::HashSet<_> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Phase::ALL.len());
    }

    #[test]
    fn constructors_fill_defaults() {
        let c = EventRecord::compute(3, 7, 11, 1000);
        assert_eq!(c.phase, Phase::Compute);
        assert_eq!(c.msg_count, 0);
        let r = EventRecord::rank_phase(3, 7, Phase::Synchronization, 500);
        assert_eq!(r.block, NO_BLOCK);
        assert_eq!(r.phase.to_string(), "sync");
    }
}
