//! Descriptive statistics used throughout the telemetry pipeline.
//!
//! Small, allocation-conscious helpers: the analytics loop of §IV repeatedly
//! computes means, variances, percentiles and correlations over per-rank and
//! per-step slices, so these operate on plain `&[f64]` without copying when
//! possible (percentiles sort a scratch buffer the caller can reuse).

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0.0 for inputs with < 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation (stddev / mean); 0.0 when the mean is 0.
///
/// The paper uses relative variance of rankwise communication times as the
/// "telemetry structure" signal that tuning progressively clarifies (Fig. 3).
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        stddev(xs) / m
    }
}

/// Maximum value; 0.0 for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
        .max(0.0)
}

/// Minimum value; 0.0 for empty input.
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// `q`-quantile (0 ≤ q ≤ 1) with linear interpolation, sorting a copy.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in telemetry"));
    percentile_sorted(&v, q)
}

/// `q`-quantile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 0.5)
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0.0 when either series is constant or lengths differ/empty —
/// callers treat "no correlation measurable" the same as "none".
///
/// This is the paper's Fig. 1a metric: correlation between communication
/// time and message volume is the litmus test of telemetry reliability.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Simple equal-width histogram over `[lo, hi)` with `bins` buckets.
/// Out-of-range values are clamped into the edge buckets.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let mut b = ((x - lo) / width).floor() as isize;
        b = b.clamp(0, bins as isize - 1);
        counts[b as usize] += 1;
    }
    counts
}

/// Summary statistics bundle, convenient for report rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub max: f64,
}

impl Summary {
    /// Compute all summary statistics in one pass + one sort.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in telemetry"));
        Summary {
            count: xs.len(),
            mean: mean(xs),
            stddev: stddev(xs),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
            p99: percentile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.1, 0.1, 0.5, 0.9, -5.0, 99.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![3, 3]);
    }

    #[test]
    fn coeff_of_variation_scales() {
        let tight = [10.0, 10.1, 9.9];
        let loose = [10.0, 20.0, 0.1];
        assert!(coeff_of_variation(&tight) < coeff_of_variation(&loose));
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!(s.p95 > s.p50 && s.p99 > s.p95);
    }
}
