//! Per-worker trace lanes: the multi-thread half of the sharded trace sink.
//!
//! [`TraceSink`](crate::trace::TraceSink) is deliberately single-threaded
//! (`Rc`/`Cell`, no atomics on the record path). Parallel phases instead
//! record into [`WorkerLane`]s — plain-`&mut` ring buffers, one per worker,
//! distributed to tasks by the owning thread for the duration of a parallel
//! region and merged back into every sink snapshot/export. A lane is `Send`
//! (no interior mutability at all: this module is policed by the
//! `disallowed_types` clippy guard), its ring is pre-allocated once, and
//! recording into a warm lane allocates nothing — the same zero-alloc
//! steady-state guarantee the main ring gives, per worker.
//!
//! Lanes only ever hold **host-track** spans (wall-clock observations of
//! worker activity). Virtual time and metric counters stay on the owning
//! thread, which is what keeps traced parallel runs bit-identical to serial
//! ones: lanes observe, they never feed anything back into the simulation.

use crate::trace::{SpanRecord, TracePhase, Track};
use std::time::Instant;

/// One worker's span ring. Created and merged by
/// [`TraceSink::ensure_lanes`](crate::trace::TraceSink::ensure_lanes) /
/// [`snapshot_into`](crate::trace::TraceSink::snapshot_into); handed to a
/// worker task as `&mut WorkerLane` while a parallel region runs.
#[derive(Debug)]
pub struct WorkerLane {
    /// Lane id stamped on records; the owning sink's main thread is lane 0,
    /// worker lanes start at 1.
    lane: u16,
    /// Copy of the owning sink's epoch so host timestamps from every lane
    /// share one clock origin.
    epoch: Instant,
    buf: Vec<SpanRecord>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl WorkerLane {
    /// Lane with `capacity` pre-allocated span slots; the oldest spans are
    /// overwritten (and counted in [`dropped`](Self::dropped)) once full.
    pub fn with_capacity(lane: u16, epoch: Instant, capacity: usize) -> WorkerLane {
        WorkerLane {
            lane,
            epoch,
            buf: vec![SpanRecord::default(); capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Lane id stamped on this lane's records.
    #[inline]
    pub fn lane(&self) -> u16 {
        self.lane
    }

    /// Live span count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ring capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Spans overwritten because the ring was full.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Nanoseconds since the owning sink's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a completed span. Never allocates.
    pub fn push(&mut self, rec: SpanRecord) {
        let cap = self.buf.len();
        if cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.len < cap {
            let at = (self.head + self.len) % cap;
            self.buf[at] = rec;
            self.len += 1;
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    /// Record a completed host-track span with explicit bounds.
    pub fn record_host(&mut self, phase: TracePhase, step: u32, start_ns: u64, dur_ns: u64) {
        self.push(SpanRecord {
            phase,
            track: Track::Host,
            step,
            lane: self.lane,
            start_ns,
            dur_ns,
        });
    }

    /// Open a host span on this lane; records itself when dropped.
    pub fn span(&mut self, phase: TracePhase, step: u32) -> LaneSpan<'_> {
        let start_ns = self.now_ns();
        LaneSpan {
            lane: self,
            phase,
            step,
            start_ns,
        }
    }

    /// Discard all spans (capacity kept).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }

    /// Append live spans, oldest first, onto `out` (not cleared).
    pub fn snapshot_into(&self, out: &mut Vec<SpanRecord>) {
        let cap = self.buf.len();
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % cap]);
        }
    }
}

/// RAII guard from [`WorkerLane::span`].
#[must_use = "a span guard measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct LaneSpan<'a> {
    lane: &'a mut WorkerLane,
    phase: TracePhase,
    step: u32,
    start_ns: u64,
}

impl Drop for LaneSpan<'_> {
    fn drop(&mut self) {
        let dur_ns = self.lane.now_ns().saturating_sub(self.start_ns);
        self.lane
            .record_host(self.phase, self.step, self.start_ns, dur_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ring_overwrites_oldest_and_counts_drops() {
        let mut lane = WorkerLane::with_capacity(3, Instant::now(), 4);
        for i in 0..10u64 {
            lane.record_host(TracePhase::Exchange, 0, i, 1);
        }
        assert_eq!(lane.len(), 4);
        assert_eq!(lane.dropped(), 6);
        let mut out = Vec::new();
        lane.snapshot_into(&mut out);
        let starts: Vec<u64> = out.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]);
        assert!(out.iter().all(|s| s.lane == 3 && s.track == Track::Host));
        lane.clear();
        assert!(lane.is_empty());
        assert_eq!(lane.dropped(), 0);
    }

    #[test]
    fn lane_span_guard_records_on_drop() {
        let mut lane = WorkerLane::with_capacity(1, Instant::now(), 8);
        {
            let _g = lane.span(TracePhase::Exchange, 9);
        }
        let mut out = Vec::new();
        lane.snapshot_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].phase, TracePhase::Exchange);
        assert_eq!(out[0].step, 9);
        assert_eq!(out[0].lane, 1);
    }

    #[test]
    fn zero_capacity_lane_drops_everything() {
        let mut lane = WorkerLane::with_capacity(2, Instant::now(), 0);
        lane.record_host(TracePhase::Place, 0, 0, 1);
        assert_eq!(lane.len(), 0);
        assert_eq!(lane.dropped(), 1);
    }

    #[test]
    fn lanes_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<WorkerLane>();
    }
}
