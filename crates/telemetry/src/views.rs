//! Prebuilt analytical views over telemetry tables.
//!
//! §IV-C: the paper's queries "naturally mapped to SQL over data ingested
//! into ClickHouse", with views "aligned with synchronization intervals" —
//! telemetry grouped by timestep, sorted by rank. These are those recurring
//! queries as functions: per-step straggler attribution, phase-fraction
//! series, and imbalance evolution. They power the experiment binaries and
//! double as executable documentation of how the diagnosis in §IV worked.

use crate::query::Query;
use crate::record::Phase;
use crate::stats;
use crate::table::EventTable;
use std::collections::BTreeMap;

/// Per-step straggler attribution: which rank's compute gated the step.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerEntry {
    pub step: u32,
    /// Rank with the maximum compute time this step.
    pub rank: u32,
    /// Its compute time (ns).
    pub max_compute_ns: u64,
    /// Mean compute across ranks this step (ns).
    pub mean_compute_ns: f64,
    /// max / mean — the step's imbalance factor.
    pub imbalance: f64,
}

/// Identify the compute straggler of every (sampled) step.
pub fn stragglers_by_step(table: &EventTable) -> Vec<StragglerEntry> {
    let mut per_step: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
    for i in 0..table.len() {
        if table.phases()[i] != Phase::Compute.code() {
            continue;
        }
        *per_step
            .entry(table.steps()[i])
            .or_default()
            .entry(table.ranks()[i])
            .or_insert(0) += table.durations()[i];
    }
    per_step
        .into_iter()
        .filter(|(_, ranks)| !ranks.is_empty())
        .map(|(step, ranks)| {
            let (&rank, &max) = ranks.iter().max_by_key(|(r, d)| (**d, **r)).unwrap();
            let mean = ranks.values().map(|&d| d as f64).sum::<f64>() / ranks.len() as f64;
            StragglerEntry {
                step,
                rank,
                max_compute_ns: max,
                mean_compute_ns: mean,
                imbalance: if mean > 0.0 { max as f64 / mean } else { 1.0 },
            }
        })
        .collect()
}

/// How often each rank is the straggler — persistent stragglers point at
/// hardware (Fig. 2); rotating ones at workload imbalance.
pub fn straggler_histogram(table: &EventTable, num_ranks: usize) -> Vec<usize> {
    let mut hist = vec![0usize; num_ranks];
    for e in stragglers_by_step(table) {
        if (e.rank as usize) < num_ranks {
            hist[e.rank as usize] += 1;
        }
    }
    hist
}

/// Aggregate a per-rank series into per-node sums — the paper's "clusters
/// of 16" lens (§IV-A): hardware faults group by node, workload stragglers
/// do not.
pub fn by_node(per_rank: &[f64], ranks_per_node: usize) -> Vec<f64> {
    assert!(ranks_per_node > 0);
    let nodes = per_rank.len().div_ceil(ranks_per_node);
    let mut out = vec![0.0; nodes];
    for (r, &v) in per_rank.iter().enumerate() {
        out[r / ranks_per_node] += v;
    }
    out
}

/// Straggler gating counts aggregated per node. A node gating far more than
/// `steps / num_nodes` steps is hardware-suspect.
pub fn straggler_histogram_by_node(
    table: &EventTable,
    num_ranks: usize,
    ranks_per_node: usize,
) -> Vec<usize> {
    let per_rank = straggler_histogram(table, num_ranks);
    let nodes = num_ranks.div_ceil(ranks_per_node);
    let mut out = vec![0usize; nodes];
    for (r, &c) in per_rank.iter().enumerate() {
        out[r / ranks_per_node] += c;
    }
    out
}

/// Phase totals (ns) per step, for stacked time-series plots.
pub fn phase_series(table: &EventTable) -> BTreeMap<u32, BTreeMap<Phase, u64>> {
    let mut out: BTreeMap<u32, BTreeMap<Phase, u64>> = BTreeMap::new();
    for i in 0..table.len() {
        let phase = Phase::from_code(table.phases()[i]).expect("valid phase");
        *out.entry(table.steps()[i])
            .or_default()
            .entry(phase)
            .or_insert(0) += table.durations()[i];
    }
    out
}

/// Imbalance factor (max/mean per-rank compute) per step — the series whose
/// reduction is CPLX's whole job.
pub fn imbalance_series(table: &EventTable) -> Vec<(u32, f64)> {
    stragglers_by_step(table)
        .into_iter()
        .map(|e| (e.step, e.imbalance))
        .collect()
}

/// Summary of the imbalance series: mean and p95 imbalance across steps.
pub fn imbalance_summary(table: &EventTable) -> (f64, f64) {
    let series: Vec<f64> = imbalance_series(table)
        .into_iter()
        .map(|(_, x)| x)
        .collect();
    (stats::mean(&series), stats::percentile(&series, 0.95))
}

/// Fraction of total recorded time per phase — Fig. 6a's stacked bars, from
/// raw telemetry rather than simulator accounting (a cross-check used in
/// integration tests).
pub fn phase_fractions(table: &EventTable) -> BTreeMap<Phase, f64> {
    let q = Query::new(table);
    let by_phase = q.by_phase();
    let total: u64 = by_phase.values().map(|g| g.total_duration_ns).sum();
    by_phase
        .into_iter()
        .map(|(p, g)| {
            (
                p,
                if total == 0 {
                    0.0
                } else {
                    g.total_duration_ns as f64 / total as f64
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventRecord;

    fn table() -> EventTable {
        let mut t = EventTable::new();
        for step in 0..4u32 {
            for rank in 0..3u32 {
                // Rank 2 is always the straggler; imbalance 2.0 vs mean.
                let dur = if rank == 2 { 400 } else { 100 };
                t.push(EventRecord::compute(step, rank, rank, dur));
                t.push(EventRecord::rank_phase(
                    step,
                    rank,
                    Phase::Synchronization,
                    50,
                ));
            }
        }
        t
    }

    #[test]
    fn straggler_attribution() {
        let t = table();
        let s = stragglers_by_step(&t);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|e| e.rank == 2));
        assert!(s.iter().all(|e| e.max_compute_ns == 400));
        let expect_imb = 400.0 / 200.0;
        assert!(s.iter().all(|e| (e.imbalance - expect_imb).abs() < 1e-12));
    }

    #[test]
    fn histogram_counts_persistent_straggler() {
        let t = table();
        assert_eq!(straggler_histogram(&t, 3), vec![0, 0, 4]);
        // Out-of-range num_ranks is safe.
        assert_eq!(straggler_histogram(&t, 2), vec![0, 0]);
    }

    #[test]
    fn node_aggregation() {
        let per_rank = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(by_node(&per_rank, 2), vec![3.0, 7.0, 5.0]);
        let t = table();
        // 3 ranks, 2 per node: rank 2 (the straggler) is alone on node 1.
        assert_eq!(straggler_histogram_by_node(&t, 3, 2), vec![0, 4]);
    }

    #[test]
    fn phase_series_sums_per_step() {
        let t = table();
        let series = phase_series(&t);
        assert_eq!(series.len(), 4);
        assert_eq!(series[&0][&Phase::Compute], 600);
        assert_eq!(series[&0][&Phase::Synchronization], 150);
    }

    #[test]
    fn imbalance_views_consistent() {
        let t = table();
        let (mean, p95) = imbalance_summary(&t);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((p95 - 2.0).abs() < 1e-12);
        assert_eq!(imbalance_series(&t).len(), 4);
    }

    #[test]
    fn phase_fractions_sum_to_one() {
        let t = table();
        let f = phase_fractions(&t);
        let total: f64 = f.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(f[&Phase::Compute] > f[&Phase::Synchronization]);
    }

    #[test]
    fn empty_table_views() {
        let t = EventTable::new();
        assert!(stragglers_by_step(&t).is_empty());
        assert!(phase_fractions(&t).is_empty());
        let (m, p) = imbalance_summary(&t);
        assert_eq!((m, p), (0.0, 0.0));
    }
}
