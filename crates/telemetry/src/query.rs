//! Relational-style queries over [`EventTable`].
//!
//! A tiny, composable subset of what the paper ran as SQL on ClickHouse:
//! predicate filters over the typed columns, group-bys over arbitrary keys,
//! and per-group aggregates. Queries never copy event data — they refine a
//! row-index selection over a borrowed table, so chaining filters is cheap
//! and the final aggregation is a single pass.
//!
//! ```
//! use amr_telemetry::{EventRecord, EventTable, Phase, Query};
//! let table: EventTable = (0..4)
//!     .map(|r| EventRecord::rank_phase(0, r, Phase::MpiWait, 100 * (r as u64 + 1)))
//!     .collect();
//! let waits = Query::new(&table).phase(Phase::MpiWait).by_rank();
//! assert_eq!(waits[&3].total_duration_ns, 400);
//! ```

use crate::record::{EventRecord, Phase};
use crate::stats;
use crate::table::EventTable;
use std::collections::BTreeMap;

/// Per-group aggregate accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupAgg {
    /// Rows in the group.
    pub count: usize,
    /// Sum of durations (ns).
    pub total_duration_ns: u64,
    /// Max single duration (ns).
    pub max_duration_ns: u64,
    /// Sum of message counts.
    pub total_msg_count: u64,
    /// Sum of message bytes.
    pub total_msg_bytes: u64,
    /// Individual durations (ns, as f64) for distribution statistics.
    pub durations: Vec<f64>,
}

impl GroupAgg {
    fn add(&mut self, r: &EventRecord) {
        // Saturating: degenerate tables (near-`u64::MAX` durations from a
        // saturated network model) clamp the sums instead of wrapping.
        self.count += 1;
        self.total_duration_ns = self.total_duration_ns.saturating_add(r.duration_ns);
        self.max_duration_ns = self.max_duration_ns.max(r.duration_ns);
        self.total_msg_count = self.total_msg_count.saturating_add(r.msg_count as u64);
        self.total_msg_bytes = self.total_msg_bytes.saturating_add(r.msg_bytes);
        self.durations.push(r.duration_ns as f64);
    }

    /// Mean duration in ns.
    pub fn mean_duration_ns(&self) -> f64 {
        stats::mean(&self.durations)
    }

    /// Total duration in (virtual) seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_duration_ns as f64 * 1e-9
    }
}

/// Flat, copyable aggregate of a query selection: counts and saturating
/// sums only, no per-row storage. This is the payload a telemetry-query
/// *service* response carries — cheap to compute (one pass), cheap to ship
/// (five words), allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuerySummary {
    /// Rows selected.
    pub count: usize,
    /// Sum of durations (ns), saturating.
    pub total_duration_ns: u64,
    /// Max single duration (ns).
    pub max_duration_ns: u64,
    /// Sum of message counts, saturating.
    pub total_msg_count: u64,
    /// Sum of message bytes, saturating.
    pub total_msg_bytes: u64,
}

/// A filtered view over an [`EventTable`].
#[derive(Debug, Clone)]
pub struct Query<'a> {
    table: &'a EventTable,
    rows: Vec<usize>,
}

impl<'a> Query<'a> {
    /// Start a query selecting every row.
    pub fn new(table: &'a EventTable) -> Self {
        Query {
            table,
            rows: (0..table.len()).collect(),
        }
    }

    /// Keep rows with the given phase.
    pub fn phase(mut self, p: Phase) -> Self {
        let phases = self.table.phases();
        self.rows.retain(|&i| phases[i] == p.code());
        self
    }

    /// Keep rows from the given rank.
    pub fn rank(mut self, rank: u32) -> Self {
        let ranks = self.table.ranks();
        self.rows.retain(|&i| ranks[i] == rank);
        self
    }

    /// Keep rows whose step lies in `[lo, hi)`.
    pub fn step_range(mut self, lo: u32, hi: u32) -> Self {
        let steps = self.table.steps();
        self.rows.retain(|&i| steps[i] >= lo && steps[i] < hi);
        self
    }

    /// Keep rows attributed to the given block.
    pub fn block(mut self, block: u32) -> Self {
        let blocks = self.table.blocks();
        self.rows.retain(|&i| blocks[i] == block);
        self
    }

    /// Keep rows matching an arbitrary predicate.
    pub fn filter<F: Fn(&EventRecord) -> bool>(mut self, pred: F) -> Self {
        let table = self.table;
        self.rows.retain(|&i| pred(&table.row(i)));
        self
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.rows.len()
    }

    /// Materialize selected rows.
    pub fn records(&self) -> Vec<EventRecord> {
        self.rows.iter().map(|&i| self.table.row(i)).collect()
    }

    /// Durations of selected rows in ns (as f64, ready for statistics).
    pub fn durations(&self) -> Vec<f64> {
        let d = self.table.durations();
        self.rows.iter().map(|&i| d[i] as f64).collect()
    }

    /// Sum of selected durations (ns), saturating at `u64::MAX`.
    pub fn total_duration_ns(&self) -> u64 {
        let d = self.table.durations();
        self.rows
            .iter()
            .fold(0u64, |acc, &i| acc.saturating_add(d[i]))
    }

    /// Sum of selected message counts, saturating at `u64::MAX`.
    pub fn total_msg_count(&self) -> u64 {
        let c = self.table.msg_counts();
        self.rows
            .iter()
            .fold(0u64, |acc, &i| acc.saturating_add(c[i] as u64))
    }

    /// Single-pass flat aggregate of the selection — the wire-friendly
    /// subset of [`GroupAgg`] (no per-row duration vector, no extra
    /// allocation), which is what the `amr-service` query API returns.
    /// All sums saturate.
    pub fn summary(&self) -> QuerySummary {
        let d = self.table.durations();
        let mc = self.table.msg_counts();
        let mb = self.table.msg_bytes();
        let mut s = QuerySummary::default();
        for &i in &self.rows {
            s.count += 1;
            s.total_duration_ns = s.total_duration_ns.saturating_add(d[i]);
            s.max_duration_ns = s.max_duration_ns.max(d[i]);
            s.total_msg_count = s.total_msg_count.saturating_add(mc[i] as u64);
            s.total_msg_bytes = s.total_msg_bytes.saturating_add(mb[i]);
        }
        s
    }

    /// Group selected rows by an arbitrary key.
    pub fn group_by<K: Ord, F: Fn(&EventRecord) -> K>(&self, key: F) -> BTreeMap<K, GroupAgg> {
        let mut out: BTreeMap<K, GroupAgg> = BTreeMap::new();
        for &i in &self.rows {
            let r = self.table.row(i);
            out.entry(key(&r)).or_default().add(&r);
        }
        out
    }

    /// Group by rank.
    pub fn by_rank(&self) -> BTreeMap<u32, GroupAgg> {
        self.group_by(|r| r.rank)
    }

    /// Group by timestep.
    pub fn by_step(&self) -> BTreeMap<u32, GroupAgg> {
        self.group_by(|r| r.step)
    }

    /// Group by phase.
    pub fn by_phase(&self) -> BTreeMap<Phase, GroupAgg> {
        self.group_by(|r| r.phase)
    }

    /// Group by block.
    pub fn by_block(&self) -> BTreeMap<u32, GroupAgg> {
        self.group_by(|r| r.block)
    }

    /// Per-rank total durations as a dense vector of seconds (ranks without
    /// rows get 0.0). Convenient for rankwise plots like Fig. 3.
    pub fn per_rank_secs(&self, num_ranks: usize) -> Vec<f64> {
        let mut out = vec![0.0; num_ranks];
        for (rank, agg) in self.by_rank() {
            if (rank as usize) < num_ranks {
                out[rank as usize] = agg.total_secs();
            }
        }
        out
    }

    /// Pearson correlation between two per-group aggregate projections.
    ///
    /// The Fig. 1a reliability check is
    /// `correlate_groups(|r| r.rank, msg_count, duration)`: does per-rank
    /// communication time track per-rank message volume?
    pub fn correlate_groups<K: Ord, F: Fn(&EventRecord) -> K>(
        &self,
        key: F,
        x: impl Fn(&GroupAgg) -> f64,
        y: impl Fn(&GroupAgg) -> f64,
    ) -> f64 {
        let groups = self.group_by(key);
        let xs: Vec<f64> = groups.values().map(&x).collect();
        let ys: Vec<f64> = groups.values().map(&y).collect();
        stats::pearson(&xs, &ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EventTable {
        let mut t = EventTable::new();
        for step in 0..3u32 {
            for rank in 0..4u32 {
                t.push(EventRecord::compute(
                    step,
                    rank,
                    rank,
                    100 * (rank as u64 + 1),
                ));
                t.push(EventRecord {
                    step,
                    rank,
                    block: rank,
                    phase: Phase::BoundaryComm,
                    duration_ns: 50 * (rank as u64 + 1),
                    msg_count: 26,
                    msg_bytes: 1000 * (rank as u64 + 1),
                });
            }
        }
        t
    }

    #[test]
    fn summary_matches_group_agg_in_one_pass() {
        let t = table();
        let q = Query::new(&t).phase(Phase::BoundaryComm);
        let s = q.summary();
        assert_eq!(s.count, q.count());
        assert_eq!(s.total_duration_ns, q.total_duration_ns());
        assert_eq!(s.total_msg_count, q.total_msg_count());
        assert_eq!(s.max_duration_ns, 200);
        assert_eq!(s.total_msg_bytes, 3 * (1000 + 2000 + 3000 + 4000));
        assert_eq!(Query::new(&t).rank(99).summary(), QuerySummary::default());
    }

    #[test]
    fn aggregates_saturate_on_degenerate_durations() {
        // Two near-MAX rows: unchecked sums would wrap in release builds
        // and panic in debug; every aggregate clamps instead.
        let mut t = EventTable::new();
        for step in 0..2u32 {
            t.push(EventRecord {
                step,
                rank: 0,
                block: 0,
                phase: Phase::MpiWait,
                duration_ns: u64::MAX - 1,
                msg_count: u32::MAX,
                msg_bytes: u64::MAX - 1,
            });
        }
        let q = Query::new(&t);
        assert_eq!(q.total_duration_ns(), u64::MAX);
        let s = q.summary();
        assert_eq!(s.total_duration_ns, u64::MAX);
        assert_eq!(s.total_msg_bytes, u64::MAX);
        assert_eq!(s.max_duration_ns, u64::MAX - 1);
        let g = q.by_rank();
        assert_eq!(g[&0].total_duration_ns, u64::MAX);
        assert_eq!(g[&0].total_msg_bytes, u64::MAX);
    }

    #[test]
    fn filters_compose() {
        let t = table();
        let q = Query::new(&t)
            .phase(Phase::Compute)
            .rank(2)
            .step_range(1, 3);
        assert_eq!(q.count(), 2);
        assert_eq!(q.total_duration_ns(), 600);
    }

    #[test]
    fn group_by_rank_totals() {
        let t = table();
        let g = Query::new(&t).phase(Phase::Compute).by_rank();
        assert_eq!(g.len(), 4);
        assert_eq!(g[&0].total_duration_ns, 300);
        assert_eq!(g[&3].total_duration_ns, 1200);
        assert_eq!(g[&3].count, 3);
        assert!((g[&3].mean_duration_ns() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_phase_partitions_everything() {
        let t = table();
        let g = Query::new(&t).by_phase();
        let total: usize = g.values().map(|a| a.count).sum();
        assert_eq!(total, t.len());
        assert_eq!(g[&Phase::Compute].count, 12);
        assert_eq!(g[&Phase::BoundaryComm].count, 12);
    }

    #[test]
    fn per_rank_secs_dense() {
        let t = table();
        let v = Query::new(&t).phase(Phase::BoundaryComm).per_rank_secs(6);
        assert_eq!(v.len(), 6);
        assert!(v[3] > v[0]);
        assert_eq!(v[5], 0.0);
    }

    #[test]
    fn correlation_of_comm_time_and_volume_is_high() {
        // Comm durations are proportional to msg_bytes by construction.
        let t = table();
        let r = Query::new(&t).phase(Phase::BoundaryComm).correlate_groups(
            |r| r.rank,
            |g| g.total_msg_bytes as f64,
            |g| g.total_duration_ns as f64,
        );
        assert!(r > 0.999, "r = {r}");
    }

    #[test]
    fn arbitrary_filter_and_block_grouping() {
        let t = table();
        let q = Query::new(&t).filter(|r| r.msg_count > 0);
        assert_eq!(q.count(), 12);
        let g = q.by_block();
        assert_eq!(g.len(), 4);
        assert_eq!(g[&1].total_msg_count, 3 * 26);
    }
}
