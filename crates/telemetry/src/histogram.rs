//! Log-scale latency histograms with lossless merge.
//!
//! Duration telemetry spans six orders of magnitude (sub-µs dispatches to
//! multi-ms recovery stalls), so linear bins either blur the tail or
//! explode in count. `LogHistogram` uses exponentially spaced bins
//! (power-of-two boundaries with configurable sub-bins per octave, in the
//! HDR-histogram tradition) and supports merging — the per-rank histograms
//! of a parallel run aggregate into a global one without revisiting events,
//! which is how production telemetry systems keep collection overhead
//! constant per event.

use serde::{Deserialize, Serialize};

/// Exponentially binned histogram of nanosecond durations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Sub-bins per power of two (resolution; 1 = pure octaves).
    sub_bins: u32,
    /// counts[i] covers values in bucket i (see [`Self::bucket_of`]).
    counts: Vec<u64>,
    total: u64,
    /// Exact min/max seen (the histogram itself is lossy).
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// Histogram with `sub_bins` linear sub-divisions per octave (1–64).
    pub fn new(sub_bins: u32) -> LogHistogram {
        assert!((1..=64).contains(&sub_bins));
        LogHistogram {
            sub_bins,
            // 64 octaves cover the whole u64 range.
            counts: vec![0; (64 * sub_bins) as usize + 1],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a value.
    fn bucket_of(&self, value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let octave = 63 - value.leading_zeros(); // floor(log2(value))
        let base = 1u64 << octave;
        // Position within the octave, scaled to sub_bins slots.
        let frac = ((value - base) as u128 * self.sub_bins as u128 / base as u128) as u32;
        (1 + octave * self.sub_bins + frac.min(self.sub_bins - 1)) as usize
    }

    /// Lower bound of a bucket (inverse of [`Self::bucket_of`], approximate).
    fn bucket_lo(&self, bucket: usize) -> u64 {
        if bucket == 0 {
            return 0;
        }
        let b = (bucket - 1) as u32;
        let octave = b / self.sub_bins;
        let frac = b % self.sub_bins;
        let base = 1u64 << octave;
        base + (base as u128 * frac as u128 / self.sub_bins as u128) as u64
    }

    /// Record one duration.
    pub fn record(&mut self, value: u64) {
        let b = self.bucket_of(value);
        self.counts[b] += 1;
        self.total += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact minimum / maximum recorded (0 / 0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (bucket lower bound; relative error bounded
    /// by the octave subdivision, ~`1/sub_bins`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bucket_lo(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram (must share `sub_bins`).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.sub_bins, other.sub_bins, "resolution mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Forget every recorded value, keeping the allocation and resolution —
    /// for registries reused across runs.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Non-empty buckets as `(lower_bound_ns, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (self.bucket_lo(b), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = LogHistogram::new(8);
        for v in [0u64, 1, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn quantiles_bounded_by_resolution() {
        let mut h = LogHistogram::new(16);
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = (q * 10_000.0) as u64;
            let approx = h.quantile(q);
            let rel = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.15, "q={q}: approx {approx} vs exact {exact}");
        }
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
    }

    #[test]
    fn spike_visible_in_tail_quantile() {
        let mut h = LogHistogram::new(8);
        for _ in 0..999 {
            h.record(1_000);
        }
        h.record(5_000_000);
        assert!(h.quantile(0.5) < 2_000);
        assert!(h.quantile(0.9999) >= 4_000_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new(8);
        let mut b = LogHistogram::new(8);
        let mut combined = LogHistogram::new(8);
        for v in [5u64, 50, 500, 5_000] {
            a.record(v);
            combined.record(v);
        }
        for v in [7u64, 70, 700_000] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    #[should_panic(expected = "resolution mismatch")]
    fn merge_rejects_mixed_resolution() {
        let mut a = LogHistogram::new(8);
        a.merge(&LogHistogram::new(16));
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        let h = LogHistogram::new(8);
        let mut prev = 0usize;
        for v in [1u64, 2, 3, 7, 8, 9, 1000, 1_000_000, u64::MAX / 2] {
            let b = h.bucket_of(v);
            assert!(b >= prev, "bucket not monotone at {v}");
            assert!(h.bucket_lo(b) <= v);
            prev = b;
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LogHistogram::new(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn reset_restores_the_empty_state() {
        let mut h = LogHistogram::new(8);
        for v in [5u64, 50, 500_000] {
            h.record(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.9), 0);
        assert!(h.nonzero_buckets().is_empty());
        // Still usable after the wipe.
        h.record(42);
        assert_eq!((h.count(), h.min(), h.max()), (1, 42, 42));
    }
}
