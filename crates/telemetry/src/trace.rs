//! Structured span tracing and step metrics: the auditable phase attribution
//! the paper's placement lessons depend on.
//!
//! The 35–50% synchronization fraction of Fig. 6a is *the* signal placement
//! optimizes against; if wait time is mis-attributed, every policy comparison
//! silently inherits the error. Production AMR frameworks answer this with
//! built-in per-region timers (Parthenon's kernel regions are the closest
//! cousin); this module is the simulator-sized equivalent:
//!
//! * [`TraceSink`] — a pooled ring buffer of [`SpanRecord`]s with RAII span
//!   guards over a fixed phase taxonomy ([`TracePhase`]). Steady-state
//!   recording is allocation-free: the ring is sized once at construction
//!   and old spans are overwritten, never reallocated (proved in this
//!   crate's `zero_alloc` test like the placement engine and event arena
//!   before it).
//! * [`MetricsRegistry`] — fixed-slot counters and gauges plus a per-phase
//!   [`LogHistogram`], all behind interior mutability so instrumented code
//!   publishes through a shared handle without threading `&mut` everywhere.
//! * [`TraceHandle`] — the cloneable bundle (`Rc<TraceSink>` +
//!   `Rc<MetricsRegistry>`) that macrosim, the placement engine, and the
//!   mesh adapt path each hold a copy of.
//! * Exporters to Chrome trace-event JSON ([`chrome_trace_json`], load in
//!   `chrome://tracing` / Perfetto) and collapsed-stack format
//!   ([`collapsed_stacks`], feed to `flamegraph.pl`).
//!
//! Spans carry a [`Track`]: `Host` spans are wall-clock measurements of the
//! simulator's own work (placement, graph patching, remeshing); `Virtual`
//! spans replay simulated time (exchanges, collectives). Tracing observes and
//! never perturbs — a traced run's virtual timeline is bit-identical to an
//! untraced one (pinned by a property test in `tests/sim_properties.rs`).

// Legacy single-threaded module: the sink/registry are deliberately
// `Rc`/`Cell`-based (no atomics on the record path) and pinned to the owning
// thread. Worker threads record into `lane::WorkerLane` (plain `&mut`, Send)
// instead, so the workspace-wide `disallowed_types` guard is waived only
// here, not in the parallel lane module.
#![allow(clippy::disallowed_types)]

use crate::histogram::LogHistogram;
use crate::lane::WorkerLane;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Fixed phase taxonomy for spans and per-phase histograms. Fixed (rather
/// than string-keyed) so recording is a branch-free array index and the
/// steady-state path never hashes or allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum TracePhase {
    /// Mesh adaptation: tag, refine/coarsen, delta production.
    Remesh,
    /// Splicing the block index after an adapt (keys/blocks arrays).
    SpliceIndex,
    /// Incremental CSR neighbor-graph repair (or the full-build fallback).
    GraphPatch,
    /// Placement computation (policy run + migration diff) in the engine.
    Place,
    /// Boundary exchange (ghost zones + flux correction), virtual time.
    Exchange,
    /// The per-step blocking allreduce, virtual time.
    Collective,
    /// Online fault response: detector observe + reweight/prune actions.
    FaultResponse,
}

impl TracePhase {
    /// Number of phases (array sizes, iteration bounds).
    pub const COUNT: usize = 7;

    /// All phases, in declaration order.
    pub const ALL: [TracePhase; TracePhase::COUNT] = [
        TracePhase::Remesh,
        TracePhase::SpliceIndex,
        TracePhase::GraphPatch,
        TracePhase::Place,
        TracePhase::Exchange,
        TracePhase::Collective,
        TracePhase::FaultResponse,
    ];

    /// Stable snake_case name (used by both exporters).
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Remesh => "remesh",
            TracePhase::SpliceIndex => "splice_index",
            TracePhase::GraphPatch => "graph_patch",
            TracePhase::Place => "place",
            TracePhase::Exchange => "exchange",
            TracePhase::Collective => "collective",
            TracePhase::FaultResponse => "fault_response",
        }
    }

    /// Dense index for per-phase arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Which clock a span was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// Host wall-clock: real time the simulator spent doing the work.
    Host,
    /// Simulated virtual time replayed from the cost model.
    Virtual,
}

impl Track {
    pub fn name(self) -> &'static str {
        match self {
            Track::Host => "host",
            Track::Virtual => "virtual",
        }
    }
}

/// One completed span. `Copy` so the ring buffer overwrites slots in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    pub phase: TracePhase,
    pub track: Track,
    /// Simulation step active when the span closed.
    pub step: u32,
    /// Recording lane: 0 for the sink's owning thread, `1..` for worker
    /// lanes (see [`crate::lane::WorkerLane`]).
    pub lane: u16,
    /// Start time in ns — host spans measure from the sink's epoch, virtual
    /// spans carry simulated-time offsets.
    pub start_ns: u64,
    pub dur_ns: u64,
}

impl Default for SpanRecord {
    fn default() -> SpanRecord {
        SpanRecord {
            phase: TracePhase::Remesh,
            track: Track::Host,
            step: 0,
            lane: 0,
            start_ns: 0,
            dur_ns: 0,
        }
    }
}

/// Fixed-capacity span ring: slots are pre-filled at construction and
/// overwritten oldest-first once full, so pushing never allocates.
#[derive(Debug)]
struct Ring {
    buf: Vec<SpanRecord>,
    /// Index of the oldest live record.
    head: usize,
    /// Number of live records (≤ `buf.len()`).
    len: usize,
}

/// Pooled ring-buffer trace sink. All methods take `&self` (interior
/// mutability) so a single sink can be shared — via [`TraceHandle`] — by the
/// simulator, the placement engine, and the mesh without borrow gymnastics.
///
/// Not `Sync`: the sink's own record path is single-threaded by design and
/// `Rc`/`Cell` keep it free of atomics. Parallel phases record through
/// [`WorkerLane`]s instead — per-worker rings the owning thread checks out
/// with [`TraceSink::with_lanes_mut`] for the duration of a parallel region
/// and that every snapshot/export merges back in.
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    step: Cell<u32>,
    dropped: Cell<u64>,
    ring: RefCell<Ring>,
    /// Worker lanes (lane ids `1..`), created on demand by `ensure_lanes`.
    lanes: RefCell<Vec<WorkerLane>>,
}

impl TraceSink {
    /// Sink holding up to `capacity` spans; the oldest are overwritten once
    /// full ([`TraceSink::dropped`] counts the overwrites — a silent-cap
    /// guard for exporters).
    pub fn with_capacity(capacity: usize) -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            step: Cell::new(0),
            dropped: Cell::new(0),
            ring: RefCell::new(Ring {
                buf: vec![SpanRecord::default(); capacity],
                head: 0,
                len: 0,
            }),
            lanes: RefCell::new(Vec::new()),
        }
    }

    /// Make sure at least `workers` worker lanes exist, each with
    /// `capacity` pre-allocated slots (lane ids `1..=workers`). Existing
    /// lanes are kept as-is, so calling this every parallel region is free
    /// after the first call — the steady state allocates nothing.
    pub fn ensure_lanes(&self, workers: usize, capacity: usize) {
        let mut lanes = self.lanes.borrow_mut();
        while lanes.len() < workers {
            let id = (lanes.len() + 1) as u16;
            lanes.push(WorkerLane::with_capacity(id, self.epoch, capacity));
        }
    }

    /// Number of worker lanes created so far.
    pub fn lane_count(&self) -> usize {
        self.lanes.borrow().len()
    }

    /// Borrow all worker lanes mutably for the duration of a parallel
    /// region; the caller distributes one `&mut WorkerLane` to each task.
    pub fn with_lanes_mut<R>(&self, f: impl FnOnce(&mut [WorkerLane]) -> R) -> R {
        f(&mut self.lanes.borrow_mut())
    }

    /// Tag subsequent spans with `step` (called once per simulation step).
    pub fn set_step(&self, step: u32) {
        self.step.set(step);
    }

    /// Step tag currently applied to new spans.
    pub fn step(&self) -> u32 {
        self.step.get()
    }

    /// Live span count.
    pub fn len(&self) -> usize {
        self.ring.borrow().len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.borrow().buf.len()
    }

    /// Spans overwritten because a ring was full (main ring + all lanes).
    pub fn dropped(&self) -> u64 {
        self.dropped.get() + self.lanes.borrow().iter().map(|l| l.dropped()).sum::<u64>()
    }

    /// Nanoseconds since the sink was created (host-span clock).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a completed span directly (the guard path calls this on drop).
    pub fn push(&self, rec: SpanRecord) {
        let mut ring = self.ring.borrow_mut();
        let cap = ring.buf.len();
        if cap == 0 {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        if ring.len < cap {
            let at = (ring.head + ring.len) % cap;
            ring.buf[at] = rec;
            ring.len += 1;
        } else {
            let at = ring.head;
            ring.buf[at] = rec;
            ring.head = (ring.head + 1) % cap;
            self.dropped.set(self.dropped.get() + 1);
        }
    }

    /// Record a span in simulated virtual time.
    pub fn record_virtual(&self, phase: TracePhase, start_ns: u64, dur_ns: u64) {
        self.push(SpanRecord {
            phase,
            track: Track::Virtual,
            step: self.step.get(),
            lane: 0,
            start_ns,
            dur_ns,
        });
    }

    /// Open a host wall-clock span; it records itself when dropped.
    pub fn span(&self, phase: TracePhase) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            phase,
            start_ns: self.now_ns(),
        }
    }

    /// Copy live spans into `out` (cleared; capacity reused): the main ring
    /// oldest-first, then each worker lane's spans oldest-first in lane
    /// order. The merge is a deterministic function of ring contents —
    /// records carry their lane id, so exporters can still split by worker.
    pub fn snapshot_into(&self, out: &mut Vec<SpanRecord>) {
        out.clear();
        let ring = self.ring.borrow();
        let cap = ring.buf.len();
        for i in 0..ring.len {
            out.push(ring.buf[(ring.head + i) % cap]);
        }
        for lane in self.lanes.borrow().iter() {
            lane.snapshot_into(out);
        }
    }

    /// Allocating convenience over [`TraceSink::snapshot_into`].
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let lanes: usize = self.lanes.borrow().iter().map(|l| l.len()).sum();
        let mut out = Vec::with_capacity(self.len() + lanes);
        self.snapshot_into(&mut out);
        out
    }

    /// Discard all spans, main ring and lanes (capacity and epoch kept).
    pub fn clear(&self) {
        let mut ring = self.ring.borrow_mut();
        ring.head = 0;
        ring.len = 0;
        self.dropped.set(0);
        for lane in self.lanes.borrow_mut().iter_mut() {
            lane.clear();
        }
    }
}

/// RAII guard for a host span: measures from creation to drop and pushes the
/// record into the sink. Created via [`TraceSink::span`] /
/// [`TraceHandle::span`].
#[must_use = "a span guard measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct SpanGuard<'a> {
    sink: &'a TraceSink,
    phase: TracePhase,
    start_ns: u64,
}

impl SpanGuard<'_> {
    /// Elapsed host time so far (the value recorded at drop).
    pub fn elapsed_ns(&self) -> u64 {
        self.sink.now_ns().saturating_sub(self.start_ns)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur_ns = self.elapsed_ns();
        self.sink.push(SpanRecord {
            phase: self.phase,
            track: Track::Host,
            step: self.sink.step(),
            lane: 0,
            start_ns: self.start_ns,
            dur_ns,
        });
    }
}

/// Fixed counter slots published by the instrumented pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Counter {
    /// Simulation steps executed.
    Steps,
    /// Mesh adapt calls (including no-ops).
    Adapts,
    /// Adapt calls whose changeset was the identity.
    NoopAdapts,
    /// Blocks created by refinement.
    BlocksRefined,
    /// Blocks removed by coarsening merges.
    BlocksCoarsened,
    /// Incremental CSR neighbor-graph repairs.
    GraphPatches,
    /// Full neighbor-graph rebuild fallbacks.
    GraphFullBuilds,
    /// Patch entry points that silently degraded to a full rebuild because
    /// the stored delta could not vouch for the caller's graph (identity,
    /// stale, or block-count mismatch). A nonzero value in a steady-state
    /// sharded/incremental run is a patching regression, not just slowness.
    GraphPatchFallbacks,
    /// Placement engine rebalances.
    Rebalances,
    /// Blocks whose rank changed across all rebalances.
    BlocksMoved,
    /// Per-step blocking collectives executed.
    Collectives,
    /// Detector-driven capacity-vector changes.
    CapacityUpdates,
    /// Nodes blacklisted and re-hosted on spares.
    NodesPruned,
    /// Exchange-byte ledger materializations (pending rounds → per-relation
    /// bytes) ahead of a rebalance or remesh.
    LedgerFlushes,
    /// Ledger relation-space remaps that carried observations across a
    /// remesh (origin-tracked survivors only).
    LedgerRemaps,
    /// Observed exchange bytes currently represented in the ledger.
    LedgerObservedBytes,
}

impl Counter {
    pub const COUNT: usize = 16;

    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Steps,
        Counter::Adapts,
        Counter::NoopAdapts,
        Counter::BlocksRefined,
        Counter::BlocksCoarsened,
        Counter::GraphPatches,
        Counter::GraphFullBuilds,
        Counter::GraphPatchFallbacks,
        Counter::Rebalances,
        Counter::BlocksMoved,
        Counter::Collectives,
        Counter::CapacityUpdates,
        Counter::NodesPruned,
        Counter::LedgerFlushes,
        Counter::LedgerRemaps,
        Counter::LedgerObservedBytes,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::Steps => "steps",
            Counter::Adapts => "adapts",
            Counter::NoopAdapts => "noop_adapts",
            Counter::BlocksRefined => "blocks_refined",
            Counter::BlocksCoarsened => "blocks_coarsened",
            Counter::GraphPatches => "graph_patches",
            Counter::GraphFullBuilds => "graph_full_builds",
            Counter::GraphPatchFallbacks => "graph_patch_fallbacks",
            Counter::Rebalances => "rebalances",
            Counter::BlocksMoved => "blocks_moved",
            Counter::Collectives => "collectives",
            Counter::CapacityUpdates => "capacity_updates",
            Counter::NodesPruned => "nodes_pruned",
            Counter::LedgerFlushes => "ledger_flushes",
            Counter::LedgerRemaps => "ledger_remaps",
            Counter::LedgerObservedBytes => "ledger_observed_bytes",
        }
    }
}

/// Fixed gauge slots (latest-value semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Gauge {
    /// Blocks in the mesh after the latest step.
    Blocks,
    /// Ranks being simulated.
    Ranks,
    /// Imbalance of the latest placement under current costs.
    Imbalance,
    /// Latest step's synchronization fraction: sync / (compute+comm+sync).
    /// This is the corrected-wait signal the collective bugfix changes.
    SyncFraction,
}

impl Gauge {
    pub const COUNT: usize = 4;

    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::Blocks,
        Gauge::Ranks,
        Gauge::Imbalance,
        Gauge::SyncFraction,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Gauge::Blocks => "blocks",
            Gauge::Ranks => "ranks",
            Gauge::Imbalance => "imbalance",
            Gauge::SyncFraction => "sync_fraction",
        }
    }
}

/// Fixed-slot metrics registry: counters, gauges, and a per-phase duration
/// histogram. Everything is pre-allocated at construction; `incr`, `set` and
/// `observe_phase_ns` are allocation-free (covered by the zero-alloc test).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [Cell<u64>; Counter::COUNT],
    gauges: [Cell<f64>; Gauge::COUNT],
    phase_ns: RefCell<Vec<LogHistogram>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            counters: std::array::from_fn(|_| Cell::new(0)),
            gauges: std::array::from_fn(|_| Cell::new(0.0)),
            phase_ns: RefCell::new(
                (0..TracePhase::COUNT)
                    .map(|_| LogHistogram::new(8))
                    .collect(),
            ),
        }
    }

    /// Add `by` to a counter.
    pub fn incr(&self, c: Counter, by: u64) {
        let cell = &self.counters[c as usize];
        cell.set(cell.get().saturating_add(by));
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].get()
    }

    /// Set a gauge to its latest value.
    pub fn set(&self, g: Gauge, value: f64) {
        self.gauges[g as usize].set(value);
    }

    pub fn gauge(&self, g: Gauge) -> f64 {
        self.gauges[g as usize].get()
    }

    /// Record one duration into a phase's histogram.
    pub fn observe_phase_ns(&self, phase: TracePhase, ns: u64) {
        self.phase_ns.borrow_mut()[phase.index()].record(ns);
    }

    /// Run `f` against a phase's histogram (no copy).
    pub fn with_phase<R>(&self, phase: TracePhase, f: impl FnOnce(&LogHistogram) -> R) -> R {
        f(&self.phase_ns.borrow()[phase.index()])
    }

    /// Observations recorded for a phase so far. The adaptive control plane
    /// uses this as its warm-up gate: zero means no history to decide from.
    pub fn phase_count(&self, phase: TracePhase) -> u64 {
        self.with_phase(phase, |h| h.count())
    }

    /// Quantile (`0.0..=1.0`) of a phase's recorded durations, in ns
    /// (log-bucket upper bound; 0 when empty).
    pub fn phase_quantile_ns(&self, phase: TracePhase, q: f64) -> u64 {
        self.with_phase(phase, |h| h.quantile(q))
    }

    /// Largest duration recorded for a phase, in ns (0 when empty).
    pub fn phase_max_ns(&self, phase: TracePhase) -> u64 {
        self.with_phase(phase, |h| h.max())
    }

    /// Zero every counter, gauge, and phase histogram in place (capacity
    /// kept). The simulator's always-on feedback registry resets at the top
    /// of each run so one run's pressure history can't leak into the next.
    pub fn reset(&self) {
        for c in &self.counters {
            c.set(0);
        }
        for g in &self.gauges {
            g.set(0.0);
        }
        let mut hists = self.phase_ns.borrow_mut();
        for h in hists.iter_mut() {
            h.reset();
        }
    }

    /// Human-readable dump: counters, gauges, then per-phase histogram
    /// summaries (count/min/p50/max ns). For logs and bench output.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for c in Counter::ALL {
            let _ = writeln!(out, "  {:<18} {}", c.name(), self.counter(c));
        }
        out.push_str("gauges:\n");
        for g in Gauge::ALL {
            let _ = writeln!(out, "  {:<18} {:.4}", g.name(), self.gauge(g));
        }
        out.push_str("phase_ns (count min p50 max):\n");
        let hists = self.phase_ns.borrow();
        for p in TracePhase::ALL {
            let h = &hists[p.index()];
            let _ = writeln!(
                out,
                "  {:<18} {} {} {} {}",
                p.name(),
                h.count(),
                h.min(),
                h.quantile(0.5),
                h.max()
            );
        }
        out
    }
}

/// The cloneable bundle instrumented components hold: one shared sink, one
/// shared registry. Cloning is two `Rc` bumps — no allocation — so handing a
/// copy to the engine, the mesh, and the simulator keeps them all publishing
/// into the same artifacts.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    pub sink: Rc<TraceSink>,
    pub metrics: Rc<MetricsRegistry>,
}

impl TraceHandle {
    /// Handle with a fresh sink (ring of `span_capacity`) and registry.
    pub fn new(span_capacity: usize) -> TraceHandle {
        TraceHandle {
            sink: Rc::new(TraceSink::with_capacity(span_capacity)),
            metrics: Rc::new(MetricsRegistry::new()),
        }
    }

    /// Open a host span that, on drop, records into the sink *and* observes
    /// its duration into the phase histogram.
    pub fn span(&self, phase: TracePhase) -> TracedSpan<'_> {
        TracedSpan {
            handle: self,
            phase,
            start_ns: self.sink.now_ns(),
        }
    }

    /// Record a virtual-time span and observe it into the phase histogram.
    pub fn record_virtual(&self, phase: TracePhase, start_ns: u64, dur_ns: u64) {
        self.sink.record_virtual(phase, start_ns, dur_ns);
        self.metrics.observe_phase_ns(phase, dur_ns);
    }
}

/// RAII guard from [`TraceHandle::span`]: feeds both the sink and the
/// per-phase histogram on drop.
#[must_use = "a span guard measures until dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct TracedSpan<'a> {
    handle: &'a TraceHandle,
    phase: TracePhase,
    start_ns: u64,
}

impl Drop for TracedSpan<'_> {
    fn drop(&mut self) {
        let dur_ns = self.handle.sink.now_ns().saturating_sub(self.start_ns);
        self.handle.sink.push(SpanRecord {
            phase: self.phase,
            track: Track::Host,
            step: self.handle.sink.step(),
            lane: 0,
            start_ns: self.start_ns,
            dur_ns,
        });
        self.handle.metrics.observe_phase_ns(self.phase, dur_ns);
    }
}

/// Serialize spans as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto "JSON Array Format" with a `traceEvents` wrapper). Host spans go
/// on tid 1, virtual spans on tid 2, worker-lane spans on tid `16 + lane`;
/// timestamps are microseconds as the format requires.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"host\"}},",
    );
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"virtual\"}}",
    );
    for s in spans {
        let tid = match (s.track, s.lane) {
            (Track::Host, 0) => 1,
            (Track::Virtual, _) => 2,
            (Track::Host, lane) => 16 + lane as u32,
        };
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"step\":{}}}}}",
            s.phase.name(),
            s.track.name(),
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            tid,
            s.step
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Serialize spans in collapsed-stack (flamegraph) format: one line per
/// `track;phase` stack with the summed duration in ns as the sample weight.
/// Feed straight to `flamegraph.pl` / `inferno-flamegraph`.
pub fn collapsed_stacks(spans: &[SpanRecord]) -> String {
    let mut totals = [[0u64; TracePhase::COUNT]; 2];
    for s in spans {
        let t = match s.track {
            Track::Host => 0,
            Track::Virtual => 1,
        };
        let slot = &mut totals[t][s.phase.index()];
        *slot = slot.saturating_add(s.dur_ns);
    }
    let mut out = String::new();
    for (t, track) in [Track::Host, Track::Virtual].into_iter().enumerate() {
        for p in TracePhase::ALL {
            let total = totals[t][p.index()];
            if total > 0 {
                let _ = writeln!(out, "amr;{};{} {}", track.name(), p.name(), total);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_on_drop() {
        let sink = TraceSink::with_capacity(8);
        sink.set_step(3);
        {
            let _g = sink.span(TracePhase::Place);
        }
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, TracePhase::Place);
        assert_eq!(spans[0].track, Track::Host);
        assert_eq!(spans[0].step, 3);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let sink = TraceSink::with_capacity(4);
        for i in 0..10u64 {
            sink.record_virtual(TracePhase::Collective, i, 1);
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
        let spans = sink.snapshot();
        let starts: Vec<u64> = spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9]); // oldest first, newest kept
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn zero_capacity_sink_drops_everything() {
        let sink = TraceSink::with_capacity(0);
        sink.record_virtual(TracePhase::Exchange, 0, 5);
        {
            let _g = sink.span(TracePhase::Place);
        }
        assert_eq!(sink.len(), 0);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn metrics_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.incr(Counter::Rebalances, 2);
        m.incr(Counter::Rebalances, 1);
        assert_eq!(m.counter(Counter::Rebalances), 3);
        assert_eq!(m.counter(Counter::Steps), 0);
        m.incr(Counter::BlocksMoved, u64::MAX);
        m.incr(Counter::BlocksMoved, 1); // saturates, never wraps
        assert_eq!(m.counter(Counter::BlocksMoved), u64::MAX);
        m.set(Gauge::Imbalance, 1.25);
        assert_eq!(m.gauge(Gauge::Imbalance), 1.25);
        m.observe_phase_ns(TracePhase::Place, 1_000);
        m.observe_phase_ns(TracePhase::Place, 3_000);
        let (count, max) = m.with_phase(TracePhase::Place, |h| (h.count(), h.max()));
        assert_eq!(count, 2);
        assert_eq!(max, 3_000);
        let summary = m.render_summary();
        assert!(summary.contains("rebalances"));
        assert!(summary.contains("sync_fraction"));
        assert!(summary.contains("place"));
    }

    #[test]
    fn handle_span_feeds_sink_and_histogram() {
        let t = TraceHandle::new(16);
        {
            let _g = t.span(TracePhase::GraphPatch);
        }
        t.record_virtual(TracePhase::Collective, 100, 50);
        assert_eq!(t.sink.len(), 2);
        assert_eq!(
            t.metrics.with_phase(TracePhase::GraphPatch, |h| h.count()),
            1
        );
        assert_eq!(
            t.metrics.with_phase(TracePhase::Collective, |h| h.max()),
            50
        );
        // Clones publish into the same sink.
        let t2 = t.clone();
        t2.record_virtual(TracePhase::Exchange, 0, 1);
        assert_eq!(t.sink.len(), 3);
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let sink = TraceSink::with_capacity(8);
        sink.set_step(7);
        sink.record_virtual(TracePhase::Collective, 2_000, 500);
        {
            let _g = sink.span(TracePhase::Place);
        }
        let json = chrome_trace_json(&sink.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"name\":\"collective\""));
        assert!(json.contains("\"cat\":\"virtual\""));
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"name\":\"place\""));
        assert!(json.contains("\"step\":7"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the dependency-free build).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn collapsed_export_sums_per_stack() {
        let sink = TraceSink::with_capacity(8);
        sink.record_virtual(TracePhase::Exchange, 0, 30);
        sink.record_virtual(TracePhase::Exchange, 50, 12);
        sink.record_virtual(TracePhase::Collective, 100, 5);
        let folded = collapsed_stacks(&sink.snapshot());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"amr;virtual;exchange 42"));
        assert!(lines.contains(&"amr;virtual;collective 5"));
        // Phases with no samples are omitted.
        assert!(!folded.contains("remesh"));
    }

    #[test]
    fn snapshot_merges_worker_lanes_behind_the_same_api() {
        let sink = TraceSink::with_capacity(8);
        sink.set_step(4);
        sink.record_virtual(TracePhase::Collective, 100, 5);
        sink.ensure_lanes(2, 4);
        assert_eq!(sink.lane_count(), 2);
        sink.with_lanes_mut(|lanes| {
            lanes[0].record_host(TracePhase::Exchange, 4, 10, 3);
            lanes[1].record_host(TracePhase::Exchange, 4, 11, 2);
            lanes[1].record_host(TracePhase::Exchange, 4, 20, 1);
        });
        // ensure_lanes never shrinks or replaces warm lanes.
        sink.ensure_lanes(1, 4);
        assert_eq!(sink.lane_count(), 2);
        let spans = sink.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].lane, 0);
        let lanes: Vec<u16> = spans.iter().map(|s| s.lane).collect();
        assert_eq!(lanes, vec![0, 1, 2, 2]);
        // Lane spans survive into the exporters with their own tids.
        let json = chrome_trace_json(&spans);
        assert!(json.contains("\"tid\":17"));
        assert!(json.contains("\"tid\":18"));
        sink.clear();
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn lane_drops_count_toward_sink_dropped() {
        let sink = TraceSink::with_capacity(4);
        sink.ensure_lanes(1, 2);
        sink.with_lanes_mut(|lanes| {
            for i in 0..5 {
                lanes[0].record_host(TracePhase::Exchange, 0, i, 1);
            }
        });
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn registry_query_surface_and_reset() {
        let m = MetricsRegistry::new();
        assert_eq!(m.phase_count(TracePhase::Collective), 0);
        assert_eq!(m.phase_max_ns(TracePhase::Collective), 0);
        m.observe_phase_ns(TracePhase::Collective, 1_000);
        m.observe_phase_ns(TracePhase::Collective, 9_000);
        m.observe_phase_ns(TracePhase::Exchange, 500);
        m.set(Gauge::SyncFraction, 0.42);
        m.incr(Counter::Steps, 3);
        assert_eq!(m.phase_count(TracePhase::Collective), 2);
        assert_eq!(m.phase_count(TracePhase::Exchange), 1);
        assert_eq!(m.phase_max_ns(TracePhase::Collective), 9_000);
        let p50 = m.phase_quantile_ns(TracePhase::Collective, 0.5);
        assert!((1_000..9_000).contains(&p50), "p50 = {p50}");
        // Helpers agree with the raw accessor.
        assert_eq!(
            m.phase_quantile_ns(TracePhase::Collective, 1.0),
            m.with_phase(TracePhase::Collective, |h| h.quantile(1.0))
        );
        m.reset();
        assert_eq!(m.phase_count(TracePhase::Collective), 0);
        assert_eq!(m.gauge(Gauge::SyncFraction), 0.0);
        assert_eq!(m.counter(Counter::Steps), 0);
        // Still records after the wipe.
        m.observe_phase_ns(TracePhase::Collective, 7);
        assert_eq!(m.phase_count(TracePhase::Collective), 1);
    }

    #[test]
    fn phase_taxonomy_is_stable() {
        assert_eq!(TracePhase::ALL.len(), TracePhase::COUNT);
        let names: Vec<&str> = TracePhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "remesh",
                "splice_index",
                "graph_patch",
                "place",
                "exchange",
                "collective",
                "fault_response"
            ]
        );
        for (i, p) in TracePhase::ALL.into_iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
