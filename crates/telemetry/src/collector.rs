//! The telemetry collection facade used by the simulator.
//!
//! Plays the role of the paper's custom MPI/Kokkos profiling-interface hooks
//! (§IV-C): simulation components report phase durations and message traffic
//! as they execute; the collector appends them to a columnar
//! [`EventTable`]. A `sampling` knob keeps high-frequency experiments from
//! drowning in rows (the paper similarly used programmable triggers to bound
//! telemetry volume).

use crate::record::{EventRecord, Phase, NO_BLOCK};
use crate::table::EventTable;

/// Accumulates telemetry events for one run.
#[derive(Debug)]
pub struct Collector {
    table: EventTable,
    current_step: u32,
    /// Record only every `sampling`-th step's events (1 = record all).
    sampling: u32,
    enabled: bool,
    /// Per-rank compute accumulator for the *current* step, kept regardless
    /// of `sampling` — online anomaly detection needs every step's signal
    /// even when the event table keeps only every n-th. Empty when step
    /// tracking is off.
    step_compute: Vec<f64>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// Collector recording every step.
    pub fn new() -> Self {
        Collector {
            table: EventTable::new(),
            current_step: 0,
            sampling: 1,
            enabled: true,
            step_compute: Vec::new(),
        }
    }

    /// Collector recording every `sampling`-th step (panics on 0).
    pub fn with_sampling(sampling: u32) -> Self {
        assert!(sampling >= 1, "sampling period must be >= 1");
        Collector {
            sampling,
            ..Collector::new()
        }
    }

    /// Disabled collector: all records are dropped. Useful for pure
    /// performance runs where collection overhead should be zero.
    pub fn disabled() -> Self {
        Collector {
            enabled: false,
            ..Collector::new()
        }
    }

    /// Advance to a new timestep; subsequent records carry this step.
    /// Resets the per-step compute series if step tracking is enabled.
    pub fn begin_step(&mut self, step: u32) {
        self.current_step = step;
        self.step_compute.fill(0.0);
    }

    /// Enable per-step per-rank compute tracking for `num_ranks` ranks.
    /// Unlike the event table, the series is refreshed every step even when
    /// `sampling > 1` — it feeds online anomaly detection, which can't
    /// tolerate gaps.
    pub fn track_step_compute(&mut self, num_ranks: usize) {
        self.step_compute.clear();
        self.step_compute.resize(num_ranks, 0.0);
    }

    /// The per-rank compute durations (ns) accumulated since the last
    /// `begin_step`. Empty unless [`Collector::track_step_compute`] was
    /// called.
    pub fn step_compute(&self) -> &[f64] {
        &self.step_compute
    }

    #[inline]
    fn track_compute(&mut self, rank: u32, phase: Phase, duration_ns: u64) {
        if phase == Phase::Compute && !self.step_compute.is_empty() {
            if let Some(slot) = self.step_compute.get_mut(rank as usize) {
                *slot += duration_ns as f64;
            }
        }
    }

    /// The step currently being recorded.
    pub fn current_step(&self) -> u32 {
        self.current_step
    }

    /// Should events for the current step be kept?
    #[inline]
    fn sampled(&self) -> bool {
        self.enabled && self.current_step.is_multiple_of(self.sampling)
    }

    /// Record a per-block phase duration.
    pub fn record_block(&mut self, rank: u32, block: u32, phase: Phase, duration_ns: u64) {
        self.track_compute(rank, phase, duration_ns);
        if self.sampled() {
            self.table.push(EventRecord {
                step: self.current_step,
                rank,
                block,
                phase,
                duration_ns,
                msg_count: 0,
                msg_bytes: 0,
            });
        }
    }

    /// Record a rank-level phase duration (no block attribution).
    pub fn record_rank(&mut self, rank: u32, phase: Phase, duration_ns: u64) {
        self.track_compute(rank, phase, duration_ns);
        if self.sampled() {
            self.table.push(EventRecord::rank_phase(
                self.current_step,
                rank,
                phase,
                duration_ns,
            ));
        }
    }

    /// Record a communication measurement with traffic volume.
    pub fn record_comm(
        &mut self,
        rank: u32,
        block: u32,
        phase: Phase,
        duration_ns: u64,
        msg_count: u32,
        msg_bytes: u64,
    ) {
        if self.sampled() {
            self.table.push(EventRecord {
                step: self.current_step,
                rank,
                block,
                phase,
                duration_ns,
                msg_count,
                msg_bytes,
            });
        }
    }

    /// Record a rank-level communication measurement.
    pub fn record_comm_rank(
        &mut self,
        rank: u32,
        phase: Phase,
        duration_ns: u64,
        msg_count: u32,
        msg_bytes: u64,
    ) {
        self.record_comm(rank, NO_BLOCK, phase, duration_ns, msg_count, msg_bytes);
    }

    /// Rows collected so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Nothing collected?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Borrow the table for querying mid-run.
    pub fn table(&self) -> &EventTable {
        &self.table
    }

    /// Finish collection, returning the table sorted into canonical
    /// `(step, rank, phase, block)` order.
    pub fn finish(mut self) -> EventTable {
        self.table.sort_canonical();
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    #[test]
    fn records_carry_current_step() {
        let mut c = Collector::new();
        c.begin_step(5);
        c.record_rank(2, Phase::Synchronization, 123);
        c.begin_step(6);
        c.record_block(2, 9, Phase::Compute, 456);
        let t = c.finish();
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0).step, 5);
        assert_eq!(t.row(1).step, 6);
        assert_eq!(t.row(1).block, 9);
    }

    #[test]
    fn sampling_drops_off_steps() {
        let mut c = Collector::with_sampling(10);
        for step in 0..25 {
            c.begin_step(step);
            c.record_rank(0, Phase::Compute, 1);
        }
        // Steps 0, 10, 20 recorded.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let mut c = Collector::disabled();
        c.record_rank(0, Phase::Compute, 1);
        c.record_comm(0, 0, Phase::BoundaryComm, 1, 1, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn comm_records_include_volume() {
        let mut c = Collector::new();
        c.record_comm_rank(3, Phase::BoundaryComm, 100, 26, 4096);
        let t = c.finish();
        let g = Query::new(&t).phase(Phase::BoundaryComm).by_rank();
        assert_eq!(g[&3].total_msg_count, 26);
        assert_eq!(g[&3].total_msg_bytes, 4096);
    }

    #[test]
    fn step_tracking_survives_sampling_gaps() {
        let mut c = Collector::with_sampling(10);
        c.track_step_compute(2);
        c.begin_step(3); // not a sampled step
        c.record_rank(0, Phase::Compute, 100);
        c.record_block(1, 7, Phase::Compute, 250);
        c.record_rank(1, Phase::Synchronization, 999); // not compute
        assert_eq!(c.step_compute(), &[100.0, 250.0]);
        assert_eq!(c.len(), 0); // event table dropped the off-step rows
        c.begin_step(4);
        assert_eq!(c.step_compute(), &[0.0, 0.0]); // reset per step
    }

    #[test]
    fn step_tracking_off_by_default() {
        let mut c = Collector::new();
        c.record_rank(0, Phase::Compute, 5);
        assert!(c.step_compute().is_empty());
    }

    #[test]
    fn finish_sorts_canonically() {
        let mut c = Collector::new();
        c.begin_step(2);
        c.record_rank(1, Phase::Compute, 1);
        c.begin_step(1);
        c.record_rank(0, Phase::Compute, 1);
        let t = c.finish();
        assert!(t.row(0).step <= t.row(1).step);
    }
}
