//! Columnar event storage (struct-of-arrays).
//!
//! ClickHouse-style layout at toy scale: one `Vec` per column, so scans for
//! a single dimension touch only that column's memory, and pushes are
//! allocation-free after warm-up. Rows can be materialized on demand as
//! [`EventRecord`]s, but the query layer works directly on columns.

use crate::record::{EventRecord, Phase};

/// Columnar table of telemetry events.
#[derive(Debug, Clone, Default)]
pub struct EventTable {
    step: Vec<u32>,
    rank: Vec<u32>,
    block: Vec<u32>,
    phase: Vec<u8>,
    duration_ns: Vec<u64>,
    msg_count: Vec<u32>,
    msg_bytes: Vec<u64>,
}

impl EventTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty table with row capacity pre-reserved.
    pub fn with_capacity(rows: usize) -> Self {
        EventTable {
            step: Vec::with_capacity(rows),
            rank: Vec::with_capacity(rows),
            block: Vec::with_capacity(rows),
            phase: Vec::with_capacity(rows),
            duration_ns: Vec::with_capacity(rows),
            msg_count: Vec::with_capacity(rows),
            msg_bytes: Vec::with_capacity(rows),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.step.len()
    }

    /// Is the table empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.step.is_empty()
    }

    /// Append one record.
    pub fn push(&mut self, r: EventRecord) {
        self.step.push(r.step);
        self.rank.push(r.rank);
        self.block.push(r.block);
        self.phase.push(r.phase.code());
        self.duration_ns.push(r.duration_ns);
        self.msg_count.push(r.msg_count);
        self.msg_bytes.push(r.msg_bytes);
    }

    /// Materialize row `i` as a record.
    pub fn row(&self, i: usize) -> EventRecord {
        EventRecord {
            step: self.step[i],
            rank: self.rank[i],
            block: self.block[i],
            phase: Phase::from_code(self.phase[i]).expect("valid phase code"),
            duration_ns: self.duration_ns[i],
            msg_count: self.msg_count[i],
            msg_bytes: self.msg_bytes[i],
        }
    }

    /// Iterate over all rows as records.
    pub fn iter(&self) -> impl Iterator<Item = EventRecord> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    // Column accessors (used by the query layer for column-at-a-time scans).

    /// `step` column.
    #[inline]
    pub fn steps(&self) -> &[u32] {
        &self.step
    }
    /// `rank` column.
    #[inline]
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }
    /// `block` column.
    #[inline]
    pub fn blocks(&self) -> &[u32] {
        &self.block
    }
    /// `phase` column (raw codes).
    #[inline]
    pub fn phases(&self) -> &[u8] {
        &self.phase
    }
    /// `duration_ns` column.
    #[inline]
    pub fn durations(&self) -> &[u64] {
        &self.duration_ns
    }
    /// `msg_count` column.
    #[inline]
    pub fn msg_counts(&self) -> &[u32] {
        &self.msg_count
    }
    /// `msg_bytes` column.
    #[inline]
    pub fn msg_bytes(&self) -> &[u64] {
        &self.msg_bytes
    }

    /// Append all rows of `other`.
    pub fn extend_from(&mut self, other: &EventTable) {
        self.step.extend_from_slice(&other.step);
        self.rank.extend_from_slice(&other.rank);
        self.block.extend_from_slice(&other.block);
        self.phase.extend_from_slice(&other.phase);
        self.duration_ns.extend_from_slice(&other.duration_ns);
        self.msg_count.extend_from_slice(&other.msg_count);
        self.msg_bytes.extend_from_slice(&other.msg_bytes);
    }

    /// Sort rows by `(step, rank, phase, block)` — the paper's canonical
    /// layout: "telemetry grouped by timestep and sorted by rank" (Lesson 4).
    pub fn sort_canonical(&mut self) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| (self.step[i], self.rank[i], self.phase[i], self.block[i]));
        self.permute(&idx);
    }

    /// Reorder all columns by the given index permutation.
    fn permute(&mut self, idx: &[usize]) {
        fn apply<T: Copy>(col: &mut Vec<T>, idx: &[usize]) {
            let old = std::mem::take(col);
            col.extend(idx.iter().map(|&i| old[i]));
        }
        apply(&mut self.step, idx);
        apply(&mut self.rank, idx);
        apply(&mut self.block, idx);
        apply(&mut self.phase, idx);
        apply(&mut self.duration_ns, idx);
        apply(&mut self.msg_count, idx);
        apply(&mut self.msg_bytes, idx);
    }

    /// Keep only rows matching the predicate (row-index based, used by
    /// maintenance tasks; ad hoc filtering should go through [`crate::Query`]).
    pub fn retain<F: Fn(&EventRecord) -> bool>(&mut self, pred: F) {
        let keep: Vec<usize> = (0..self.len()).filter(|&i| pred(&self.row(i))).collect();
        self.permute(&keep);
    }
}

impl FromIterator<EventRecord> for EventTable {
    fn from_iter<T: IntoIterator<Item = EventRecord>>(iter: T) -> Self {
        let mut t = EventTable::new();
        for r in iter {
            t.push(r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_BLOCK;

    fn sample() -> EventTable {
        vec![
            EventRecord::compute(1, 1, 0, 100),
            EventRecord::compute(0, 1, 0, 200),
            EventRecord::rank_phase(0, 0, Phase::Synchronization, 300),
            EventRecord::compute(0, 0, 1, 400),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn push_and_row_roundtrip() {
        let t = sample();
        assert_eq!(t.len(), 4);
        let r = t.row(2);
        assert_eq!(r.rank, 0);
        assert_eq!(r.phase, Phase::Synchronization);
        assert_eq!(r.block, NO_BLOCK);
    }

    #[test]
    fn sort_canonical_orders_by_step_then_rank() {
        let mut t = sample();
        t.sort_canonical();
        let steps: Vec<u32> = t.iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 0, 0, 1]);
        let ranks: Vec<u32> = t.iter().map(|r| r.rank).collect();
        assert_eq!(&ranks[..3], &[0, 0, 1]);
    }

    #[test]
    fn extend_and_retain() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b);
        assert_eq!(a.len(), 8);
        a.retain(|r| r.phase == Phase::Compute);
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|r| r.phase == Phase::Compute));
    }

    #[test]
    fn from_iterator_collects() {
        let t: EventTable = (0..10u32)
            .map(|i| EventRecord::compute(i, i % 3, i, i as u64 * 10))
            .collect();
        assert_eq!(t.len(), 10);
        assert_eq!(t.durations()[9], 90);
    }
}
