//! Serialization of event tables: a compact binary format and CSV interop.
//!
//! The paper's pipeline moved from CSV (pandas-friendly, slow to parse) to
//! custom binary formats when parsing became the bottleneck (§IV-C). Both
//! formats are provided: binary for storage/round-trips, CSV for human
//! inspection and external tools.
//!
//! Binary layout (little-endian, columnar):
//!
//! ```text
//! magic "AMRT" | version u32 | rows u64 |
//! step[rows] u32 | rank[rows] u32 | block[rows] u32 | phase[rows] u8 |
//! duration_ns[rows] u64 | msg_count[rows] u32 | msg_bytes[rows] u64
//! ```
//!
//! Columnar on disk too: decoding a single column only needs one contiguous
//! read, mirroring the embedded-statistics/partitioned-scan argument the
//! paper makes for Parquet-style formats (Lesson 4).

use crate::record::{EventRecord, Phase};
use crate::table::EventTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Magic bytes identifying the format.
pub const MAGIC: &[u8; 4] = b"AMRT";
/// Current format version.
pub const VERSION: u32 = 1;

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended before the declared row count was read.
    Truncated,
    /// A phase byte did not map to a known phase.
    BadPhase(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadPhase(p) => write!(f, "invalid phase code {p}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a table into the binary columnar format.
pub fn encode(table: &EventTable) -> Bytes {
    let rows = table.len();
    let cap = 4 + 4 + 8 + rows * (4 + 4 + 4 + 1 + 8 + 4 + 8);
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(rows as u64);
    for &v in table.steps() {
        buf.put_u32_le(v);
    }
    for &v in table.ranks() {
        buf.put_u32_le(v);
    }
    for &v in table.blocks() {
        buf.put_u32_le(v);
    }
    buf.put_slice(table.phases());
    for &v in table.durations() {
        buf.put_u64_le(v);
    }
    for &v in table.msg_counts() {
        buf.put_u32_le(v);
    }
    for &v in table.msg_bytes() {
        buf.put_u64_le(v);
    }
    buf.freeze()
}

/// Decode a binary buffer back into a table.
pub fn decode(mut buf: &[u8]) -> Result<EventTable, DecodeError> {
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let rows = buf.get_u64_le() as usize;
    let need = rows
        .checked_mul(4 + 4 + 4 + 1 + 8 + 4 + 8)
        .ok_or(DecodeError::Truncated)?;
    if buf.remaining() < need {
        return Err(DecodeError::Truncated);
    }
    let mut step = Vec::with_capacity(rows);
    let mut rank = Vec::with_capacity(rows);
    let mut block = Vec::with_capacity(rows);
    let mut phase = Vec::with_capacity(rows);
    let mut duration = Vec::with_capacity(rows);
    let mut msg_count = Vec::with_capacity(rows);
    let mut msg_bytes = Vec::with_capacity(rows);
    for _ in 0..rows {
        step.push(buf.get_u32_le());
    }
    for _ in 0..rows {
        rank.push(buf.get_u32_le());
    }
    for _ in 0..rows {
        block.push(buf.get_u32_le());
    }
    for _ in 0..rows {
        phase.push(buf.get_u8());
    }
    for _ in 0..rows {
        duration.push(buf.get_u64_le());
    }
    for _ in 0..rows {
        msg_count.push(buf.get_u32_le());
    }
    for _ in 0..rows {
        msg_bytes.push(buf.get_u64_le());
    }
    let mut table = EventTable::with_capacity(rows);
    for i in 0..rows {
        let ph = Phase::from_code(phase[i]).ok_or(DecodeError::BadPhase(phase[i]))?;
        table.push(EventRecord {
            step: step[i],
            rank: rank[i],
            block: block[i],
            phase: ph,
            duration_ns: duration[i],
            msg_count: msg_count[i],
            msg_bytes: msg_bytes[i],
        });
    }
    Ok(table)
}

/// CSV header matching [`to_csv`]'s row layout.
pub const CSV_HEADER: &str = "step,rank,block,phase,duration_ns,msg_count,msg_bytes";

/// Render the table as CSV (with header).
pub fn to_csv(table: &EventTable) -> String {
    let mut out = String::with_capacity(table.len() * 32 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in table.iter() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{}\n",
            r.step, r.rank, r.block, r.phase, r.duration_ns, r.msg_count, r.msg_bytes
        ));
    }
    out
}

/// Parse CSV produced by [`to_csv`] (header required).
pub fn from_csv(text: &str) -> Result<EventTable, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty input")?;
    if header.trim() != CSV_HEADER {
        return Err(format!("unexpected header: {header}"));
    }
    let mut table = EventTable::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(format!("line {}: expected 7 fields", lineno + 2));
        }
        let phase = Phase::ALL
            .iter()
            .find(|p| p.label() == fields[3])
            .copied()
            .ok_or_else(|| format!("line {}: unknown phase {}", lineno + 2, fields[3]))?;
        let parse_err = |e: std::num::ParseIntError| format!("line {}: {e}", lineno + 2);
        table.push(EventRecord {
            step: fields[0].parse().map_err(parse_err)?,
            rank: fields[1].parse().map_err(parse_err)?,
            block: fields[2].parse().map_err(parse_err)?,
            phase,
            duration_ns: fields[4].parse().map_err(parse_err)?,
            msg_count: fields[5].parse().map_err(parse_err)?,
            msg_bytes: fields[6].parse().map_err(parse_err)?,
        });
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::NO_BLOCK;

    fn sample() -> EventTable {
        vec![
            EventRecord::compute(0, 0, 1, 400),
            EventRecord::rank_phase(0, 1, Phase::Synchronization, 300),
            EventRecord {
                step: 2,
                rank: 3,
                block: 5,
                phase: Phase::BoundaryComm,
                duration_ns: 12345,
                msg_count: 26,
                msg_bytes: 1 << 20,
            },
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let buf = encode(&t);
        let back = decode(&buf).unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            assert_eq!(back.row(i), t.row(i));
        }
    }

    #[test]
    fn binary_roundtrip_empty() {
        let t = EventTable::new();
        let back = decode(&encode(&t)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(b"nope").unwrap_err(), DecodeError::Truncated);
        assert_eq!(
            decode(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00").unwrap_err(),
            DecodeError::BadMagic
        );
        let mut buf = encode(&sample()).to_vec();
        buf[4] = 99; // version
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::BadVersion(99));
        let buf = encode(&sample());
        assert_eq!(
            decode(&buf[..buf.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let csv = to_csv(&t);
        assert!(csv.starts_with(CSV_HEADER));
        let back = from_csv(&csv).unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            assert_eq!(back.row(i), t.row(i));
        }
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(from_csv("").is_err());
        assert!(from_csv("bogus,header\n").is_err());
        let bad_phase = format!("{CSV_HEADER}\n0,0,0,warp,1,0,0\n");
        assert!(from_csv(&bad_phase).is_err());
        let short = format!("{CSV_HEADER}\n0,0,0\n");
        assert!(from_csv(&short).is_err());
    }

    #[test]
    fn no_block_survives_roundtrips() {
        let t: EventTable =
            std::iter::once(EventRecord::rank_phase(9, 9, Phase::MpiWait, 1)).collect();
        assert_eq!(decode(&encode(&t)).unwrap().row(0).block, NO_BLOCK);
        assert_eq!(from_csv(&to_csv(&t)).unwrap().row(0).block, NO_BLOCK);
    }
}

/// Write a table to a file in the binary format.
pub fn write_file(table: &EventTable, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, encode(table))
}

/// Read a table from a binary file.
pub fn read_file(path: &std::path::Path) -> std::io::Result<EventTable> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod file_tests {
    use super::*;
    use crate::record::EventRecord;

    #[test]
    fn file_roundtrip() {
        let table: EventTable = (0..100u32)
            .map(|i| EventRecord::compute(i, i % 8, i, i as u64))
            .collect();
        let path = std::env::temp_dir().join("amr_telemetry_codec_test.bin");
        write_file(&table, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.len(), table.len());
        assert_eq!(back.row(42), table.row(42));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_file_rejects_corruption() {
        let path = std::env::temp_dir().join("amr_telemetry_codec_bad.bin");
        std::fs::write(&path, b"not a telemetry file").unwrap();
        assert!(read_file(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
