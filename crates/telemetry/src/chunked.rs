//! A chunked columnar store with embedded statistics (zone maps) and
//! predicate pushdown.
//!
//! Lesson 4's concrete recommendation: "binary columnar formats like Arrow
//! and Parquet, when paired with in-situ collection, offer a promising
//! foundation for low-latency BSP telemetry by enabling low-overhead
//! parsing and **efficient querying via embedded statistics over
//! partitioned data**." This module is that idea at crate scale:
//!
//! * events are partitioned into fixed-size **chunks** (row groups);
//! * each chunk carries **min/max statistics** for the `step`, `rank` and
//!   `duration_ns` columns plus a phase bitmask (the zone map);
//! * range/phase queries consult the zone maps first and **skip whole
//!   chunks** that cannot match — the dominant access pattern of the
//!   paper's diagnosis loop is "this step range, that phase, slow events
//!   only", which prunes aggressively;
//! * chunks serialize with the same columnar binary codec as
//!   [`crate::codec`], so a chunked file is just a sequence of framed
//!   chunks with a statistics footer.

use crate::codec;
use crate::record::{EventRecord, Phase};
use crate::table::EventTable;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Per-chunk statistics: the zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkStats {
    pub rows: u32,
    pub step_min: u32,
    pub step_max: u32,
    pub rank_min: u32,
    pub rank_max: u32,
    pub duration_min: u64,
    pub duration_max: u64,
    /// Bit `p` set ⇔ some row in the chunk has phase code `p`.
    pub phase_mask: u8,
}

impl ChunkStats {
    fn of(table: &EventTable) -> ChunkStats {
        let mut s = ChunkStats {
            rows: table.len() as u32,
            step_min: u32::MAX,
            step_max: 0,
            rank_min: u32::MAX,
            rank_max: 0,
            duration_min: u64::MAX,
            duration_max: 0,
            phase_mask: 0,
        };
        for i in 0..table.len() {
            s.step_min = s.step_min.min(table.steps()[i]);
            s.step_max = s.step_max.max(table.steps()[i]);
            s.rank_min = s.rank_min.min(table.ranks()[i]);
            s.rank_max = s.rank_max.max(table.ranks()[i]);
            s.duration_min = s.duration_min.min(table.durations()[i]);
            s.duration_max = s.duration_max.max(table.durations()[i]);
            s.phase_mask |= 1 << table.phases()[i];
        }
        s
    }
}

/// A pushdown predicate over the indexed columns. All bounds are inclusive;
/// `None` means unconstrained.
#[derive(Debug, Clone, Copy, Default)]
pub struct Predicate {
    pub step: Option<(u32, u32)>,
    pub rank: Option<(u32, u32)>,
    /// Minimum duration — "slow events only", the spike-hunting filter.
    pub min_duration_ns: Option<u64>,
    pub phase: Option<Phase>,
}

impl Predicate {
    /// Could any row of a chunk with these statistics match?
    pub fn may_match(&self, s: &ChunkStats) -> bool {
        if let Some((lo, hi)) = self.step {
            if s.step_max < lo || s.step_min > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.rank {
            if s.rank_max < lo || s.rank_min > hi {
                return false;
            }
        }
        if let Some(min) = self.min_duration_ns {
            if s.duration_max < min {
                return false;
            }
        }
        if let Some(p) = self.phase {
            if s.phase_mask & (1 << p.code()) == 0 {
                return false;
            }
        }
        true
    }

    /// Does a single row match?
    pub fn matches(&self, r: &EventRecord) -> bool {
        self.step
            .is_none_or(|(lo, hi)| r.step >= lo && r.step <= hi)
            && self
                .rank
                .is_none_or(|(lo, hi)| r.rank >= lo && r.rank <= hi)
            && self.min_duration_ns.is_none_or(|m| r.duration_ns >= m)
            && self.phase.is_none_or(|p| r.phase == p)
    }
}

/// An immutable chunked store built from an event table.
#[derive(Debug, Clone)]
pub struct ChunkedStore {
    chunks: Vec<EventTable>,
    stats: Vec<ChunkStats>,
}

/// Result of a pushdown scan, with pruning accounting.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Matching rows, in storage order.
    pub rows: Vec<EventRecord>,
    /// Chunks whose zone map allowed skipping without reading.
    pub chunks_pruned: usize,
    /// Chunks actually scanned.
    pub chunks_scanned: usize,
}

impl ChunkedStore {
    /// Partition `table` into chunks of `chunk_rows` rows (storage order is
    /// the table's current order; sort canonically first for best pruning).
    pub fn build(table: &EventTable, chunk_rows: usize) -> ChunkedStore {
        assert!(chunk_rows > 0);
        let mut chunks = Vec::new();
        let mut stats = Vec::new();
        let mut current = EventTable::new();
        for r in table.iter() {
            current.push(r);
            if current.len() == chunk_rows {
                stats.push(ChunkStats::of(&current));
                chunks.push(std::mem::take(&mut current));
            }
        }
        if !current.is_empty() {
            stats.push(ChunkStats::of(&current));
            chunks.push(current);
        }
        ChunkedStore { chunks, stats }
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        self.stats.iter().map(|s| s.rows as usize).sum()
    }

    /// Zone maps (for inspection/tests).
    pub fn stats(&self) -> &[ChunkStats] {
        &self.stats
    }

    /// Scan with predicate pushdown: chunks whose zone map rules out the
    /// predicate are skipped entirely.
    pub fn scan(&self, pred: &Predicate) -> ScanResult {
        let mut rows = Vec::new();
        let mut pruned = 0;
        let mut scanned = 0;
        for (chunk, stats) in self.chunks.iter().zip(&self.stats) {
            if !pred.may_match(stats) {
                pruned += 1;
                continue;
            }
            scanned += 1;
            for r in chunk.iter() {
                if pred.matches(&r) {
                    rows.push(r);
                }
            }
        }
        ScanResult {
            rows,
            chunks_pruned: pruned,
            chunks_scanned: scanned,
        }
    }

    /// Serialize: framed chunks, each a [`crate::codec`] buffer.
    ///
    /// ```text
    /// magic "AMRC" | version u32 | chunk_count u32 |
    /// (chunk_len u32, chunk_bytes...) × chunk_count
    /// ```
    /// Zone maps are rebuilt on load (they are derived data).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(b"AMRC");
        buf.put_u32_le(1);
        buf.put_u32_le(self.chunks.len() as u32);
        for chunk in &self.chunks {
            let bytes = codec::encode(chunk);
            buf.put_u32_le(bytes.len() as u32);
            buf.put_slice(&bytes);
        }
        buf.freeze()
    }

    /// Deserialize a chunked buffer.
    pub fn decode(mut buf: &[u8]) -> Result<ChunkedStore, codec::DecodeError> {
        if buf.remaining() < 12 {
            return Err(codec::DecodeError::Truncated);
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != b"AMRC" {
            return Err(codec::DecodeError::BadMagic);
        }
        let version = buf.get_u32_le();
        if version != 1 {
            return Err(codec::DecodeError::BadVersion(version));
        }
        let count = buf.get_u32_le() as usize;
        let mut chunks = Vec::with_capacity(count);
        let mut stats = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(codec::DecodeError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(codec::DecodeError::Truncated);
            }
            let chunk = codec::decode(&buf[..len])?;
            buf.advance(len);
            stats.push(ChunkStats::of(&chunk));
            chunks.push(chunk);
        }
        Ok(ChunkedStore { chunks, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize) -> EventTable {
        let mut t: EventTable = (0..rows as u32)
            .map(|i| EventRecord {
                step: i / 64,
                rank: i % 64,
                block: i,
                phase: Phase::ALL[(i % 6) as usize],
                duration_ns: 100 + (i as u64 % 97) * 10,
                msg_count: 0,
                msg_bytes: 0,
            })
            .collect();
        t.sort_canonical();
        t
    }

    #[test]
    fn chunking_partitions_all_rows() {
        let t = sample(1000);
        let s = ChunkedStore::build(&t, 128);
        assert_eq!(s.num_rows(), 1000);
        assert_eq!(s.num_chunks(), 8); // 7 full + 1 tail
        assert_eq!(s.stats()[0].rows, 128);
        assert_eq!(s.stats()[7].rows, 1000 - 7 * 128);
    }

    #[test]
    fn step_range_pushdown_prunes_chunks() {
        let t = sample(4096); // steps 0..64, sorted by step
        let s = ChunkedStore::build(&t, 256);
        let pred = Predicate {
            step: Some((10, 11)),
            ..Predicate::default()
        };
        let res = s.scan(&pred);
        // Correctness: identical to a full filter.
        let expect = t.iter().filter(|r| pred.matches(r)).count();
        assert_eq!(res.rows.len(), expect);
        assert!(expect > 0);
        // Pruning: the narrow step range must skip most chunks.
        assert!(
            res.chunks_pruned > res.chunks_scanned,
            "pruned {} vs scanned {}",
            res.chunks_pruned,
            res.chunks_scanned
        );
    }

    #[test]
    fn phase_mask_prunes_when_sorted_by_phase() {
        // Group rows by phase so chunks become phase-pure.
        let mut rows: Vec<EventRecord> = sample(1200).iter().collect();
        rows.sort_by_key(|r| r.phase.code());
        let t: EventTable = rows.into_iter().collect();
        let s = ChunkedStore::build(&t, 100);
        let pred = Predicate {
            phase: Some(Phase::Redistribution),
            ..Predicate::default()
        };
        let res = s.scan(&pred);
        assert!(res.chunks_pruned > 0);
        assert!(res.rows.iter().all(|r| r.phase == Phase::Redistribution));
        assert_eq!(
            res.rows.len(),
            t.iter()
                .filter(|r| r.phase == Phase::Redistribution)
                .count()
        );
    }

    #[test]
    fn duration_pushdown_finds_spikes_cheaply() {
        // One spike hidden in a sea of fast events.
        let mut t = sample(2000);
        t.push(EventRecord {
            step: 1000,
            rank: 0,
            block: 0,
            phase: Phase::MpiWait,
            duration_ns: 5_000_000,
            msg_count: 0,
            msg_bytes: 0,
        });
        let s = ChunkedStore::build(&t, 100);
        let pred = Predicate {
            min_duration_ns: Some(1_000_000),
            ..Predicate::default()
        };
        let res = s.scan(&pred);
        assert_eq!(res.rows.len(), 1);
        assert_eq!(res.rows[0].duration_ns, 5_000_000);
        // All but the spike's chunk pruned by the duration zone map.
        assert_eq!(res.chunks_scanned, 1);
    }

    #[test]
    fn empty_predicate_scans_everything() {
        let t = sample(500);
        let s = ChunkedStore::build(&t, 64);
        let res = s.scan(&Predicate::default());
        assert_eq!(res.rows.len(), 500);
        assert_eq!(res.chunks_pruned, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample(777);
        let s = ChunkedStore::build(&t, 100);
        let bytes = s.encode();
        let back = ChunkedStore::decode(&bytes).unwrap();
        assert_eq!(back.num_rows(), 777);
        assert_eq!(back.num_chunks(), s.num_chunks());
        assert_eq!(back.stats(), s.stats());
        // Scans agree.
        let pred = Predicate {
            rank: Some((3, 5)),
            ..Predicate::default()
        };
        assert_eq!(back.scan(&pred).rows.len(), s.scan(&pred).rows.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ChunkedStore::decode(b"junk").is_err());
        let t = sample(100);
        let bytes = ChunkedStore::build(&t, 50).encode();
        assert!(ChunkedStore::decode(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(
            ChunkedStore::decode(&bad).unwrap_err(),
            codec::DecodeError::BadMagic
        );
    }
}
