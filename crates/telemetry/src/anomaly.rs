//! Anomaly detection over telemetry: the diagnostic half of §IV.
//!
//! Three detectors mirror the paper's cross-stack failure modes:
//!
//! * [`detect_throttling`] — fail-slow hardware (§IV-A, Fig. 2): compute
//!   times inflated by a large factor on *clusters of ranks sharing a node*
//!   ("appeared in clusters of 16, an unmistakable sign of thermal
//!   throttling").
//! * [`detect_wait_spikes`] — transient MPI_Wait spikes from fabric recovery
//!   paths (§IV-B, Fig. 1b): rare, large outliers that inflate average
//!   collective time several-fold while being invisible in aggregates.
//! * [`variance_ratio`] — before/after variance-regime comparison used to
//!   validate tuning steps (Fig. 3): did send prioritization / queue sizing
//!   actually reduce rankwise spread?
//!
//! [`OnlineThrottleDetector`] turns the first of these into a *runtime* loop:
//! a sliding window over the per-step per-rank compute series with debounce,
//! so mid-run fault onset/recovery is caught within a few steps while OS
//! jitter never trips it. Its output (flagged nodes + inflation estimates)
//! feeds capacity-aware placement and node pruning.

use crate::stats;

/// Result of fail-slow (throttling) detection.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleReport {
    /// Ranks whose compute time exceeded the threshold.
    pub slow_ranks: Vec<u32>,
    /// Nodes where at least `node_quorum` of the ranks are slow — the
    /// "cluster of 16" signature distinguishing hardware faults from
    /// workload imbalance. Node ids use `usize` to match
    /// `Topology`/`FaultConfig` on the simulator side.
    pub throttled_nodes: Vec<usize>,
    /// Mean compute-time inflation of slow ranks relative to the median rank.
    pub inflation: f64,
    /// Median per-rank compute time used as the baseline.
    pub median: f64,
}

impl ThrottleReport {
    /// Any throttled nodes found?
    pub fn any(&self) -> bool {
        !self.throttled_nodes.is_empty()
    }
}

/// Detect node-level fail-slow behavior from per-rank compute times.
///
/// * `per_rank_compute[r]` — total (or per-step mean) compute time of rank `r`;
/// * `ranks_per_node` — topology fan-out (16 in the paper's cluster);
/// * `slow_factor` — how much slower than the median counts as slow (the
///   paper observed ≈4×; 2.0 is a reasonable detection threshold);
/// * `node_quorum` — fraction of a node's ranks that must be slow to call
///   the *node* (not the workload) faulty. 0.75 tolerates a few lucky ranks.
pub fn detect_throttling(
    per_rank_compute: &[f64],
    ranks_per_node: usize,
    slow_factor: f64,
    node_quorum: f64,
) -> ThrottleReport {
    assert!(ranks_per_node > 0);
    let median = stats::median(per_rank_compute);
    let threshold = median * slow_factor;
    let slow_ranks: Vec<u32> = per_rank_compute
        .iter()
        .enumerate()
        .filter(|(_, &t)| median > 0.0 && t > threshold)
        .map(|(r, _)| r as u32)
        .collect();

    let num_nodes = per_rank_compute.len().div_ceil(ranks_per_node);
    let mut slow_per_node = vec![0usize; num_nodes];
    for &r in &slow_ranks {
        slow_per_node[r as usize / ranks_per_node] += 1;
    }
    let throttled_nodes: Vec<usize> = slow_per_node
        .iter()
        .enumerate()
        .filter(|(n, &c)| {
            let node_size = ranks_per_node.min(per_rank_compute.len() - n * ranks_per_node);
            c as f64 >= node_quorum * node_size as f64 && c > 0
        })
        .map(|(n, _)| n)
        .collect();

    let inflation = if slow_ranks.is_empty() || median == 0.0 {
        1.0
    } else {
        let slow_mean = stats::mean(
            &slow_ranks
                .iter()
                .map(|&r| per_rank_compute[r as usize])
                .collect::<Vec<_>>(),
        );
        slow_mean / median
    };

    ThrottleReport {
        slow_ranks,
        throttled_nodes,
        inflation,
        median,
    }
}

/// Result of MPI_Wait spike detection.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitSpikeReport {
    /// Indices (into the input series) of spike events.
    pub spikes: Vec<usize>,
    /// Fraction of events that are spikes.
    pub spike_rate: f64,
    /// Mean including spikes.
    pub mean_with: f64,
    /// Mean excluding spikes.
    pub mean_without: f64,
    /// `mean_with / mean_without` — how much the rare spikes inflate the
    /// average (the paper observed ≈3× on collective time, Fig. 1b).
    pub amplification: f64,
}

impl WaitSpikeReport {
    /// Any spikes found?
    pub fn any(&self) -> bool {
        !self.spikes.is_empty()
    }
}

/// Detect rare, large outliers in a duration series.
///
/// An event is a spike if it exceeds `spike_factor ×` the series median
/// (median, not mean: the spikes themselves would drag a mean-based
/// threshold upward and hide their peers).
pub fn detect_wait_spikes(durations: &[f64], spike_factor: f64) -> WaitSpikeReport {
    let med = stats::median(durations);
    let threshold = med * spike_factor;
    // One linear pass classifies every event and accumulates both means —
    // no `spikes.contains` rescans (formerly O(n · spikes)).
    let mut spikes = Vec::new();
    let mut sum_with = 0.0;
    let mut sum_without = 0.0;
    for (i, &d) in durations.iter().enumerate() {
        sum_with += d;
        if med > 0.0 && d > threshold {
            spikes.push(i);
        } else {
            sum_without += d;
        }
    }
    let n = durations.len();
    let n_without = n - spikes.len();
    let mean_with = if n > 0 { sum_with / n as f64 } else { 0.0 };
    let mean_without = if n_without > 0 {
        sum_without / n_without as f64
    } else {
        0.0
    };
    // When *every* event is a spike there is no clean baseline left; the
    // old `1.0` fallback reported "nothing wrong" in exactly the worst
    // case. Infinite amplification is the honest answer.
    let amplification = if mean_without > 0.0 {
        mean_with / mean_without
    } else if mean_with > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    WaitSpikeReport {
        spike_rate: if n == 0 {
            0.0
        } else {
            spikes.len() as f64 / n as f64
        },
        spikes,
        mean_with,
        mean_without,
        amplification,
    }
}

/// Ratio of coefficients of variation `after / before`. Values < 1 mean the
/// tuning step reduced relative spread (Fig. 3's "variance clarifies
/// stepwise" narrative).
pub fn variance_ratio(before: &[f64], after: &[f64]) -> f64 {
    let b = stats::coeff_of_variation(before);
    let a = stats::coeff_of_variation(after);
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

/// Tuning knobs for the [`OnlineThrottleDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineDetectorConfig {
    /// Sliding-window length in steps. Window *means* are what the
    /// threshold test sees, so jitter is averaged down by `1/window` before
    /// it can look like throttling.
    pub window: usize,
    /// Consecutive windows a node must test slow before it is flagged (and
    /// consecutive clean windows before an existing flag is lifted). This
    /// debounce keeps one unlucky step from triggering a rebalance.
    pub debounce: usize,
    /// Threshold over the median window-mean (see [`detect_throttling`]).
    pub slow_factor: f64,
    /// Fraction of a node's ranks that must be slow (see
    /// [`detect_throttling`]).
    pub node_quorum: f64,
}

impl Default for OnlineDetectorConfig {
    fn default() -> OnlineDetectorConfig {
        OnlineDetectorConfig {
            window: 4,
            debounce: 3,
            slow_factor: 2.0,
            node_quorum: 0.75,
        }
    }
}

/// Online fail-slow detector over the per-step per-rank compute series.
///
/// Feed it each step's per-rank compute times ([`observe`]); it maintains a
/// sliding window per rank (ring buffer + running sum, O(ranks) per step and
/// allocation-free after construction), runs the cluster test of
/// [`detect_throttling`] on the window means, and debounces both onset and
/// recovery. Flagged nodes and their measured inflation are exposed for the
/// placement loop: [`capacities_into`] converts them straight into the
/// per-rank relative speeds that `PlacementCtx::with_capacities` consumes.
///
/// [`observe`]: OnlineThrottleDetector::observe
/// [`capacities_into`]: OnlineThrottleDetector::capacities_into
#[derive(Debug, Clone)]
pub struct OnlineThrottleDetector {
    cfg: OnlineDetectorConfig,
    num_ranks: usize,
    ranks_per_node: usize,
    /// Ring buffer of the last `window` samples, laid out rank-major:
    /// `ring[r * window + slot]`.
    ring: Vec<f64>,
    /// Running per-rank sum over the ring.
    sums: Vec<f64>,
    /// Next slot to overwrite.
    head: usize,
    /// Samples currently in the ring (saturates at `window`).
    filled: usize,
    /// Per-node consecutive slow-window count.
    hit_streak: Vec<u32>,
    /// Per-node consecutive clean-window count.
    clear_streak: Vec<u32>,
    /// Per-node flagged state (debounced).
    flagged: Vec<bool>,
    /// Per-node inflation estimate (mean window-mean of the node's ranks
    /// over the detection median); refreshed every slow window, retained
    /// while flagged.
    inflation: Vec<f64>,
    /// Scratch for window means.
    means: Vec<f64>,
}

impl OnlineThrottleDetector {
    /// Detector over `num_ranks` ranks grouped `ranks_per_node` per node.
    pub fn new(num_ranks: usize, ranks_per_node: usize, cfg: OnlineDetectorConfig) -> Self {
        assert!(cfg.window >= 1, "window must be >= 1");
        assert!(cfg.debounce >= 1, "debounce must be >= 1");
        assert!(ranks_per_node >= 1);
        let num_nodes = num_ranks.div_ceil(ranks_per_node);
        OnlineThrottleDetector {
            cfg,
            num_ranks,
            ranks_per_node,
            ring: vec![0.0; num_ranks * cfg.window],
            sums: vec![0.0; num_ranks],
            head: 0,
            filled: 0,
            hit_streak: vec![0; num_nodes],
            clear_streak: vec![0; num_nodes],
            flagged: vec![false; num_nodes],
            inflation: vec![1.0; num_nodes],
            means: vec![0.0; num_ranks],
        }
    }

    /// Fold one step's per-rank compute times into the window and re-test.
    /// Returns `true` when the debounced flag set changed this step (the
    /// signal to recompute capacities / trigger a rebalance).
    pub fn observe(&mut self, per_rank_compute: &[f64]) -> bool {
        assert_eq!(per_rank_compute.len(), self.num_ranks);
        let w = self.cfg.window;
        for (r, &t) in per_rank_compute.iter().enumerate() {
            let slot = &mut self.ring[r * w + self.head];
            self.sums[r] += t - *slot;
            *slot = t;
        }
        self.head = (self.head + 1) % w;
        if self.filled < w {
            self.filled += 1;
        }
        if self.filled < w {
            return false; // not enough history for a stable window mean
        }
        let inv_w = 1.0 / w as f64;
        for r in 0..self.num_ranks {
            self.means[r] = self.sums[r] * inv_w;
        }
        let report = detect_throttling(
            &self.means,
            self.ranks_per_node,
            self.cfg.slow_factor,
            self.cfg.node_quorum,
        );
        let mut changed = false;
        let mut hits = report.throttled_nodes.iter().copied().peekable();
        for node in 0..self.flagged.len() {
            let hit = hits.peek() == Some(&node);
            if hit {
                hits.next();
                self.hit_streak[node] += 1;
                self.clear_streak[node] = 0;
                self.inflation[node] = self.node_inflation(node, report.median);
                if !self.flagged[node] && self.hit_streak[node] >= self.cfg.debounce as u32 {
                    self.flagged[node] = true;
                    changed = true;
                }
            } else {
                self.clear_streak[node] += 1;
                self.hit_streak[node] = 0;
                if self.flagged[node] && self.clear_streak[node] >= self.cfg.debounce as u32 {
                    self.flagged[node] = false;
                    self.inflation[node] = 1.0;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Mean window-mean of `node`'s ranks over `median` (≥ 1).
    fn node_inflation(&self, node: usize, median: f64) -> f64 {
        if median <= 0.0 {
            return 1.0;
        }
        let lo = node * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(self.num_ranks);
        let node_mean = stats::mean(&self.means[lo..hi]);
        (node_mean / median).max(1.0)
    }

    /// Currently flagged (debounced) nodes, ascending.
    pub fn flagged_nodes(&self) -> Vec<usize> {
        self.flagged
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(n, _)| n)
            .collect()
    }

    /// Any node currently flagged?
    pub fn any_flagged(&self) -> bool {
        self.flagged.iter().any(|&f| f)
    }

    /// Measured compute-time inflation of `node` (1.0 when not flagged).
    pub fn inflation(&self, node: usize) -> f64 {
        self.inflation[node]
    }

    /// Fill `out` with per-rank relative speeds: `1.0` for ranks on healthy
    /// nodes, `1/inflation` for ranks on flagged nodes. This is exactly the
    /// capacity vector capacity-aware placement consumes. Returns `true` if
    /// any entry differs from 1.0.
    pub fn capacities_into(&self, out: &mut Vec<f64>) -> bool {
        out.clear();
        out.reserve(self.num_ranks);
        let mut any = false;
        for r in 0..self.num_ranks {
            let node = r / self.ranks_per_node;
            if self.flagged[node] {
                out.push(1.0 / self.inflation[node]);
                any = true;
            } else {
                out.push(1.0);
            }
        }
        any
    }

    /// Drop `node`'s flag, streaks, and inflation estimate immediately,
    /// without waiting out the recovery debounce. For when the *hardware*
    /// under the node changed — e.g. the node was just re-hosted on a
    /// healthy spare — so the flag describes a machine that is gone.
    pub fn clear_flag(&mut self, node: usize) {
        self.flagged[node] = false;
        self.inflation[node] = 1.0;
        self.hit_streak[node] = 0;
        self.clear_streak[node] = 0;
    }

    /// Forget all window history and streaks but keep current flags. Call
    /// after a placement change that redistributes load: the old window
    /// mixes pre- and post-change samples and would mislead the next test.
    pub fn reset_window(&mut self) {
        self.ring.fill(0.0);
        self.sums.fill(0.0);
        self.head = 0;
        self.filled = 0;
        self.hit_streak.fill(0);
        self.clear_streak.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttling_detects_node_clusters() {
        // 4 nodes x 16 ranks; node 2 throttled at 4x.
        let mut per_rank = vec![1.0; 64];
        per_rank[32..48].fill(4.0);
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert!(rep.any());
        assert_eq!(rep.throttled_nodes, vec![2]);
        assert_eq!(rep.slow_ranks.len(), 16);
        assert!((rep.inflation - 4.0).abs() < 1e-9);
    }

    #[test]
    fn throttling_ignores_scattered_stragglers() {
        // One slow rank per node: workload imbalance, not hardware.
        let mut per_rank = vec![1.0; 64];
        for n in 0..4 {
            per_rank[n * 16] = 4.0;
        }
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert_eq!(rep.slow_ranks.len(), 4);
        assert!(rep.throttled_nodes.is_empty());
    }

    #[test]
    fn throttling_handles_partial_last_node() {
        // 20 ranks, 16 per node: node 1 has 4 ranks, 3 slow => quorum met.
        let mut per_rank = vec![1.0; 20];
        per_rank[16] = 5.0;
        per_rank[17] = 5.0;
        per_rank[18] = 5.0;
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert_eq!(rep.throttled_nodes, vec![1]);
    }

    #[test]
    fn throttling_on_empty_and_uniform() {
        let rep = detect_throttling(&[], 16, 2.0, 0.75);
        assert!(!rep.any());
        let rep = detect_throttling(&[1.0; 32], 16, 2.0, 0.75);
        assert!(!rep.any());
        assert_eq!(rep.inflation, 1.0);
    }

    #[test]
    fn wait_spikes_amplify_mean() {
        // 99 quick waits + 1 huge spike: mean inflated, median robust.
        let mut d = vec![1.0; 99];
        d.push(200.0);
        let rep = detect_wait_spikes(&d, 10.0);
        assert!(rep.any());
        assert_eq!(rep.spikes, vec![99]);
        assert!((rep.spike_rate - 0.01).abs() < 1e-9);
        assert!(rep.amplification > 2.5, "amp = {}", rep.amplification);
    }

    #[test]
    fn wait_spikes_none_in_clean_series() {
        let d = vec![1.0, 1.1, 0.9, 1.05];
        let rep = detect_wait_spikes(&d, 10.0);
        assert!(!rep.any());
        assert!((rep.amplification - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variance_ratio_reflects_tuning() {
        let noisy = [1.0, 5.0, 0.5, 8.0, 2.0];
        let tuned = [2.0, 2.1, 1.9, 2.05, 2.0];
        assert!(variance_ratio(&noisy, &tuned) < 0.2);
        assert!((variance_ratio(&tuned, &tuned) - 1.0).abs() < 1e-9);
    }

    /// Regression: when *every* event is a spike the old code reported
    /// `amplification: 1.0` — "nothing wrong" in the worst case.
    #[test]
    fn all_spike_series_reports_infinite_amplification() {
        // Every element above `factor x median` leaves no clean baseline.
        let d = vec![5.0, 6.0, 7.0];
        let rep = detect_wait_spikes(&d, 0.5);
        assert_eq!(rep.spikes, vec![0, 1, 2]);
        assert_eq!(rep.spike_rate, 1.0);
        assert_eq!(rep.mean_without, 0.0);
        assert_eq!(rep.amplification, f64::INFINITY);
    }

    #[test]
    fn wait_spikes_empty_series() {
        let rep = detect_wait_spikes(&[], 10.0);
        assert!(!rep.any());
        assert_eq!(rep.spike_rate, 0.0);
        assert_eq!(rep.amplification, 1.0);
    }

    /// One step's per-rank compute: healthy ranks at ~1.0 with `jitter`
    /// noise, ranks of `slow_nodes` inflated by `factor`.
    fn step_sample(
        num_ranks: usize,
        rpn: usize,
        slow_nodes: &[usize],
        factor: f64,
        jitter: f64,
        step: usize,
    ) -> Vec<f64> {
        (0..num_ranks)
            .map(|r| {
                // Deterministic pseudo-jitter in [-jitter, +jitter].
                let h = (r * 31 + step * 17) % 13;
                let j = 1.0 + jitter * (h as f64 / 6.0 - 1.0);
                let base = if slow_nodes.contains(&(r / rpn)) {
                    factor
                } else {
                    1.0
                };
                base * j * 1.0e6
            })
            .collect()
    }

    #[test]
    fn online_detector_flags_after_debounce_and_recovers() {
        let cfg = OnlineDetectorConfig::default();
        let mut det = OnlineThrottleDetector::new(64, 16, cfg);
        // Healthy warm-up: window fills, nothing flagged.
        for s in 0..6 {
            let changed = det.observe(&step_sample(64, 16, &[], 1.0, 0.02, s));
            assert!(!changed);
        }
        assert!(!det.any_flagged());
        // Node 2 throttles at 4x. Flag must appear only after the debounce
        // number of slow windows, and then exactly node 2.
        let mut flagged_at = None;
        for s in 6..20 {
            let changed = det.observe(&step_sample(64, 16, &[2], 4.0, 0.02, s));
            if changed {
                flagged_at = Some(s);
                break;
            }
        }
        let s0 = flagged_at.expect("detector never flagged the throttled node");
        // Onset at step 6; needs >= debounce windows over mixed-then-slow
        // means. With window 4 and debounce 3 the earliest possible is 8.
        assert!(s0 >= 6 + cfg.debounce - 1, "flagged too early at {s0}");
        assert!(
            s0 <= 6 + cfg.window + cfg.debounce,
            "flagged too late at {s0}"
        );
        assert_eq!(det.flagged_nodes(), vec![2]);
        assert!(det.inflation(2) > 3.0, "inflation = {}", det.inflation(2));

        let mut caps = Vec::new();
        assert!(det.capacities_into(&mut caps));
        assert_eq!(caps.len(), 64);
        assert!((caps[0] - 1.0).abs() < 1e-12);
        assert!(caps[33] < 0.34, "slow-node capacity = {}", caps[33]);

        // Recovery: after enough clean windows the flag lifts.
        let mut cleared_at = None;
        for s in 40..60 {
            let changed = det.observe(&step_sample(64, 16, &[], 1.0, 0.02, s));
            if changed {
                cleared_at = Some(s);
                break;
            }
        }
        assert!(cleared_at.is_some(), "detector never cleared the flag");
        assert!(!det.any_flagged());
        assert_eq!(det.inflation(2), 1.0);
        assert!(!det.capacities_into(&mut caps));
        assert!(caps.iter().all(|&c| c == 1.0));
    }

    #[test]
    fn online_detector_ignores_jitter_only_runs() {
        let mut det = OnlineThrottleDetector::new(64, 16, OnlineDetectorConfig::default());
        for s in 0..50 {
            // Generous 10% jitter: still far from the 2x threshold.
            let changed = det.observe(&step_sample(64, 16, &[], 1.0, 0.10, s));
            assert!(!changed, "jitter tripped the detector at step {s}");
        }
        assert!(!det.any_flagged());
    }

    #[test]
    fn online_detector_reset_window_keeps_flags() {
        // 4 nodes: a single throttled node stands clear of the median.
        let mut det = OnlineThrottleDetector::new(64, 16, OnlineDetectorConfig::default());
        for s in 0..12 {
            det.observe(&step_sample(64, 16, &[1], 4.0, 0.0, s));
        }
        assert_eq!(det.flagged_nodes(), vec![1]);
        det.reset_window();
        assert_eq!(det.flagged_nodes(), vec![1]);
        // One clean window is not enough to unflag (debounce).
        for s in 0..4 {
            det.observe(&step_sample(64, 16, &[], 1.0, 0.0, s));
        }
        assert_eq!(det.flagged_nodes(), vec![1]);
        // clear_flag drops it immediately — the re-host path.
        det.clear_flag(1);
        assert!(!det.any_flagged());
        assert_eq!(det.inflation(1), 1.0);
    }
}
