//! Anomaly detection over telemetry: the diagnostic half of §IV.
//!
//! Three detectors mirror the paper's cross-stack failure modes:
//!
//! * [`detect_throttling`] — fail-slow hardware (§IV-A, Fig. 2): compute
//!   times inflated by a large factor on *clusters of ranks sharing a node*
//!   ("appeared in clusters of 16, an unmistakable sign of thermal
//!   throttling").
//! * [`detect_wait_spikes`] — transient MPI_Wait spikes from fabric recovery
//!   paths (§IV-B, Fig. 1b): rare, large outliers that inflate average
//!   collective time several-fold while being invisible in aggregates.
//! * [`variance_ratio`] — before/after variance-regime comparison used to
//!   validate tuning steps (Fig. 3): did send prioritization / queue sizing
//!   actually reduce rankwise spread?

use crate::stats;

/// Result of fail-slow (throttling) detection.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottleReport {
    /// Ranks whose compute time exceeded the threshold.
    pub slow_ranks: Vec<u32>,
    /// Nodes where at least `node_quorum` of the ranks are slow — the
    /// "cluster of 16" signature distinguishing hardware faults from
    /// workload imbalance.
    pub throttled_nodes: Vec<u32>,
    /// Mean compute-time inflation of slow ranks relative to the median rank.
    pub inflation: f64,
    /// Median per-rank compute time used as the baseline.
    pub median: f64,
}

impl ThrottleReport {
    /// Any throttled nodes found?
    pub fn any(&self) -> bool {
        !self.throttled_nodes.is_empty()
    }
}

/// Detect node-level fail-slow behavior from per-rank compute times.
///
/// * `per_rank_compute[r]` — total (or per-step mean) compute time of rank `r`;
/// * `ranks_per_node` — topology fan-out (16 in the paper's cluster);
/// * `slow_factor` — how much slower than the median counts as slow (the
///   paper observed ≈4×; 2.0 is a reasonable detection threshold);
/// * `node_quorum` — fraction of a node's ranks that must be slow to call
///   the *node* (not the workload) faulty. 0.75 tolerates a few lucky ranks.
pub fn detect_throttling(
    per_rank_compute: &[f64],
    ranks_per_node: usize,
    slow_factor: f64,
    node_quorum: f64,
) -> ThrottleReport {
    assert!(ranks_per_node > 0);
    let median = stats::median(per_rank_compute);
    let threshold = median * slow_factor;
    let slow_ranks: Vec<u32> = per_rank_compute
        .iter()
        .enumerate()
        .filter(|(_, &t)| median > 0.0 && t > threshold)
        .map(|(r, _)| r as u32)
        .collect();

    let num_nodes = per_rank_compute.len().div_ceil(ranks_per_node);
    let mut slow_per_node = vec![0usize; num_nodes];
    for &r in &slow_ranks {
        slow_per_node[r as usize / ranks_per_node] += 1;
    }
    let throttled_nodes: Vec<u32> = slow_per_node
        .iter()
        .enumerate()
        .filter(|(n, &c)| {
            let node_size = ranks_per_node.min(per_rank_compute.len() - n * ranks_per_node);
            c as f64 >= node_quorum * node_size as f64 && c > 0
        })
        .map(|(n, _)| n as u32)
        .collect();

    let inflation = if slow_ranks.is_empty() || median == 0.0 {
        1.0
    } else {
        let slow_mean = stats::mean(
            &slow_ranks
                .iter()
                .map(|&r| per_rank_compute[r as usize])
                .collect::<Vec<_>>(),
        );
        slow_mean / median
    };

    ThrottleReport {
        slow_ranks,
        throttled_nodes,
        inflation,
        median,
    }
}

/// Result of MPI_Wait spike detection.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitSpikeReport {
    /// Indices (into the input series) of spike events.
    pub spikes: Vec<usize>,
    /// Fraction of events that are spikes.
    pub spike_rate: f64,
    /// Mean including spikes.
    pub mean_with: f64,
    /// Mean excluding spikes.
    pub mean_without: f64,
    /// `mean_with / mean_without` — how much the rare spikes inflate the
    /// average (the paper observed ≈3× on collective time, Fig. 1b).
    pub amplification: f64,
}

impl WaitSpikeReport {
    /// Any spikes found?
    pub fn any(&self) -> bool {
        !self.spikes.is_empty()
    }
}

/// Detect rare, large outliers in a duration series.
///
/// An event is a spike if it exceeds `spike_factor ×` the series median
/// (median, not mean: the spikes themselves would drag a mean-based
/// threshold upward and hide their peers).
pub fn detect_wait_spikes(durations: &[f64], spike_factor: f64) -> WaitSpikeReport {
    let med = stats::median(durations);
    let threshold = med * spike_factor;
    let spikes: Vec<usize> = durations
        .iter()
        .enumerate()
        .filter(|(_, &d)| med > 0.0 && d > threshold)
        .map(|(i, _)| i)
        .collect();
    let mean_with = stats::mean(durations);
    let non_spike: Vec<f64> = durations
        .iter()
        .enumerate()
        .filter(|(i, _)| !spikes.contains(i))
        .map(|(_, &d)| d)
        .collect();
    let mean_without = stats::mean(&non_spike);
    WaitSpikeReport {
        spike_rate: if durations.is_empty() {
            0.0
        } else {
            spikes.len() as f64 / durations.len() as f64
        },
        spikes,
        mean_with,
        mean_without,
        amplification: if mean_without > 0.0 {
            mean_with / mean_without
        } else {
            1.0
        },
    }
}

/// Ratio of coefficients of variation `after / before`. Values < 1 mean the
/// tuning step reduced relative spread (Fig. 3's "variance clarifies
/// stepwise" narrative).
pub fn variance_ratio(before: &[f64], after: &[f64]) -> f64 {
    let b = stats::coeff_of_variation(before);
    let a = stats::coeff_of_variation(after);
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttling_detects_node_clusters() {
        // 4 nodes x 16 ranks; node 2 throttled at 4x.
        let mut per_rank = vec![1.0; 64];
        per_rank[32..48].fill(4.0);
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert!(rep.any());
        assert_eq!(rep.throttled_nodes, vec![2]);
        assert_eq!(rep.slow_ranks.len(), 16);
        assert!((rep.inflation - 4.0).abs() < 1e-9);
    }

    #[test]
    fn throttling_ignores_scattered_stragglers() {
        // One slow rank per node: workload imbalance, not hardware.
        let mut per_rank = vec![1.0; 64];
        for n in 0..4 {
            per_rank[n * 16] = 4.0;
        }
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert_eq!(rep.slow_ranks.len(), 4);
        assert!(rep.throttled_nodes.is_empty());
    }

    #[test]
    fn throttling_handles_partial_last_node() {
        // 20 ranks, 16 per node: node 1 has 4 ranks, 3 slow => quorum met.
        let mut per_rank = vec![1.0; 20];
        per_rank[16] = 5.0;
        per_rank[17] = 5.0;
        per_rank[18] = 5.0;
        let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
        assert_eq!(rep.throttled_nodes, vec![1]);
    }

    #[test]
    fn throttling_on_empty_and_uniform() {
        let rep = detect_throttling(&[], 16, 2.0, 0.75);
        assert!(!rep.any());
        let rep = detect_throttling(&[1.0; 32], 16, 2.0, 0.75);
        assert!(!rep.any());
        assert_eq!(rep.inflation, 1.0);
    }

    #[test]
    fn wait_spikes_amplify_mean() {
        // 99 quick waits + 1 huge spike: mean inflated, median robust.
        let mut d = vec![1.0; 99];
        d.push(200.0);
        let rep = detect_wait_spikes(&d, 10.0);
        assert!(rep.any());
        assert_eq!(rep.spikes, vec![99]);
        assert!((rep.spike_rate - 0.01).abs() < 1e-9);
        assert!(rep.amplification > 2.5, "amp = {}", rep.amplification);
    }

    #[test]
    fn wait_spikes_none_in_clean_series() {
        let d = vec![1.0, 1.1, 0.9, 1.05];
        let rep = detect_wait_spikes(&d, 10.0);
        assert!(!rep.any());
        assert!((rep.amplification - 1.0).abs() < 1e-9);
    }

    #[test]
    fn variance_ratio_reflects_tuning() {
        let noisy = [1.0, 5.0, 0.5, 8.0, 2.0];
        let tuned = [2.0, 2.1, 1.9, 2.05, 2.0];
        assert!(variance_ratio(&noisy, &tuned) < 0.2);
        assert!((variance_ratio(&tuned, &tuned) - 1.0).abs() < 1e-9);
    }
}
