//! Fig. 3 — rankwise boundary communication before/after two tuning steps.
//!
//! Three stacked configurations, mirroring §IV-B:
//!
//! 1. **default** — compute scheduled before sends (the untuned task order)
//!    on the untuned network (small shared-memory queue);
//! 2. **+ sends-first** — task reordering prioritizes message dispatch;
//! 3. **+ queue tuning** — the shared-memory queue is sized correctly.
//!
//! The paper's Fig. 3 shows per-rank boundary-communication noise shrinking
//! stepwise, which is what lets the underlying telemetry structure emerge.
//! We report the mean and coefficient of variation of per-rank comm time,
//! plus the CV ratio relative to the previous stage.
//!
//! ```text
//! cargo run -p amr-bench --release --bin fig3_tuning -- \
//!     [--ranks 256] [--rounds 100] [--seed 3]
//! ```

use amr_bench::{render_table, Args};
use amr_core::policies::{Baseline, PlacementPolicy};
use amr_sim::{MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
use amr_telemetry::stats;
use amr_workloads::random_refined_mesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::from_env();
    let ranks = args.get_usize("ranks", 256);
    let rounds = args.get_usize("rounds", 100);
    let seed = args.get_u64("seed", 3);

    let mesh = random_refined_mesh(ranks, 1.8, seed);
    let placement = Baseline.place(&vec![1.0; mesh.num_blocks()], ranks);
    let messages = amr_workloads::exchange::build_round_messages(&mesh, &placement);

    // Variable per-rank compute: the raw material the untuned task order
    // converts into cascading send delays.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16);
    let compute: Vec<u64> = (0..ranks)
        .map(|_| rng.gen_range(100_000..3_000_000))
        .collect();

    let stages: [(&str, NetworkConfig, TaskOrder); 3] = [
        (
            "default (compute-first, small queue)",
            NetworkConfig {
                ack_loss_prob: 0.0,
                ..NetworkConfig::untuned()
            },
            TaskOrder::ComputeFirst,
        ),
        (
            "+ sends prioritized",
            NetworkConfig {
                ack_loss_prob: 0.0,
                ..NetworkConfig::untuned()
            },
            TaskOrder::SendsFirst,
        ),
        (
            "+ queue size tuned",
            NetworkConfig {
                ack_loss_prob: 0.0,
                ..NetworkConfig::tuned()
            },
            TaskOrder::SendsFirst,
        ),
    ];

    println!("== Fig. 3: rankwise boundary communication across tuning stages ==\n");
    let mut rows = Vec::new();
    let mut prev_cv: Option<f64> = None;
    for (label, net, order) in stages {
        let spec = RoundSpec {
            num_ranks: ranks,
            compute_ns: compute.clone(),
            messages: messages.clone(),
            order,
        };
        let mut sim = MicroSim::new(Topology::paper(ranks), net, seed);
        let mut comm = vec![0.0f64; ranks];
        for _ in 0..rounds {
            let res = sim.run_round(&spec);
            for (r, c) in comm.iter_mut().enumerate() {
                *c += (res.comm_ns[r] + res.wait_ns[r]) as f64;
            }
        }
        for c in comm.iter_mut() {
            *c /= rounds as f64;
        }
        let mean = stats::mean(&comm);
        let cv = stats::coeff_of_variation(&comm);
        let p99 = stats::percentile(&comm, 0.99);
        let ratio = prev_cv
            .map(|p| format!("{:.2}", cv / p))
            .unwrap_or("-".into());
        prev_cv = Some(cv);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", mean / 1e3),
            format!("{:.1}", p99 / 1e3),
            format!("{cv:.3}"),
            ratio,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "stage",
                "mean comm (us)",
                "p99 (us)",
                "rankwise CV",
                "CV vs prev"
            ],
            &rows
        )
    );
    println!(
        "\nPaper shape check: each tuning stage reduces rankwise variance, clarifying the\n\
         telemetry structure (Fig. 3 left -> middle -> right)."
    );
}
