//! Ablation: is the edge cut a good proxy for communication cost?
//!
//! Related work (§VIII): "all graph-based approaches model communication as
//! edge cuts, which we find poorly correlated with runtime communication
//! overhead." This experiment places one mesh with seven policies — from
//! locality-maximizing to locality-blind, plus a real greedy edge-cut
//! partitioner and RCB — and compares each placement's *edge cut* with its
//! *measured* boundary-round latency and per-rank comm hotspots from the
//! message-level simulator.
//!
//! ```text
//! cargo run -p amr-bench --release --bin ablation_edgecut -- [--ranks 512] [--rounds 40]
//! ```

use amr_bench::{render_table, Args};
use amr_core::placement::Placement;
use amr_core::policies::{
    edge_cut_bytes, Baseline, Cdp, Cplx, GreedyEdgeCut, Lpt, PlacementPolicy, Rcb,
};
use amr_sim::{MicroSim, NetworkConfig, RoundSpec, TaskOrder, Topology};
use amr_telemetry::stats;
use amr_workloads::exchange::build_round_messages;
use amr_workloads::exchange::placement_ctx;
use amr_workloads::{random_refined_mesh, CostDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let ranks = args.get_usize("ranks", 512);
    let rounds = args.get_usize("rounds", 40);
    let seed = args.get_u64("seed", 23);

    let mesh = random_refined_mesh(ranks, 1.6, seed);
    let n = mesh.num_blocks();
    let graph = mesh.neighbor_graph();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEC);
    let costs = CostDistribution::Exponential { mean: 1.0 }.sample_vec(n, &mut rng);

    println!("== Ablation: edge cut vs measured communication ==");
    println!("   ({ranks} ranks, {n} blocks, {rounds} measured rounds/policy)\n");

    let placements: Vec<(String, Placement)> = vec![
        ("baseline".into(), Baseline.place(&costs, ranks)),
        ("cdp".into(), Cdp.place(&costs, ranks)),
        ("cpl50".into(), Cplx::new(50).place(&costs, ranks)),
        ("lpt".into(), Lpt.place(&costs, ranks)),
        ("edge-cut".into(), {
            // Thread the prebuilt neighbor graph through the context so the
            // partitioner does not rebuild it.
            let ctx = placement_ctx(&mesh, &costs, ranks).with_graph(&graph);
            let mut out = Placement::default();
            GreedyEdgeCut::default()
                .place_into(&ctx, &mut out)
                .expect("edge-cut placement");
            out
        }),
        ("rcb".into(), Rcb.place_on_mesh(&mesh, &costs, ranks)),
    ];

    let mut cuts = Vec::new();
    let mut lats = Vec::new();
    let mut rows = Vec::new();
    for (name, placement) in &placements {
        let cut = edge_cut_bytes(placement, &graph, &mesh);
        let spec = RoundSpec {
            num_ranks: ranks,
            compute_ns: vec![0; ranks],
            messages: build_round_messages(&mesh, placement),
            order: TaskOrder::SendsFirst,
        };
        let mut sim = MicroSim::new(Topology::paper(ranks), NetworkConfig::tuned(), seed);
        let mut lat = 0.0;
        for _ in 0..rounds {
            lat += sim.run_round(&spec).round_latency_ns as f64;
        }
        lat /= rounds as f64;
        cuts.push(cut as f64);
        lats.push(lat);
        rows.push(vec![
            name.clone(),
            format!("{:.1}", cut as f64 / 1e6),
            format!("{:.1}", lat / 1e3),
            format!("{:.3}", placement.makespan(&costs)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["policy", "edge cut (MB)", "round latency (us)", "makespan"],
            &rows
        )
    );
    let r = stats::pearson(&cuts, &lats);
    println!(
        "\nPearson(edge cut, measured round latency) across policies: r = {r:.3}\n\
         Paper claim: edge cuts are a poor proxy for runtime communication cost —\n\
         receiver hotspots and the local/remote path split matter more than total\n\
         crossing volume."
    );
}
