//! Fig. 2 — profiling runs affected by CPU throttling, and the pruning fix.
//!
//! Reproduces the §IV-A experience: thermally throttled nodes inflate
//! compute times ~4× on all 16 ranks of the node, which propagates into
//! global synchronization and dominates runtime. The health-check workflow
//! detects the node clusters from per-rank telemetry and prunes them,
//! recovering a multiple of the runtime (the paper went from 10 h to 2.5 h).
//!
//! ```text
//! cargo run -p amr-bench --release --bin fig2_throttling -- \
//!     [--ranks 256] [--throttled-nodes 3] [--steps 150] [--seed 2]
//! ```

use amr_bench::{render_table, Args};
use amr_core::policies::Baseline;
use amr_core::trigger::RebalanceTrigger;
use amr_sim::health::{prune_faulty_nodes, run_health_check};
use amr_sim::{FaultConfig, MacroSim, SimConfig};
use amr_telemetry::anomaly::detect_throttling;
use amr_telemetry::{Phase, Query};
use amr_workloads::{CoolingWorkload, SedovScenario};

fn main() {
    let args = Args::from_env();
    let ranks = args.get_usize("ranks", 256);
    let n_throttled = args.get_usize("throttled-nodes", 3);
    let seed = args.get_u64("seed", 2);
    let _ = args.get_u64("steps", 0); // step count comes from the scenario

    // Throttle a few interior nodes at the paper's observed 4x.
    let num_nodes = ranks / 16;
    assert!(n_throttled < num_nodes, "too many throttled nodes");
    let throttled: Vec<usize> = (0..n_throttled)
        .map(|i| 1 + i * (num_nodes - 1) / n_throttled.max(1))
        .collect();
    let faults = FaultConfig::with_throttled_nodes(throttled.iter().copied());

    println!("== Fig. 2: throttled compute, cluster signature, pruning ==");
    println!(
        "   ({ranks} ranks, 16/node; nodes {:?} throttled at 4x)\n",
        throttled
    );

    // Use a Sedov run when the rank count matches Table I, else cooling.
    let run = |faults: FaultConfig, label: &str| {
        let mut cfg = SimConfig::tuned(ranks);
        cfg.faults = faults.into();
        cfg.seed = seed;
        cfg.telemetry_sampling = 1;
        let mut sim = MacroSim::new(cfg);
        let report = if [512, 1024, 2048, 4096].contains(&ranks) {
            let mut w = SedovScenario::for_ranks(ranks, 200).workload();
            sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange)
        } else {
            let mesh = amr_mesh::MeshConfig::from_cells(amr_mesh::Dim::D3, (128, 128, 128), 1);
            let mut w = CoolingWorkload::new(amr_workloads::cooling::CoolingConfig::new(mesh, 150));
            sim.run(&mut w, &Baseline, RebalanceTrigger::OnMeshChange)
        };
        println!(
            "-- {label}: total {:.2}s | compute {:.2}s | sync {:.2}s ({:.1}%) --",
            report.total_ns / 1e9,
            report.phases.compute_ns / 1e9,
            report.phases.sync_ns / 1e9,
            report.phases.sync_fraction() * 100.0
        );
        report
    };

    let faulty = run(faults.clone(), "faulty run");

    // Telemetry-side diagnosis: per-rank compute means -> cluster detector.
    let per_rank: Vec<f64> = Query::new(&faulty.telemetry)
        .phase(Phase::Compute)
        .per_rank_secs(ranks);
    let rep = detect_throttling(&per_rank, 16, 2.0, 0.75);
    println!("\ntelemetry diagnosis:");
    println!(
        "  slow ranks: {} (in clusters of 16: {:?})",
        rep.slow_ranks.len(),
        rep.throttled_nodes
    );
    println!(
        "  compute inflation vs median rank: {:.1}x (paper: ~4x)\n",
        rep.inflation
    );
    assert_eq!(
        rep.throttled_nodes, throttled,
        "detector must find exactly the injected nodes"
    );

    // Health-check + prune workflow (pre-job screening).
    let topo = amr_sim::Topology::paper(ranks);
    let check = run_health_check(&topo, &faults, 1.0e6, seed);
    let (cleaned, blacklisted) = prune_faulty_nodes(&faults, &check);
    println!("health check blacklisted nodes {blacklisted:?}; re-running on healthy nodes\n");

    let pruned = run(cleaned, "pruned run");

    let speedup = faulty.total_ns / pruned.total_ns;
    println!("\n== Summary ==");
    let rows = vec![
        vec![
            "faulty".into(),
            format!("{:.2}", faulty.total_ns / 1e9),
            format!("{:.1}%", faulty.phases.sync_fraction() * 100.0),
        ],
        vec![
            "pruned".into(),
            format!("{:.2}", pruned.total_ns / 1e9),
            format!("{:.1}%", pruned.phases.sync_fraction() * 100.0),
        ],
    ];
    println!(
        "{}",
        render_table(&["run", "total (s)", "sync share"], &rows)
    );
    println!(
        "runtime recovered: {speedup:.2}x (paper: 10 h -> 2.5 h = 4x; >70% of time in sync before pruning)"
    );
}
