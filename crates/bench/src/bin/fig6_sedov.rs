//! Figure 6 — Sedov Blast Wave runtime study.
//!
//! Reproduces all three panels:
//!
//! * **6a** — total runtime decomposed into compute / communication /
//!   synchronization / rebalancing, for baseline + CPL{0,25,50,75,100}
//!   across scales;
//! * **6b** — P2P communication and synchronization time normalized to
//!   baseline (the load–locality tradeoff), at the smallest and largest
//!   scale;
//! * **6c** — local (intra-node) vs remote (inter-node) MPI message volume,
//!   normalized to the baseline's total.
//!
//! Usage:
//! ```text
//! cargo run -p amr-bench --release --bin fig6_sedov -- \
//!     [--ranks 512,1024,2048,4096] [--step-scale 50] [--seed 1]
//! ```
//!
//! The paper's full runs take 30k–53k steps on real hardware; `--step-scale`
//! divides Table I step counts (default 50). Policy orderings and phase
//! fractions are stable under this scaling (see EXPERIMENTS.md).

use amr_bench::{fmt_pct_delta, fmt_s, policy_roster, render_table, Args};
use amr_core::trigger::RebalanceTrigger;
use amr_sim::{MacroSim, RunReport, SimConfig};
use amr_workloads::SedovScenario;

fn main() {
    let args = Args::from_env();
    let scales = args.get_usize_list("ranks", &[512, 1024, 2048, 4096]);
    let step_scale = args.get_u64("step-scale", 50);
    let seed = args.get_u64("seed", 1);
    let csv_dir = args.get("csv", "").to_string();

    println!("== Fig. 6: Sedov Blast Wave 3D, policies vs scale ==");
    println!("   (step counts = Table I / {step_scale}; virtual time; 16 ranks/node)\n");

    let mut all_reports: Vec<(usize, Vec<RunReport>)> = Vec::new();

    for &ranks in &scales {
        let policies = policy_roster();
        let mut reports = Vec::new();
        for policy in &policies {
            let scenario = SedovScenario::for_ranks(ranks, step_scale);
            let mut workload = scenario.workload();
            let mut cfg = SimConfig::tuned(ranks);
            cfg.seed = seed ^ (ranks as u64);
            cfg.telemetry_sampling = 16;
            let mut sim = MacroSim::new(cfg);
            let report = sim.run(
                &mut workload,
                policy.as_ref(),
                RebalanceTrigger::OnMeshChange,
            );
            reports.push(report);
        }
        print_fig6a(ranks, &reports);
        all_reports.push((ranks, reports));
    }

    // 6b/6c for smallest and largest scales (matching the paper's panels).
    for (ranks, reports) in all_reports
        .iter()
        .filter(|(r, _)| *r == *scales.first().unwrap() || *r == *scales.last().unwrap())
    {
        print_fig6b(*ranks, reports);
        print_fig6c(*ranks, reports);
    }

    print_findings(&all_reports);

    // Optional plot-ready CSV export (`--csv <dir>`).
    if !csv_dir.is_empty() {
        std::fs::create_dir_all(&csv_dir).expect("create csv dir");
        let mut csv = String::from(
            "ranks,policy,compute_s,comm_s,sync_s,redist_s,total_s,local_msgs,remote_msgs,lb_invocations,blocks_migrated\n",
        );
        for (ranks, reports) in &all_reports {
            for r in reports {
                csv.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{},{},{},{}\n",
                    ranks,
                    r.policy,
                    r.phases.compute_ns / 1e9,
                    r.phases.comm_ns / 1e9,
                    r.phases.sync_ns / 1e9,
                    r.phases.redist_ns / 1e9,
                    r.total_ns / 1e9,
                    r.messages.local,
                    r.messages.remote,
                    r.lb_invocations,
                    r.blocks_migrated,
                ));
            }
        }
        let path = format!("{csv_dir}/fig6.csv");
        std::fs::write(&path, csv).expect("write csv");
        println!("\nwrote {path}");
    }
}

fn print_fig6a(ranks: usize, reports: &[RunReport]) {
    let base_total = reports[0].total_ns;
    let max_total = reports
        .iter()
        .map(|r| r.phases.total_ns())
        .fold(0.0f64, f64::max);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            // Bars share one scale so shorter runs show shorter bars.
            let width = (32.0 * r.phases.total_ns() / max_total).round() as usize;
            vec![
                r.policy.clone(),
                fmt_s(r.phases.compute_ns),
                fmt_s(r.phases.comm_ns),
                fmt_s(r.phases.sync_ns),
                fmt_s(r.phases.redist_ns),
                fmt_s(r.total_ns),
                format!("{:.1}%", r.phases.sync_fraction() * 100.0),
                fmt_pct_delta(r.total_ns, base_total),
                format!("{:<32}", r.phases.render_bar(width)),
            ]
        })
        .collect();
    println!("-- Fig. 6a @ {ranks} ranks (seconds, mean per rank) --");
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "compute",
                "comm",
                "sync",
                "redist",
                "total",
                "sync%",
                "vs base",
                "#=compute ~=comm ==sync %=redist"
            ],
            &rows
        )
    );
}

fn print_fig6b(ranks: usize, reports: &[RunReport]) {
    let base = &reports[0];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .skip(1) // CPLX variants vs baseline
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.3}", r.phases.comm_ns / base.phases.comm_ns),
                format!("{:.3}", r.phases.sync_ns / base.phases.sync_ns),
            ]
        })
        .collect();
    println!("-- Fig. 6b @ {ranks} ranks (normalized to baseline) --");
    println!(
        "{}",
        render_table(&["policy", "comm (norm)", "sync (norm)"], &rows)
    );
}

fn print_fig6c(ranks: usize, reports: &[RunReport]) {
    let base_total = reports[0].messages.mpi() as f64;
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.3}", r.messages.local as f64 / base_total),
                format!("{:.3}", r.messages.remote as f64 / base_total),
                format!("{:.3}", r.messages.mpi() as f64 / base_total),
                format!("{:.1}%", r.messages.remote_fraction() * 100.0),
            ]
        })
        .collect();
    println!("-- Fig. 6c @ {ranks} ranks (message volume / baseline MPI total) --");
    println!(
        "{}",
        render_table(
            &["policy", "local", "remote", "mpi total", "remote%"],
            &rows
        )
    );
}

fn print_findings(all: &[(usize, Vec<RunReport>)]) {
    println!("== Findings check (paper: §VI-B) ==");
    for (ranks, reports) in all {
        let base = &reports[0];
        let best = reports
            .iter()
            .skip(1)
            .min_by(|a, b| a.total_ns.total_cmp(&b.total_ns))
            .unwrap();
        let reduction = (base.total_ns - best.total_ns) / base.total_ns * 100.0;
        println!(
            "  {ranks} ranks: blocks {}->{}; baseline sync {:.1}% of runtime; best {} at {:.1}% total-runtime reduction \
             (paper: up to 21.6%); non-compute reduction {:.1}%; baseline remote msgs {:.0}%",
            base.initial_blocks,
            base.final_blocks,
            base.phases.sync_fraction() * 100.0,
            best.policy,
            reduction,
            (base.phases.non_compute_ns() - best.phases.non_compute_ns())
                / base.phases.non_compute_ns()
                * 100.0,
            base.messages.remote_fraction() * 100.0,
        );
    }
}
