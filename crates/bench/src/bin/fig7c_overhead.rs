//! Fig. 7 (bottom) — placement computation overhead vs scale.
//!
//! Wall-clock time of each policy's `place()` call at 1–2 blocks per rank,
//! from 512 up to 128K ranks. The paper reports CPLX staying near ~10 ms up
//! to 16K ranks and ~100 ms at 128K, against its 50 ms redistribution
//! budget; zonal/chunked parallelism is the escape hatch at the largest
//! scales (already built into `ChunkedCdp`).
//!
//! ```text
//! cargo run -p amr-bench --release --bin fig7c_overhead -- \
//!     [--ranks 512,2048,8192,16384,65536,131072] [--reps 5]
//! ```

use amr_bench::{render_table, Args};
use amr_core::engine::{PlacementCtx, PlacementEngine, PlacementError, PlacementReport};
use amr_core::policies::{cdp_parametric, Baseline, ChunkedCdp, Cplx, Lpt, PlacementPolicy, Zonal};
use amr_core::Placement;
use amr_workloads::CostDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Adapter: run the free-function parametric CDP through the policy trait.
struct ParametricCdp;
impl PlacementPolicy for ParametricCdp {
    fn name(&self) -> String {
        "cdp-param".into()
    }
    fn place_into(
        &self,
        ctx: &PlacementCtx,
        out: &mut Placement,
    ) -> Result<PlacementReport, PlacementError> {
        ctx.validate()?;
        *out = cdp_parametric(ctx.costs(), ctx.num_ranks());
        Ok(ctx.finish(out))
    }
}

fn main() {
    let args = Args::from_env();
    let scales = args.get_usize_list("ranks", &[512, 2048, 8192, 16384, 65536, 131072]);
    let reps = args.get_usize("reps", 5);
    let bpr = args.get_usize("blocks-per-rank", 2);

    println!("== Fig. 7c: placement computation time vs scale (host wall-clock, ms) ==");
    println!("   ({bpr} blocks/rank; mean over {reps} runs; budget = 50 ms)\n");

    let dist = CostDistribution::Exponential { mean: 1.0 };
    let mut cold_rows = Vec::new();
    let mut warm_rows = Vec::new();
    for &ranks in &scales {
        let n = ranks * bpr;
        let mut rng = StdRng::seed_from_u64(42 ^ ranks as u64);
        let costs = dist.sample_vec(n, &mut rng);

        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(Baseline),
            Box::new(Lpt),
            Box::new(ChunkedCdp::default()),
            Box::new(ParametricCdp),
            Box::new(Cplx::new(25)),
            Box::new(Cplx::new(50)),
            Box::new(Cplx::new(100)),
            // The paper's zonal mitigation for the largest scales (§VI-C).
            Box::new(Zonal::new(ranks.div_ceil(8192).max(2), Cplx::new(50))),
        ];
        let mut cold_cells = vec![ranks.to_string()];
        let mut warm_cells = vec![ranks.to_string()];
        for policy in &policies {
            // Cold path: a fresh `place()` per rebalance (pre-engine world).
            let _ = policy.place(&costs, ranks);
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(policy.place(&costs, ranks));
            }
            let cold_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            cold_cells.push(format!("{cold_ms:.2}"));

            // Warm path: the steady-state rebalance loop — one engine whose
            // scratch and placement buffers persist across invocations
            // (allocation-free for the sequential policies).
            let mut engine = PlacementEngine::new();
            for _ in 0..2 {
                engine
                    .rebalance(policy.as_ref(), &costs, ranks)
                    .expect("warm-up rebalance");
            }
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(
                    engine
                        .rebalance(policy.as_ref(), &costs, ranks)
                        .expect("engine rebalance"),
                );
            }
            let warm_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            warm_cells.push(format!("{warm_ms:.2}"));
        }
        cold_rows.push(cold_cells);
        warm_rows.push(warm_cells);
    }
    let header = [
        "ranks",
        "baseline",
        "lpt",
        "cdp-chunked",
        "cdp-param",
        "cpl25",
        "cpl50",
        "cpl100",
        "zonal-cpl50",
    ];
    println!("-- cold: fresh place() per rebalance --");
    println!("{}", render_table(&header, &cold_rows));
    println!(
        "\n-- warm: reused PlacementEngine (steady-state rebalance, incl. migration accounting) --"
    );
    println!("{}", render_table(&header, &warm_rows));
    println!("Paper shape check: ~10 ms at 16K ranks, rising toward ~100 ms at 128K.");
}
