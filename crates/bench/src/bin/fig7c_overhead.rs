//! Fig. 7 (bottom) — placement computation overhead vs scale.
//!
//! Wall-clock time of each policy's `place()` call at 1–2 blocks per rank,
//! from 512 up to 128K ranks. The paper reports CPLX staying near ~10 ms up
//! to 16K ranks and ~100 ms at 128K, against its 50 ms redistribution
//! budget; zonal/chunked parallelism is the escape hatch at the largest
//! scales (already built into `ChunkedCdp`).
//!
//! ```text
//! cargo run -p amr-bench --release --bin fig7c_overhead -- \
//!     [--ranks 512,2048,8192,16384,65536,131072] [--reps 5]
//! ```

use amr_bench::{render_table, Args};
use amr_core::policies::{cdp_parametric, Baseline, ChunkedCdp, Cplx, Lpt, PlacementPolicy, Zonal};
use amr_workloads::CostDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Adapter: run the free-function parametric CDP through the policy trait.
struct ParametricCdp;
impl PlacementPolicy for ParametricCdp {
    fn name(&self) -> String {
        "cdp-param".into()
    }
    fn place(&self, costs: &[f64], num_ranks: usize) -> amr_core::Placement {
        cdp_parametric(costs, num_ranks)
    }
}

fn main() {
    let args = Args::from_env();
    let scales =
        args.get_usize_list("ranks", &[512, 2048, 8192, 16384, 65536, 131072]);
    let reps = args.get_usize("reps", 5);
    let bpr = args.get_usize("blocks-per-rank", 2);

    println!("== Fig. 7c: placement computation time vs scale (host wall-clock, ms) ==");
    println!("   ({bpr} blocks/rank; mean over {reps} runs; budget = 50 ms)\n");

    let dist = CostDistribution::Exponential { mean: 1.0 };
    let mut rows = Vec::new();
    for &ranks in &scales {
        let n = ranks * bpr;
        let mut rng = StdRng::seed_from_u64(42 ^ ranks as u64);
        let costs = dist.sample_vec(n, &mut rng);

        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(Baseline),
            Box::new(Lpt),
            Box::new(ChunkedCdp::default()),
            Box::new(ParametricCdp),
            Box::new(Cplx::new(25)),
            Box::new(Cplx::new(50)),
            Box::new(Cplx::new(100)),
            // The paper's zonal mitigation for the largest scales (§VI-C).
            Box::new(Zonal::new(ranks.div_ceil(8192).max(2), Cplx::new(50))),
        ];
        let mut cells = vec![ranks.to_string()];
        for policy in &policies {
            // Warm-up, then timed reps.
            let _ = policy.place(&costs, ranks);
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(policy.place(&costs, ranks));
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            cells.push(format!("{ms:.2}"));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &["ranks", "baseline", "lpt", "cdp-chunked", "cdp-param", "cpl25", "cpl50", "cpl100", "zonal-cpl50"],
            &rows
        )
    );
    println!("Paper shape check: ~10 ms at 16K ranks, rising toward ~100 ms at 128K.");
}
