//! Table I — Sedov Blast Wave 3D problem configurations.
//!
//! Runs each Table I scenario under the baseline policy and reports, next to
//! the paper's values: total timesteps, timesteps invoking load-balancing
//! (`t_lb`), and initial/final block counts. Step counts are scaled by
//! `--step-scale` (default 50); `t_total` and `t_lb` are reported both as
//! simulated and as extrapolated back to paper scale (`× step-scale`).
//!
//! ```text
//! cargo run -p amr-bench --release --bin table1 -- [--step-scale 50] [--ranks 512,...]
//! ```

use amr_bench::{render_table, Args};
use amr_core::policies::Baseline;
use amr_core::trigger::RebalanceTrigger;
use amr_sim::{MacroSim, SimConfig};
use amr_workloads::SedovScenario;

fn main() {
    let args = Args::from_env();
    let step_scale = args.get_u64("step-scale", 50);
    let scales = args.get_usize_list("ranks", &[512, 1024, 2048, 4096]);

    println!("== Table I: Sedov Blast Wave 3D configurations ==");
    println!(
        "   (simulated steps = paper steps / {step_scale}; 16^3 blocks, 1 initial block/rank)\n"
    );

    let mut rows = Vec::new();
    for &ranks in &scales {
        let scenario = SedovScenario::for_ranks(ranks, step_scale);
        let row = scenario.row;
        let mut workload = scenario.workload();
        let mut cfg = SimConfig::tuned(ranks);
        cfg.telemetry_sampling = 64;
        let mut sim = MacroSim::new(cfg);
        let rep = sim.run(&mut workload, &Baseline, RebalanceTrigger::OnMeshChange);

        rows.push(vec![
            ranks.to_string(),
            format!(
                "{}x{}x{}",
                row.mesh_cells.0, row.mesh_cells.1, row.mesh_cells.2
            ),
            row.t_total.to_string(),
            rep.steps.to_string(),
            row.t_lb.to_string(),
            rep.lb_invocations.to_string(),
            format!("{:.1}%", row.t_lb as f64 / row.t_total as f64 * 100.0),
            format!(
                "{:.1}%",
                rep.lb_invocations as f64 / rep.steps as f64 * 100.0
            ),
            row.n_initial.to_string(),
            rep.initial_blocks.to_string(),
            row.n_final.to_string(),
            rep.final_blocks.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "ranks",
                "mesh",
                "t_tot(p)",
                "t_tot(sim)",
                "t_lb(p)",
                "t_lb(sim)",
                "lb%(p)",
                "lb%(sim)",
                "n_init(p)",
                "n_init",
                "n_final(p)",
                "n_final"
            ],
            &rows
        )
    );
    println!("(p) = paper-reported value; sim step counts are paper/{step_scale}.");
}
